//! Offline stand-in for `serde_derive`.
//!
//! Derives the shim `serde::Serialize` / `serde::Deserialize` traits
//! (value-tree based, see `vendor/serde`) for the shapes this workspace
//! actually uses: non-generic structs with named fields, and enums whose
//! variants are unit or struct-like. Tokens are parsed directly from
//! `proc_macro::TokenStream` — no `syn`/`quote`, so the crate builds with
//! no dependencies.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Shape {
    /// `struct Name { fields }`
    Struct { name: String, fields: Vec<String> },
    /// `enum Name { Unit, StructLike { fields }, Newtype(T), ... }`
    Enum {
        name: String,
        variants: Vec<(String, VariantKind)>,
    },
}

/// What one enum variant carries.
enum VariantKind {
    Unit,
    Struct(Vec<String>),
    Newtype,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    gen_serialize(&shape)
        .parse()
        .expect("generated code parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    gen_deserialize(&shape)
        .parse()
        .expect("generated code parses")
}

// ---------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other}"),
    };
    i += 1;
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde shim derive: generic types are not supported ({name})")
            }
            Some(_) => i += 1,
            None => panic!("serde shim derive: no braced body on {name}"),
        }
    };
    match kind.as_str() {
        "struct" => Shape::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Shape::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

/// Skips outer attributes (`#[...]`, including doc comments) and
/// visibility modifiers (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // the bracket group
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` out of a brace-group stream, returning the
/// field names. Commas inside `<...>` do not terminate a field.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        // Expect `:`, then consume the type up to a top-level `,`.
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after field, got {other:?}"),
        }
        let mut angle = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Parses enum variants: `Unit, StructLike { fields }, Newtype(T), ...`.
fn parse_variants(body: TokenStream) -> Vec<(String, VariantKind)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let vname = id.to_string();
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                variants.push((vname, VariantKind::Struct(parse_named_fields(g.stream()))));
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    i += 1;
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                // Only single-field (newtype) tuple variants are used in
                // this workspace; count top-level commas to verify.
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut angle = 0i32;
                let mut commas = 0usize;
                for t in &inner {
                    match t {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => commas += 1,
                        _ => {}
                    }
                }
                assert!(
                    commas == 0 && !inner.is_empty(),
                    "serde shim derive: multi-field tuple variant `{vname}` is not supported"
                );
                variants.push((vname, VariantKind::Newtype));
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    i += 1;
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push((vname, VariantKind::Unit));
                i += 1;
            }
            None => {
                variants.push((vname, VariantKind::Unit));
            }
            other => panic!("serde shim derive: unexpected token after variant: {other:?}"),
        }
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation.
// ---------------------------------------------------------------------

fn fields_to_object(expr_prefix: &str, fields: &[String]) -> String {
    let pairs: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({expr_prefix}{f}))"
            )
        })
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
}

fn fields_from_object(ty: &str, obj: &str, fields: &[String]) -> Vec<String> {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: match ::serde::obj_get({obj}, \"{f}\") {{ \
                   Some(v) => ::serde::Deserialize::from_value(v)?, \
                   None => ::serde::absent(\"{ty}.{f}\")?, \
                 }},"
            )
        })
        .collect()
}

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::Struct { name, fields } => {
            let body = fields_to_object("&self.", fields);
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_value(&self) -> ::serde::Value {{ {body} }} \
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, kind)| match kind {
                    VariantKind::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    VariantKind::Struct(fs) => {
                        let binds = fs.join(", ");
                        let inner = fields_to_object("", fs);
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                               (::std::string::String::from(\"{v}\"), {inner})]),"
                        )
                    }
                    VariantKind::Newtype => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Object(::std::vec![\
                           (::std::string::String::from(\"{v}\"), ::serde::Serialize::to_value(__f0))]),"
                    ),
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_value(&self) -> ::serde::Value {{ \
                     match self {{ {} }} \
                   }} \
                 }}",
                arms.join(" ")
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::Struct { name, fields } => {
            let body = fields_from_object(name, "__obj", fields).join(" ");
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                   fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ \
                     let __obj = v.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}\"))?; \
                     ::std::result::Result::Ok({name} {{ {body} }}) \
                   }} \
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, k)| matches!(k, VariantKind::Unit))
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let struct_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, k)| match k {
                    VariantKind::Struct(fs) => Some((v, fs)),
                    _ => None,
                })
                .map(|(v, fs)| {
                    let body = fields_from_object(&format!("{name}::{v}"), "__obj", fs).join(" ");
                    format!(
                        "\"{v}\" => {{ \
                           let __obj = __inner.as_object().ok_or_else(|| \
                               ::serde::Error::expected(\"object\", \"{name}::{v}\"))?; \
                           ::std::result::Result::Ok({name}::{v} {{ {body} }}) \
                         }},"
                    )
                })
                .chain(
                    variants
                        .iter()
                        .filter(|(_, k)| matches!(k, VariantKind::Newtype))
                        .map(|(v, _)| {
                            format!(
                                "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                                   ::serde::Deserialize::from_value(__inner)?)),"
                            )
                        }),
                )
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                   fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ \
                     match v {{ \
                       ::serde::Value::Str(__s) => match __s.as_str() {{ \
                         {} \
                         __other => ::std::result::Result::Err(::serde::Error::unknown_variant(\"{name}\", __other)), \
                       }}, \
                       ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{ \
                         let (__tag, __inner) = &__pairs[0]; \
                         match __tag.as_str() {{ \
                           {} \
                           __other => ::std::result::Result::Err(::serde::Error::unknown_variant(\"{name}\", __other)), \
                         }} \
                       }}, \
                       _ => ::std::result::Result::Err(::serde::Error::expected(\"string or 1-key object\", \"{name}\")), \
                     }} \
                   }} \
                 }}",
                unit_arms.join(" "),
                struct_arms.join(" ")
            )
        }
    }
}
