//! Offline stand-in for `serde_json`: emits and parses JSON against the
//! shim `serde`'s [`Value`] tree.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

/// Serialization/parse error.
pub type Error = serde::Error;

/// Serializes to compact JSON.
///
/// # Errors
///
/// Infallible for the shim's value model; kept fallible for API parity.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible for the shim's value model; kept fallible for API parity.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------
// Emitter.
// ---------------------------------------------------------------------

fn emit(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Match serde_json: integral floats keep a `.0`.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                // serde_json errors on non-finite; emit null like its
                // lossy value mode to keep reports printable.
                out.push_str("null");
            }
        }
        Value::Str(s) => emit_str(s, out),
        Value::Array(items) => emit_seq(out, indent, depth, items.len(), '[', ']', |out, i, d| {
            emit(&items[i], out, indent, d);
        }),
        Value::Object(pairs) => emit_seq(out, indent, depth, pairs.len(), '{', '}', |out, i, d| {
            emit_str(&pairs[i].0, out);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            emit(&pairs[i].1, out, indent, d);
        }),
    }
}

fn emit_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn emit_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("bad literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::msg(format!(
                "unexpected JSON at offset {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::msg(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            // Surrogate pairs are not produced by the
                            // emitter; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::msg("surrogate \\u escape unsupported"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let start = self.pos;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::msg("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| Error::msg("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("bad number"))?;
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value_tree() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("dordis \"net\"\n".into())),
            ("n".into(), Value::UInt(100)),
            ("neg".into(), Value::Int(-5)),
            ("rate".into(), Value::Float(0.25)),
            ("whole".into(), Value::Float(3.0)),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            (
                "arr".into(),
                Value::Array(vec![Value::UInt(1), Value::UInt(2)]),
            ),
            ("empty".into(), Value::Object(vec![])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("{} x").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn large_u64_roundtrips_exactly() {
        let v = Value::UInt(u64::MAX);
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }
}
