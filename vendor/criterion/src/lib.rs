//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the bench targets use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! fixed-iteration timer instead of criterion's adaptive sampling. Good
//! enough for relative comparisons in an offline container; swap in the
//! real crate for publication-grade numbers.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value wrapper.
///
/// Without `core::hint::black_box` semantics from unstable features, the
/// stable `std::hint::black_box` is used directly.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: function/group name plus a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    #[must_use]
    pub fn new(name: impl Into<String>, parameter: impl core::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id.
    #[must_use]
    pub fn from_parameter(parameter: impl core::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl core::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Throughput annotation (printed, not analysed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Per-iteration timer handle passed to bench closures.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Times `f` over the configured iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.total = start.elapsed();
    }
}

fn run_one(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Warm-up pass, then the measured pass.
    let mut warm = Bencher {
        iters: 1,
        total: Duration::ZERO,
    };
    f(&mut warm);
    let iters = sample_size.max(1) as u64;
    let mut b = Bencher {
        iters,
        total: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.total.checked_div(iters as u32).unwrap_or_default();
    let extra = match throughput {
        Some(Throughput::Bytes(n)) => {
            let secs = per_iter.as_secs_f64().max(1e-12);
            format!("  ({:.1} MiB/s)", n as f64 / secs / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) => {
            let secs = per_iter.as_secs_f64().max(1e-12);
            format!("  ({:.0} elem/s)", n as f64 / secs)
        }
        None => String::new(),
    };
    println!("bench {label:<48} {per_iter:>12.2?}/iter{extra}");
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the measured iteration count (stand-in for criterion's
    /// sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotates throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl core::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, &mut |b| {
            f(b, input);
        });
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, 20, None, &mut f);
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            throughput: None,
            _parent: self,
        }
    }
}

/// Declares a group-runner function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` from group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
