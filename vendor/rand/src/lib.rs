//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments without crates.io access, so the
//! handful of `rand` APIs the code actually uses are reimplemented here:
//! [`Rng`] (`fill`/`gen`/`gen_range`/`gen_bool`), [`SeedableRng`] with
//! `seed_from_u64`, [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for simulations and deterministic across platforms, but *not* a
//! cryptographic generator. Nothing security-critical in this repository
//! derives long-term secrets from it (protocol keys come from explicit
//! 32-byte seeds or are test-only), matching how the real crate's `StdRng`
//! was used by the seed code.

#![forbid(unsafe_code)]

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Sampling from the "standard" distribution of a type (uniform over the
/// type's range; `[0, 1)` for floats).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / ((1u64 << 24) as f32))
    }
}

/// Types over which `gen_range(lo..hi)` is defined.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`; panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                // Debiased multiply-shift (Lemire); span from primitive
                // ranges always fits in u64.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                if (m as u64) < span {
                    let t = span.wrapping_neg() % span;
                    while (m as u64) < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                    }
                }
                lo.wrapping_add((m >> 64) as $t)
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let u: f64 = Standard::sample(rng);
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let u: f32 = Standard::sample(rng);
        lo + u * (hi - lo)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Fills the byte slice with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }

    /// Draws a value from the type's standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = Standard::sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Expands a `u64` into a full seed and constructs the generator.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::SampleUniform::sample_range(rng, 0usize, i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut acc = 0.0;
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            acc += u;
        }
        // Mean of 1000 uniforms must land near 0.5.
        assert!((acc / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
    }
}
