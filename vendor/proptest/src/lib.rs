//! Offline stand-in for `proptest`.
//!
//! Supports the subset of the API this workspace's property tests use:
//! the [`proptest!`] macro (with optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]`), `any::<T>()`
//! for primitives and 32-byte arrays, range strategies, and
//! `collection::vec`. Cases are generated from a deterministic per-test
//! seed (test name hash × case index), so failures reproduce exactly;
//! there is no shrinking — the failing inputs are printed instead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngCore, SampleUniform, SeedableRng, Standard};

/// Per-block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A test-case failure (from `prop_assert!` or returned explicitly).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fails the current case with a message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A generator of values for one test argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

/// Values with a canonical "any" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_std {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                Standard::sample(rng)
            }
        }
    )*};
}
impl_arbitrary_std!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Strategy wrapper returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

/// The canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

impl<T: SampleUniform + Copy> Strategy for core::ops::Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_range_from {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::RangeFrom<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                <$t>::sample_range(rng, self.start, <$t>::MAX)
            }
        }
    )*};
}
impl_range_from!(u8, u16, u32, u64, usize, i32, i64);

/// Collection strategies.
pub mod collection {
    use super::{SampleUniform, StdRng, Strategy};

    /// Element count specification for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Vector of values from `elem`, length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = usize::sample_range(rng, self.size.lo, self.size.hi);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything a `proptest!` body usually needs.
pub mod prelude {
    pub use super::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Deterministic per-(test, case) RNG.
#[must_use]
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

/// Defines property tests over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::case_rng(stringify!($name), __case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let mut __inputs = ::std::string::String::new();
                $(__inputs.push_str(&::std::format!(
                    "  {} = {:?}\n", stringify!($arg), $arg
                ));)*
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__e) = __result {
                    ::std::panic!(
                        "proptest case {}/{} failed: {}\ninputs:\n{}",
                        __case + 1, __cfg.cases, __e, __inputs
                    );
                }
            }
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::concat!("assertion failed: ", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let __a = &$a;
        let __b = &$b;
        if __a != __b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                __a,
                __b
            )));
        }
    }};
}
