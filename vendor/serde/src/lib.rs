//! Offline stand-in for `serde`.
//!
//! The real serde is a zero-copy streaming framework; this shim is a
//! small value-tree design that supports exactly what the workspace
//! needs: `#[derive(Serialize, Deserialize)]` on non-generic structs and
//! unit/struct-variant enums, plus JSON via the sibling `serde_json`
//! shim. Types serialize to a [`Value`] tree; deserialization walks the
//! tree back.
//!
//! Representation choices match serde's external tagging so that JSON
//! written by the real library round-trips: unit variants are strings,
//! struct variants are single-key objects, `Option::None` is `null`, and
//! missing `Option` fields deserialize to `None`.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;

/// A dynamically-typed serialization tree (JSON-shaped).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent, negative).
    Int(i64),
    /// Unsigned integer (JSON number without fraction/exponent).
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved for stable output.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Numeric view as f64 (integers widen).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }
}

/// Looks up a key in an object's entry list.
#[must_use]
pub fn obj_get<'a>(pairs: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    /// Free-form error.
    #[must_use]
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }

    /// Type-mismatch error.
    #[must_use]
    pub fn expected(what: &str, ctx: &str) -> Self {
        Error(format!("expected {what} for {ctx}"))
    }

    /// Unknown enum variant.
    #[must_use]
    pub fn unknown_variant(ty: &str, got: &str) -> Self {
        Error(format!("unknown {ty} variant `{got}`"))
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self`.
    fn to_value(&self) -> Value;
}

/// Reconstruction from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from `v`.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on shape or type mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Value to use when a struct field is missing entirely; errors by
    /// default, overridden by `Option` to yield `None` (matching serde
    /// derive behaviour).
    ///
    /// # Errors
    ///
    /// Returns [`Error`] unless the type tolerates absence.
    fn absent() -> Result<Self, Error> {
        Err(Error::msg("missing field"))
    }
}

/// Derive-support helper: value for a missing field, with a good message.
///
/// # Errors
///
/// Propagates [`Deserialize::absent`]'s refusal, naming the field.
pub fn absent<T: Deserialize>(field: &str) -> Result<T, Error> {
    T::absent().map_err(|_| Error(format!("missing field `{field}`")))
}

// ---------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", "bool")),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match *v {
                    Value::UInt(u) => u,
                    Value::Int(i) if i >= 0 => i as u64,
                    Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => f as u64,
                    _ => return Err(Error::expected("unsigned integer", stringify!($t))),
                };
                <$t>::try_from(raw).map_err(|_| Error::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) if u <= i64::MAX as u64 => u as i64,
                    Value::Float(f) if f.fract() == 0.0 && f.abs() < 9e18 => f as i64,
                    _ => return Err(Error::expected("integer", stringify!($t))),
                };
                <$t>::try_from(raw).map_err(|_| Error::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::expected("number", "f32"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // Configuration-sized strings only; the leak is bounded by the
        // number of distinct deserialized labels.
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(Error::expected("string", "&'static str")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent() -> Result<Self, Error> {
        Ok(None)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(Error::expected("2-element array", "tuple")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            _ => Err(Error::expected("3-element array", "tuple")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::expected("object", "BTreeMap")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
