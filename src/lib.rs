//! Workspace-root crate: exists so the top-level `tests/` and
//! `examples/` directories build against every Dordis layer. All real
//! code lives in `crates/*`.

#![forbid(unsafe_code)]
