//! A networked SecAgg+ round through `dordis-net`: a real coordinator,
//! client runtimes on threads, the wire codec in between, and a dropout
//! *detected* by the per-stage deadline rather than scripted — then the
//! same round through the in-memory driver, to show the two paths agree
//! bit for bit.
//!
//! ```sh
//! cargo run --release --example networked_round
//! ```
//!
//! For the true multi-process version over TCP, see the `dordis serve` /
//! `dordis join` subcommands (README quickstart).

use std::collections::BTreeMap;

use dordis_core::protocol::{
    run_protocol_round, run_protocol_round_networked, ProtocolRoundConfig,
};
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::ThreatModel;
use dordis_xnoise::decomposition::XNoisePlan;

const BITS: u32 = 16;
const DIM: usize = 8;

fn main() {
    let n = 10u32;
    let updates: BTreeMap<u32, Vec<u64>> = (0..n)
        .map(|id| (id, vec![u64::from(id) + 1; DIM]))
        .collect();

    // XNoise enabled: noise is added before masking and the excess is
    // removed after unmasking, with seed recovery over the wire.
    let plan = XNoisePlan::new(25.0, n as usize, 4, 0, 6).unwrap();
    let cfg = ProtocolRoundConfig {
        round: 1,
        threshold: 6,
        bit_width: BITS,
        graph: MaskingGraph::harary_for(n as usize),
        threat_model: ThreatModel::SemiHonest,
        xnoise: Some(plan),
        chunks: Some(4),
        seed: 7,
    };
    let dropouts = [3u32, 8];

    println!("== networked path (loopback transport, detected dropout) ==");
    let net = run_protocol_round_networked(&cfg, &updates, &dropouts).unwrap();
    println!("survivors: {:?}", net.survivors);
    println!("dropped:   {:?}", net.dropped);
    println!("sum:       {:?}", net.sum);
    println!(
        "traffic:   {} bytes on the wire across {} stages",
        net.stats.total_bytes(),
        net.stats.stages.len()
    );

    println!("\n== in-memory driver path (scripted dropout) ==");
    let mem = run_protocol_round(&cfg, &updates, &dropouts).unwrap();
    println!("survivors: {:?}", mem.survivors);
    println!("sum:       {:?}", mem.sum);

    assert_eq!(net.sum, mem.sum, "paths must agree bit for bit");
    assert_eq!(net.survivors, mem.survivors);
    println!("\nnetworked and in-memory rounds agree bit for bit ✓");
}
