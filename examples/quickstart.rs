//! Quickstart: train a small federated task under dropout-resilient
//! distributed DP and print the privacy/utility report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dordis_core::config::{TaskSpec, Variant};
use dordis_core::trainer::train;
use dordis_sim::dropout::DropoutModel;

fn main() {
    // A CIFAR-10-like task in the paper's configuration: 100 clients,
    // 16 sampled per round, global budget (ε = 6, δ = 0.01), XNoise with
    // dropout tolerance T = |U|/2.
    let mut spec = TaskSpec::cifar10_like(7);
    spec.rounds = 40; // Shortened for a quick demo.
    spec.variant = Variant::XNoise {
        tolerance_frac: 0.5,
        collusion_frac: 0.0,
    };
    // 20% of sampled clients vanish every round.
    spec.dropout = DropoutModel::Bernoulli { rate: 0.2 };

    println!(
        "training `{}` for {} rounds with XNoise...",
        spec.name, spec.rounds
    );
    let report = train(&spec).expect("training should succeed");

    println!("\nround  dropped  epsilon   accuracy");
    for r in &report.records {
        if let Some(acc) = r.accuracy {
            println!(
                "{:>5}  {:>7}  {:>7.3}   {:>6.1}%",
                r.round,
                r.dropped,
                r.epsilon,
                acc * 100.0
            );
        }
    }
    println!(
        "\nfinal accuracy: {:.1}%  |  privacy spent: ε = {:.2} of {:.2} (δ = {})",
        report.final_accuracy * 100.0,
        report.epsilon_consumed,
        spec.privacy.epsilon,
        spec.privacy.delta,
    );
    assert!(report.epsilon_consumed <= spec.privacy.epsilon + 1e-9);
    println!("budget held despite 20% dropout — that is the point of XNoise.");
}
