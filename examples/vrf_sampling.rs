//! Verifiable client sampling (paper §7): clients self-select with a VRF
//! so a malicious server cannot cherry-pick colluding participants.
//!
//! ```sh
//! cargo run --release --example vrf_sampling
//! ```

use dordis_core::sampling::{self_select, verify_and_trim, SamplingConfig};
use dordis_crypto::vrf::{VrfPublicKey, VrfSecretKey};

fn key_for(id: u32) -> VrfSecretKey {
    let mut seed = [0u8; 32];
    seed[..4].copy_from_slice(&id.to_le_bytes());
    seed[31] = 0x5a;
    VrfSecretKey::from_seed(&seed)
}

fn main() {
    let population = 60u32;
    let cfg = SamplingConfig {
        target_sample: 8,
        population: population as usize,
        over_selection: 1.5,
    };
    let registry =
        |id: u32| -> Option<VrfPublicKey> { (id < population).then(|| key_for(id).public_key()) };

    for round in 1..=3u64 {
        // Every client evaluates its VRF locally and self-selects.
        let claims: Vec<_> = (0..population)
            .filter_map(|id| self_select(&key_for(id), id, round, &cfg))
            .collect();
        // The server (or any peer) verifies all proofs and trims to the
        // target sample by the claimants' own randomness.
        let sampled =
            verify_and_trim(&claims, &registry, round, &cfg).expect("honest claims verify");
        println!(
            "round {round}: {} self-selected, sampled after trim: {sampled:?}",
            claims.len()
        );
    }

    // A server cannot forge participation for an unselected client: it
    // would need a valid VRF proof under that client's key.
    let round = 9u64;
    let mut claims: Vec<_> = (0..population)
        .filter_map(|id| self_select(&key_for(id), id, round, &cfg))
        .collect();
    let outsider = (0..population)
        .find(|&id| self_select(&key_for(id), id, round, &cfg).is_none())
        .expect("someone was not selected");
    let mut forged = claims[0].clone();
    forged.client = outsider;
    claims.push(forged);
    match verify_and_trim(&claims, &registry, round, &cfg) {
        Err(e) => println!("\nforged participation for client {outsider} rejected: {e}"),
        Ok(_) => unreachable!("forgery must not verify"),
    }
}
