//! Pipeline acceleration: how Dordis splits aggregation into chunks and
//! overlaps client compute, communication, and server compute (§4).
//!
//! Prints the chunk-count sweep for one scenario (the Appendix C
//! optimization) and the plain-vs-pipelined round times across model
//! sizes (the Figure 10 trend: larger models gain more).
//!
//! ```sh
//! cargo run --release --example pipeline_speedup
//! ```

use dordis_core::timing::{cost_input, estimate, paper_hetero, TimingScenario};
use dordis_pipeline::planner::{plan_from_cost_model, simulate_pipelined};
use dordis_sim::cost::{CostModel, Protocol, UnitCosts};

fn scenario(name: &str, params: usize) -> TimingScenario {
    TimingScenario {
        name: name.into(),
        model_params: params,
        clients: 100,
        protocol: Protocol::SecAgg,
        dp: true,
        xnoise: true,
        dropout_rate: 0.1,
        other_secs: 60.0,
        bit_width: 20,
    }
}

fn main() {
    let units = UnitCosts::paper_testbed();
    let cost = CostModel::new(units);

    // Part 1: the chunk-count sweep for an 11M-parameter model.
    let s = scenario("resnet18-like", 11_000_000);
    let input = cost_input(&s, &paper_hetero(1));
    let plan = plan_from_cost_model(&cost, &input, 20, 1);
    println!("chunk-count sweep (11M parameters, 100 clients, SecAgg + XNoise):");
    println!("{:>3}  {:>10}  {:>8}", "m", "makespan", "speedup");
    for (i, makespan) in plan.sweep.iter().enumerate() {
        let marker = if i + 1 == plan.chunks {
            "  ← chosen"
        } else {
            ""
        };
        println!(
            "{:>3}  {:>9.1}s  {:>7.2}x{}",
            i + 1,
            makespan,
            plan.sweep[0] / makespan,
            marker
        );
    }

    // Part 2: speedup across model sizes (Figure 10's trend).
    println!("\nplain vs pipelined round time across model sizes:");
    println!(
        "{:<16} {:>10} {:>10} {:>8} {:>7}",
        "model", "plain", "pipelined", "speedup", "chunks"
    );
    for (name, params) in [
        ("cnn-1M", 1_000_000usize),
        ("resnet18-11M", 11_000_000),
        ("vgg19-20M", 20_000_000),
    ] {
        let rt = estimate(&scenario(name, params), &units, 2);
        println!(
            "{:<16} {:>9.1}s {:>9.1}s {:>7.2}x {:>7}",
            name,
            rt.plain_total(),
            rt.piped_total(),
            rt.speedup(),
            rt.chunks
        );
    }
    println!("\nexpected shape (paper §6.4): speedup grows with model size,");
    println!("topping out around 2.4x — Amdahl over the three resources.");

    // Part 3: ground truth vs planned m.
    let truth_best_m = (1..=20)
        .min_by(|&a, &b| {
            simulate_pipelined(&cost, &input, a)
                .partial_cmp(&simulate_pipelined(&cost, &input, b))
                .unwrap()
        })
        .unwrap();
    println!(
        "\nplanner chose m = {} (ground-truth optimum m = {truth_best_m})",
        plan.chunks
    );
}
