//! A 3-round networked FL session: persistent loopback connections,
//! per-round VRF cohort resampling (§7), the global model travelling in
//! each round's Setup payload, one scripted mid-stream dropout with a
//! rejoin — and the same session through the in-memory driver, to show
//! the per-round aggregates agree bit for bit.
//!
//! ```sh
//! cargo run --release --example session_round
//! ```
//!
//! For the multi-process version over TCP, see
//! `dordis serve --rounds R` / `dordis join` (README quickstart).

use dordis_core::config::TaskSpec;
use dordis_core::sampling::SamplingConfig;
use dordis_core::session::{
    planned_cohorts, train_session, train_session_networked, FlSessionOptions, MidStreamDrop,
};

fn main() {
    let spec = TaskSpec::tiny_for_tests(99);
    let mut opts = FlSessionOptions::new(
        3,
        SamplingConfig {
            target_sample: 8,
            population: spec.population,
            over_selection: 1.5,
        },
    );

    // Script one mid-stream dropout in round 1: the last seated client
    // sends one chunk frame, disconnects, then reconnects and re-joins
    // round 2 — the paper's defining per-round dropout-and-rejoin
    // workload.
    let cohorts = planned_cohorts(&spec, &opts);
    let dropper = *cohorts[1].last().expect("cohort");
    opts.droppers = vec![MidStreamDrop {
        round: 1,
        client: dropper,
        after_chunks: 1,
    }];

    println!("== networked session (loopback, persistent connections) ==");
    let net = train_session_networked(&spec, &opts).expect("networked session");
    for round in &net.rounds {
        println!(
            "round {} (wire {}): cohort {:?}\n  survivors {:?}  dropped {:?}",
            round.round, round.wire_round, round.cohort, round.survivors, round.dropped
        );
    }
    println!(
        "final accuracy {:.2}%, epsilon spent {:.3}",
        net.training.final_accuracy * 100.0,
        net.training.epsilon_consumed
    );

    println!("\n== in-memory driver session (same seeds, scripted dropout) ==");
    let mem = train_session(&spec, &opts).expect("in-memory session");

    assert_eq!(net.rounds.len(), mem.rounds.len());
    for (n, m) in net.rounds.iter().zip(mem.rounds.iter()) {
        assert_eq!(n.cohort, m.cohort, "cohorts must match");
        assert_eq!(n.survivors, m.survivors, "survivors must match");
        assert_eq!(
            n.sum, m.sum,
            "round {} aggregate must be bit-equal",
            n.round
        );
    }
    assert_eq!(net.training.final_accuracy, mem.training.final_accuracy);
    assert!(
        net.rounds[1].dropped.contains(&dropper),
        "scripted dropper must be detected"
    );
    assert!(
        net.rounds[2].survivors.contains(&dropper) || !net.rounds[2].cohort.contains(&dropper),
        "dropper must complete round 2 if reseated"
    );
    println!("networked and in-memory sessions agree bit for bit ✓");
}
