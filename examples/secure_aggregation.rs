//! Secure aggregation end to end: run the full SecAgg protocol (Figure 5,
//! including the XNoise stages) against the malicious threat model, with
//! clients dropping mid-protocol, and verify the server learns exactly
//! the noised sum — nothing more.
//!
//! ```sh
//! cargo run --release --example secure_aggregation
//! ```

use std::collections::BTreeMap;

use dordis_core::protocol::{run_protocol_round, ProtocolRoundConfig};
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::ThreatModel;
use dordis_xnoise::decomposition::XNoisePlan;

const BITS: u32 = 16;
const DIM: usize = 8;

fn main() {
    let n = 10u32;
    // Each client contributes a small vector; client i's vector is
    // [i+1, i+1, ...] so the expected sum is easy to eyeball.
    let updates: BTreeMap<u32, Vec<u64>> = (0..n)
        .map(|id| (id, vec![u64::from(id) + 1; DIM]))
        .collect();

    // XNoise plan: target central variance 25 (σ = 5), tolerance T = 4.
    let plan = XNoisePlan::new(25.0, n as usize, 4, 0, 6).unwrap();
    let cfg = ProtocolRoundConfig {
        round: 1,
        threshold: 6,
        bit_width: BITS,
        graph: MaskingGraph::Complete,
        threat_model: ThreatModel::Malicious,
        xnoise: Some(plan),
        chunks: Some(1),
        seed: 2024,
    };

    // Clients 3 and 7 vanish after key sharing, before uploading.
    let outcome = run_protocol_round(&cfg, &updates, &[3, 7]).expect("round should complete");

    let expected: u64 = (0..n)
        .filter(|id| outcome.survivors.contains(id))
        .map(|id| u64::from(id) + 1)
        .sum();
    println!("survivors: {:?}", outcome.survivors);
    println!("dropped:   {:?}", outcome.dropped);
    println!("\ncoordinate-wise: true sum = {expected}, server decoded:");
    let half = 1i64 << (BITS - 1);
    for (i, &v) in outcome.sum.iter().enumerate() {
        let mut centered = v as i64;
        if centered >= half {
            centered -= 1i64 << BITS;
        }
        let residual = centered - expected as i64;
        println!("  coord {i}: {centered} (residual noise {residual:+})");
    }
    println!("\nresidual noise has variance σ²∗ = 25 exactly (Theorem 1),");
    println!("despite 2 of 10 clients dropping mid-protocol.");

    println!("\nper-stage traffic:");
    for st in &outcome.stats.stages {
        println!(
            "  {:<24} up {:>8} B  down {:>8} B",
            st.stage, st.uplink_total, st.downlink_total
        );
    }
}
