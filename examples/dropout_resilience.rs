//! Dropout resilience: reproduce the core of the paper's Figure 8 and
//! Table 2 at demo scale.
//!
//! Runs the same federated task under `Orig` (the classic distributed-DP
//! noise split), `Early` (stop when the budget runs out), `Con5`
//! (conservative 50% dropout estimate) and `XNoise`, at several dropout
//! rates, and prints the realized privacy cost next to the final
//! accuracy.
//!
//! ```sh
//! cargo run --release --example dropout_resilience
//! ```

use dordis_core::config::{TaskSpec, Variant};
use dordis_core::trainer::train;
use dordis_sim::dropout::DropoutModel;

fn run(variant: Variant, dropout: f64, seed: u64) -> (f64, f64, u32) {
    let mut spec = TaskSpec::tiny_for_tests(seed);
    spec.rounds = 30;
    spec.dataset.samples = 1200;
    spec.variant = variant;
    spec.dropout = DropoutModel::FixedRate { rate: dropout };
    let report = train(&spec).expect("training should succeed");
    (
        report.epsilon_consumed,
        report.final_accuracy,
        report.rounds_completed,
    )
}

fn main() {
    let variants: [(&str, Variant); 4] = [
        ("Orig", Variant::Orig),
        ("Early", Variant::Early),
        ("Con5", Variant::Conservative { est_dropout: 0.5 }),
        (
            "XNoise",
            Variant::XNoise {
                tolerance_frac: 0.5,
                collusion_frac: 0.0,
            },
        ),
    ];
    println!("budget: ε = 6.0 — a scheme is dropout-resilient iff realized ε stays ≤ 6.0\n");
    println!(
        "{:<8} {:>8} {:>12} {:>10} {:>8}",
        "variant", "dropout", "realized ε", "accuracy", "rounds"
    );
    for &(name, variant) in &variants {
        for &dropout in &[0.0, 0.2, 0.4] {
            let (eps, acc, rounds) = run(variant, dropout, 11);
            let flag = if eps > 6.0 + 1e-9 {
                "  ← OVERRUN"
            } else {
                ""
            };
            println!(
                "{:<8} {:>7.0}% {:>12.2} {:>9.1}% {:>8}{}",
                name,
                dropout * 100.0,
                eps,
                acc * 100.0,
                rounds,
                flag
            );
        }
        println!();
    }
    println!("expected shape (paper Figs. 1 and 8, Table 2):");
    println!("  - Orig overruns the budget as dropout grows;");
    println!("  - Early stays on budget but trains fewer rounds (worse accuracy);");
    println!("  - Con5 wastes budget when dropout is lower than estimated;");
    println!("  - XNoise stays exactly on budget at full accuracy, at every rate.");
}
