//! Shape assertions for every system-performance result the paper
//! reports: these tests pin the *qualitative* claims (who wins, what
//! grows, where crossovers sit), so a regression in any model or
//! calibration that would silently change a figure fails loudly.

use dordis_bench::{fig10_scenarios, fig2_scenarios};
use dordis_core::timing::estimate;
use dordis_sim::cost::UnitCosts;
use dordis_xnoise::footprint::{
    default_tolerance, rebasing_extra_bytes, xnoise_extra_bytes, FootprintScenario, WireSizes,
};

#[test]
fn fig2_shape_aggregation_dominates_and_grows() {
    let units = UnitCosts::paper_testbed();
    let mut prev_secagg = 0.0;
    for s in fig2_scenarios() {
        let rt = estimate(&s, &units, 3);
        assert!(
            rt.agg_fraction() > 0.80,
            "{}: agg fraction {}",
            s.name,
            rt.agg_fraction()
        );
        // Round time grows with client count within each protocol.
        if s.name.starts_with("secagg/") && s.dp {
            assert!(rt.plain_total() > prev_secagg, "{} should grow", s.name);
            prev_secagg = rt.plain_total();
        }
    }
}

#[test]
fn fig2_shape_dp_adds_modest_cost() {
    let units = UnitCosts::paper_testbed();
    let scenarios = fig2_scenarios();
    for pair in scenarios.chunks(2) {
        let (nodp, dp) = (&pair[0], &pair[1]);
        assert!(!nodp.dp && dp.dp);
        let t_nodp = estimate(nodp, &units, 4).plain_total();
        let t_dp = estimate(dp, &units, 4).plain_total();
        assert!(t_dp > t_nodp, "{}: DP must cost something", dp.name);
        assert!(
            t_dp < 1.6 * t_nodp,
            "{}: DP overhead implausibly large",
            dp.name
        );
    }
}

#[test]
fn fig10_shape_pipeline_speedups() {
    let units = UnitCosts::paper_testbed();
    for rate in [0.0, 0.1, 0.2, 0.3] {
        for s in fig10_scenarios(rate) {
            let rt = estimate(&s, &units, 5);
            let speedup = rt.speedup();
            assert!(
                (1.0..=2.6).contains(&speedup),
                "{} at d={rate}: speedup {speedup}",
                s.name
            );
            // FEMNIST (100 clients) with the 11M model must gain
            // substantially (the paper's 1.7-2.0x regime; our calibration
            // spans ~1.3x at d=0 up to ~2.3x once dropout adds server
            // reconstruction work).
            if s.name.contains("femnist/resnet18") && s.name.contains("/secagg/") {
                assert!(speedup > 1.25, "{}: speedup {speedup}", s.name);
            }
        }
    }
}

#[test]
fn fig10_shape_xnoise_overhead_bounded_and_shrinking() {
    let units = UnitCosts::paper_testbed();
    for (base_name, xnoise_name) in [
        ("femnist/cnn-1M/secagg/orig", "femnist/cnn-1M/secagg/xnoise"),
        (
            "cifar10/resnet18-11M/secagg/orig",
            "cifar10/resnet18-11M/secagg/xnoise",
        ),
    ] {
        let overhead_at = |rate: f64| {
            let scenarios = fig10_scenarios(rate);
            let base = scenarios.iter().find(|s| s.name == base_name).unwrap();
            let with = scenarios.iter().find(|s| s.name == xnoise_name).unwrap();
            let t_base = estimate(base, &units, 6).plain_total();
            let t_with = estimate(with, &units, 6).plain_total();
            (t_with - t_base) / t_base
        };
        let o0 = overhead_at(0.0);
        let o30 = overhead_at(0.3);
        assert!(o0 > 0.0 && o0 < 0.45, "{base_name}: overhead {o0}");
        assert!(
            o30 < o0,
            "{base_name}: overhead should shrink ({o0} -> {o30})"
        );
    }
}

#[test]
fn fig10_shape_larger_models_gain_more() {
    let units = UnitCosts::paper_testbed();
    let scenarios = fig10_scenarios(0.1);
    let speedup_of = |name: &str| {
        let s = scenarios.iter().find(|s| s.name == name).unwrap();
        estimate(s, &units, 7).speedup()
    };
    let cnn = speedup_of("femnist/cnn-1M/secagg/orig");
    let resnet = speedup_of("femnist/resnet18-11M/secagg/orig");
    assert!(
        resnet > cnn * 0.95,
        "11M model should gain at least as much as 1M: {resnet} vs {cnn}"
    );
    let cifar_resnet = speedup_of("cifar10/resnet18-11M/secagg/orig");
    let cifar_vgg = speedup_of("cifar10/vgg19-20M/secagg/orig");
    assert!(
        cifar_vgg > cifar_resnet * 0.95,
        "20M model should gain at least as much as 11M: {cifar_vgg} vs {cifar_resnet}"
    );
}

#[test]
fn fig10_shape_secagg_plus_cheaper() {
    let units = UnitCosts::paper_testbed();
    let scenarios = fig10_scenarios(0.1);
    for s in &scenarios {
        if !s.name.contains("/secagg/") {
            continue;
        }
        let plus_name = s.name.replace("/secagg/", "/secagg+/");
        let plus = scenarios.iter().find(|x| x.name == plus_name).unwrap();
        let t_full = estimate(s, &units, 8).plain_total();
        let t_plus = estimate(plus, &units, 8).plain_total();
        assert!(t_plus < t_full, "{}: {t_plus} !< {t_full}", plus.name);
    }
}

#[test]
fn table3_shape_full_grid() {
    // XNoise: flat in model size, quadratic-ish in client count, mildly
    // decreasing in dropout. Rebasing: linear in model size.
    let w = WireSizes::default();
    for &n in &[100usize, 200, 300] {
        for &rate in &[0.0, 0.1, 0.2, 0.3] {
            let base = FootprintScenario {
                model_params: 5_000_000,
                sampled: n,
                dropout_rate: rate,
                tolerance: default_tolerance(n),
            };
            let x5 = xnoise_extra_bytes(&base, &w);
            let x500 = xnoise_extra_bytes(
                &FootprintScenario {
                    model_params: 500_000_000,
                    ..base
                },
                &w,
            );
            assert!((x5 - x500).abs() < 1e4, "xnoise must be size-invariant");
            let r5 = rebasing_extra_bytes(&base, &w);
            let r500 = rebasing_extra_bytes(
                &FootprintScenario {
                    model_params: 500_000_000,
                    ..base
                },
                &w,
            );
            assert!((r500 / r5 - 100.0).abs() < 1.0, "rebasing must scale x100");
            assert!(x5 < r5, "xnoise must beat rebasing at n={n} rate={rate}");
        }
    }
}
