//! Integration tests of the paper's headline privacy claim (Figures 1
//! and 8): across the full training stack, XNoise pins the realized ε to
//! the budget under any dropout rate, while every baseline either
//! overruns or wastes the budget.

use dordis_bench::{eval_tasks, with_variant, Scale};
use dordis_core::config::{TaskSpec, Variant};
use dordis_core::trainer::train;
use dordis_sim::dropout::DropoutModel;

const XNOISE: Variant = Variant::XNoise {
    tolerance_frac: 0.5,
    collusion_frac: 0.0,
};

fn tiny(seed: u64, rate: f64, variant: Variant) -> TaskSpec {
    let mut spec = TaskSpec::tiny_for_tests(seed);
    spec.rounds = 25;
    spec.variant = variant;
    spec.dropout = DropoutModel::FixedRate { rate };
    spec
}

#[test]
fn figure8_shape_epsilon_vs_dropout() {
    // Orig's realized ε must be monotone in the dropout rate and exceed
    // the budget for any positive rate; XNoise stays pinned at ε_G.
    let budget = 6.0;
    let mut prev_orig = 0.0;
    for rate in [0.0, 0.2, 0.4] {
        let orig = train(&tiny(21, rate, Variant::Orig)).unwrap();
        let xnoise = train(&tiny(21, rate, XNOISE)).unwrap();
        assert!(
            orig.epsilon_consumed >= prev_orig - 1e-9,
            "Orig ε must grow with dropout"
        );
        prev_orig = orig.epsilon_consumed;
        assert!(
            xnoise.epsilon_consumed <= budget + 1e-9,
            "XNoise ε {} at rate {rate}",
            xnoise.epsilon_consumed
        );
        if rate > 0.0 {
            assert!(
                orig.epsilon_consumed > budget,
                "Orig should overrun at rate {rate}: ε = {}",
                orig.epsilon_consumed
            );
        }
    }
}

#[test]
fn figure1_shape_naive_baselines() {
    // Under 25% dropout: Early stops early; Con8 underspends; Con2
    // overruns; XNoise lands within the budget while training the full
    // horizon.
    let rate = 0.25;
    let budget = 6.0;

    let early = train(&tiny(22, rate, Variant::Early)).unwrap();
    assert!(early.stopped_early || early.rounds_completed < 25);

    let con8 = train(&tiny(22, rate, Variant::Conservative { est_dropout: 0.8 })).unwrap();
    assert!(
        con8.epsilon_consumed < 0.75 * budget,
        "Con8 should waste budget: ε = {}",
        con8.epsilon_consumed
    );

    let con1 = train(&tiny(22, rate, Variant::Conservative { est_dropout: 0.1 })).unwrap();
    assert!(
        con1.epsilon_consumed > budget,
        "Con1 (underestimate) should overrun: ε = {}",
        con1.epsilon_consumed
    );

    let xnoise = train(&tiny(22, rate, XNOISE)).unwrap();
    assert_eq!(xnoise.rounds_completed, 25);
    assert!(xnoise.epsilon_consumed <= budget + 1e-9);
}

#[test]
fn table2_shape_xnoise_matches_orig_utility() {
    // XNoise must not cost accuracy relative to Orig: at zero dropout
    // both carry residual noise of exactly σ²∗ (verified separately by a
    // variance probe in the trainer tests); here we check that *training
    // outcomes* agree on average. DP training on small models is noisy,
    // so compare means over several seeds.
    let seeds = [5u64, 42, 123, 314];
    let mut orig_sum = 0.0;
    let mut xnoise_sum = 0.0;
    for &seed in &seeds {
        let mut task = eval_tasks(Scale::Quick, seed).remove(1); // cifar10-like
        task.rounds = 25;
        task.seed = seed;
        task.dropout = DropoutModel::FixedRate { rate: 0.2 };
        orig_sum += train(&with_variant(task.clone(), Variant::Orig))
            .unwrap()
            .final_accuracy;
        xnoise_sum += train(&with_variant(task, XNOISE)).unwrap().final_accuracy;
    }
    let k = seeds.len() as f64;
    let (orig, xnoise) = (orig_sum / k, xnoise_sum / k);
    let diff = (orig - xnoise).abs();
    assert!(
        diff < 0.12,
        "mean accuracy gap {diff} too large: orig {orig} vs xnoise {xnoise}"
    );
}

#[test]
fn beyond_tolerance_dropout_degrades_gracefully() {
    // With tolerance T = 25% but dropout 50%, XNoise cannot fully enforce
    // the level (noise stays insufficient) — but it must still do no
    // worse than Orig at the same rate.
    let mut spec = tiny(
        24,
        0.5,
        Variant::XNoise {
            tolerance_frac: 0.25,
            collusion_frac: 0.0,
        },
    );
    spec.rounds = 20;
    let xnoise = train(&spec).unwrap();
    let mut orig_spec = tiny(24, 0.5, Variant::Orig);
    orig_spec.rounds = 20;
    let orig = train(&orig_spec).unwrap();
    assert!(
        xnoise.epsilon_consumed <= orig.epsilon_consumed + 1e-9,
        "xnoise {} vs orig {}",
        xnoise.epsilon_consumed,
        orig.epsilon_consumed
    );
}

#[test]
fn collusion_tolerance_costs_only_inflation() {
    // With T_C > 0 the budget is still respected (noise is inflated, so
    // realized ε is *below* the target), and training still clears chance
    // accuracy on average (4 classes => chance 0.25).
    let mut acc = 0.0;
    for seed in [25u64, 77, 204] {
        let mut spec = tiny(
            seed,
            0.2,
            Variant::XNoise {
                tolerance_frac: 0.5,
                collusion_frac: 0.2,
            },
        );
        spec.rounds = 20;
        let report = train(&spec).unwrap();
        assert!(report.epsilon_consumed < 6.0);
        acc += report.final_accuracy;
    }
    let mean = acc / 3.0;
    assert!(mean > 0.3, "mean acc {mean}");
}
