//! Cross-crate integration: the full Dordis stack from model deltas to a
//! noised, decoded aggregate — semantic path vs protocol path, bit for
//! bit.

use std::collections::BTreeMap;

use dordis_core::protocol::{client_round_seed, run_protocol_round, ProtocolRoundConfig};
use dordis_dp::encoding::{add_mod, Encoder, EncodingConfig};
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::ThreatModel;
use dordis_xnoise::decomposition::XNoisePlan;
use dordis_xnoise::enforcement::{derive_component_seeds, perturb, remove_excess};

const BITS: u32 = 20;

fn encoding() -> EncodingConfig {
    EncodingConfig::default()
}

/// Builds encoded updates for `n` clients from synthetic float deltas.
fn encoded_updates(n: u32, dim: usize, rotation: [u8; 32]) -> BTreeMap<u32, Vec<u64>> {
    let cfg = encoding();
    let enc = Encoder::new(&cfg, rotation);
    (0..n)
        .map(|id| {
            let delta: Vec<f64> = (0..dim)
                .map(|i| ((id as f64 + 1.0) * 0.01 * ((i as f64) * 0.3).sin()) * 0.1)
                .collect();
            let seed = [id as u8 + 50; 32];
            (id, enc.encode(&delta, &seed).unwrap())
        })
        .collect()
}

/// The semantic reference: perturb each survivor, modular-sum, remove.
fn semantic_aggregate(
    updates: &BTreeMap<u32, Vec<u64>>,
    survivors: &[u32],
    plan: &XNoisePlan,
    run_seed: u64,
    round: u64,
) -> Vec<u64> {
    let mut sum: Option<Vec<u64>> = None;
    let mut removal = Vec::new();
    let dropped = plan.clients - survivors.len();
    for &id in survivors {
        let mut v = updates[&id].clone();
        let seeds = derive_component_seeds(
            &client_round_seed(run_seed, round, id),
            plan.dropout_tolerance,
        );
        perturb(&mut v, &seeds, plan, BITS).unwrap();
        for k in (dropped + 1)..=plan.dropout_tolerance {
            removal.push((id, k, seeds[k]));
        }
        sum = Some(match sum {
            None => v,
            Some(acc) => add_mod(&acc, &v, BITS),
        });
    }
    let mut sum = sum.unwrap();
    remove_excess(&mut sum, &removal, survivors, plan, BITS).unwrap();
    sum
}

#[test]
fn protocol_path_matches_semantic_path_bit_for_bit() {
    let n = 8u32;
    let dim = 40usize;
    let updates = encoded_updates(n, dim, [9u8; 32]);
    let plan = XNoisePlan::new(400.0, n as usize, 3, 0, 5).unwrap();
    let cfg = ProtocolRoundConfig {
        round: 4,
        threshold: 5,
        bit_width: BITS,
        graph: MaskingGraph::Complete,
        threat_model: ThreatModel::SemiHonest,
        xnoise: Some(plan),
        chunks: Some(1),
        seed: 777,
    };
    let outcome = run_protocol_round(&cfg, &updates, &[1, 6]).unwrap();
    let semantic = semantic_aggregate(&updates, &outcome.survivors, &plan, 777, 4);
    assert_eq!(outcome.sum, semantic, "masking must cancel exactly");
}

#[test]
fn protocol_path_matches_semantic_under_secagg_plus() {
    let n = 12u32;
    let dim = 24usize;
    let updates = encoded_updates(n, dim, [4u8; 32]);
    let plan = XNoisePlan::new(100.0, n as usize, 2, 0, 7).unwrap();
    let cfg = ProtocolRoundConfig {
        round: 9,
        threshold: 7,
        bit_width: BITS,
        graph: MaskingGraph::harary_for(12),
        threat_model: ThreatModel::SemiHonest,
        xnoise: Some(plan),
        chunks: Some(1),
        seed: 31,
    };
    let outcome = run_protocol_round(&cfg, &updates, &[0]).unwrap();
    let semantic = semantic_aggregate(&updates, &outcome.survivors, &plan, 31, 9);
    assert_eq!(outcome.sum, semantic);
}

#[test]
fn decoded_aggregate_approximates_true_mean() {
    // Whole pipeline including decode: the noised mean should be close to
    // the true mean of the client deltas (noise is scaled to be small
    // relative to the signal here).
    let n = 8u32;
    let dim = 40usize;
    let cfg_enc = encoding();
    let rotation = [6u8; 32];
    let enc = Encoder::new(&cfg_enc, rotation);
    let deltas: Vec<Vec<f64>> = (0..n)
        .map(|id| {
            (0..dim)
                .map(|i| 0.05 * ((id as f64 + 1.0) * (i as f64 + 1.0) * 0.07).cos())
                .collect()
        })
        .collect();
    let updates: BTreeMap<u32, Vec<u64>> = deltas
        .iter()
        .enumerate()
        .map(|(id, d)| (id as u32, enc.encode(d, &[id as u8 + 80; 32]).unwrap()))
        .collect();
    let plan = XNoisePlan::new(16.0, n as usize, 3, 0, 5).unwrap();
    let cfg = ProtocolRoundConfig {
        round: 2,
        threshold: 5,
        bit_width: BITS,
        graph: MaskingGraph::Complete,
        threat_model: ThreatModel::SemiHonest,
        xnoise: Some(plan),
        chunks: Some(1),
        seed: 55,
    };
    let outcome = run_protocol_round(&cfg, &updates, &[]).unwrap();
    let decoded = enc.decode(&outcome.sum, dim);
    for (i, d) in decoded.iter().enumerate() {
        let truth: f64 = deltas.iter().map(|v| v[i]).sum();
        // Noise std is 4 in the integer domain, /gamma in the real domain.
        assert!(
            (d - truth).abs() < 6.0 * 4.0 / cfg_enc.gamma + 0.1,
            "coord {i}: {d} vs {truth}"
        );
    }
}

#[test]
fn malicious_protocol_with_xnoise_and_dropout_end_to_end() {
    let n = 9u32;
    let dim = 16usize;
    let updates = encoded_updates(n, dim, [2u8; 32]);
    let plan = XNoisePlan::new(64.0, n as usize, 3, 1, 6).unwrap();
    let cfg = ProtocolRoundConfig {
        round: 12,
        threshold: 6,
        bit_width: BITS,
        graph: MaskingGraph::Complete,
        threat_model: ThreatModel::Malicious,
        xnoise: Some(plan),
        chunks: Some(1),
        seed: 1234,
    };
    let outcome = run_protocol_round(&cfg, &updates, &[4, 8]).unwrap();
    assert_eq!(outcome.dropped, vec![4, 8]);
    // With T_C = 1 the residual noise is inflated by t/(t-T_C) = 1.2 —
    // never *below* target, per Theorem 2.
    assert!(plan.inflation() > 1.19 && plan.inflation() < 1.21);
    assert!(outcome.stats.stage("ConsistencyCheck").is_some());
}
