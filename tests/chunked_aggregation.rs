//! Pipelining correctness: Dordis splits the model into `m` chunks and
//! runs an independent aggregation task per chunk (§4.1). Aggregation is
//! coordinate-wise, so the concatenation of per-chunk results must equal
//! the whole-vector result — this is the property that makes the pipeline
//! architecture *correct*, complementing the timing model that makes it
//! *fast*.

use std::collections::BTreeMap;

use dordis_core::protocol::{run_protocol_round, ProtocolRoundConfig};
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::ThreatModel;

const BITS: u32 = 16;
const DIM: usize = 24;
const N: u32 = 6;

fn updates() -> BTreeMap<u32, Vec<u64>> {
    (0..N)
        .map(|id| {
            (
                id,
                (0..DIM)
                    .map(|i| ((u64::from(id) + 3) * 41 + i as u64 * 7) % (1 << BITS))
                    .collect(),
            )
        })
        .collect()
}

fn config(round: u64) -> ProtocolRoundConfig {
    ProtocolRoundConfig {
        round,
        threshold: 4,
        bit_width: BITS,
        graph: MaskingGraph::Complete,
        threat_model: ThreatModel::SemiHonest,
        xnoise: None,
        chunks: Some(1),
        seed: 11,
    }
}

#[test]
fn chunked_rounds_concatenate_to_the_whole() {
    let ups = updates();
    // Whole-vector aggregation.
    let whole = run_protocol_round(&config(1), &ups, &[]).unwrap();

    // Chunked: m = 3 chunks of 8 coordinates, each its own protocol round
    // (distinct round ids, like Dordis's chunk-aggregation tasks).
    let m = 3;
    let chunk_len = DIM / m;
    let mut reassembled = Vec::with_capacity(DIM);
    for c in 0..m {
        let chunk_updates: BTreeMap<u32, Vec<u64>> = ups
            .iter()
            .map(|(&id, v)| (id, v[c * chunk_len..(c + 1) * chunk_len].to_vec()))
            .collect();
        let out = run_protocol_round(&config(100 + c as u64), &chunk_updates, &[]).unwrap();
        assert_eq!(out.survivors.len(), N as usize);
        reassembled.extend(out.sum);
    }
    assert_eq!(reassembled, whole.sum);
}

#[test]
fn chunked_rounds_with_dropout_stay_consistent() {
    // The same clients drop in every chunk task (in the real system a
    // dropped client misses all of its chunk uploads).
    let ups = updates();
    let dropped = [2u32, 5];
    let whole = run_protocol_round(&config(2), &ups, &dropped).unwrap();
    let m = 4;
    let chunk_len = DIM / m;
    let mut reassembled = Vec::with_capacity(DIM);
    for c in 0..m {
        let chunk_updates: BTreeMap<u32, Vec<u64>> = ups
            .iter()
            .map(|(&id, v)| (id, v[c * chunk_len..(c + 1) * chunk_len].to_vec()))
            .collect();
        let out = run_protocol_round(&config(200 + c as u64), &chunk_updates, &dropped).unwrap();
        assert_eq!(out.dropped, dropped.to_vec());
        reassembled.extend(out.sum);
    }
    assert_eq!(reassembled, whole.sum);
}

#[test]
fn uneven_final_chunk_is_fine() {
    // DIM = 24 split as 10 + 10 + 4.
    let ups = updates();
    let whole = run_protocol_round(&config(3), &ups, &[]).unwrap();
    let bounds = [(0usize, 10usize), (10, 20), (20, 24)];
    let mut reassembled = Vec::with_capacity(DIM);
    for (i, (lo, hi)) in bounds.iter().enumerate() {
        let chunk_updates: BTreeMap<u32, Vec<u64>> = ups
            .iter()
            .map(|(&id, v)| (id, v[*lo..*hi].to_vec()))
            .collect();
        let out = run_protocol_round(&config(300 + i as u64), &chunk_updates, &[]).unwrap();
        reassembled.extend(out.sum);
    }
    assert_eq!(reassembled, whole.sum);
}
