//! The acceptance demo as a test: real `dordis serve` and `dordis join`
//! *processes* complete a SecAgg+ round over TCP on localhost with one
//! client killed mid-round, and the server reports the correct survivor
//! aggregate (verified against the deterministic demo updates).

use std::io::{BufRead, BufReader, Read};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_dordis");

fn wait_with_timeout(child: &mut Child, timeout: Duration, what: &str) {
    let deadline = Instant::now() + timeout;
    loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "{what} exited with {status}");
                return;
            }
            None if Instant::now() >= deadline => {
                let _ = child.kill();
                panic!("{what} did not finish within {timeout:?}");
            }
            None => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

#[test]
fn two_process_round_with_killed_client() {
    let mut serve = Command::new(BIN)
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--clients",
            "5",
            "--threshold",
            "3",
            "--dim",
            "16",
            "--bits",
            "20",
            "--graph",
            "harary",
            "--noise-components",
            "2",
            "--stage-timeout-ms",
            "6000",
            "--join-timeout-ms",
            "20000",
            "--verify-demo",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");

    // The first stdout line announces the bound address.
    let mut stdout = BufReader::new(serve.stdout.take().expect("stdout"));
    let mut first = String::new();
    stdout.read_line(&mut first).expect("read listen line");
    let addr = first
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected serve banner: {first:?}"))
        .to_string();

    // Four well-behaved clients...
    let mut joins: Vec<Child> = [0u32, 1, 3, 4]
        .iter()
        .map(|id| {
            Command::new(BIN)
                .args(["join", "--connect", &addr, "--id", &id.to_string()])
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn join")
        })
        .collect();

    // ...and a victim that goes silent before its masked input, which the
    // test then genuinely kills mid-round (SIGKILL, no cleanup).
    let mut victim = Command::new(BIN)
        .args([
            "join",
            "--connect",
            &addr,
            "--id",
            "2",
            "--drop-at",
            "masked-input",
            "--drop-mode",
            "silent",
            "--timeout-ms",
            "60000",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn victim");
    std::thread::sleep(Duration::from_millis(400));
    victim.kill().expect("kill victim");
    let _ = victim.wait();

    // The round must still complete, without the victim.
    for (i, j) in joins.iter_mut().enumerate() {
        wait_with_timeout(j, Duration::from_secs(60), &format!("join #{i}"));
    }
    wait_with_timeout(&mut serve, Duration::from_secs(60), "serve");

    let mut out = first;
    stdout.read_to_string(&mut out).expect("read serve output");
    let mut err = String::new();
    serve
        .stderr
        .take()
        .expect("stderr")
        .read_to_string(&mut err)
        .expect("read serve stderr");

    assert!(
        out.contains("dropped:   [2]"),
        "server must report client 2 dropped; output:\n{out}\n{err}"
    );
    assert!(
        out.contains("demo verification: OK"),
        "survivor aggregate must verify; output:\n{out}\n{err}"
    );
    assert!(
        out.contains("detected:  client 2"),
        "dropout must be detected, not scripted; output:\n{out}"
    );
}
