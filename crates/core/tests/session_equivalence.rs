//! Session-level equivalence: a multi-round networked FL session —
//! persistent connections, per-round VRF resampling, one mid-stream
//! dropout and one rejoin per round — produces per-round aggregates
//! bit-equal to the in-memory driver path, and the identical
//! `TrainingReport`, under both collection engines.

use dordis_core::config::TaskSpec;
use dordis_core::sampling::SamplingConfig;
use dordis_core::session::{
    planned_cohorts, train_session, train_session_networked, FlSessionOptions, FlSessionReport,
    MidStreamDrop,
};
use dordis_net::coordinator::CollectMode;

const ROUNDS: u32 = 5;

fn spec() -> TaskSpec {
    TaskSpec::tiny_for_tests(20_240_517)
}

fn opts(mode: CollectMode) -> FlSessionOptions {
    let spec = spec();
    let mut opts = FlSessionOptions::new(
        ROUNDS,
        SamplingConfig {
            target_sample: 8,
            population: spec.population,
            over_selection: 1.5,
        },
    );
    opts.mode = mode;
    opts
}

/// One scripted mid-stream dropout per round: the last seated cohort
/// member sends one chunk frame, then disconnects (and, networked,
/// reconnects to re-join the next round).
fn with_droppers(mut o: FlSessionOptions) -> FlSessionOptions {
    let cohorts = planned_cohorts(&spec(), &o);
    o.droppers = cohorts
        .iter()
        .enumerate()
        .map(|(i, cohort)| MidStreamDrop {
            round: i as u32,
            client: *cohort.last().expect("non-empty cohort"),
            after_chunks: 1,
        })
        .collect();
    o
}

fn assert_reports_equal(net: &FlSessionReport, mem: &FlSessionReport, label: &str) {
    assert_eq!(net.rounds.len(), mem.rounds.len(), "{label}: round count");
    for (n, m) in net.rounds.iter().zip(mem.rounds.iter()) {
        assert_eq!(n.cohort, m.cohort, "{label}: cohort r{}", n.round);
        assert_eq!(n.survivors, m.survivors, "{label}: survivors r{}", n.round);
        assert_eq!(n.dropped, m.dropped, "{label}: dropped r{}", n.round);
        assert_eq!(
            n.sum, m.sum,
            "{label}: aggregate not bit-equal r{}",
            n.round
        );
    }
    assert_eq!(
        net.training.rounds_completed, mem.training.rounds_completed,
        "{label}: rounds completed"
    );
    for (n, m) in net.training.records.iter().zip(mem.training.records.iter()) {
        assert_eq!(n.round, m.round, "{label}");
        assert_eq!(n.dropped, m.dropped, "{label}: dropped count r{}", n.round);
        assert_eq!(
            n.achieved_multiplier, m.achieved_multiplier,
            "{label}: achieved multiplier r{}",
            n.round
        );
        assert_eq!(n.epsilon, m.epsilon, "{label}: epsilon r{}", n.round);
        assert_eq!(n.accuracy, m.accuracy, "{label}: accuracy r{}", n.round);
        assert_eq!(
            n.perplexity, m.perplexity,
            "{label}: perplexity r{}",
            n.round
        );
    }
    assert_eq!(
        net.training.epsilon_consumed, mem.training.epsilon_consumed,
        "{label}: epsilon"
    );
    assert_eq!(
        net.training.final_accuracy, mem.training.final_accuracy,
        "{label}: final accuracy"
    );
}

#[test]
fn session_cohorts_resample_across_rounds() {
    let cohorts = planned_cohorts(&spec(), &opts(CollectMode::Reactor));
    assert_eq!(cohorts.len(), ROUNDS as usize);
    for cohort in &cohorts {
        assert!(cohort.len() >= 4, "cohort too small: {cohort:?}");
        assert!(cohort.len() <= 8, "trim exceeded target: {cohort:?}");
    }
    // Per-round VRF resampling actually changes the cohort.
    assert!(
        cohorts.windows(2).any(|w| w[0] != w[1]),
        "cohorts identical across all rounds"
    );
}

/// The acceptance pin: a 5-round networked session on one reactor
/// thread, per-round VRF resampling, one mid-stream dropout per round
/// and one rejoin, bit-equal to the in-memory driver path.
#[test]
fn networked_session_with_dropout_and_rejoin_matches_in_memory_reactor() {
    let o = with_droppers(opts(CollectMode::Reactor));
    let mem = train_session(&spec(), &o).expect("in-memory session");
    // Every round lost exactly its scripted dropper...
    for (i, round) in mem.rounds.iter().enumerate() {
        assert_eq!(round.dropped.len(), 1, "round {i} should drop one client");
        assert_eq!(round.dropped[0], o.droppers[i].client);
    }
    // ...and a client dropped in round r is seated again in a later
    // round (the rejoin the workload is defined by).
    let rejoined = mem.rounds.iter().enumerate().any(|(i, round)| {
        mem.rounds[i + 1..]
            .iter()
            .any(|later| later.survivors.contains(&round.dropped[0]))
    });
    assert!(rejoined, "no dropped client was ever reseated");

    let net = train_session_networked(&spec(), &o).expect("networked session");
    assert_reports_equal(&net, &mem, "reactor");
}

#[test]
fn networked_session_with_dropout_and_rejoin_matches_in_memory_sweep() {
    let o = with_droppers(opts(CollectMode::PollSweep));
    let mem = train_session(&spec(), &o).expect("in-memory session");
    let net = train_session_networked(&spec(), &o).expect("networked session");
    assert_reports_equal(&net, &mem, "sweep");
}

/// Pooled unmasking (the dordis-compute worker plane) across the full
/// session stack — VRF resampling, XNoise encoding, dropout recovery,
/// FedAvg — must stay bit-equal to the serial in-memory reference.
#[test]
fn networked_session_pooled_unmask_matches_in_memory() {
    let mut o = with_droppers(opts(CollectMode::Reactor));
    o.workers = 2;
    let mem = train_session(&spec(), &o).expect("in-memory session");
    let net = train_session_networked(&spec(), &o).expect("networked session");
    assert_reports_equal(&net, &mem, "reactor+pooled");

    let mut o = with_droppers(opts(CollectMode::PollSweep));
    o.workers = 2;
    let net = train_session_networked(&spec(), &o).expect("networked session");
    assert_reports_equal(&net, &mem, "sweep+pooled");
}

#[test]
fn clean_session_matches_in_memory() {
    // No dropouts: the pure resampling + persistent-connection path.
    let o = opts(CollectMode::Reactor);
    let mem = train_session(&spec(), &o).expect("in-memory session");
    for round in &mem.rounds {
        assert!(round.dropped.is_empty());
    }
    let net = train_session_networked(&spec(), &o).expect("networked session");
    assert_reports_equal(&net, &mem, "clean");
    assert!(net.training.epsilon_consumed > 0.0);
}
