//! Coordinator crash recovery: a replicated networked session — primary
//! shipping round-boundary checkpoints to a backup, clients redialing
//! with jittered backoff — killed at every scripted [`KillPoint`] must
//! finish on the backup with a `TrainingReport` bit-equal to the
//! uninterrupted in-memory reference: same per-round aggregates, same
//! `epsilon_consumed` (no round lost from or double-counted in the
//! privacy ledger), same final model.

use dordis_core::config::TaskSpec;
use dordis_core::sampling::SamplingConfig;
use dordis_core::session::{
    train_session, train_session_networked_failover, CrashSpec, FlSessionOptions, FlSessionReport,
};
use dordis_net::faults::KillPoint;

const ROUNDS: u32 = 4;

fn spec() -> TaskSpec {
    TaskSpec::tiny_for_tests(20_240_517)
}

fn opts() -> FlSessionOptions {
    let spec = spec();
    FlSessionOptions::new(
        ROUNDS,
        SamplingConfig {
            target_sample: 8,
            population: spec.population,
            over_selection: 1.5,
        },
    )
}

fn assert_reports_equal(got: &FlSessionReport, want: &FlSessionReport, label: &str) {
    assert_eq!(got.rounds.len(), want.rounds.len(), "{label}: round count");
    for (g, w) in got.rounds.iter().zip(want.rounds.iter()) {
        assert_eq!(g.round, w.round, "{label}: round index");
        assert_eq!(g.cohort, w.cohort, "{label}: cohort r{}", g.round);
        assert_eq!(g.survivors, w.survivors, "{label}: survivors r{}", g.round);
        assert_eq!(
            g.sum, w.sum,
            "{label}: aggregate not bit-equal r{}",
            g.round
        );
    }
    // The records are the ledger's audit trail: one entry per round,
    // strictly increasing indexes — a double-recorded round after
    // failover would show up right here.
    let indexes: Vec<u32> = got.training.records.iter().map(|r| r.round).collect();
    assert_eq!(
        indexes,
        (0..ROUNDS).collect::<Vec<_>>(),
        "{label}: record per round, none lost, none doubled"
    );
    for (g, w) in got
        .training
        .records
        .iter()
        .zip(want.training.records.iter())
    {
        assert_eq!(g.epsilon, w.epsilon, "{label}: epsilon r{}", g.round);
        assert_eq!(
            g.achieved_multiplier, w.achieved_multiplier,
            "{label}: achieved multiplier r{}",
            g.round
        );
        assert_eq!(g.accuracy, w.accuracy, "{label}: accuracy r{}", g.round);
    }
    assert_eq!(
        got.training.epsilon_consumed, want.training.epsilon_consumed,
        "{label}: epsilon consumed not bit-equal"
    );
    assert_eq!(
        got.training.final_accuracy, want.training.final_accuracy,
        "{label}: final accuracy"
    );
    assert_eq!(
        got.training.final_perplexity, want.training.final_perplexity,
        "{label}: final perplexity"
    );
}

/// Replication enabled, no crash: every round gated on the backup's
/// ack, clean retirement — still bit-equal to the unreplicated
/// reference (the checkpoint plane must not perturb the protocol).
#[test]
fn replicated_session_without_crash_matches_reference() {
    let o = opts();
    let want = train_session(&spec(), &o).expect("reference session");
    let got = train_session_networked_failover(&spec(), &o, None).expect("replicated session");
    assert_reports_equal(&got, &want, "replicated-no-crash");
}

/// SIGKILL mid-masked-stage: the crashed round never reached a
/// checkpoint, so the successor re-runs it from the committed prefix —
/// same VRF cohort, seeds, and global model ⇒ bit-equal aggregate.
#[test]
fn kill_mid_masked_stage_recovers_bit_equal() {
    let o = opts();
    let want = train_session(&spec(), &o).expect("reference session");
    let got = train_session_networked_failover(
        &spec(),
        &o,
        Some(CrashSpec {
            round: 2,
            point: KillPoint::MidMaskedStage,
        }),
    )
    .expect("failover session");
    assert_reports_equal(&got, &want, "mid-masked-stage");
}

/// SIGKILL during the Setup broadcast: clients already hold round r's
/// model when the primary dies; they must abandon it, redial, and
/// re-run r on the successor.
#[test]
fn kill_during_broadcast_recovers_bit_equal() {
    let o = opts();
    let want = train_session(&spec(), &o).expect("reference session");
    let got = train_session_networked_failover(
        &spec(),
        &o,
        Some(CrashSpec {
            round: 1,
            point: KillPoint::DuringBroadcast,
        }),
    )
    .expect("failover session");
    assert_reports_equal(&got, &want, "during-broadcast");
}

/// SIGKILL between the backup's ack and the primary's commit — the
/// nastiest window: the backup already holds round r, so the successor
/// must resume *past* it, and the ledger's watermark must reject any
/// attempt to record r again.
#[test]
fn kill_between_ack_and_commit_recovers_bit_equal() {
    let o = opts();
    let want = train_session(&spec(), &o).expect("reference session");
    let got = train_session_networked_failover(
        &spec(),
        &o,
        Some(CrashSpec {
            round: 2,
            point: KillPoint::BetweenAckAndCommit,
        }),
    )
    .expect("failover session");
    assert_reports_equal(&got, &want, "between-ack-and-commit");
}

/// A crash in round 0, before any checkpoint exists: the takeover
/// carries no state and the successor starts the session from scratch.
#[test]
fn kill_before_first_checkpoint_restarts_from_scratch() {
    let o = opts();
    let want = train_session(&spec(), &o).expect("reference session");
    let got = train_session_networked_failover(
        &spec(),
        &o,
        Some(CrashSpec {
            round: 0,
            point: KillPoint::MidMaskedStage,
        }),
    )
    .expect("failover session");
    assert_reports_equal(&got, &want, "first-round-crash");
}
