//! The semantic training loop: federated training under distributed DP
//! with every variant from the paper's evaluation.
//!
//! This path performs the exact DP-relevant computation — clipping,
//! DSkellam encoding, per-client Skellam noise (decomposed for XNoise),
//! modular aggregation over survivors, server-side excess removal,
//! decoding, FedAvg — while skipping the masking crypto, whose
//! correctness (masks cancel exactly) is verified separately by the
//! protocol tests in `dordis-secagg` and [`crate::protocol`]. The privacy
//! ledger records the *achieved* central noise level of every released
//! aggregate, reproducing Figures 1, 8, 9 and Table 2.

use dordis_crypto::prg::{Prg, Seed};
use dordis_dp::accountant::Mechanism;
use dordis_dp::encoding::{add_mod, Encoder};
use dordis_dp::ledger::PrivacyLedger;
use dordis_dp::mechanism::skellam_vector;
use dordis_dp::planner::{plan, PlannerConfig};
use dordis_fl::data::{dirichlet_partition, synthetic_classification, train_test_split, Dataset};
use dordis_fl::eval::{accuracy, perplexity};
use dordis_fl::fedavg::{apply_update, local_train, LocalTrainConfig};
use dordis_fl::model::{Linear, Mlp, Model};
use dordis_fl::optim::{AdamW, Optimizer, Sgd};
use dordis_fl::tensor::clip_l2;
use dordis_xnoise::decomposition::XNoisePlan;
use dordis_xnoise::enforcement::{derive_component_seeds, perturb, remove_excess};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::config::{ModelSpec, OptimizerSpec, TaskSpec, Variant};
use crate::DordisError;

/// Per-round training record.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round index (0-based).
    pub round: u32,
    /// Realized ε after this round (0 for non-private runs).
    pub epsilon: f64,
    /// Clients that dropped this round.
    pub dropped: usize,
    /// Central noise multiplier the released aggregate carried.
    pub achieved_multiplier: f64,
    /// Test accuracy, if evaluated this round.
    pub accuracy: Option<f64>,
    /// Test perplexity, if evaluated this round.
    pub perplexity: Option<f64>,
}

/// Result of a training run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Task name.
    pub task: String,
    /// Per-round records.
    pub records: Vec<RoundRecord>,
    /// Rounds actually completed (less than planned for `Early`).
    pub rounds_completed: u32,
    /// Total realized ε (0 for non-private).
    pub epsilon_consumed: f64,
    /// Final test accuracy.
    pub final_accuracy: f64,
    /// Final test perplexity.
    pub final_perplexity: f64,
    /// Whether the run stopped before the planned horizon.
    pub stopped_early: bool,
}

pub(crate) fn build_model(spec: &TaskSpec, data: &Dataset) -> Box<dyn Model> {
    match spec.model {
        ModelSpec::Linear => Box::new(Linear::new(data.dim(), data.num_classes)),
        ModelSpec::Mlp { hidden } => {
            Box::new(Mlp::new(data.dim(), hidden, data.num_classes, spec.seed))
        }
    }
}

pub(crate) fn build_optimizer(spec: &TaskSpec) -> Box<dyn Optimizer> {
    match spec.optimizer {
        OptimizerSpec::Sgd { lr, momentum } => Box::new(Sgd::new(lr, momentum)),
        OptimizerSpec::AdamW { lr, weight_decay } => Box::new(AdamW::new(lr, weight_decay)),
    }
}

pub(crate) fn master_seed(spec: &TaskSpec) -> Seed {
    let mut s = [0u8; 32];
    s[..8].copy_from_slice(&spec.seed.to_le_bytes());
    s[8..12].copy_from_slice(&(spec.name.len() as u32).to_le_bytes());
    s
}

/// One client's clipped local-training delta for one round — the
/// client-side semantic step both the in-memory trainer and the
/// networked session trainer run. `client_key` keys the local-training
/// RNG (the client's population index on every path, so the same
/// `(round, client)` pair yields the same delta everywhere).
#[allow(clippy::too_many_arguments)]
pub(crate) fn clipped_local_delta(
    spec: &TaskSpec,
    model: &mut dyn Model,
    opt: &mut dyn Optimizer,
    global: &[f32],
    train_set: &Dataset,
    shard_idx: &[usize],
    round: u32,
    client_key: u64,
) -> Vec<f32> {
    let shard = train_set.subset(shard_idx);
    let update = local_train(
        model,
        global,
        &shard,
        opt,
        &LocalTrainConfig {
            epochs: spec.local_epochs,
            batch_size: spec.batch_size,
            seed: spec.seed ^ (u64::from(round) << 16) ^ client_key,
        },
    );
    let mut delta = update.delta;
    clip_l2(&mut delta, spec.privacy.clip as f32);
    delta
}

/// The central noise multiplier a released aggregate actually carries,
/// per variant (the quantity the privacy ledger records, Figures 8/9).
pub(crate) fn achieved_noise_multiplier(
    variant: Variant,
    z_star: f64,
    target_variance: f64,
    n: usize,
    surv: usize,
    xnoise_plan: Option<&XNoisePlan>,
) -> f64 {
    match variant {
        Variant::Orig | Variant::Early => z_star * (surv as f64 / n as f64).sqrt(),
        Variant::Conservative { est_dropout } => {
            z_star * (surv as f64 / ((n as f64) * (1.0 - est_dropout))).sqrt()
        }
        Variant::XNoise { .. } => {
            let plan = xnoise_plan.expect("xnoise plan built");
            if n - surv <= plan.dropout_tolerance {
                z_star * plan.inflation().sqrt()
            } else {
                // Beyond tolerance: all added noise stays, but it is
                // still below target.
                let residual = surv as f64 * plan.per_client_variance();
                z_star * (residual / target_variance).sqrt()
            }
        }
        Variant::NonPrivate => 0.0,
    }
}

/// Runs a full training task and reports utility and privacy.
///
/// # Errors
///
/// Fails on invalid configuration or infeasible privacy budgets.
pub fn train(spec: &TaskSpec) -> Result<TrainingReport, DordisError> {
    spec.validate().map_err(DordisError::Config)?;
    let data = synthetic_classification(&spec.dataset);
    let (train_set, test_set) = train_test_split(&data, spec.test_fraction);
    let shards = dirichlet_partition(&train_set, spec.population, spec.dirichlet_alpha, spec.seed);
    let mut model = build_model(spec, &data);
    let dim = model.num_params();
    let n = spec.sampled_per_round;
    let enc_cfg = &spec.privacy.encoding;
    let root = master_seed(spec);

    // Offline planning (skipped for the non-private baseline).
    let dp = spec.variant != Variant::NonPrivate;
    let mechanism = Mechanism::Skellam {
        l1_per_l2: enc_cfg.l1_per_l2(dim),
    };
    let (z_star, target_variance, mut ledger) = if dp {
        let noise_plan = plan(&PlannerConfig {
            epsilon: spec.privacy.epsilon,
            delta: spec.privacy.delta,
            rounds: spec.rounds,
            sample_rate: spec.sample_rate(),
            mechanism,
        })?;
        let delta2 = enc_cfg.l2_sensitivity(dim);
        let sigma = noise_plan.noise_multiplier * delta2;
        let ledger = PrivacyLedger::new(mechanism, spec.privacy.epsilon, spec.privacy.delta)?;
        (noise_plan.noise_multiplier, sigma * sigma, Some(ledger))
    } else {
        (0.0, 0.0, None)
    };

    // XNoise static plan.
    let xnoise_plan = if let Variant::XNoise {
        tolerance_frac,
        collusion_frac,
    } = spec.variant
    {
        let tolerance = ((n as f64) * tolerance_frac).floor() as usize;
        let threshold = n / 2 + 1;
        let collusion = ((threshold as f64) * collusion_frac).floor() as usize;
        Some(XNoisePlan::new(
            target_variance,
            n,
            tolerance.min(n - 1),
            collusion,
            threshold,
        )?)
    } else {
        None
    };

    let mut global = model.params();
    let mut records = Vec::new();
    let mut stopped_early = false;
    let mut rounds_completed = 0u32;

    for round in 0..spec.rounds {
        if spec.variant == Variant::Early {
            if let Some(ledger) = &ledger {
                if ledger.exhausted() {
                    stopped_early = true;
                    break;
                }
            }
        }

        // Client sampling.
        let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed ^ (u64::from(round) << 32));
        let mut pool: Vec<usize> = (0..spec.population).collect();
        pool.shuffle(&mut rng);
        let sampled: Vec<usize> = pool[..n].to_vec();

        // Dropout outcome (the paper's model: after sampling, before
        // reporting the masked update).
        let dropped_pos = spec
            .dropout
            .sample_dropouts(round as usize, n, None, spec.seed ^ 0xd409);
        let survivors: Vec<usize> = (0..n).filter(|i| !dropped_pos.contains(i)).collect();
        if survivors.is_empty() {
            // Nothing aggregated this round; nothing released either.
            records.push(RoundRecord {
                round,
                epsilon: ledger.as_ref().map_or(0.0, PrivacyLedger::realized_epsilon),
                dropped: dropped_pos.len(),
                achieved_multiplier: 0.0,
                accuracy: None,
                perplexity: None,
            });
            rounds_completed += 1;
            continue;
        }

        // Local training for surviving clients (dropped clients' work is
        // lost, so we skip computing it). Clients are independent, so
        // train them in parallel with per-thread model/optimizer clones.
        let rotation_seed = Prg::fork(&root, b"rotation", u64::from(round));
        let encoder = Encoder::new(enc_cfg, rotation_seed);
        let updates_f32: Vec<Vec<f32>> = std::thread::scope(|scope| {
            let workers = std::thread::available_parallelism()
                .map_or(4, std::num::NonZeroUsize::get)
                .min(survivors.len().max(1));
            let chunk = survivors.len().div_ceil(workers);
            let mut handles = Vec::new();
            for part in survivors.chunks(chunk.max(1)) {
                let mut local_model = model.clone_box();
                let mut local_opt = build_optimizer(spec);
                let global = &global;
                let train_set = &train_set;
                let shards = &shards;
                let sampled = &sampled;
                handles.push(scope.spawn(move || {
                    part.iter()
                        .map(|&pos| {
                            let client = sampled[pos];
                            clipped_local_delta(
                                spec,
                                local_model.as_mut(),
                                local_opt.as_mut(),
                                global,
                                train_set,
                                &shards[client],
                                round,
                                client as u64,
                            )
                        })
                        .collect::<Vec<_>>()
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("training thread panicked"))
                .collect()
        });

        let (aggregate, achieved_multiplier) = if dp {
            aggregate_private(
                spec,
                &encoder,
                &root,
                round,
                &survivors,
                &updates_f32,
                target_variance,
                z_star,
                xnoise_plan.as_ref(),
                dim,
            )?
        } else {
            // Non-private: plain f32 mean.
            let mut sum = vec![0.0f64; dim];
            for u in &updates_f32 {
                for (s, &v) in sum.iter_mut().zip(u.iter()) {
                    *s += f64::from(v);
                }
            }
            (sum, 0.0)
        };

        if let Some(ledger) = ledger.as_mut() {
            ledger.record_round(spec.sample_rate(), achieved_multiplier);
        }

        // FedAvg: mean of survivor deltas applied to the global model.
        let mean: Vec<f32> = aggregate
            .iter()
            .map(|&v| (v / survivors.len() as f64) as f32)
            .collect();
        apply_update(&mut global, &mean, 1.0);
        model.set_params(&global);
        rounds_completed += 1;

        let evaluate = round % spec.eval_every == spec.eval_every - 1 || round + 1 == spec.rounds;
        let (acc, ppl) = if evaluate {
            (
                Some(accuracy(model.as_ref(), &test_set)),
                Some(perplexity(model.as_ref(), &test_set)),
            )
        } else {
            (None, None)
        };
        records.push(RoundRecord {
            round,
            epsilon: ledger.as_ref().map_or(0.0, PrivacyLedger::realized_epsilon),
            dropped: dropped_pos.len(),
            achieved_multiplier,
            accuracy: acc,
            perplexity: ppl,
        });
    }

    model.set_params(&global);
    Ok(TrainingReport {
        task: spec.name.clone(),
        rounds_completed,
        epsilon_consumed: ledger.as_ref().map_or(0.0, PrivacyLedger::realized_epsilon),
        final_accuracy: accuracy(model.as_ref(), &test_set),
        final_perplexity: perplexity(model.as_ref(), &test_set),
        stopped_early,
        records,
    })
}

/// Encodes survivor updates, applies the variant's noise, aggregates in
/// `Z_{2^b}`, removes excess (XNoise), and decodes. Returns the decoded
/// *sum* of updates plus the achieved central noise multiplier.
#[allow(clippy::too_many_arguments)]
fn aggregate_private(
    spec: &TaskSpec,
    encoder: &Encoder<'_>,
    root: &Seed,
    round: u32,
    survivors: &[usize],
    updates_f32: &[Vec<f32>],
    target_variance: f64,
    z_star: f64,
    xnoise_plan: Option<&XNoisePlan>,
    dim: usize,
) -> Result<(Vec<f64>, f64), DordisError> {
    let enc_cfg = &spec.privacy.encoding;
    let bits = enc_cfg.bit_width;
    let n = spec.sampled_per_round;
    let surv = survivors.len();
    let dropped = n - surv;

    // Encode and perturb each survivor's update.
    let mut encoded: Vec<Vec<u64>> = Vec::with_capacity(surv);
    let mut removal_seeds: Vec<(u32, usize, Seed)> = Vec::new();
    for (slot, &pos) in survivors.iter().enumerate() {
        let update_f64: Vec<f64> = updates_f32[slot].iter().map(|&x| f64::from(x)).collect();
        let round_seed = Prg::fork(root, b"client.round", (u64::from(round) << 16) ^ pos as u64);
        let mut enc = encoder
            .encode(&update_f64, &round_seed)
            .map_err(DordisError::Dp)?;
        match spec.variant {
            Variant::Orig | Variant::Early => {
                let noise = skellam_vector(
                    &Prg::fork(&round_seed, b"orig.noise", 0),
                    b"dordis.orig",
                    enc.len(),
                    target_variance / n as f64,
                );
                add_noise_mod(&mut enc, &noise, bits);
            }
            Variant::Conservative { est_dropout } => {
                let noise = skellam_vector(
                    &Prg::fork(&round_seed, b"con.noise", 0),
                    b"dordis.con",
                    enc.len(),
                    target_variance / ((n as f64) * (1.0 - est_dropout)),
                );
                add_noise_mod(&mut enc, &noise, bits);
            }
            Variant::XNoise { .. } => {
                let plan = xnoise_plan.expect("xnoise plan built");
                let seeds = derive_component_seeds(&round_seed, plan.dropout_tolerance);
                perturb(&mut enc, &seeds, plan, bits)?;
                // Seeds the server will use for removal (in the protocol
                // path these arrive via SecAgg; here we hand them over
                // directly, which is the same information flow).
                if dropped <= plan.dropout_tolerance {
                    for k in (dropped + 1)..=plan.dropout_tolerance {
                        removal_seeds.push((pos as u32, k, seeds[k]));
                    }
                }
            }
            Variant::NonPrivate => unreachable!("dp-only path"),
        }
        encoded.push(enc);
    }

    // Modular aggregation over survivors.
    let mut sum = encoded[0].clone();
    for e in &encoded[1..] {
        sum = add_mod(&sum, e, bits);
    }

    // Excess-noise removal.
    if let Variant::XNoise { .. } = spec.variant {
        let plan = xnoise_plan.expect("xnoise plan built");
        if dropped <= plan.dropout_tolerance {
            let ids: Vec<u32> = survivors.iter().map(|&p| p as u32).collect();
            remove_excess(&mut sum, &removal_seeds, &ids, plan, bits)?;
        }
    }
    let achieved =
        achieved_noise_multiplier(spec.variant, z_star, target_variance, n, surv, xnoise_plan);

    Ok((encoder.decode(&sum, dim), achieved))
}

pub(crate) fn add_noise_mod(enc: &mut [u64], noise: &[i64], bits: u32) {
    let modulus = 1i64 << bits;
    let mask = (1u64 << bits) - 1;
    for (e, &z) in enc.iter_mut().zip(noise.iter()) {
        let d = z.rem_euclid(modulus) as u64;
        *e = e.wrapping_add(d) & mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dordis_sim::dropout::DropoutModel;

    #[test]
    fn non_private_training_learns() {
        let mut spec = TaskSpec::tiny_for_tests(3);
        spec.variant = Variant::NonPrivate;
        spec.rounds = 20;
        let report = train(&spec).unwrap();
        assert_eq!(report.rounds_completed, 20);
        assert_eq!(report.epsilon_consumed, 0.0);
        assert!(
            report.final_accuracy > 0.5,
            "accuracy {}",
            report.final_accuracy
        );
    }

    #[test]
    fn xnoise_consumes_exactly_budget_without_dropout() {
        let spec = TaskSpec::tiny_for_tests(4);
        let report = train(&spec).unwrap();
        assert!(report.epsilon_consumed <= spec.privacy.epsilon + 1e-9);
        assert!(report.epsilon_consumed > 0.5 * spec.privacy.epsilon);
    }

    #[test]
    fn xnoise_holds_budget_under_dropout() {
        let mut spec = TaskSpec::tiny_for_tests(5);
        spec.dropout = DropoutModel::FixedRate { rate: 0.25 };
        let report = train(&spec).unwrap();
        assert!(
            report.epsilon_consumed <= spec.privacy.epsilon + 1e-9,
            "ε = {}",
            report.epsilon_consumed
        );
    }

    #[test]
    fn orig_overruns_budget_under_dropout() {
        let mut spec = TaskSpec::tiny_for_tests(6);
        spec.variant = Variant::Orig;
        spec.dropout = DropoutModel::FixedRate { rate: 0.25 };
        let report = train(&spec).unwrap();
        assert!(
            report.epsilon_consumed > spec.privacy.epsilon,
            "ε = {}",
            report.epsilon_consumed
        );
    }

    #[test]
    fn orig_on_budget_without_dropout() {
        let mut spec = TaskSpec::tiny_for_tests(7);
        spec.variant = Variant::Orig;
        let report = train(&spec).unwrap();
        assert!(report.epsilon_consumed <= spec.privacy.epsilon + 1e-9);
    }

    #[test]
    fn early_stops_before_horizon_under_dropout() {
        let mut spec = TaskSpec::tiny_for_tests(8);
        spec.variant = Variant::Early;
        spec.rounds = 40;
        spec.dropout = DropoutModel::FixedRate { rate: 0.5 };
        let report = train(&spec).unwrap();
        assert!(report.stopped_early, "should stop early");
        assert!(report.rounds_completed < 40);
        assert!(report.epsilon_consumed <= spec.privacy.epsilon * 1.3);
    }

    #[test]
    fn conservative_overshoots_then_wastes_noise() {
        // Con5 with no actual dropout: stays under budget (over-noised).
        let mut spec = TaskSpec::tiny_for_tests(9);
        spec.variant = Variant::Conservative { est_dropout: 0.5 };
        let report = train(&spec).unwrap();
        assert!(
            report.epsilon_consumed < 0.8 * spec.privacy.epsilon,
            "ε = {} should be well under budget",
            report.epsilon_consumed
        );
    }

    #[test]
    fn records_are_complete() {
        let spec = TaskSpec::tiny_for_tests(10);
        let report = train(&spec).unwrap();
        assert_eq!(report.records.len(), spec.rounds as usize);
        // Eval happens at the configured cadence.
        assert!(report.records[4].accuracy.is_some());
        assert!(report.records[0].accuracy.is_none());
        // Epsilon is monotone.
        for w in report.records.windows(2) {
            assert!(w[1].epsilon >= w[0].epsilon);
        }
    }

    #[test]
    fn private_training_still_learns() {
        let mut spec = TaskSpec::tiny_for_tests(11);
        spec.rounds = 20;
        let report = train(&spec).unwrap();
        assert!(
            report.final_accuracy > 0.4,
            "accuracy {}",
            report.final_accuracy
        );
    }
}

#[cfg(test)]
mod noise_probe_tests {
    use super::*;
    use crate::config::{TaskSpec, Variant};

    fn variance(xs: &[f64]) -> f64 {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)
    }

    /// Measures the decoded aggregate-noise variance through the real
    /// trainer aggregation path with zero updates.
    fn decoded_noise_variance(variant: Variant, dim: usize, rounds_of_coords: u32) -> f64 {
        let mut spec = TaskSpec::tiny_for_tests(3);
        spec.sampled_per_round = 16;
        spec.variant = variant;
        let n = spec.sampled_per_round;
        let enc_cfg = spec.privacy.encoding;
        let z = 0.45;
        let delta2 = enc_cfg.l2_sensitivity(dim);
        let target_variance = (z * delta2) * (z * delta2);
        let xplan = match variant {
            Variant::XNoise { tolerance_frac, .. } => Some(
                XNoisePlan::new(
                    target_variance,
                    n,
                    ((n as f64) * tolerance_frac) as usize,
                    0,
                    n / 2 + 1,
                )
                .unwrap(),
            ),
            _ => None,
        };
        let root = [9u8; 32];
        let survivors: Vec<usize> = (0..n).collect();
        let zeros = vec![vec![0.0f32; dim]; n];
        let mut all = Vec::new();
        for round in 0..rounds_of_coords {
            let rotation = Prg::fork(&root, b"rot", u64::from(round));
            let encoder = Encoder::new(&spec.privacy.encoding, rotation);
            let (agg, _) = aggregate_private(
                &spec,
                &encoder,
                &root,
                round,
                &survivors,
                &zeros,
                target_variance,
                z,
                xplan.as_ref(),
                dim,
            )
            .unwrap();
            all.extend(agg);
        }
        variance(&all)
    }

    #[test]
    fn orig_and_xnoise_noise_levels_match_through_trainer_path() {
        // Zero dropout: both must decode to noise of variance
        // σ²∗ / γ² in the real domain.
        let dim = 330;
        let orig = decoded_noise_variance(Variant::Orig, dim, 40);
        let xnoise = decoded_noise_variance(
            Variant::XNoise {
                tolerance_frac: 0.5,
                collusion_frac: 0.0,
            },
            dim,
            40,
        );
        let ratio = xnoise / orig;
        assert!(
            (0.85..1.18).contains(&ratio),
            "xnoise var {xnoise} vs orig var {orig} (ratio {ratio})"
        );
    }
}
