//! The Dordis command-line driver.
//!
//! ```sh
//! dordis example-config > task.json   # starting-point TaskSpec
//! dordis train task.json              # run it, print the report
//! dordis train task.json --json       # machine-readable report
//! dordis plan 6.0 0.01 150 0.16       # offline noise planning only
//!
//! # Networked SecAgg+ session over TCP (one server, N clients,
//! # R rounds over persistent connections):
//! dordis serve --listen 127.0.0.1:7700 --clients 5 --threshold 3 --rounds 3
//! dordis join --connect 127.0.0.1:7700 --id 0   # ... one per client
//!
//! # Replicated pair: a standby installs round-boundary checkpoints and
//! # takes over if the primary dies; clients redial with --failover.
//! dordis serve --listen 127.0.0.1:7701 --backup 127.0.0.1:7800 ...   # standby
//! dordis serve --listen 127.0.0.1:7700 --replica 127.0.0.1:7800 ...  # primary
//! dordis join --connect 127.0.0.1:7700 --failover 127.0.0.1:7701 --id 0
//! ```

use std::process::ExitCode;
use std::time::Duration;

use dordis_core::config::TaskSpec;
use dordis_core::protocol::demo_update;
use dordis_core::trainer::train;
use dordis_dp::accountant::Mechanism;
use dordis_dp::planner::{plan, PlannerConfig};
use dordis_net::coordinator::{CollectMode, CoordinatorConfig, NetRoundReport};
use dordis_net::faults::FaultPlan;
use dordis_net::reactor::EventedChannel;
use dordis_net::replication::{run_backup, BackupOutcome};
use dordis_net::runtime::{
    run_session_client, Backoff, FailAction, FailPoint, FailStage, SessionClientOptions,
    SessionEndKind,
};
use dordis_net::session::{Seating, Session, SessionConfig};
use dordis_net::tcp::{TcpAcceptor, TcpChannel};
use dordis_net::transport::{deadline_in, Acceptor as _};
use dordis_net::NetError;
use dordis_secagg::client::ClientInput;
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::{RoundParams, ThreatModel};
use dordis_telemetry::Telemetry;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("example-config") => example_config(),
        Some("train") => train_cmd(&args[1..]),
        Some("plan") => plan_cmd(&args[1..]),
        Some("serve") => serve_cmd(&args[1..]),
        Some("join") => join_cmd(&args[1..]),
        _ => {
            eprintln!(
                "usage:\n  dordis example-config\n  dordis train <task.json> [--json]\n  \
                 dordis plan <epsilon> <delta> <rounds> <sample_rate>\n  \
                 dordis serve --listen <addr> --clients <n> --threshold <t> [--rounds R] \
                 [--dim D] [--bits B] [--graph auto|complete|harary] [--round R0] \
                 [--noise-components T] [--chunks M] [--workers N] [--shards S] \
                 [--ingress-budget BYTES] [--stage-timeout-ms MS] \
                 [--join-timeout-ms MS] [--collect reactor|sweep] [--verify-demo] \
                 [--trace FILE] [--metrics-addr ADDR] \
                 [--replica ADDR | --backup ADDR] [--lease-ms MS]\n  \
                 dordis join --connect <addr> --id <k> [--seed S] [--failover ADDR] \
                 [--fail-round R] \
                 [--drop-at advertise|share-keys|masked-input|consistency|unmasking|noise-shares] \
                 [--drop-after-chunks K] [--drop-mode disconnect|silent] [--timeout-ms MS]"
            );
            ExitCode::FAILURE
        }
    }
}

/// Pulls `--flag value` out of an argument list.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn flag_parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("bad value for {flag}: `{raw}`")),
    }
}

fn serve_cmd(args: &[String]) -> ExitCode {
    match serve_inner(args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn serve_inner(args: &[String]) -> Result<ExitCode, String> {
    let listen = flag_value(args, "--listen").unwrap_or("127.0.0.1:7700");
    let clients: u32 = flag_parse(args, "--clients", 5)?;
    let threshold: usize = flag_parse(args, "--threshold", (clients as usize * 2).div_ceil(3))?;
    let dim: usize = flag_parse(args, "--dim", 16)?;
    let bits: u32 = flag_parse(args, "--bits", 20)?;
    let rounds: u64 = flag_parse(args, "--rounds", 1)?;
    let first_round: u64 = flag_parse(args, "--round", 1)?;
    let noise_components: usize = flag_parse(args, "--noise-components", 0)?;
    // 0 = planner-chosen (§4.2 cost-model sweep).
    let chunks_flag: usize = flag_parse(args, "--chunks", 0)?;
    // 0 = serial unmasking on the coordinator thread; N > 0 runs the
    // per-chunk unmask jobs on N pooled workers (bit-equal results).
    let workers: usize = flag_parse(args, "--workers", 0)?;
    // 1 = the classic single round machine; S > 1 partitions each
    // round's cohort across S parallel aggregation shards (bit-equal
    // results; near-linear round throughput in S on multi-core hosts).
    let shards: usize = flag_parse(args, "--shards", 1)?;
    // 0 = unlimited (the bit-equal reference); a byte count caps how
    // much decoded-but-unprocessed ingress the reactor's shared frame
    // pool holds before over-budget connections are paused (TCP flow
    // control pushes back until the backlog drains).
    let ingress_budget: u64 = flag_parse(args, "--ingress-budget", 0)?;
    let stage_timeout: u64 = flag_parse(args, "--stage-timeout-ms", 5000)?;
    let join_timeout: u64 = flag_parse(args, "--join-timeout-ms", 15000)?;
    let verify_demo = args.iter().any(|a| a == "--verify-demo");
    let trace_path = flag_value(args, "--trace").map(str::to_string);
    let metrics_addr = flag_value(args, "--metrics-addr").map(str::to_string);
    // Telemetry costs nothing unless someone asked to look at it.
    let telemetry = if trace_path.is_some() || metrics_addr.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let mode = match flag_value(args, "--collect").unwrap_or("reactor") {
        "reactor" => CollectMode::Reactor,
        "sweep" => CollectMode::PollSweep,
        other => return Err(format!("unknown collect mode `{other}`")),
    };
    let graph = match flag_value(args, "--graph").unwrap_or("auto") {
        "auto" => MaskingGraph::recommended(clients as usize),
        "complete" => MaskingGraph::Complete,
        "harary" => MaskingGraph::harary_for(clients as usize),
        other => return Err(format!("unknown graph `{other}`")),
    };
    if rounds == 0 {
        return Err("--rounds must be at least 1".into());
    }
    let replica_addr = flag_value(args, "--replica");
    let backup_listen = flag_value(args, "--backup");
    if replica_addr.is_some() && backup_listen.is_some() {
        return Err("--replica and --backup are mutually exclusive (pick a role)".into());
    }
    // Default lease: long enough that a slow round cannot be mistaken
    // for a dead primary (checkpoints renew it every round boundary).
    let lease_ms: u64 = flag_parse(
        args,
        "--lease-ms",
        join_timeout.saturating_add(stage_timeout.saturating_mul(4)),
    )?;

    let params = RoundParams {
        round: first_round,
        clients: (0..clients).collect(),
        threshold,
        bit_width: bits,
        vector_len: dim,
        noise_components,
        threat_model: ThreatModel::SemiHonest,
        graph,
    };
    params.validate().map_err(|e| e.to_string())?;

    let chunks = if chunks_flag == 0 {
        dordis_pipeline::planned_chunk_count(dim, clients as usize, bits)
    } else {
        chunks_flag
    };

    let mut acceptor = TcpAcceptor::bind(listen).map_err(|e| e.to_string())?;
    // The OS-assigned port must be announced before clients can join.
    println!("listening on {}", acceptor.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    // Standby role: install checkpoints from the primary until its
    // lease lapses, then take over the session from the last committed
    // round boundary. The client listener is already bound above, so
    // redialing clients find the socket the moment the view changes.
    let mut first_round = first_round;
    let mut rounds = rounds;
    if let Some(repl) = backup_listen {
        let mut repl_acceptor = TcpAcceptor::bind(repl).map_err(|e| e.to_string())?;
        println!(
            "standby:   replication endpoint {} (lease {lease_ms} ms)",
            repl_acceptor.local_addr()
        );
        let _ = std::io::stdout().flush();
        let mut link = repl_acceptor
            .accept(deadline_in(Duration::from_secs(600)))
            .map_err(|e| format!("awaiting primary: {e}"))?;
        match run_backup(&mut *link, Duration::from_millis(lease_ms), &telemetry)
            .map_err(|e| e.to_string())?
        {
            BackupOutcome::SessionEnded(_) => {
                println!("standby:   primary retired cleanly; nothing to take over");
                return Ok(ExitCode::SUCCESS);
            }
            BackupOutcome::Takeover(t) => {
                let done = t.checkpoint.as_ref().map_or(0, |c| c.rounds_done);
                println!(
                    "view change: promoted to view {} ({done} round(s) already committed)",
                    t.view
                );
                let _ = std::io::stdout().flush();
                if done >= rounds {
                    println!("session already complete at takeover");
                    return Ok(ExitCode::SUCCESS);
                }
                if let Some(c) = &t.checkpoint {
                    first_round = c.round + 1;
                }
                rounds -= done;
            }
        }
    }

    // Primary role: dial the standby (briefly retried — the pair races
    // at startup) and gate every round commit on its checkpoint ack.
    let replica: Option<Box<dyn EventedChannel>> = match replica_addr {
        None => None,
        Some(addr) => {
            let mut dial = Backoff::new(
                0xD0D1,
                Duration::from_millis(50),
                Duration::from_millis(500),
            );
            let chan = loop {
                match TcpChannel::connect(addr) {
                    Ok(c) => break c,
                    Err(_) if dial.attempts() < 40 => dial.sleep(),
                    Err(e) => return Err(format!("replica {addr}: {e}")),
                }
            };
            println!("replica:   checkpointing to {addr} (commits gated on its ack)");
            Some(Box::new(chan))
        }
    };
    let replicated = replica.is_some();

    println!(
        "session:   {rounds} round(s), {chunks} chunk(s) requested, {}{}",
        if workers == 0 {
            "serial unmasking".to_string()
        } else {
            format!("{workers} unmask worker(s)")
        },
        if shards > 1 {
            format!(", {shards} aggregation shard(s)")
        } else {
            String::new()
        }
    );
    if ingress_budget > 0 {
        println!("ingress:   {ingress_budget} byte budget (over-budget connections pause)");
    }
    let _ = std::io::stdout().flush();

    let cfg = SessionConfig {
        first_round,
        rounds,
        join_timeout: Duration::from_millis(join_timeout),
        stage_timeout: Duration::from_millis(stage_timeout),
        chunks,
        chunk_compute: None,
        tick: CoordinatorConfig::DEFAULT_TICK,
        mode,
        workers,
        shards,
        ingress_budget,
        announce: true,
        population: (0..clients).collect(),
        seating: Seating::Roster,
        params_for: Box::new(move |round, _| {
            let mut p = params.clone();
            p.round = round;
            p
        }),
        telemetry: telemetry.clone(),
        metrics_addr,
        replica,
        faults: FaultPlan::none(),
    };
    let mut session = Session::new(&mut acceptor, cfg).map_err(|e| e.to_string())?;
    if let Some(addr) = session.metrics_addr() {
        println!("metrics:   http://{addr}/metrics");
        let _ = std::io::stdout().flush();
    }
    let mut failed = false;
    for _ in 0..rounds {
        let report = session.run_round(&[]).map_err(|e| e.to_string())?;
        if replicated {
            // The CLI demo carries no driver-side ledger, so the
            // checkpoint's app payload is empty — the round boundary,
            // view, and parked-roster state still replicate, and the
            // round only counts once the standby has acked it.
            session
                .commit_round(report.round, &[])
                .map_err(|e| format!("checkpoint round {}: {e}", report.round))?;
        }
        if !print_round(&report, dim, bits, verify_demo) {
            failed = true;
        }
    }
    session.finish();
    if let Some(path) = trace_path {
        std::fs::write(&path, telemetry.export_chrome_trace())
            .map_err(|e| format!("write {path}: {e}"))?;
        println!(
            "trace:     {} span(s) written to {path} (load in Perfetto / chrome://tracing)",
            telemetry.spans_recorded()
        );
    }
    println!("session complete ({rounds} round(s))");
    Ok(if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// Prints one round's report; returns false when demo verification
/// fails.
fn print_round(report: &NetRoundReport, dim: usize, bits: u32, verify_demo: bool) -> bool {
    if let Some(r) = &report.reactor {
        println!(
            "reactor:   {} polls, {} events, {} timer fires (this round)",
            r.polls, r.events, r.timer_fires
        );
    }
    println!(
        "round {} complete ({} chunk(s) realized)",
        report.round, report.chunks
    );
    println!("survivors: {:?}", report.outcome.survivors);
    println!("dropped:   {:?}", report.outcome.dropped);
    for d in &report.dropouts {
        println!(
            "detected:  client {} at {} ({:?})",
            d.client, d.stage, d.kind
        );
    }
    if report.stale_frames > 0 {
        println!("stale:     {} frame(s) discarded", report.stale_frames);
    }
    let preview: Vec<u64> = report.outcome.sum.iter().copied().take(8).collect();
    println!("sum[..{}]: {:?}", preview.len(), preview);
    println!(
        "traffic:   {} bytes total on the wire",
        report.stats.total_bytes()
    );

    if verify_demo {
        let mut expected = vec![0u64; dim];
        let mask = (1u64 << bits) - 1;
        for &id in &report.outcome.survivors {
            for (e, v) in expected.iter_mut().zip(demo_update(id, dim, bits)) {
                *e = (*e + v) & mask;
            }
        }
        if expected == report.outcome.sum {
            println!("demo verification: OK (aggregate equals survivors' demo updates)");
        } else {
            println!("demo verification: MISMATCH");
            return false;
        }
    }
    true
}

fn join_cmd(args: &[String]) -> ExitCode {
    match join_inner(args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("join failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn join_inner(args: &[String]) -> Result<ExitCode, String> {
    let connect = flag_value(args, "--connect").ok_or("missing --connect <addr>")?;
    let id: u32 = flag_parse(args, "--id", u32::MAX)?;
    if id == u32::MAX {
        return Err("missing --id <k>".into());
    }
    let seed: u64 = flag_parse(args, "--seed", 1)?;
    let timeout: u64 = flag_parse(args, "--timeout-ms", 30000)?;
    let drop_at = flag_value(args, "--drop-at");
    let drop_after_chunks =
        match flag_value(args, "--drop-after-chunks") {
            None => None,
            Some(raw) => Some(raw.parse::<u16>().map_err(|_| {
                format!("bad value for --drop-after-chunks: `{raw}` (want 0..=65535)")
            })?),
        };
    if drop_at.is_some() && drop_after_chunks.is_some() {
        return Err("--drop-at and --drop-after-chunks are mutually exclusive".into());
    }
    let stage = match (drop_at, drop_after_chunks) {
        (None, None) => None,
        // Partial chunk stream: send K masked-input chunk frames, then
        // fail mid-stream.
        (None, Some(k)) => Some(FailStage::MaskedInputAfterChunks(k)),
        (Some(stage), None) => Some(match stage {
            "advertise" => FailStage::Advertise,
            "share-keys" => FailStage::ShareKeys,
            "masked-input" => FailStage::MaskedInput,
            "consistency" => FailStage::Consistency,
            "unmasking" => FailStage::Unmasking,
            "noise-shares" => FailStage::NoiseShares,
            other => return Err(format!("unknown --drop-at stage `{other}`")),
        }),
        (Some(_), Some(_)) => unreachable!("rejected above"),
    };
    let fail = match stage {
        None => None,
        Some(stage) => {
            let action = match flag_value(args, "--drop-mode").unwrap_or("disconnect") {
                "disconnect" => FailAction::Disconnect,
                "silent" => FailAction::Silent,
                other => return Err(format!("unknown --drop-mode `{other}`")),
            };
            Some(FailPoint { stage, action })
        }
    };
    // Scripted failures fire in this round of the session; run `join`
    // again afterwards to rejoin from the next round's announce.
    let fail_round: u64 = flag_parse(args, "--fail-round", 1)?;
    // Second coordinator address: on a dead connection the client
    // alternates between the two with jittered backoff until one of
    // them (primary, or the promoted standby) seats it again.
    let failover = flag_value(args, "--failover");

    let opts = SessionClientOptions {
        id,
        rng_seed: seed,
        recv_timeout: Duration::from_millis(timeout),
        silent_linger: Duration::from_millis(timeout),
    };
    let mut addrs = vec![connect];
    addrs.extend(failover);
    let mut redial = Backoff::new(
        u64::from(id),
        Duration::from_millis(50),
        Duration::from_millis(2000),
    );
    let mut which = 0usize;
    let report = loop {
        if redial.attempts() > 400 {
            return Err(format!(
                "giving up after {} dial attempts",
                redial.attempts()
            ));
        }
        let addr = addrs[which % addrs.len()];
        let mut chan = match TcpChannel::connect(addr) {
            Ok(c) => c,
            Err(e) => {
                if failover.is_none() {
                    return Err(e.to_string());
                }
                which += 1;
                redial.sleep();
                continue;
            }
        };
        let outcome = run_session_client(
            &mut chan,
            &opts,
            |_| None, // roster sessions are claim-free
            |round| fail.filter(|_| round == fail_round),
            |round, params, _cohort, _payload| {
                println!("client {id}: seated in round {round}");
                Ok(ClientInput {
                    vector: demo_update(id, params.vector_len, params.bit_width),
                    noise_seeds: if params.noise_components == 0 {
                        Vec::new()
                    } else {
                        (0..=params.noise_components)
                            .map(|k| {
                                let mut s = [0u8; 32];
                                s[..8].copy_from_slice(&seed.to_le_bytes());
                                s[8..12].copy_from_slice(&id.to_le_bytes());
                                s[12] = k as u8;
                                s[31] = 0xd3;
                                s
                            })
                            .collect()
                    },
                })
            },
            |_| None,
        );
        match outcome {
            Ok(report) => break report,
            // A dead coordinator, not a protocol failure: flip to the
            // other address and try again.
            Err(NetError::Closed | NetError::Timeout | NetError::Unavailable)
                if failover.is_some() =>
            {
                println!("client {id}: coordinator at {addr} lost; failing over");
                which += 1;
                redial.sleep();
            }
            Err(e) => return Err(e.to_string()),
        }
    };

    for r in &report.rounds {
        println!("client {id}: round {} -> {:?}", r.round, r.outcome);
    }
    match report.end {
        SessionEndKind::Ended => {
            println!(
                "client {id}: session ended after {} round(s)",
                report.rounds.len()
            );
            Ok(ExitCode::SUCCESS)
        }
        SessionEndKind::Failed { round, stage } => {
            println!("client {id}: dropped as scripted in round {round} before {stage:?}");
            Ok(ExitCode::SUCCESS)
        }
        SessionEndKind::Aborted { round, reason } => {
            eprintln!("client {id}: aborted in round {round}: {reason}");
            Ok(ExitCode::FAILURE)
        }
        SessionEndKind::ServerAborted { reason } => {
            eprintln!("client {id}: server aborted: {reason}");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn example_config() -> ExitCode {
    let spec = TaskSpec::cifar10_like(42);
    match serde_json::to_string_pretty(&spec) {
        Ok(json) => {
            println!("{json}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serialization failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn train_cmd(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: dordis train <task.json> [--json]");
        return ExitCode::FAILURE;
    };
    let as_json = args.iter().any(|a| a == "--json");
    let raw = match std::fs::read_to_string(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec: TaskSpec = match serde_json::from_str(&raw) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid task config: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match train(&spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("training failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if as_json {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("report serialization failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        println!("task:            {}", report.task);
        println!("rounds:          {}", report.rounds_completed);
        println!("final accuracy:  {:.2}%", report.final_accuracy * 100.0);
        println!("perplexity:      {:.2}", report.final_perplexity);
        println!(
            "privacy spent:   ε = {:.3} of {:.3} (δ = {})",
            report.epsilon_consumed, spec.privacy.epsilon, spec.privacy.delta
        );
        if report.stopped_early {
            println!("note: stopped early (budget exhausted)");
        }
    }
    ExitCode::SUCCESS
}

fn plan_cmd(args: &[String]) -> ExitCode {
    let parse = |i: usize, name: &str| -> Option<f64> {
        let v = args.get(i)?.parse().ok();
        if v.is_none() {
            eprintln!("bad {name}");
        }
        v
    };
    let (Some(eps), Some(delta), Some(rounds), Some(rate)) = (
        parse(0, "epsilon"),
        parse(1, "delta"),
        parse(2, "rounds"),
        parse(3, "sample_rate"),
    ) else {
        eprintln!("usage: dordis plan <epsilon> <delta> <rounds> <sample_rate>");
        return ExitCode::FAILURE;
    };
    match plan(&PlannerConfig {
        epsilon: eps,
        delta,
        rounds: rounds as u32,
        sample_rate: rate,
        mechanism: Mechanism::Gaussian,
    }) {
        Ok(p) => {
            println!(
                "minimum central noise multiplier z* = {:.4} (realizes ε = {:.4})",
                p.noise_multiplier, p.realized_epsilon
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("planning failed: {e}");
            ExitCode::FAILURE
        }
    }
}
