//! The Dordis command-line driver.
//!
//! ```sh
//! dordis example-config > task.json   # starting-point TaskSpec
//! dordis train task.json              # run it, print the report
//! dordis train task.json --json       # machine-readable report
//! dordis plan 6.0 0.01 150 0.16       # offline noise planning only
//! ```

use std::process::ExitCode;

use dordis_core::config::TaskSpec;
use dordis_core::trainer::train;
use dordis_dp::accountant::Mechanism;
use dordis_dp::planner::{plan, PlannerConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("example-config") => example_config(),
        Some("train") => train_cmd(&args[1..]),
        Some("plan") => plan_cmd(&args[1..]),
        _ => {
            eprintln!(
                "usage:\n  dordis example-config\n  dordis train <task.json> [--json]\n  \
                 dordis plan <epsilon> <delta> <rounds> <sample_rate>"
            );
            ExitCode::FAILURE
        }
    }
}

fn example_config() -> ExitCode {
    let spec = TaskSpec::cifar10_like(42);
    match serde_json::to_string_pretty(&spec) {
        Ok(json) => {
            println!("{json}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serialization failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn train_cmd(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: dordis train <task.json> [--json]");
        return ExitCode::FAILURE;
    };
    let as_json = args.iter().any(|a| a == "--json");
    let raw = match std::fs::read_to_string(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec: TaskSpec = match serde_json::from_str(&raw) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid task config: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match train(&spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("training failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if as_json {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("report serialization failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        println!("task:            {}", report.task);
        println!("rounds:          {}", report.rounds_completed);
        println!("final accuracy:  {:.2}%", report.final_accuracy * 100.0);
        println!("perplexity:      {:.2}", report.final_perplexity);
        println!(
            "privacy spent:   ε = {:.3} of {:.3} (δ = {})",
            report.epsilon_consumed, spec.privacy.epsilon, spec.privacy.delta
        );
        if report.stopped_early {
            println!("note: stopped early (budget exhausted)");
        }
    }
    ExitCode::SUCCESS
}

fn plan_cmd(args: &[String]) -> ExitCode {
    let parse = |i: usize, name: &str| -> Option<f64> {
        let v = args.get(i)?.parse().ok();
        if v.is_none() {
            eprintln!("bad {name}");
        }
        v
    };
    let (Some(eps), Some(delta), Some(rounds), Some(rate)) = (
        parse(0, "epsilon"),
        parse(1, "delta"),
        parse(2, "rounds"),
        parse(3, "sample_rate"),
    ) else {
        eprintln!("usage: dordis plan <epsilon> <delta> <rounds> <sample_rate>");
        return ExitCode::FAILURE;
    };
    match plan(&PlannerConfig {
        epsilon: eps,
        delta,
        rounds: rounds as u32,
        sample_rate: rate,
        mechanism: Mechanism::Gaussian,
    }) {
        Ok(p) => {
            println!(
                "minimum central noise multiplier z* = {:.4} (realizes ε = {:.4})",
                p.noise_multiplier, p.realized_epsilon
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("planning failed: {e}");
            ExitCode::FAILURE
        }
    }
}
