//! Dordis: efficient federated learning with dropout-resilient
//! distributed differential privacy.
//!
//! This is the top-level crate of the Dordis reproduction (EuroSys '24).
//! It wires the substrates together into the workflow of the paper's
//! Figure 7:
//!
//! 1. client sampling and local training ([`dordis_fl`]),
//! 2. DP encoding ([`dordis_dp::encoding`]) and XNoise perturbation
//!    ([`dordis_xnoise`]),
//! 3. secure aggregation ([`dordis_secagg`]) with pipeline-parallel
//!    execution planning ([`dordis_pipeline`]),
//! 4. server-side unmasking, excessive-noise removal, decoding, and
//!    FedAvg model refinement, with privacy accounted by
//!    [`dordis_dp::ledger`].
//!
//! Two execution paths are provided:
//!
//! - [`trainer`]: the *semantic* path used for utility/privacy
//!   experiments (Figures 1, 8, 9, Table 2) — it performs the exact
//!   DP-relevant vector math (encode, perturb, modular-sum, remove,
//!   decode) without paying for masking crypto, which cancels out anyway.
//! - [`protocol`]: the *full-protocol* path that runs the actual SecAgg /
//!   SecAgg+ state machines end to end, used for integration testing and
//!   small-scale runs.
//! - [`timing`]: round-time estimation (plain vs pipelined) on the
//!   simulated cluster (Figures 2 and 10).
//!
//! # Examples
//!
//! ```
//! use dordis_core::config::{TaskSpec, Variant};
//! use dordis_core::trainer::train;
//!
//! let mut spec = TaskSpec::tiny_for_tests(42);
//! spec.variant = Variant::XNoise {
//!     tolerance_frac: 0.5,
//!     collusion_frac: 0.0,
//! };
//! let report = train(&spec).unwrap();
//! assert!(report.epsilon_consumed <= spec.privacy.epsilon + 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod protocol;
pub mod sampling;
pub mod session;
pub mod timing;
pub mod trainer;

/// Errors surfaced by the end-to-end framework.
#[derive(Debug)]
pub enum DordisError {
    /// Privacy planning failed.
    Dp(dordis_dp::DpError),
    /// XNoise enforcement failed.
    XNoise(dordis_xnoise::XNoiseError),
    /// Secure aggregation failed.
    SecAgg(dordis_secagg::SecAggError),
    /// Bad experiment configuration.
    Config(String),
}

impl core::fmt::Display for DordisError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DordisError::Dp(e) => write!(f, "dp: {e}"),
            DordisError::XNoise(e) => write!(f, "xnoise: {e}"),
            DordisError::SecAgg(e) => write!(f, "secagg: {e}"),
            DordisError::Config(why) => write!(f, "config: {why}"),
        }
    }
}

impl std::error::Error for DordisError {}

impl From<dordis_dp::DpError> for DordisError {
    fn from(e: dordis_dp::DpError) -> Self {
        DordisError::Dp(e)
    }
}

impl From<dordis_xnoise::XNoiseError> for DordisError {
    fn from(e: dordis_xnoise::XNoiseError) -> Self {
        DordisError::XNoise(e)
    }
}

impl From<dordis_secagg::SecAggError> for DordisError {
    fn from(e: dordis_secagg::SecAggError) -> Self {
        DordisError::SecAgg(e)
    }
}
