//! Multi-round federated training sessions: the trainer's per-round
//! semantics (local train → clip → encode → perturb → aggregate →
//! excess removal → decode → FedAvg → privacy ledger) driven over
//! `dordis-net` sessions with per-round VRF cohort resampling (§7).
//!
//! Two execution paths produce the identical [`TrainingReport`]:
//!
//! - [`train_session`]: the in-memory reference. Each round's cohort is
//!   sampled by VRF self-selection + [`seat_claims`] verify-and-trim,
//!   and the round itself runs through the in-memory secagg *driver*
//!   ([`run_round`]) with scripted dropouts.
//! - [`train_session_networked`]: the deployed shape. A
//!   [`Session`](dordis_net::session::Session) coordinator runs R
//!   rounds back to back over persistent loopback connections; every
//!   population member keeps one connection open, answers each round's
//!   announce with a VRF participation claim (or a decline), receives
//!   the current global model in the Setup payload, trains locally, and
//!   streams its masked update. Scripted droppers fail mid-chunk-stream
//!   and *reconnect* to re-join the next round.
//!
//! Both paths derive every random artefact (VRF keys, per-round protocol
//! seeds, encoding rotations, noise seeds) from the same
//! `(spec.seed, round)` functions, so the per-round modular aggregates
//! are bit-equal and the reports match field for field — the
//! session-level analogue of the single-round equivalence pins.

use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::time::Duration;

use dordis_crypto::prg::{Prg, Seed};
use dordis_crypto::vrf::{VrfPublicKey, VrfSecretKey};
use dordis_dp::accountant::Mechanism;
use dordis_dp::encoding::Encoder;
use dordis_dp::ledger::PrivacyLedger;
use dordis_dp::mechanism::skellam_vector;
use dordis_dp::planner::{plan, PlannerConfig};
use dordis_fl::data::{dirichlet_partition, synthetic_classification, train_test_split, Dataset};
use dordis_fl::eval::{accuracy, perplexity};
use dordis_fl::fedavg::apply_update;
use dordis_net::coordinator::CollectMode;
use dordis_net::faults::{FaultPlan, KillPoint};
use dordis_net::reactor::EventedChannel;
use dordis_net::replication::{run_backup, BackupOutcome};
use dordis_net::runtime::{
    run_session_client, Backoff, FailAction, FailPoint, FailStage, SessionClientOptions,
    SessionEndKind,
};
use dordis_net::session::{Seating, SeatingOutcome, Session, SessionConfig};
use dordis_net::transport::{LoopbackChannel, LoopbackHub};
use dordis_net::NetError;
use dordis_secagg::client::ClientInput;
use dordis_secagg::driver::{round_rng_seed, run_round, DropStage, DropoutSchedule, RoundSpec};
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::{ClientId, RoundParams, ThreatModel};
use dordis_telemetry::Telemetry;
use dordis_xnoise::decomposition::XNoisePlan;
use dordis_xnoise::enforcement::{derive_component_seeds, perturb, remove_excess};
use serde::{Deserialize, Serialize};

use crate::config::{TaskSpec, Variant};
use crate::protocol::client_round_seed;
use crate::sampling::{
    decode_claim, encode_claim, seat_claims, self_select, SamplingConfig, SeatedCohort,
};
use crate::trainer::{
    achieved_noise_multiplier, add_noise_mod, build_model, build_optimizer, clipped_local_delta,
    master_seed, RoundRecord, TrainingReport,
};
use crate::DordisError;

/// A scripted mid-stream dropout: `client` sends `after_chunks` masked
/// chunk frames in round `round` (0-based index), then disconnects —
/// and, on the networked path, reconnects to re-join the next round.
#[derive(Clone, Copy, Debug)]
pub struct MidStreamDrop {
    /// 0-based session round index the failure fires in.
    pub round: u32,
    /// The failing client (must be in that round's cohort to fire).
    pub client: ClientId,
    /// Chunk frames delivered before the disconnect.
    pub after_chunks: u16,
}

/// Options for a multi-round FL session.
pub struct FlSessionOptions {
    /// Rounds to run.
    pub rounds: u32,
    /// VRF sampling parameters (`population` must equal the task
    /// spec's).
    pub sample: SamplingConfig,
    /// Requested chunk count for the networked data plane.
    pub chunks: usize,
    /// Collection engine for the networked path.
    pub mode: CollectMode,
    /// Compute-plane worker threads for the networked coordinator
    /// (`0` = serial unmasking; results are bit-equal either way).
    pub workers: usize,
    /// Aggregation shard count `S` for the networked coordinator
    /// (`1` = the classic single round machine; results are bit-equal
    /// for any `S` — see `dordis-net`'s session module docs).
    pub shards: usize,
    /// Scripted mid-stream dropouts.
    pub droppers: Vec<MidStreamDrop>,
    /// Join/claim window per round (networked path).
    pub join_timeout: Duration,
    /// Per-stage deadline within a round (networked path).
    pub stage_timeout: Duration,
    /// Telemetry handle threaded through the networked session (spans
    /// and metrics); the default disabled handle costs nothing.
    pub telemetry: Telemetry,
    /// Ingress byte budget for the coordinator reactor's shared frame
    /// pool (`0` = unlimited, the bit-equal reference path).
    pub ingress_budget: u64,
}

impl FlSessionOptions {
    /// Sensible defaults for in-process sessions.
    #[must_use]
    pub fn new(rounds: u32, sample: SamplingConfig) -> FlSessionOptions {
        FlSessionOptions {
            rounds,
            sample,
            chunks: 4,
            mode: CollectMode::default(),
            workers: 0,
            shards: 1,
            droppers: Vec::new(),
            join_timeout: Duration::from_secs(20),
            stage_timeout: Duration::from_secs(20),
            telemetry: Telemetry::disabled(),
            ingress_budget: 0,
        }
    }
}

/// One session round's aggregate-level outcome (the bit-equality
/// surface of the equivalence tests).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SessionRoundOutcome {
    /// 0-based round index.
    pub round: u32,
    /// Round id on the wire (`round + 1`; round 0 is reserved for
    /// eager legacy joins).
    pub wire_round: u64,
    /// The VRF-seated cohort, in seating order.
    pub cohort: Vec<ClientId>,
    /// Survivors whose inputs reached the aggregate (U3).
    pub survivors: Vec<ClientId>,
    /// Cohort members that dropped.
    pub dropped: Vec<ClientId>,
    /// The modular aggregate after excessive-noise removal.
    pub sum: Vec<u64>,
    /// Stale frames the coordinator discarded (networked path only).
    pub stale_frames: u64,
}

/// Result of a session run: the trainer-level report plus per-round
/// aggregates.
#[derive(Debug)]
pub struct FlSessionReport {
    /// The same report shape the in-memory [`crate::trainer::train`]
    /// emits.
    pub training: TrainingReport,
    /// Per-round aggregate outcomes.
    pub rounds: Vec<SessionRoundOutcome>,
}

/// Wire round id for a 0-based session round index.
#[must_use]
pub fn wire_round(index: u32) -> u64 {
    u64::from(index) + 1
}

/// The driver's durable round-boundary state: everything a successor
/// coordinator needs to resume the session exactly where the committed
/// prefix ended. Travels as the opaque `app_state` of a
/// [`SessionCheckpoint`](dordis_net::replication::SessionCheckpoint).
///
/// The ledger inside carries its replay watermark, so a resumed driver
/// that tried to re-record an already-committed round would be rejected
/// — losing or double-counting ledger state is a *privacy* bug, not
/// just a bookkeeping one.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DriverCheckpoint {
    /// 0-based index of the first round the successor must run.
    pub next_round: u32,
    /// Privacy ledger with every committed round recorded.
    pub ledger: PrivacyLedger,
    /// Global model after the last committed round's FedAvg step.
    pub global: Vec<f32>,
    /// Trainer-level records for the committed prefix.
    pub records: Vec<RoundRecord>,
    /// Aggregate-level outcomes for the committed prefix.
    pub rounds: Vec<SessionRoundOutcome>,
}

impl DriverCheckpoint {
    /// Serializes for the replication channel (JSON: float fields
    /// round-trip bit-exactly through the vendored codec).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_string(self)
            .expect("driver checkpoint serializes")
            .into_bytes()
    }

    /// Restores a checkpoint shipped by a former primary.
    ///
    /// # Errors
    ///
    /// Malformed UTF-8 or JSON.
    pub fn from_bytes(bytes: &[u8]) -> Result<DriverCheckpoint, DordisError> {
        let text = core::str::from_utf8(bytes)
            .map_err(|_| DordisError::Config("driver checkpoint is not UTF-8".into()))?;
        serde_json::from_str(text)
            .map_err(|e| DordisError::Config(format!("driver checkpoint parse: {e}")))
    }
}

/// Deterministic per-client VRF key (stands in for PKI key
/// registration).
#[must_use]
pub fn vrf_key_for(seed: u64, id: ClientId) -> VrfSecretKey {
    let mut s = [0u8; 32];
    s[..8].copy_from_slice(&seed.to_le_bytes());
    s[8..12].copy_from_slice(&id.to_le_bytes());
    s[31] = 0x7f;
    VrfSecretKey::from_seed(&s)
}

/// The VRF public-key registry both verifier and tests use.
pub fn vrf_registry(seed: u64, population: u32) -> impl Fn(ClientId) -> Option<VrfPublicKey> {
    move |id| (id < population).then(|| vrf_key_for(seed, id).public_key())
}

/// The cohort each round will seat, computed offline (VRF outputs are
/// deterministic) — how tests script per-round droppers.
#[must_use]
pub fn planned_cohorts(spec: &TaskSpec, opts: &FlSessionOptions) -> Vec<Vec<ClientId>> {
    let keys = vrf_registry(spec.seed, spec.population as u32);
    (0..opts.rounds)
        .map(|i| {
            let r = wire_round(i);
            let claims: Vec<_> = (0..spec.population as u32)
                .filter_map(|id| self_select(&vrf_key_for(spec.seed, id), id, r, &opts.sample))
                .collect();
            seat_claims(&claims, &keys, r, &opts.sample).seated
        })
        .collect()
}

// ---------------------------------------------------------------------
// Shared deterministic derivations (both execution paths).
// ---------------------------------------------------------------------

/// Everything both paths derive identically before the first round.
struct Statics {
    spec: TaskSpec,
    root: Seed,
    z_star: f64,
    target_variance: f64,
    /// Model parameter count (the decode length).
    dim: usize,
    data: Dataset,
    train_set: Dataset,
    test_set: Dataset,
    shards: Vec<Vec<usize>>,
}

fn statics(spec: &TaskSpec, opts: &FlSessionOptions) -> Result<Statics, DordisError> {
    spec.validate().map_err(DordisError::Config)?;
    if spec.variant == Variant::NonPrivate {
        return Err(DordisError::Config(
            "sessions aggregate through secagg and need an integer encoding; \
             use a DP variant"
                .into(),
        ));
    }
    if opts.sample.population != spec.population {
        return Err(DordisError::Config(format!(
            "sampling population {} disagrees with task population {}",
            opts.sample.population, spec.population
        )));
    }
    if opts.rounds == 0 {
        return Err(DordisError::Config(
            "sessions need at least one round".into(),
        ));
    }
    let data = synthetic_classification(&spec.dataset);
    let (train_set, test_set) = train_test_split(&data, spec.test_fraction);
    let shards = dirichlet_partition(&train_set, spec.population, spec.dirichlet_alpha, spec.seed);
    let model = build_model(spec, &data);
    let dim = model.num_params();
    let enc_cfg = &spec.privacy.encoding;
    let mechanism = Mechanism::Skellam {
        l1_per_l2: enc_cfg.l1_per_l2(dim),
    };
    let noise_plan = plan(&PlannerConfig {
        epsilon: spec.privacy.epsilon,
        delta: spec.privacy.delta,
        rounds: opts.rounds,
        sample_rate: opts.sample.target_sample as f64 / spec.population as f64,
        mechanism,
    })?;
    let delta2 = enc_cfg.l2_sensitivity(dim);
    let sigma = noise_plan.noise_multiplier * delta2;
    Ok(Statics {
        spec: spec.clone(),
        root: master_seed(spec),
        z_star: noise_plan.noise_multiplier,
        target_variance: sigma * sigma,
        dim,
        data,
        train_set,
        test_set,
        shards,
    })
}

/// Per-round encoding rotation seed.
fn rotation_for(root: &Seed, r: u64) -> Seed {
    Prg::fork(root, b"session.rotation", r)
}

/// Per-(round, client) encoding/noise seed.
fn encode_seed_for(root: &Seed, r: u64, id: ClientId) -> Seed {
    Prg::fork(root, b"session.client", (r << 20) ^ u64::from(id))
}

/// The XNoise dropout tolerance for a cohort of `n` (must agree between
/// the coordinator's `noise_components` and the clients' plans).
fn xnoise_tolerance(variant: Variant, n: usize) -> usize {
    match variant {
        Variant::XNoise { tolerance_frac, .. } => {
            (((n as f64) * tolerance_frac).floor() as usize).min(n.saturating_sub(1))
        }
        _ => 0,
    }
}

/// The round's XNoise plan for a cohort of `n` (None for non-XNoise
/// variants).
fn xplan_for(st: &Statics, n: usize) -> Result<Option<XNoisePlan>, DordisError> {
    match st.spec.variant {
        Variant::XNoise { collusion_frac, .. } => {
            let tolerance = xnoise_tolerance(st.spec.variant, n);
            let threshold = n / 2 + 1;
            let collusion = ((threshold as f64) * collusion_frac).floor() as usize;
            Ok(Some(XNoisePlan::new(
                st.target_variance,
                n,
                tolerance,
                collusion,
                threshold,
            )?))
        }
        _ => Ok(None),
    }
}

/// One client's clipped local delta for a round, from the given global
/// model.
fn client_update(st: &Statics, round_index: u32, id: ClientId, global: &[f32]) -> Vec<f32> {
    let mut model = build_model(&st.spec, &st.data);
    let mut opt = build_optimizer(&st.spec);
    clipped_local_delta(
        &st.spec,
        model.as_mut(),
        opt.as_mut(),
        global,
        &st.train_set,
        &st.shards[id as usize],
        round_index,
        u64::from(id),
    )
}

/// Encodes + perturbs one client's update into its round input: the
/// DSkellam encoding, the variant's noise, and (XNoise) the component
/// seeds to be Shamir-backed through secagg.
fn encoded_input(
    st: &Statics,
    r: u64,
    id: ClientId,
    update: &[f32],
    n: usize,
    xplan: Option<&XNoisePlan>,
) -> Result<ClientInput, DordisError> {
    let enc_cfg = &st.spec.privacy.encoding;
    let bits = enc_cfg.bit_width;
    let encoder = Encoder::new(enc_cfg, rotation_for(&st.root, r));
    let update_f64: Vec<f64> = update.iter().map(|&x| f64::from(x)).collect();
    let round_seed = encode_seed_for(&st.root, r, id);
    let mut enc = encoder
        .encode(&update_f64, &round_seed)
        .map_err(DordisError::Dp)?;
    let noise_seeds = match st.spec.variant {
        Variant::Orig | Variant::Early => {
            let noise = skellam_vector(
                &Prg::fork(&round_seed, b"orig.noise", 0),
                b"dordis.orig",
                enc.len(),
                st.target_variance / n as f64,
            );
            add_noise_mod(&mut enc, &noise, bits);
            Vec::new()
        }
        Variant::Conservative { est_dropout } => {
            let noise = skellam_vector(
                &Prg::fork(&round_seed, b"con.noise", 0),
                b"dordis.con",
                enc.len(),
                st.target_variance / ((n as f64) * (1.0 - est_dropout)),
            );
            add_noise_mod(&mut enc, &noise, bits);
            Vec::new()
        }
        Variant::XNoise { .. } => {
            let plan = xplan.expect("xnoise plan built for xnoise variant");
            // The seeds travel through secagg's Shamir backup, so the
            // server can recover exactly the removable components —
            // keyed like the protocol path so the recovery is
            // reproducible.
            let seeds = derive_component_seeds(
                &client_round_seed(st.spec.seed, r, id),
                plan.dropout_tolerance,
            );
            perturb(&mut enc, &seeds, plan, bits)?;
            seeds
        }
        Variant::NonPrivate => unreachable!("rejected in statics()"),
    };
    Ok(ClientInput {
        vector: enc,
        noise_seeds,
    })
}

/// The round parameters for a seated cohort.
fn round_params(st: &Statics, r: u64, cohort: &[ClientId]) -> RoundParams {
    let n = cohort.len();
    RoundParams {
        round: r,
        clients: cohort.to_vec(),
        threshold: n / 2 + 1,
        bit_width: st.spec.privacy.encoding.bit_width,
        vector_len: Encoder::padded_len(st.dim),
        noise_components: xnoise_tolerance(st.spec.variant, n),
        threat_model: ThreatModel::SemiHonest,
        graph: MaskingGraph::Complete,
    }
}

/// What a round execution engine must hand back to the shared driver.
struct RoundNet {
    /// The modular aggregate before excess removal.
    sum: Vec<u64>,
    /// Survivors (U3), in outcome order.
    survivors: Vec<ClientId>,
    /// Recovered XNoise removal seeds.
    removal_seeds: Vec<(ClientId, usize, Seed)>,
    /// Stale frames discarded (0 for the in-memory engine).
    stale_frames: u64,
}

// ---------------------------------------------------------------------
// The shared session driver.
// ---------------------------------------------------------------------

/// Runs the full session given a per-round execution engine; everything
/// else — VRF cohorts, removal, decode, FedAvg, evaluation, the privacy
/// ledger — is this one code path for both engines.
fn run_fl_session(
    st: &Statics,
    opts: &FlSessionOptions,
    exec: impl FnMut(
        &Statics,
        u32,
        u64,
        &[ClientId],
        Option<&XNoisePlan>,
        &[f32],
    ) -> Result<RoundNet, DordisError>,
) -> Result<FlSessionReport, DordisError> {
    run_fl_session_at(st, opts, None, None, exec)
}

/// Round-commit callback: `(wire_round, serialized candidate
/// checkpoint)`; an `Err` unwinds the round before it takes effect.
type CommitFn<'a> = &'a mut dyn FnMut(u64, &[u8]) -> Result<(), DordisError>;

/// The resumable driver behind [`run_fl_session`]: optionally starts
/// from a restored [`DriverCheckpoint`] instead of round 0, and
/// optionally gates every round on a `commit` callback (checkpoint
/// replication). The commit is called with the serialized candidate
/// state *before* that state is installed — a round whose commit errors
/// leaves no trace in the ledger, the model, or the records, which is
/// exactly the crash-consistency contract the failover path relies on.
fn run_fl_session_at(
    st: &Statics,
    opts: &FlSessionOptions,
    resume: Option<DriverCheckpoint>,
    mut commit: Option<CommitFn<'_>>,
    mut exec: impl FnMut(
        &Statics,
        u32,
        u64,
        &[ClientId],
        Option<&XNoisePlan>,
        &[f32],
    ) -> Result<RoundNet, DordisError>,
) -> Result<FlSessionReport, DordisError> {
    let spec = &st.spec;
    let enc_cfg = &spec.privacy.encoding;
    let bits = enc_cfg.bit_width;
    let rate = opts.sample.target_sample as f64 / spec.population as f64;
    let cohorts = planned_cohorts(spec, opts);

    let mut model = build_model(spec, &st.data);
    let (start, mut ledger, mut global, mut records, mut rounds) = match resume {
        Some(ckpt) => {
            if ckpt.next_round > opts.rounds {
                return Err(DordisError::Config(format!(
                    "checkpoint resumes at round {} past the {}-round horizon",
                    ckpt.next_round, opts.rounds
                )));
            }
            (
                ckpt.next_round,
                ckpt.ledger,
                ckpt.global,
                ckpt.records,
                ckpt.rounds,
            )
        }
        None => {
            let mechanism = Mechanism::Skellam {
                l1_per_l2: enc_cfg.l1_per_l2(st.dim),
            };
            let ledger = PrivacyLedger::new(mechanism, spec.privacy.epsilon, spec.privacy.delta)?;
            (0, ledger, model.params(), Vec::new(), Vec::new())
        }
    };

    for i in start..opts.rounds {
        let r = wire_round(i);
        let cohort = &cohorts[i as usize];
        if cohort.len() < 2 {
            return Err(DordisError::Config(format!(
                "round {i}: VRF seated only {} client(s); raise over_selection or population",
                cohort.len()
            )));
        }
        let xplan = xplan_for(st, cohort.len())?;
        let net = exec(st, i, r, cohort, xplan.as_ref(), &global)?;
        let dropped_ct = cohort.len() - net.survivors.len();
        let mut sum = net.sum;
        if let Some(plan) = &xplan {
            if dropped_ct <= plan.dropout_tolerance {
                remove_excess(&mut sum, &net.removal_seeds, &net.survivors, plan, bits)?;
            }
        }
        let encoder = Encoder::new(enc_cfg, rotation_for(&st.root, r));
        let decoded = encoder.decode(&sum, st.dim);
        let achieved = achieved_noise_multiplier(
            spec.variant,
            st.z_star,
            st.target_variance,
            cohort.len(),
            net.survivors.len(),
            xplan.as_ref(),
        );
        // The watermark-guarded record: a resumed driver that replayed
        // an already-committed round would be rejected here instead of
        // double-counting privacy budget.
        ledger
            .record_round_at(r, rate, achieved)
            .map_err(DordisError::Dp)?;

        // FedAvg over survivors, then evaluate on the cadence.
        let mean: Vec<f32> = decoded
            .iter()
            .map(|&v| (v / net.survivors.len() as f64) as f32)
            .collect();
        apply_update(&mut global, &mean, 1.0);
        model.set_params(&global);
        let evaluate = i % spec.eval_every == spec.eval_every - 1 || i + 1 == opts.rounds;
        let (acc, ppl) = if evaluate {
            (
                Some(accuracy(model.as_ref(), &st.test_set)),
                Some(perplexity(model.as_ref(), &st.test_set)),
            )
        } else {
            (None, None)
        };
        records.push(RoundRecord {
            round: i,
            epsilon: ledger.realized_epsilon(),
            dropped: dropped_ct,
            achieved_multiplier: achieved,
            accuracy: acc,
            perplexity: ppl,
        });
        let dropped: Vec<ClientId> = cohort
            .iter()
            .copied()
            .filter(|id| !net.survivors.contains(id))
            .collect();
        rounds.push(SessionRoundOutcome {
            round: i,
            wire_round: r,
            cohort: cohort.clone(),
            survivors: net.survivors,
            dropped,
            sum,
            stale_frames: net.stale_frames,
        });

        // Checkpoint-then-commit: ship the round's candidate state and
        // only treat it as durable once the commit callback returns. A
        // commit error unwinds the whole session — the caller must
        // discard this driver (a backup may already hold a divergent
        // view), so nothing recorded above ever escapes uncommitted.
        if let Some(cb) = commit.as_mut() {
            let ckpt = DriverCheckpoint {
                next_round: i + 1,
                ledger: ledger.clone(),
                global: global.clone(),
                records: records.clone(),
                rounds: rounds.clone(),
            };
            cb(r, &ckpt.to_bytes())?;
        }
    }

    model.set_params(&global);
    Ok(FlSessionReport {
        training: TrainingReport {
            task: spec.name.clone(),
            rounds_completed: opts.rounds,
            epsilon_consumed: ledger.realized_epsilon(),
            final_accuracy: accuracy(model.as_ref(), &st.test_set),
            final_perplexity: perplexity(model.as_ref(), &st.test_set),
            stopped_early: false,
            records,
        },
        rounds,
    })
}

/// The droppers that fire in round `i` *and* are seated in its cohort.
fn round_droppers(opts: &FlSessionOptions, i: u32, cohort: &[ClientId]) -> Vec<MidStreamDrop> {
    opts.droppers
        .iter()
        .copied()
        .filter(|d| d.round == i && cohort.contains(&d.client))
        .collect()
}

// ---------------------------------------------------------------------
// In-memory reference path.
// ---------------------------------------------------------------------

/// Runs the session fully in memory: per-round VRF cohorts, the secagg
/// *driver* with scripted dropouts, and the shared FedAvg/ledger tail.
///
/// # Errors
///
/// Invalid configuration, protocol aborts, noise-enforcement failures.
pub fn train_session(
    spec: &TaskSpec,
    opts: &FlSessionOptions,
) -> Result<FlSessionReport, DordisError> {
    let st = statics(spec, opts)?;
    run_fl_session(&st, opts, |st, i, r, cohort, xplan, global| {
        let mut inputs = std::collections::BTreeMap::new();
        for &id in cohort {
            let update = client_update(st, i, id, global);
            inputs.insert(id, encoded_input(st, r, id, &update, cohort.len(), xplan)?);
        }
        let mut dropout = DropoutSchedule::none();
        for d in round_droppers(opts, i, cohort) {
            // A mid-chunk-stream failure never reaches U3: in the
            // driver's stage model that is a BeforeMaskedInput drop.
            dropout.drop_at(d.client, DropStage::BeforeMaskedInput);
        }
        let (outcome, _stats) = run_round(RoundSpec {
            params: round_params(st, r, cohort),
            inputs,
            dropout,
            rng_seed: round_rng_seed(st.spec.seed, r),
        })
        .map_err(DordisError::SecAgg)?;
        Ok(RoundNet {
            sum: outcome.sum,
            survivors: outcome.survivors,
            removal_seeds: outcome.removal_seeds,
            stale_frames: 0,
        })
    })
}

// ---------------------------------------------------------------------
// Networked path.
// ---------------------------------------------------------------------

/// Serializes the global model into the Setup payload.
fn global_to_bytes(global: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(global.len() * 4);
    for v in global {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Parses a Setup payload back into the global model.
fn bytes_to_global(payload: &[u8]) -> Result<Vec<f32>, NetError> {
    if !payload.len().is_multiple_of(4) {
        return Err(NetError::Protocol(format!(
            "global-model payload length {} is not a multiple of 4",
            payload.len()
        )));
    }
    Ok(payload
        .chunks_exact(4)
        .map(|b| f32::from_le_bytes(b.try_into().expect("4 bytes")))
        .collect())
}

/// Builds the coordinator `SessionConfig` shared by the networked
/// drivers: VRF-claim seating, round params derived from the shared
/// statics — and, for the failover path, a replication link plus an
/// injected-crash plan. `first_index` is the 0-based session round the
/// coordinator starts at (a takeover successor starts past the
/// committed prefix).
fn networked_session_cfg(
    st: &Arc<Statics>,
    opts: &FlSessionOptions,
    first_index: u32,
    replica: Option<Box<dyn EventedChannel>>,
    faults: FaultPlan,
) -> SessionConfig<'static> {
    let population = st.spec.population as u32;
    let sample = opts.sample;
    let registry = vrf_registry(st.spec.seed, population);
    let params_st = Arc::clone(st);
    SessionConfig {
        first_round: wire_round(first_index),
        rounds: u64::from(opts.rounds - first_index),
        join_timeout: opts.join_timeout,
        stage_timeout: opts.stage_timeout,
        chunks: opts.chunks,
        chunk_compute: None,
        tick: dordis_net::coordinator::CoordinatorConfig::DEFAULT_TICK,
        mode: opts.mode,
        workers: opts.workers,
        shards: opts.shards,
        ingress_budget: opts.ingress_budget,
        announce: true,
        population: (0..population).collect(),
        seating: Seating::Claims(Box::new(move |r, raw_claims| {
            let mut claims = Vec::new();
            let mut rejected = Vec::new();
            for (id, bytes) in raw_claims {
                match decode_claim(bytes) {
                    Ok(c) if c.client == *id => claims.push(c),
                    Ok(_) => rejected.push((*id, "claim names another client".to_string())),
                    Err(why) => rejected.push((*id, why)),
                }
            }
            let SeatedCohort {
                seated,
                rejected: invalid,
            } = seat_claims(&claims, &registry, r, &sample);
            rejected.extend(invalid);
            SeatingOutcome { seated, rejected }
        })),
        params_for: Box::new(move |r, seated| round_params(&params_st, r, seated)),
        telemetry: opts.telemetry.clone(),
        metrics_addr: None,
        replica,
        faults,
    }
}

/// Executes one networked round through `session` and validates what
/// the coordinator seated against the driver's planned VRF cohort.
///
/// The driver's noise plan, removal, and ledger entry are all derived
/// from the *planned* cohort — if the coordinator seated anything else
/// (a slow claim missed the join window), those derivations are wrong
/// for what actually ran, so fail loudly instead of recording a
/// corrupted round.
fn networked_round(
    session: &mut Session,
    r: u64,
    cohort: &[ClientId],
    global: &[f32],
) -> Result<RoundNet, NetError> {
    let report = session.run_round(&global_to_bytes(global))?;
    if report.round != r {
        return Err(NetError::Protocol(format!(
            "session executed round {} where the driver expected {r}",
            report.round
        )));
    }
    let mut seated: Vec<ClientId> = report
        .outcome
        .survivors
        .iter()
        .chain(report.outcome.dropped.iter())
        .copied()
        .collect();
    seated.sort_unstable();
    let mut planned = cohort.to_vec();
    planned.sort_unstable();
    if seated != planned {
        return Err(NetError::Protocol(format!(
            "round {r}: seated cohort {seated:?} diverged from the planned VRF cohort \
             {planned:?} (a claim missed the join window?)"
        )));
    }
    Ok(RoundNet {
        sum: report.outcome.sum,
        survivors: report.outcome.survivors,
        removal_seeds: report.outcome.removal_seeds,
        stale_frames: report.stale_frames,
    })
}

/// Runs the session over `dordis-net`: a session coordinator on this
/// thread, one persistent loopback connection per population member,
/// per-round VRF claims verified-and-trimmed at the join stage, the
/// global model broadcast in each Setup payload, and scripted
/// mid-stream droppers that reconnect and re-join the next round.
///
/// # Errors
///
/// Invalid configuration, protocol aborts, transport failures,
/// noise-enforcement failures.
pub fn train_session_networked(
    spec: &TaskSpec,
    opts: &FlSessionOptions,
) -> Result<FlSessionReport, DordisError> {
    let st = Arc::new(statics(spec, opts)?);
    let population = spec.population as u32;
    let sample = opts.sample;
    let seed = spec.seed;
    let droppers: Arc<Vec<MidStreamDrop>> = Arc::new(opts.droppers.clone());
    let (hub, mut acceptor) = LoopbackHub::new();

    // ---- Client threads: one persistent connection each, reconnect
    // after scripted failures. ----
    let mut handles = Vec::new();
    for id in 0..population {
        let hub = hub.clone();
        let st = Arc::clone(&st);
        let droppers = Arc::clone(&droppers);
        handles.push(std::thread::spawn(move || -> Result<(), String> {
            let key = vrf_key_for(seed, id);
            loop {
                let mut chan = hub
                    .connect(&format!("client-{id}"))
                    .map_err(|e| format!("client {id} connect: {e}"))?;
                let client_opts = SessionClientOptions {
                    id,
                    rng_seed: seed,
                    recv_timeout: Duration::from_secs(120),
                    silent_linger: Duration::from_secs(1),
                };
                let report = run_session_client(
                    &mut chan,
                    &client_opts,
                    |r| self_select(&key, id, r, &sample).map(|c| encode_claim(&c)),
                    |r| {
                        droppers
                            .iter()
                            .find(|d| wire_round(d.round) == r && d.client == id)
                            .map(|d| FailPoint {
                                stage: FailStage::MaskedInputAfterChunks(d.after_chunks),
                                action: FailAction::Disconnect,
                            })
                    },
                    |r, _params, cohort, payload| {
                        let global = bytes_to_global(payload)?;
                        let i = (r - 1) as u32;
                        // XNoise planning and encoding key off the
                        // *union* cohort size from Setup: in a sharded
                        // round `params.clients` is just this client's
                        // shard roster, and a shard-sized noise plan
                        // would corrupt the privacy accounting.
                        let n = usize::from(cohort);
                        let update = client_update(&st, i, id, &global);
                        let xplan = xplan_for(&st, n)
                            .map_err(|e| NetError::Protocol(format!("xnoise plan: {e}")))?;
                        encoded_input(&st, r, id, &update, n, xplan.as_ref())
                            .map_err(|e| NetError::Protocol(format!("encode: {e}")))
                    },
                    |_| None,
                )
                .map_err(|e| format!("client {id}: {e}"))?;
                match report.end {
                    SessionEndKind::Ended => return Ok(()),
                    // Scripted dropout: reconnect and re-join from the
                    // next round's announce.
                    SessionEndKind::Failed { .. } => continue,
                    SessionEndKind::Aborted { round, reason } => {
                        return Err(format!("client {id} aborted in round {round}: {reason}"))
                    }
                    SessionEndKind::ServerAborted { reason } => {
                        return Err(format!("client {id}: server aborted: {reason}"))
                    }
                }
            }
        }));
    }

    // ---- The session coordinator. ----
    let session_cfg = networked_session_cfg(&st, opts, 0, None, FaultPlan::none());
    let mut session = Session::new(&mut acceptor, session_cfg)
        .map_err(|e| DordisError::Config(format!("session: {e}")))?;

    let result = run_fl_session(&st, opts, |_st, _i, r, cohort, _xplan, global| {
        networked_round(&mut session, r, cohort, global)
            .map_err(|e| DordisError::Config(format!("networked round {r}: {e}")))
    });
    session.finish();
    for h in handles {
        h.join()
            .map_err(|_| DordisError::Config("client thread panicked".into()))?
            .map_err(DordisError::Config)?;
    }
    result
}

// ---------------------------------------------------------------------
// Failover path: replicated primary, backup takeover, client redial.
// ---------------------------------------------------------------------

/// A scripted coordinator crash for the failover harness.
#[derive(Clone, Copy, Debug)]
pub struct CrashSpec {
    /// 0-based session round index the kill fires in.
    pub round: u32,
    /// Where inside that round the primary dies.
    pub point: KillPoint,
}

/// Runs a *replicated* networked session and (optionally) kills the
/// primary coordinator partway through: a primary on one loopback
/// address ships a [`DriverCheckpoint`] to a backup at every round
/// boundary through [`Session::commit_round`]; clients redial with
/// bounded jittered [`Backoff`], flipping between the two addresses
/// until one answers; on the primary's death the backup takes over from
/// the last acked checkpoint and serves the remaining rounds.
///
/// With `crash: None` the session still runs fully replicated (every
/// round gated on the backup's ack) and retires cleanly — the overhead
/// path. With a [`CrashSpec`] the primary dies at the scripted
/// [`KillPoint`] and the report is produced by the successor. Either
/// way the result is bit-equal to [`train_session_networked`] /
/// [`train_session`]: a crash mid-round re-runs that round from the
/// committed prefix (same VRF cohort, seeds, and global model ⇒ same
/// aggregate), a crash between the ack and the commit resumes *past*
/// the round the backup already holds, and the ledger's watermark
/// rejects any double-record across the hand-off.
///
/// # Errors
///
/// Invalid configuration, unrecoverable protocol/transport failures,
/// checkpoint corruption.
pub fn train_session_networked_failover(
    spec: &TaskSpec,
    opts: &FlSessionOptions,
    crash: Option<CrashSpec>,
) -> Result<FlSessionReport, DordisError> {
    let st = Arc::new(statics(spec, opts)?);
    let population = spec.population as u32;
    let sample = opts.sample;
    let seed = spec.seed;
    let droppers: Arc<Vec<MidStreamDrop>> = Arc::new(opts.droppers.clone());
    let shutdown = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let (hub_a, mut acceptor_a) = LoopbackHub::new();
    let (hub_b, mut acceptor_b) = LoopbackHub::new();
    let (repl_primary, mut repl_backup) = LoopbackChannel::pair("replication");

    // ---- The backup coordinator's watch thread. The lease is generous
    // — takeover here is driven by the replication channel closing with
    // the crashed primary, which the backup sees immediately. ----
    let lease = opts.join_timeout + opts.stage_timeout * 4;
    let backup_telemetry = opts.telemetry.clone();
    let backup_handle =
        std::thread::spawn(move || run_backup(&mut repl_backup, lease, &backup_telemetry));

    // ---- Client threads: redial with jittered backoff, flipping
    // between the two coordinator addresses on every connect failure or
    // transport death, so orphans of the crash find the successor
    // within a few backoff steps. ----
    let mut handles = Vec::new();
    for id in 0..population {
        let hub_a = hub_a.clone();
        let hub_b = hub_b.clone();
        let st = Arc::clone(&st);
        let droppers = Arc::clone(&droppers);
        let shutdown = Arc::clone(&shutdown);
        handles.push(std::thread::spawn(move || -> Result<(), String> {
            let key = vrf_key_for(seed, id);
            let mut on_backup = false;
            let mut backoff = Backoff::new(
                u64::from(id),
                Duration::from_millis(2),
                Duration::from_millis(200),
            );
            loop {
                if backoff.attempts() > 2_000 {
                    return Err(format!("client {id}: no coordinator reachable"));
                }
                let hub = if on_backup { &hub_b } else { &hub_a };
                let mut chan = match hub.connect(&format!("client-{id}")) {
                    Ok(c) => c,
                    Err(_) => {
                        if shutdown.load(std::sync::atomic::Ordering::Relaxed) {
                            return Ok(());
                        }
                        on_backup = !on_backup;
                        backoff.sleep();
                        continue;
                    }
                };
                let client_opts = SessionClientOptions {
                    id,
                    rng_seed: seed,
                    // Short enough that a client parked on a dead-but-
                    // accepting address re-enters the redial loop well
                    // inside the takeover window.
                    recv_timeout: Duration::from_secs(5),
                    silent_linger: Duration::from_secs(1),
                };
                let outcome = run_session_client(
                    &mut chan,
                    &client_opts,
                    |r| self_select(&key, id, r, &sample).map(|c| encode_claim(&c)),
                    |r| {
                        droppers
                            .iter()
                            .find(|d| wire_round(d.round) == r && d.client == id)
                            .map(|d| FailPoint {
                                stage: FailStage::MaskedInputAfterChunks(d.after_chunks),
                                action: FailAction::Disconnect,
                            })
                    },
                    |r, _params, cohort, payload| {
                        let global = bytes_to_global(payload)?;
                        let i = (r - 1) as u32;
                        let n = usize::from(cohort);
                        let update = client_update(&st, i, id, &global);
                        let xplan = xplan_for(&st, n)
                            .map_err(|e| NetError::Protocol(format!("xnoise plan: {e}")))?;
                        encoded_input(&st, r, id, &update, n, xplan.as_ref())
                            .map_err(|e| NetError::Protocol(format!("encode: {e}")))
                    },
                    |_| None,
                );
                match outcome {
                    Ok(report) => match report.end {
                        SessionEndKind::Ended => return Ok(()),
                        // Scripted dropout: rejoin the same coordinator
                        // from the next round's announce.
                        SessionEndKind::Failed { .. } => continue,
                        SessionEndKind::Aborted { round, reason } => {
                            return Err(format!("client {id} aborted in round {round}: {reason}"))
                        }
                        SessionEndKind::ServerAborted { reason } => {
                            return Err(format!("client {id}: server aborted: {reason}"))
                        }
                    },
                    // The coordinator died under us (or we out-waited a
                    // takeover window): flip addresses and redial.
                    Err(NetError::Closed | NetError::Timeout | NetError::Unavailable) => {
                        on_backup = !on_backup;
                        backoff.sleep();
                        continue;
                    }
                    Err(e) => return Err(format!("client {id}: {e}")),
                }
            }
        }));
    }

    // ---- Primary, then (after a scripted crash) the successor. Runs
    // in a move closure so every coordinator-side resource is dropped
    // by the time the client threads are reaped below. ----
    let backup_res = std::cell::OnceCell::new();
    let outcome = (|| -> Result<FlSessionReport, DordisError> {
        let crashed = Cell::new(false);
        let coord_faults = match crash {
            Some(CrashSpec { round, point }) if point != KillPoint::BetweenAckAndCommit => {
                FaultPlan::kill_at(wire_round(round), point)
            }
            _ => FaultPlan::none(),
        };
        let commit_faults = match crash {
            Some(CrashSpec {
                round,
                point: KillPoint::BetweenAckAndCommit,
            }) => FaultPlan::kill_at(wire_round(round), KillPoint::BetweenAckAndCommit),
            _ => FaultPlan::none(),
        };
        let cfg_a = networked_session_cfg(&st, opts, 0, Some(Box::new(repl_primary)), coord_faults);
        let session = RefCell::new(
            Session::new(&mut acceptor_a, cfg_a)
                .map_err(|e| DordisError::Config(format!("primary session: {e}")))?,
        );
        let mut commit_cb = |r: u64, bytes: &[u8]| -> Result<(), DordisError> {
            session
                .borrow_mut()
                .commit_round(r, bytes)
                .map_err(|e| DordisError::Config(format!("commit round {r}: {e}")))?;
            // The ack is in: the backup now holds round `r`. A kill
            // here proves the successor resumes *past* r instead of
            // double-recording it.
            commit_faults
                .trip(KillPoint::BetweenAckAndCommit, r)
                .map_err(|e| {
                    crashed.set(true);
                    DordisError::Config(format!("{e}"))
                })
        };
        let primary_run = run_fl_session_at(
            &st,
            opts,
            None,
            Some(&mut commit_cb),
            |_st, _i, r, cohort, _xplan, global| {
                networked_round(&mut session.borrow_mut(), r, cohort, global).map_err(|e| {
                    if FaultPlan::is_injected(&e) {
                        crashed.set(true);
                    }
                    DordisError::Config(format!("networked round {r}: {e}"))
                })
            },
        );
        match primary_run {
            Ok(report) => {
                // Clean end: retire the primary role (the backup sees
                // SessionEnd, not a lease break) and wrap up.
                session.into_inner().finish();
                let _ = backup_res.set(backup_handle.join());
                return Ok(report);
            }
            Err(e) if !crashed.get() => {
                drop(session);
                let _ = backup_res.set(backup_handle.join());
                return Err(e);
            }
            Err(_) => {}
        }

        // ---- Failover. Dropping the dead primary closes every client
        // channel and the replication link — no SessionEnd, no retire:
        // exactly what a SIGKILL looks like from the outside. ----
        drop(session);
        drop(acceptor_a);
        let takeover = match backup_handle.join() {
            Ok(Ok(BackupOutcome::Takeover(t))) => t,
            Ok(Ok(BackupOutcome::SessionEnded(_))) => {
                return Err(DordisError::Config(
                    "backup saw a clean session end after a scripted crash".into(),
                ))
            }
            Ok(Err(e)) => return Err(DordisError::Config(format!("backup failed: {e}"))),
            Err(_) => return Err(DordisError::Config("backup thread panicked".into())),
        };
        let resume = takeover
            .checkpoint
            .as_ref()
            .map(|c| DriverCheckpoint::from_bytes(&c.app_state))
            .transpose()?;
        // Died before the first commit ⇒ no checkpoint ⇒ the successor
        // starts the whole session from scratch.
        let next = resume.as_ref().map_or(0, |c| c.next_round);
        let cfg_b = networked_session_cfg(&st, opts, next, None, FaultPlan::none());
        let session_b = RefCell::new(
            Session::new(&mut acceptor_b, cfg_b)
                .map_err(|e| DordisError::Config(format!("successor session: {e}")))?,
        );
        let result = run_fl_session_at(
            &st,
            opts,
            resume,
            None,
            |_st, _i, r, cohort, _xplan, global| {
                networked_round(&mut session_b.borrow_mut(), r, cohort, global)
                    .map_err(|e| DordisError::Config(format!("failover round {r}: {e}")))
            },
        );
        if result.is_ok() {
            session_b.into_inner().finish();
        }
        result
    })();

    // Coordinator-side resources are gone; release any still-dialing
    // clients and reap the threads.
    shutdown.store(true, std::sync::atomic::Ordering::Relaxed);
    for h in handles {
        let joined = h
            .join()
            .map_err(|_| DordisError::Config("client thread panicked".into()))?;
        if outcome.is_ok() {
            joined.map_err(DordisError::Config)?;
        }
    }
    outcome
}
