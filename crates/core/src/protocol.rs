//! Full-protocol aggregation: the semantic pipeline backed by the real
//! SecAgg / SecAgg+ state machines.
//!
//! Used by integration tests and examples to demonstrate end-to-end
//! equivalence: masking cancels exactly, so the protocol-path aggregate
//! equals the semantic modular sum, and XNoise removal over the
//! protocol-delivered seeds equals semantic removal.

use std::collections::BTreeMap;

use dordis_crypto::prg::Seed;
use dordis_secagg::client::ClientInput;
use dordis_secagg::driver::{run_round, DropStage, DropoutSchedule, RoundSpec, RoundStats};
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::{ClientId, RoundParams, ThreatModel};
use dordis_xnoise::decomposition::XNoisePlan;
use dordis_xnoise::enforcement::{derive_component_seeds, perturb, remove_excess};

use crate::DordisError;

/// Configuration for one protocol-backed aggregation round.
#[derive(Clone, Debug)]
pub struct ProtocolRoundConfig {
    /// Round number.
    pub round: u64,
    /// SecAgg threshold `t`.
    pub threshold: usize,
    /// Ring bit width.
    pub bit_width: u32,
    /// Masking graph (complete = SecAgg, Harary = SecAgg+).
    pub graph: MaskingGraph,
    /// Threat model.
    pub threat_model: ThreatModel,
    /// XNoise plan (None = aggregate without noise enforcement).
    pub xnoise: Option<XNoisePlan>,
    /// Requested chunk count `m` for the networked data plane
    /// (`None` = planner-chosen via the §4.2 cost-model sweep). The
    /// in-memory driver path is the unchunked reference the chunked
    /// networked path is pinned bit-equal against.
    pub chunks: Option<usize>,
    /// Deterministic seed.
    pub seed: u64,
}

/// Result of a protocol-backed round.
#[derive(Clone, Debug)]
pub struct ProtocolRoundOutcome {
    /// The aggregate over survivors, after XNoise removal (if enabled).
    pub sum: Vec<u64>,
    /// Surviving client ids.
    pub survivors: Vec<ClientId>,
    /// Dropped client ids.
    pub dropped: Vec<ClientId>,
    /// Traffic statistics from the protocol run.
    pub stats: RoundStats,
}

/// Builds the round parameters and perturbed per-client inputs shared by
/// the in-memory and networked execution paths.
///
/// # Errors
///
/// Rejects empty update sets; propagates noise-enforcement failures.
fn build_round(
    cfg: &ProtocolRoundConfig,
    updates: &BTreeMap<ClientId, Vec<u64>>,
) -> Result<(RoundParams, BTreeMap<ClientId, ClientInput>), DordisError> {
    let clients: Vec<ClientId> = updates.keys().copied().collect();
    let vector_len = updates
        .values()
        .next()
        .map(Vec::len)
        .ok_or_else(|| DordisError::Config("no updates".into()))?;

    let noise_components = cfg.xnoise.as_ref().map_or(0, |p| p.dropout_tolerance);
    let params = RoundParams {
        round: cfg.round,
        clients,
        threshold: cfg.threshold,
        bit_width: cfg.bit_width,
        vector_len,
        noise_components,
        threat_model: cfg.threat_model,
        graph: cfg.graph,
    };

    // Build per-client inputs: perturb with decomposed noise, attach the
    // component seeds for Shamir backup.
    let mut inputs: BTreeMap<ClientId, ClientInput> = BTreeMap::new();
    for (&id, update) in updates {
        let mut vector = update.clone();
        let noise_seeds: Vec<Seed> = if let Some(plan) = &cfg.xnoise {
            let round_seed = client_round_seed(cfg.seed, cfg.round, id);
            let seeds = derive_component_seeds(&round_seed, plan.dropout_tolerance);
            perturb(&mut vector, &seeds, plan, cfg.bit_width)?;
            seeds
        } else {
            Vec::new()
        };
        inputs.insert(
            id,
            ClientInput {
                vector,
                noise_seeds,
            },
        );
    }
    Ok((params, inputs))
}

/// Applies post-round XNoise removal and assembles the outcome.
fn finish_round(
    cfg: &ProtocolRoundConfig,
    n: usize,
    outcome: dordis_secagg::server::RoundOutcome,
    stats: RoundStats,
) -> Result<ProtocolRoundOutcome, DordisError> {
    let mut sum = outcome.sum;
    if let Some(plan) = &cfg.xnoise {
        let dropped = n - outcome.survivors.len();
        if dropped <= plan.dropout_tolerance {
            remove_excess(
                &mut sum,
                &outcome.removal_seeds,
                &outcome.survivors,
                plan,
                cfg.bit_width,
            )?;
        }
    }
    Ok(ProtocolRoundOutcome {
        sum,
        survivors: outcome.survivors,
        dropped: outcome.dropped,
        stats,
    })
}

/// Runs one aggregation round through the full protocol stack.
///
/// `updates` maps client id to its encoded (un-noised) update; noise is
/// added here per the XNoise plan before masking, exactly as the client
/// stack would. `drop_before_masking` lists clients that vanish after key
/// sharing (the paper's dropout model).
///
/// # Errors
///
/// Propagates protocol aborts and noise-enforcement failures.
pub fn run_protocol_round(
    cfg: &ProtocolRoundConfig,
    updates: &BTreeMap<ClientId, Vec<u64>>,
    drop_before_masking: &[ClientId],
) -> Result<ProtocolRoundOutcome, DordisError> {
    let (params, inputs) = build_round(cfg, updates)?;
    let n = params.clients.len();
    let mut dropout = DropoutSchedule::none();
    for &id in drop_before_masking {
        dropout.drop_at(id, DropStage::BeforeMaskedInput);
    }
    let (outcome, stats) = run_round(RoundSpec {
        params,
        inputs,
        dropout,
        rng_seed: cfg.seed,
    })?;
    finish_round(cfg, n, outcome, stats)
}

/// Runs the same aggregation round through `dordis-net`: a loopback
/// deployment with a real coordinator, client runtimes on threads, a
/// wire codec in between, and dropout *detected* by the coordinator
/// rather than scripted. Produces the same [`ProtocolRoundOutcome`] as
/// [`run_protocol_round`] — the equivalence tests pin the two paths to
/// identical sums and survivor sets.
///
/// `drop_before_masking` clients disconnect just before sending their
/// masked input (the networked analogue of the paper's dropout model).
///
/// # Errors
///
/// Propagates protocol aborts, transport failures, and
/// noise-enforcement failures.
pub fn run_protocol_round_networked(
    cfg: &ProtocolRoundConfig,
    updates: &BTreeMap<ClientId, Vec<u64>>,
    drop_before_masking: &[ClientId],
) -> Result<ProtocolRoundOutcome, DordisError> {
    use dordis_net::coordinator::{run_coordinator, CoordinatorConfig};
    use dordis_net::runtime::{run_client, ClientOptions, FailAction, FailPoint, FailStage};
    use dordis_net::transport::LoopbackHub;
    use std::sync::Arc;
    use std::time::Duration;

    let (params, inputs) = build_round(cfg, updates)?;
    let n = params.clients.len();
    // Planner-chosen chunk count unless pinned by the caller (§4.2).
    let chunks = cfg.chunks.unwrap_or_else(|| {
        dordis_pipeline::planned_chunk_count(params.vector_len, n, params.bit_width)
    });

    // PKI stand-in for the malicious model, identical to the driver's.
    let registry = (cfg.threat_model == ThreatModel::Malicious).then(|| {
        Arc::new(
            params
                .clients
                .iter()
                .map(|&id| {
                    (
                        id,
                        dordis_secagg::driver::signing_key_for(cfg.seed, id).verifying_key(),
                    )
                })
                .collect::<BTreeMap<_, _>>(),
        )
    });

    let (hub, mut acceptor) = LoopbackHub::new();
    let mut handles = Vec::new();
    for (&id, input) in &inputs {
        let hub = hub.clone();
        let input = input.clone();
        let fail = drop_before_masking.contains(&id).then_some(FailPoint {
            stage: FailStage::MaskedInput,
            action: FailAction::Disconnect,
        });
        let registry = registry.clone();
        let seed = cfg.seed;
        handles.push(std::thread::spawn(move || {
            let mut chan = hub
                .connect(&format!("client-{id}"))
                .map_err(|e| format!("connect: {e}"))?;
            let opts = ClientOptions {
                id,
                rng_seed: seed,
                fail,
                recv_timeout: Duration::from_secs(60),
                silent_linger: Duration::from_secs(1),
            };
            run_client(
                &mut chan,
                &opts,
                move |_| Ok(input),
                move |_| {
                    registry.map(|reg| dordis_secagg::client::Identity {
                        signing: dordis_secagg::driver::signing_key_for(seed, id),
                        registry: reg,
                    })
                },
            )
            .map_err(|e| format!("client {id}: {e}"))
        }));
    }

    let report = run_coordinator(
        &mut acceptor,
        &CoordinatorConfig::new(
            params,
            Duration::from_secs(30),
            Duration::from_secs(30),
            chunks,
            None,
        ),
    )
    .map_err(|e| DordisError::Config(format!("networked round: {e}")))?;
    for h in handles {
        h.join()
            .map_err(|_| DordisError::Config("client thread panicked".into()))?
            .map_err(DordisError::Config)?;
    }
    finish_round(cfg, n, report.outcome, report.stats)
}

/// The deterministic demo update used by the `dordis serve`/`join` TCP
/// demo: both sides derive it from the client id alone, so the server
/// can verify the survivor aggregate without ever seeing an individual
/// update.
#[must_use]
pub fn demo_update(client: ClientId, dim: usize, bit_width: u32) -> Vec<u64> {
    let mask = (1u64 << bit_width) - 1;
    (0..dim)
        .map(|i| (u64::from(client) * 1009 + i as u64 * 31 + 7) & mask)
        .collect()
}

/// The deterministic per-(run, round, client) seed used for noise
/// derivation — shared with the semantic path so the two can be compared
/// bit for bit.
#[must_use]
pub fn client_round_seed(run_seed: u64, round: u64, client: ClientId) -> Seed {
    let mut s = [0u8; 32];
    s[..8].copy_from_slice(&run_seed.to_le_bytes());
    s[8..16].copy_from_slice(&round.to_le_bytes());
    s[16..20].copy_from_slice(&client.to_le_bytes());
    s[31] = 0xc5;
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use dordis_secagg::mask::ring_mask;

    const BITS: u32 = 16;
    const DIM: usize = 12;

    fn updates(n: u32) -> BTreeMap<ClientId, Vec<u64>> {
        (0..n)
            .map(|id| {
                (
                    id,
                    (0..DIM)
                        .map(|i| (u64::from(id) * 97 + i as u64 * 13) & ring_mask(BITS))
                        .collect(),
                )
            })
            .collect()
    }

    fn expected_sum(updates: &BTreeMap<ClientId, Vec<u64>>, survivors: &[ClientId]) -> Vec<u64> {
        let mut sum = vec![0u64; DIM];
        for id in survivors {
            for (s, v) in sum.iter_mut().zip(updates[id].iter()) {
                *s = (*s + *v) & ring_mask(BITS);
            }
        }
        sum
    }

    fn config(xnoise: Option<XNoisePlan>) -> ProtocolRoundConfig {
        ProtocolRoundConfig {
            round: 5,
            threshold: 5,
            bit_width: BITS,
            graph: MaskingGraph::Complete,
            threat_model: ThreatModel::SemiHonest,
            xnoise,
            chunks: Some(1),
            seed: 99,
        }
    }

    #[test]
    fn no_noise_protocol_round_equals_plain_sum() {
        let ups = updates(8);
        let out = run_protocol_round(&config(None), &ups, &[]).unwrap();
        assert_eq!(out.sum, expected_sum(&ups, &out.survivors));
        assert_eq!(out.survivors.len(), 8);
    }

    #[test]
    fn xnoise_protocol_round_residual_noise_only() {
        // With XNoise, the protocol aggregate equals plain sum + residual
        // noise of variance σ²∗ (small here so the check is loose but
        // nontrivial: every coordinate must be within a few σ of truth).
        let ups = updates(8);
        let plan = XNoisePlan::new(9.0, 8, 3, 0, 5).unwrap();
        let out = run_protocol_round(&config(Some(plan)), &ups, &[]).unwrap();
        let truth = expected_sum(&ups, &out.survivors);
        let half = 1i64 << (BITS - 1);
        let modulus = 1i64 << BITS;
        for (got, want) in out.sum.iter().zip(truth.iter()) {
            let mut diff = *got as i64 - *want as i64;
            if diff > half {
                diff -= modulus;
            }
            if diff < -half {
                diff += modulus;
            }
            assert!(diff.abs() < 30, "residual {diff} too large");
        }
    }

    #[test]
    fn xnoise_protocol_round_with_dropout() {
        let ups = updates(8);
        let plan = XNoisePlan::new(9.0, 8, 3, 0, 5).unwrap();
        let out = run_protocol_round(&config(Some(plan)), &ups, &[2, 6]).unwrap();
        assert_eq!(out.dropped, vec![2, 6]);
        let truth = expected_sum(&ups, &out.survivors);
        let half = 1i64 << (BITS - 1);
        let modulus = 1i64 << BITS;
        for (got, want) in out.sum.iter().zip(truth.iter()) {
            let mut diff = *got as i64 - *want as i64;
            if diff > half {
                diff -= modulus;
            }
            if diff < -half {
                diff += modulus;
            }
            assert!(diff.abs() < 30, "residual {diff} too large");
        }
    }

    #[test]
    fn secagg_plus_path_works() {
        let ups = updates(12);
        let mut cfg = config(None);
        cfg.graph = MaskingGraph::harary_for(12);
        cfg.threshold = 6;
        let out = run_protocol_round(&cfg, &ups, &[]).unwrap();
        assert_eq!(out.sum, expected_sum(&ups, &out.survivors));
    }

    #[test]
    fn malicious_path_works() {
        let ups = updates(8);
        let mut cfg = config(Some(XNoisePlan::new(4.0, 8, 2, 0, 5).unwrap()));
        cfg.threat_model = ThreatModel::Malicious;
        let out = run_protocol_round(&cfg, &ups, &[1]).unwrap();
        assert_eq!(out.dropped, vec![1]);
        assert!(out.stats.stage("ConsistencyCheck").is_some());
    }

    #[test]
    fn empty_updates_rejected() {
        let err = run_protocol_round(&config(None), &BTreeMap::new(), &[]);
        assert!(matches!(err, Err(DordisError::Config(_))));
    }

    #[test]
    fn networked_round_matches_driver_round() {
        let ups = updates(8);
        let cfg = config(None);
        let mem = run_protocol_round(&cfg, &ups, &[3]).unwrap();
        let net = run_protocol_round_networked(&cfg, &ups, &[3]).unwrap();
        assert_eq!(net.sum, mem.sum);
        assert_eq!(net.survivors, mem.survivors);
        assert_eq!(net.dropped, mem.dropped);
    }

    #[test]
    fn networked_xnoise_round_matches_driver_round() {
        // Full XNoise: perturb before masking, recover seeds over the
        // wire, remove excess after unmasking — both paths bit-equal.
        let ups = updates(8);
        let plan = XNoisePlan::new(9.0, 8, 3, 0, 5).unwrap();
        let cfg = config(Some(plan));
        let mem = run_protocol_round(&cfg, &ups, &[2, 6]).unwrap();
        let net = run_protocol_round_networked(&cfg, &ups, &[2, 6]).unwrap();
        assert_eq!(net.sum, mem.sum);
        assert_eq!(net.survivors, mem.survivors);
        assert_eq!(net.dropped, vec![2, 6]);
    }

    #[test]
    fn chunked_networked_rounds_match_unchunked_driver() {
        // The acceptance pin: with the chunked data plane at m ∈ {1, 4, 8}
        // the networked round is bit-equal to the *unchunked* in-process
        // driver, including an XNoise round with dropout — chunking is a
        // transport/pipelining concern, never a semantic one.
        let ups = updates(8);
        for m in [1usize, 4, 8] {
            let plain = config(None);
            let mem = run_protocol_round(&plain, &ups, &[3]).unwrap();
            let mut chunked = plain.clone();
            chunked.chunks = Some(m);
            let net = run_protocol_round_networked(&chunked, &ups, &[3]).unwrap();
            assert_eq!(net.sum, mem.sum, "m={m}");
            assert_eq!(net.survivors, mem.survivors, "m={m}");
            assert_eq!(net.dropped, mem.dropped, "m={m}");

            let plan = XNoisePlan::new(9.0, 8, 3, 0, 5).unwrap();
            let xn = config(Some(plan));
            let mem = run_protocol_round(&xn, &ups, &[2, 6]).unwrap();
            let mut chunked = xn.clone();
            chunked.chunks = Some(m);
            let net = run_protocol_round_networked(&chunked, &ups, &[2, 6]).unwrap();
            assert_eq!(net.sum, mem.sum, "xnoise m={m}");
            assert_eq!(net.survivors, mem.survivors, "xnoise m={m}");
            assert_eq!(net.dropped, vec![2, 6], "xnoise m={m}");
        }
    }

    #[test]
    fn planner_chosen_chunks_also_match_driver() {
        // chunks: None lets the §4.2 planner pick m; whatever it picks
        // must stay bit-equal to the unchunked reference.
        let ups = updates(8);
        let mut cfg = config(None);
        cfg.chunks = None;
        let mem = run_protocol_round(&config(None), &ups, &[]).unwrap();
        let net = run_protocol_round_networked(&cfg, &ups, &[]).unwrap();
        assert_eq!(net.sum, mem.sum);
        assert_eq!(net.survivors, mem.survivors);
    }

    #[test]
    fn networked_malicious_round_matches_driver_round() {
        let ups = updates(8);
        let mut cfg = config(Some(XNoisePlan::new(4.0, 8, 2, 0, 5).unwrap()));
        cfg.threat_model = ThreatModel::Malicious;
        let mem = run_protocol_round(&cfg, &ups, &[1]).unwrap();
        let net = run_protocol_round_networked(&cfg, &ups, &[1]).unwrap();
        assert_eq!(net.sum, mem.sum);
        assert_eq!(net.survivors, mem.survivors);
        assert!(net.stats.stage("ConsistencyCheck").is_some());
    }
}
