//! Round-time estimation on the simulated cluster (Figures 2 and 10).
//!
//! Combines the heterogeneity generator, the per-stage cost model, and
//! the pipeline planner into the numbers the paper plots: plain vs
//! pipelined round time, broken into aggregation and "other" (local
//! training) components, for each protocol × variant × dropout rate.

use dordis_pipeline::planner::{plan_from_cost_model, simulate_pipelined};
use dordis_sim::cost::{CostModel, Protocol, RoundCostInput, UnitCosts};
use dordis_sim::hetero::{generate, straggler, HeteroConfig};
use serde::{Deserialize, Serialize};

/// A timing scenario (one bar group of Figure 10, or one bar of Figure 2).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimingScenario {
    /// Scenario label.
    pub name: String,
    /// Model parameter count.
    pub model_params: usize,
    /// Sampled clients per round.
    pub clients: usize,
    /// Aggregation protocol.
    pub protocol: Protocol,
    /// Distributed DP enabled.
    pub dp: bool,
    /// XNoise enabled (tolerance `T = clients / 2`).
    pub xnoise: bool,
    /// Per-round dropout rate.
    pub dropout_rate: f64,
    /// Local-training ("other") seconds per round.
    pub other_secs: f64,
    /// Ring bit width.
    pub bit_width: u32,
}

/// Estimated round time, plain and pipelined.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RoundTime {
    /// Aggregation seconds, plain execution.
    pub plain_agg: f64,
    /// Non-aggregation seconds (identical in both modes).
    pub other: f64,
    /// Aggregation seconds under the planned pipeline.
    pub piped_agg: f64,
    /// Chunk count the planner chose.
    pub chunks: usize,
}

impl RoundTime {
    /// Total plain round seconds.
    #[must_use]
    pub fn plain_total(&self) -> f64 {
        self.plain_agg + self.other
    }

    /// Total pipelined round seconds.
    #[must_use]
    pub fn piped_total(&self) -> f64 {
        self.piped_agg + self.other
    }

    /// End-to-end speedup from pipelining.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.plain_total() / self.piped_total()
    }

    /// Aggregation share of the plain round (the paper's bar labels).
    #[must_use]
    pub fn agg_fraction(&self) -> f64 {
        self.plain_agg / self.plain_total()
    }
}

/// The heterogeneity configuration matching the paper's testbed: Zipf 1.2
/// with a moderate compute spread (c5.xlarge-class clients).
#[must_use]
pub fn paper_hetero(seed: u64) -> HeteroConfig {
    HeteroConfig {
        zipf_a: 1.2,
        compute_spread: 3.0,
        bandwidth_range: (21.0, 210.0),
        seed,
    }
}

/// Builds the cost-model input for a scenario.
#[must_use]
pub fn cost_input(s: &TimingScenario, hetero: &HeteroConfig) -> RoundCostInput {
    let profiles = generate(s.clients, hetero);
    RoundCostInput {
        clients: s.clients,
        vector_len: s.model_params,
        protocol: s.protocol,
        dropout_rate: s.dropout_rate,
        dp_enabled: s.dp,
        xnoise_components: if s.xnoise { s.clients / 2 } else { 0 },
        bit_width: s.bit_width,
        straggler: straggler(&profiles),
        other_secs: s.other_secs,
    }
}

/// Estimates the round time for a scenario under the given calibration.
#[must_use]
pub fn estimate(s: &TimingScenario, units: &UnitCosts, seed: u64) -> RoundTime {
    let cost = CostModel::new(*units);
    let input = cost_input(s, &paper_hetero(seed));
    let (plain_agg, other) = cost.plain_round(&input);
    let plan = plan_from_cost_model(&cost, &input, 20, seed);
    let piped_agg = simulate_pipelined(&cost, &input, plan.chunks);
    RoundTime {
        plain_agg,
        other,
        piped_agg: piped_agg.min(plain_agg),
        chunks: plan.chunks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(params: usize, clients: usize, xnoise: bool, drop: f64) -> TimingScenario {
        TimingScenario {
            name: "t".into(),
            model_params: params,
            clients,
            protocol: Protocol::SecAgg,
            dp: true,
            xnoise,
            dropout_rate: drop,
            other_secs: 60.0,
            bit_width: 20,
        }
    }

    #[test]
    fn aggregation_dominates() {
        let rt = estimate(
            &scenario(11_000_000, 100, false, 0.1),
            &UnitCosts::paper_testbed(),
            1,
        );
        assert!(rt.agg_fraction() > 0.85, "agg frac {}", rt.agg_fraction());
    }

    #[test]
    fn pipelining_speeds_up_large_models() {
        let rt = estimate(
            &scenario(11_000_000, 100, false, 0.1),
            &UnitCosts::paper_testbed(),
            2,
        );
        assert!(rt.speedup() > 1.3, "speedup {}", rt.speedup());
        assert!(rt.speedup() < 3.0);
        assert!(rt.chunks > 1);
    }

    #[test]
    fn xnoise_adds_bounded_overhead() {
        let base = estimate(
            &scenario(1_000_000, 100, false, 0.0),
            &UnitCosts::paper_testbed(),
            3,
        );
        let with = estimate(
            &scenario(1_000_000, 100, true, 0.0),
            &UnitCosts::paper_testbed(),
            3,
        );
        let overhead = (with.plain_total() - base.plain_total()) / base.plain_total();
        assert!(overhead > 0.0, "overhead {overhead}");
        assert!(
            overhead < 0.40,
            "overhead {overhead} exceeds the paper's 34%"
        );
    }

    #[test]
    fn xnoise_overhead_decreases_with_dropout() {
        let u = UnitCosts::paper_testbed();
        let over = |rate: f64| {
            let base = estimate(&scenario(1_000_000, 100, false, rate), &u, 4);
            let with = estimate(&scenario(1_000_000, 100, true, rate), &u, 4);
            (with.plain_total() - base.plain_total()) / base.plain_total()
        };
        assert!(over(0.0) > over(0.3));
    }

    #[test]
    fn secagg_plus_is_faster() {
        let u = UnitCosts::paper_testbed();
        let mut s = scenario(11_000_000, 100, false, 0.1);
        let full = estimate(&s, &u, 5);
        s.protocol = Protocol::SecAggPlus;
        let plus = estimate(&s, &u, 5);
        assert!(plus.plain_total() < full.plain_total());
    }

    #[test]
    fn piped_never_slower_than_plain() {
        let u = UnitCosts::paper_testbed();
        for params in [1_000_000usize, 11_000_000, 20_000_000] {
            for clients in [16usize, 100] {
                let rt = estimate(&scenario(params, clients, true, 0.1), &u, 6);
                assert!(rt.piped_agg <= rt.plain_agg + 1e-9);
            }
        }
    }
}
