//! Experiment configuration: tasks, privacy, dropout, and DP variants.

use dordis_dp::encoding::EncodingConfig;
use dordis_fl::data::SyntheticConfig;
use dordis_sim::dropout::DropoutModel;
use serde::{Deserialize, Serialize};

/// Which distributed-DP scheme the run uses (the paper's baselines plus
/// XNoise, §2.3.1 / §6.1).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Variant {
    /// No DP at all (utility upper bound).
    NonPrivate,
    /// `Orig`: per-client share `σ²∗/|U|`, no dropout handling; the
    /// ledger overruns under dropout.
    Orig,
    /// `Orig` that stops training the moment the ledger is exhausted.
    Early,
    /// Conservative planning against an *estimated* dropout rate
    /// (`Con8` = 0.8, `Con5` = 0.5, `Con2` = 0.2 in Figure 1).
    Conservative {
        /// Assumed per-round dropout fraction.
        est_dropout: f64,
    },
    /// XNoise add-then-remove enforcement (§3).
    XNoise {
        /// Dropout tolerance as a fraction of the sampled set
        /// (`T = frac · |U|`).
        tolerance_frac: f64,
        /// Collusion tolerance as a fraction of the SecAgg threshold.
        collusion_frac: f64,
    },
}

/// Model architecture for the task.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// Softmax regression.
    Linear,
    /// One-hidden-layer MLP.
    Mlp {
        /// Hidden width.
        hidden: usize,
    },
}

/// Optimizer choice (paper §6.1: SGD+momentum for vision, AdamW for LM).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum OptimizerSpec {
    /// SGD with momentum.
    Sgd {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient.
        momentum: f32,
    },
    /// AdamW.
    AdamW {
        /// Learning rate.
        lr: f32,
        /// Decoupled weight decay.
        weight_decay: f32,
    },
}

/// Privacy configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PrivacySpec {
    /// Global budget ε_G.
    pub epsilon: f64,
    /// Global budget δ_G (the paper uses 1/population).
    pub delta: f64,
    /// L2 clipping bound on model deltas.
    pub clip: f64,
    /// DSkellam encoding parameters.
    pub encoding: EncodingConfig,
}

/// A full training task specification.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Human-readable task name (for reports).
    pub name: String,
    /// Synthetic dataset generator.
    pub dataset: SyntheticConfig,
    /// Fraction of data held out for evaluation.
    pub test_fraction: f64,
    /// Model architecture.
    pub model: ModelSpec,
    /// Optimizer.
    pub optimizer: OptimizerSpec,
    /// Total client population.
    pub population: usize,
    /// Clients sampled per round.
    pub sampled_per_round: usize,
    /// Training rounds.
    pub rounds: u32,
    /// Local epochs per round.
    pub local_epochs: usize,
    /// Local mini-batch size.
    pub batch_size: usize,
    /// Dirichlet concentration for the non-IID split (paper: 1.0).
    pub dirichlet_alpha: f64,
    /// Privacy parameters.
    pub privacy: PrivacySpec,
    /// DP variant under test.
    pub variant: Variant,
    /// Dropout model.
    pub dropout: DropoutModel,
    /// Evaluate every this many rounds.
    pub eval_every: u32,
    /// Master seed.
    pub seed: u64,
}

impl TaskSpec {
    /// A CIFAR-10-like task in the paper's configuration (§6.1): 100
    /// clients, 16 sampled, 150 rounds, ε = 6, clip 3.
    #[must_use]
    pub fn cifar10_like(seed: u64) -> TaskSpec {
        TaskSpec {
            name: "cifar10-like".into(),
            dataset: SyntheticConfig::cifar10_like(4000, seed),
            test_fraction: 0.15,
            model: ModelSpec::Mlp { hidden: 32 },
            optimizer: OptimizerSpec::Sgd {
                lr: 0.1,
                momentum: 0.9,
            },
            population: 100,
            sampled_per_round: 16,
            rounds: 150,
            local_epochs: 1,
            batch_size: 32,
            dirichlet_alpha: 1.0,
            privacy: PrivacySpec {
                epsilon: 6.0,
                delta: 1e-2,
                clip: 3.0,
                encoding: EncodingConfig {
                    clip: 3.0,
                    ..EncodingConfig::default()
                },
            },
            variant: Variant::XNoise {
                tolerance_frac: 0.5,
                collusion_frac: 0.0,
            },
            dropout: DropoutModel::None,
            eval_every: 10,
            seed,
        }
    }

    /// A FEMNIST-like task (§6.1): 1000 clients, 100 sampled, 50 rounds,
    /// clip 1.
    #[must_use]
    pub fn femnist_like(seed: u64) -> TaskSpec {
        TaskSpec {
            name: "femnist-like".into(),
            dataset: SyntheticConfig::femnist_like(8000, seed),
            test_fraction: 0.15,
            model: ModelSpec::Linear,
            optimizer: OptimizerSpec::Sgd {
                lr: 0.05,
                momentum: 0.9,
            },
            population: 1000,
            sampled_per_round: 100,
            rounds: 50,
            local_epochs: 2,
            batch_size: 20,
            dirichlet_alpha: 1.0,
            privacy: PrivacySpec {
                epsilon: 6.0,
                delta: 1e-3,
                clip: 1.0,
                encoding: EncodingConfig::default(),
            },
            variant: Variant::XNoise {
                tolerance_frac: 0.5,
                collusion_frac: 0.0,
            },
            dropout: DropoutModel::None,
            eval_every: 5,
            seed,
        }
    }

    /// A Reddit-like next-token task (§6.1): 200 clients, AdamW.
    #[must_use]
    pub fn reddit_like(seed: u64) -> TaskSpec {
        TaskSpec {
            name: "reddit-like".into(),
            dataset: SyntheticConfig::reddit_like(5000, seed),
            test_fraction: 0.15,
            model: ModelSpec::Mlp { hidden: 24 },
            optimizer: OptimizerSpec::AdamW {
                lr: 0.01,
                weight_decay: 0.01,
            },
            population: 200,
            sampled_per_round: 32,
            rounds: 50,
            local_epochs: 2,
            batch_size: 20,
            dirichlet_alpha: 1.0,
            privacy: PrivacySpec {
                epsilon: 6.0,
                delta: 5e-3,
                clip: 1.0,
                encoding: EncodingConfig::default(),
            },
            variant: Variant::XNoise {
                tolerance_frac: 0.5,
                collusion_frac: 0.0,
            },
            dropout: DropoutModel::None,
            eval_every: 5,
            seed,
        }
    }

    /// A deliberately tiny task for unit tests and doc examples.
    #[must_use]
    pub fn tiny_for_tests(seed: u64) -> TaskSpec {
        TaskSpec {
            name: "tiny".into(),
            dataset: SyntheticConfig {
                samples: 400,
                dim: 8,
                classes: 4,
                noise: 0.4,
                seed,
            },
            test_fraction: 0.2,
            model: ModelSpec::Linear,
            optimizer: OptimizerSpec::Sgd {
                lr: 0.1,
                momentum: 0.9,
            },
            population: 20,
            sampled_per_round: 8,
            rounds: 10,
            local_epochs: 1,
            batch_size: 16,
            dirichlet_alpha: 1.0,
            privacy: PrivacySpec {
                epsilon: 6.0,
                delta: 5e-2,
                clip: 1.0,
                encoding: EncodingConfig::default(),
            },
            variant: Variant::XNoise {
                tolerance_frac: 0.5,
                collusion_frac: 0.0,
            },
            dropout: DropoutModel::None,
            eval_every: 5,
            seed,
        }
    }

    /// Per-round sampling probability used for privacy accounting.
    #[must_use]
    pub fn sample_rate(&self) -> f64 {
        self.sampled_per_round as f64 / self.population as f64
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.sampled_per_round == 0 || self.sampled_per_round > self.population {
            return Err("sampled_per_round out of range".into());
        }
        if self.rounds == 0 {
            return Err("rounds must be positive".into());
        }
        if !(self.privacy.epsilon > 0.0) {
            return Err("epsilon must be positive".into());
        }
        if let Variant::XNoise {
            tolerance_frac,
            collusion_frac,
        } = self.variant
        {
            if !(0.0..1.0).contains(&tolerance_frac) {
                return Err("tolerance_frac must be in [0,1)".into());
            }
            if !(0.0..1.0).contains(&collusion_frac) {
                return Err("collusion_frac must be in [0,1)".into());
            }
        }
        if let Variant::Conservative { est_dropout } = self.variant {
            if !(0.0..1.0).contains(&est_dropout) {
                return Err("est_dropout must be in [0,1)".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        TaskSpec::cifar10_like(1).validate().unwrap();
        TaskSpec::femnist_like(1).validate().unwrap();
        TaskSpec::reddit_like(1).validate().unwrap();
        TaskSpec::tiny_for_tests(1).validate().unwrap();
    }

    #[test]
    fn sample_rates() {
        assert!((TaskSpec::cifar10_like(1).sample_rate() - 0.16).abs() < 1e-12);
        assert!((TaskSpec::femnist_like(1).sample_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut s = TaskSpec::tiny_for_tests(1);
        s.sampled_per_round = 0;
        assert!(s.validate().is_err());
        let mut s = TaskSpec::tiny_for_tests(1);
        s.variant = Variant::XNoise {
            tolerance_frac: 1.0,
            collusion_frac: 0.0,
        };
        assert!(s.validate().is_err());
        let mut s = TaskSpec::tiny_for_tests(1);
        s.variant = Variant::Conservative { est_dropout: -0.2 };
        assert!(s.validate().is_err());
    }
}
