//! VRF-based verifiable client sampling (paper §7).
//!
//! With a plain server-chosen sample, a malicious server can cherry-pick
//! colluding clients until they exceed the collusion tolerance `T_C`. The
//! paper's proposed fix: each client evaluates a VRF on the round index
//! with its own key and *self-selects* when the output falls below a
//! public threshold. The server (and every other participant) verifies
//! the VRF proofs, so:
//!
//! - the server cannot include a client whose VRF said no (proof check
//!   fails),
//! - the server cannot exclude honest low-output clients without honest
//!   clients noticing their own exclusion,
//! - since dishonest clients are a small fraction of the population, the
//!   sampled set contains at most a proportional (small) number of them
//!   with overwhelming probability — preserving the mild-collusion
//!   assumption Theorem 2 relies on.
//!
//! Over-selection then trimming by VRF output (the paper's "discard
//! excessive clients based on indiscriminate criteria on their
//! randomness") yields a fixed sample size.

use dordis_crypto::vrf::{VrfProof, VrfPublicKey, VrfSecretKey};
use serde::{Deserialize, Serialize};

use crate::DordisError;

/// Public sampling parameters for a round.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Target number of participants.
    pub target_sample: usize,
    /// Total population size.
    pub population: usize,
    /// Over-selection factor (the threshold admits roughly
    /// `target_sample * over_selection` clients; trimming brings the
    /// sample back to the target).
    pub over_selection: f64,
}

impl SamplingConfig {
    /// The self-selection threshold as a 64-bit cutoff on the first 8
    /// bytes of the VRF output.
    #[must_use]
    pub fn threshold(&self) -> u64 {
        let p = ((self.target_sample as f64 * self.over_selection) / self.population as f64)
            .clamp(0.0, 1.0);
        (p * u64::MAX as f64) as u64
    }
}

/// A client's claim to participate in a round.
#[derive(Clone, Debug)]
pub struct ParticipationClaim {
    /// Claimant id.
    pub client: u32,
    /// Its VRF output for this round.
    pub output: [u8; 32],
    /// The proof.
    pub proof: VrfProof,
}

/// Round input to the VRF: a domain-separated round index.
fn round_input(round: u64) -> Vec<u8> {
    let mut v = b"dordis.sampling.round".to_vec();
    v.extend_from_slice(&round.to_le_bytes());
    v
}

/// First 8 bytes of a VRF output as the selection value.
fn selection_value(output: &[u8; 32]) -> u64 {
    u64::from_le_bytes(output[..8].try_into().expect("8 bytes"))
}

/// Client side: decide participation and produce the claim if selected.
#[must_use]
pub fn self_select(
    sk: &VrfSecretKey,
    client: u32,
    round: u64,
    cfg: &SamplingConfig,
) -> Option<ParticipationClaim> {
    let (output, proof) = sk.evaluate(&round_input(round));
    if selection_value(&output) <= cfg.threshold() {
        Some(ParticipationClaim {
            client,
            output,
            proof,
        })
    } else {
        None
    }
}

/// Verifies one claim and returns its selection value.
///
/// # Errors
///
/// A human-readable reason: unregistered key, non-verifying proof,
/// output/proof mismatch, or a value above the threshold (an invalid
/// self-selection the server should never have accepted).
pub fn verify_claim(
    claim: &ParticipationClaim,
    keys: &dyn Fn(u32) -> Option<VrfPublicKey>,
    round: u64,
    cfg: &SamplingConfig,
) -> Result<u64, String> {
    let input = round_input(round);
    let pk = keys(claim.client)
        .ok_or_else(|| format!("no VRF key registered for client {}", claim.client))?;
    let output = pk
        .verify(&input, &claim.proof)
        .map_err(|e| format!("client {}: bad VRF proof: {e}", claim.client))?;
    if output != claim.output {
        return Err(format!(
            "client {}: output does not match proof",
            claim.client
        ));
    }
    let value = selection_value(&output);
    if value > cfg.threshold() {
        return Err(format!("client {}: not actually selected", claim.client));
    }
    Ok(value)
}

/// Verifier side (server or peer): validate claims, reject invalid ones,
/// and trim to the target size by ascending selection value.
///
/// # Errors
///
/// Fails if any claim's proof does not verify, if a claimed output does
/// not match the proof, or if a claimant's value exceeds the threshold
/// (an invalid self-selection the server should never have accepted).
pub fn verify_and_trim(
    claims: &[ParticipationClaim],
    keys: &dyn Fn(u32) -> Option<VrfPublicKey>,
    round: u64,
    cfg: &SamplingConfig,
) -> Result<Vec<u32>, DordisError> {
    let mut valid: Vec<(u64, u32)> = Vec::with_capacity(claims.len());
    for claim in claims {
        let value = verify_claim(claim, keys, round, cfg).map_err(DordisError::Config)?;
        valid.push((value, claim.client));
    }
    // Indiscriminate trimming: smallest selection values win.
    valid.sort_unstable();
    valid.truncate(cfg.target_sample);
    Ok(valid.into_iter().map(|(_, c)| c).collect())
}

/// A round's seating decision over a batch of claims.
#[derive(Clone, Debug, Default)]
pub struct SeatedCohort {
    /// The seated cohort, by ascending selection value (the order
    /// becomes the round's client list on both execution paths).
    pub seated: Vec<u32>,
    /// Claims that failed verification, with reasons. Valid claimants
    /// that merely lost the trim are in neither list.
    pub rejected: Vec<(u32, String)>,
}

/// The session-coordinator seating rule: verify every claim
/// individually — a forged claim costs only its sender a seat, unlike
/// [`verify_and_trim`]'s all-or-nothing contract — then trim the valid
/// ones to the target size by ascending selection value.
#[must_use]
pub fn seat_claims(
    claims: &[ParticipationClaim],
    keys: &dyn Fn(u32) -> Option<VrfPublicKey>,
    round: u64,
    cfg: &SamplingConfig,
) -> SeatedCohort {
    let mut valid: Vec<(u64, u32)> = Vec::with_capacity(claims.len());
    let mut rejected = Vec::new();
    for claim in claims {
        match verify_claim(claim, keys, round, cfg) {
            Ok(value) => valid.push((value, claim.client)),
            Err(why) => rejected.push((claim.client, why)),
        }
    }
    valid.sort_unstable();
    valid.truncate(cfg.target_sample);
    SeatedCohort {
        seated: valid.into_iter().map(|(_, c)| c).collect(),
        rejected,
    }
}

/// Partitions a seated cohort across `shards` parallel aggregation
/// shards — the same hash partition the `dordis-net` session
/// coordinator applies (`dordis_net::session::shard_of`), re-exported
/// at the sampling layer so planners and tests can predict which shard
/// will host a seated client without constructing a session. Seating
/// order is preserved within each shard roster.
#[must_use]
pub fn shard_cohort(seated: &[u32], shards: usize) -> Vec<Vec<u32>> {
    dordis_net::session::shard_rosters(seated, shards)
}

/// Wire encoding of a [`ParticipationClaim`] (132 bytes: client id,
/// VRF output, proof `(Γ, c, s)`) — the claim bytes a session client
/// sends inside its per-round Join frame.
#[must_use]
pub fn encode_claim(claim: &ParticipationClaim) -> Vec<u8> {
    let mut out = Vec::with_capacity(132);
    out.extend_from_slice(&claim.client.to_le_bytes());
    out.extend_from_slice(&claim.output);
    out.extend_from_slice(&claim.proof.gamma);
    out.extend_from_slice(&claim.proof.c);
    out.extend_from_slice(&claim.proof.s);
    out
}

/// Decodes a claim produced by [`encode_claim`].
///
/// # Errors
///
/// Rejects bodies that are not exactly 132 bytes.
pub fn decode_claim(body: &[u8]) -> Result<ParticipationClaim, String> {
    if body.len() != 132 {
        return Err(format!("claim must be 132 bytes, got {}", body.len()));
    }
    let take32 = |at: usize| -> [u8; 32] { body[at..at + 32].try_into().expect("32 bytes") };
    Ok(ParticipationClaim {
        client: u32::from_le_bytes(body[..4].try_into().expect("4 bytes")),
        output: take32(4),
        proof: VrfProof {
            gamma: take32(36),
            c: take32(68),
            s: take32(100),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_for(id: u32) -> VrfSecretKey {
        let mut seed = [0u8; 32];
        seed[..4].copy_from_slice(&id.to_le_bytes());
        seed[31] = 0xfe;
        VrfSecretKey::from_seed(&seed)
    }

    fn cfg() -> SamplingConfig {
        SamplingConfig {
            target_sample: 16,
            population: 100,
            over_selection: 1.5,
        }
    }

    fn registry(id: u32) -> Option<VrfPublicKey> {
        (id < 100).then(|| key_for(id).public_key())
    }

    fn claims_for_round(round: u64) -> Vec<ParticipationClaim> {
        (0..100u32)
            .filter_map(|id| self_select(&key_for(id), id, round, &cfg()))
            .collect()
    }

    #[test]
    fn selection_rate_matches_threshold() {
        // Expect ~24 self-selected per round (16 * 1.5) over many rounds.
        let total: usize = (0..20u64).map(|r| claims_for_round(r).len()).sum();
        let mean = total as f64 / 20.0;
        assert!((19.0..29.0).contains(&mean), "mean selected {mean}");
    }

    #[test]
    fn verification_accepts_honest_claims_and_trims() {
        let claims = claims_for_round(7);
        let sampled = verify_and_trim(&claims, &registry, 7, &cfg()).unwrap();
        assert!(sampled.len() <= 16);
        // The sampled set must be a subset of claimants.
        for id in &sampled {
            assert!(claims.iter().any(|c| c.client == *id));
        }
        // Deterministic.
        let again = verify_and_trim(&claims, &registry, 7, &cfg()).unwrap();
        assert_eq!(sampled, again);
    }

    #[test]
    fn samples_vary_across_rounds() {
        let s1 = verify_and_trim(&claims_for_round(1), &registry, 1, &cfg()).unwrap();
        let s2 = verify_and_trim(&claims_for_round(2), &registry, 2, &cfg()).unwrap();
        assert_ne!(s1, s2);
    }

    #[test]
    fn forged_claim_rejected() {
        // A server trying to insert an unselected client must forge a
        // proof, which fails verification.
        let mut claims = claims_for_round(3);
        let outsider = (0..100u32)
            .find(|&id| self_select(&key_for(id), id, 3, &cfg()).is_none())
            .expect("someone is unselected");
        // Reuse another claimant's proof under the outsider's id.
        let mut forged = claims[0].clone();
        forged.client = outsider;
        claims.push(forged);
        assert!(verify_and_trim(&claims, &registry, 3, &cfg()).is_err());
    }

    #[test]
    fn replayed_round_rejected() {
        // A claim from round 3 cannot be replayed in round 4.
        let claims3 = claims_for_round(3);
        let err = verify_and_trim(&claims3, &registry, 4, &cfg());
        assert!(err.is_err());
    }

    #[test]
    fn tampered_output_rejected() {
        let mut claims = claims_for_round(5);
        claims[0].output[0] ^= 1;
        assert!(verify_and_trim(&claims, &registry, 5, &cfg()).is_err());
    }

    #[test]
    fn unknown_client_rejected() {
        let mut claims = claims_for_round(6);
        claims[0].client = 1000;
        assert!(verify_and_trim(&claims, &registry, 6, &cfg()).is_err());
    }

    #[test]
    fn claim_wire_roundtrip() {
        let claim = self_select(&key_for(3), 3, 11, &cfg())
            .or_else(|| (0..100u32).find_map(|id| self_select(&key_for(id), id, 11, &cfg())))
            .expect("someone self-selects");
        let bytes = encode_claim(&claim);
        assert_eq!(bytes.len(), 132);
        let back = decode_claim(&bytes).unwrap();
        assert_eq!(back.client, claim.client);
        assert_eq!(back.output, claim.output);
        assert_eq!(back.proof, claim.proof);
        assert!(decode_claim(&bytes[..131]).is_err());
    }

    #[test]
    fn seat_claims_rejects_forgeries_without_discarding_honest_claims() {
        // verify_and_trim is all-or-nothing: one forged claim aborts the
        // whole batch. seat_claims must instead seat the honest cohort
        // and name the forger.
        let mut claims = claims_for_round(9);
        let honest = claims.len();
        let outsider = (0..100u32)
            .find(|&id| self_select(&key_for(id), id, 9, &cfg()).is_none())
            .expect("someone is unselected");
        let mut forged = claims[0].clone();
        forged.client = outsider;
        claims.push(forged);

        assert!(verify_and_trim(&claims, &registry, 9, &cfg()).is_err());
        let cohort = seat_claims(&claims, &registry, 9, &cfg());
        assert_eq!(cohort.rejected.len(), 1);
        assert_eq!(cohort.rejected[0].0, outsider);
        assert_eq!(cohort.seated.len(), honest.min(16));
        assert!(!cohort.seated.contains(&outsider));
        // Where both accept, they agree (same trim rule).
        let honest_claims = claims_for_round(9);
        let trimmed = verify_and_trim(&honest_claims, &registry, 9, &cfg()).unwrap();
        assert_eq!(cohort.seated, trimmed);
    }

    #[test]
    fn seat_claims_rejects_stale_round_claims() {
        // A claim evaluated for round 3 cannot seat its sender in
        // round 4 — the per-round resampling the session relies on.
        let claims3 = claims_for_round(3);
        let cohort = seat_claims(&claims3, &registry, 4, &cfg());
        // Round 4's VRF input differs, so every round-3 proof fails
        // verification against it: all rejected, none seated.
        assert_eq!(cohort.seated.len(), 0, "no round-3 claim seats in round 4");
        assert_eq!(cohort.rejected.len(), claims3.len());
    }

    #[test]
    fn dishonest_minority_stays_minority() {
        // 5% dishonest population: across many rounds, the dishonest
        // fraction of the sample stays near 5% — they cannot boost their
        // odds because VRF outputs are fixed by their keys.
        let dishonest: Vec<u32> = (0..5).collect();
        let mut dishonest_sampled = 0usize;
        let mut total_sampled = 0usize;
        for round in 0..15u64 {
            let sampled =
                verify_and_trim(&claims_for_round(round), &registry, round, &cfg()).unwrap();
            total_sampled += sampled.len();
            dishonest_sampled += sampled.iter().filter(|c| dishonest.contains(c)).count();
        }
        let frac = dishonest_sampled as f64 / total_sampled as f64;
        assert!(frac < 0.15, "dishonest fraction {frac}");
    }
}
