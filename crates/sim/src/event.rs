//! Discrete-event simulation of pipelined stage execution.
//!
//! The pipeline planner computes makespans with the closed-form
//! Appendix-C recurrence; this module executes the same workload as an
//! event-driven simulation — tasks queue on exclusive resources, a
//! virtual clock advances event by event — providing an *independent*
//! implementation to cross-check the recurrence (they must agree exactly;
//! see the tests and `dordis-pipeline`). It also produces per-resource
//! busy intervals for utilization analysis (§4's idle-time observation).

use crate::cost::Resource;

/// One executable unit: stage `stage` of chunk `chunk`, occupying
/// `resource` for `duration` seconds.
#[derive(Clone, Copy, Debug)]
pub struct Task {
    /// Stage index (0-based).
    pub stage: usize,
    /// Chunk index (0-based).
    pub chunk: usize,
    /// Resource the task occupies exclusively.
    pub resource: Resource,
    /// Execution time in seconds.
    pub duration: f64,
}

/// A completed task instance with its realized schedule.
#[derive(Clone, Copy, Debug)]
pub struct Completed {
    /// The task.
    pub task: Task,
    /// Start time.
    pub start: f64,
    /// Finish time.
    pub finish: f64,
}

/// Result of an event-driven run.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// Every executed task with realized times.
    pub completed: Vec<Completed>,
    /// Total makespan.
    pub makespan: f64,
}

impl SimOutcome {
    /// Fraction of the makespan during which `resource` was busy.
    #[must_use]
    pub fn utilization(&self, resource: Resource) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .completed
            .iter()
            .filter(|c| c.task.resource == resource)
            .map(|c| c.finish - c.start)
            .sum();
        busy / self.makespan
    }
}

/// Executes a pipelined round as a discrete-event simulation.
///
/// Scheduling policy (matching Dordis's execution model and the
/// Appendix-C constraints):
///
/// 1. a chunk's stages run in order;
/// 2. a stage processes chunks in order;
/// 3. each resource runs one task at a time, and when several stages
///    compete for a resource, the *earlier* stage wins (FIFO by stage
///    index — an earlier stage's chunks are never preempted by a later
///    stage's).
///
/// `tau[s]` is the per-chunk duration of stage `s`; `resources[s]` its
/// resource; `chunks` the chunk count.
///
/// # Panics
///
/// Panics on empty stages or `chunks == 0`.
#[must_use]
pub fn simulate(tau: &[f64], resources: &[Resource], chunks: usize) -> SimOutcome {
    assert!(!tau.is_empty() && tau.len() == resources.len());
    assert!(chunks >= 1);
    let stages = tau.len();
    // finish[s][c], or None if not yet executed.
    let mut finish: Vec<Vec<Option<f64>>> = vec![vec![None; chunks]; stages];
    // Per-resource availability time.
    let free_at = |completed: &[Completed], r: Resource| -> f64 {
        completed
            .iter()
            .filter(|c| c.task.resource == r)
            .map(|c| c.finish)
            .fold(0.0, f64::max)
    };
    let mut completed: Vec<Completed> = Vec::with_capacity(stages * chunks);

    // Event loop: repeatedly pick the lowest (stage, chunk) task whose
    // predecessors are done, respecting resource FIFO-by-stage.
    let total = stages * chunks;
    while completed.len() < total {
        // Find the set of ready tasks.
        let mut best: Option<(usize, usize, f64)> = None;
        for s in 0..stages {
            for c in 0..chunks {
                if finish[s][c].is_some() {
                    continue;
                }
                // Predecessors: (s-1, c) and (s, c-1).
                let dep_stage = if s == 0 { Some(0.0) } else { finish[s - 1][c] };
                let dep_chunk = if c == 0 { Some(0.0) } else { finish[s][c - 1] };
                let (Some(a), Some(b)) = (dep_stage, dep_chunk) else {
                    continue;
                };
                // FIFO-by-stage on the resource: an earlier stage with
                // unfinished chunks on this resource blocks later stages.
                let blocked = (0..s)
                    .any(|q| resources[q] == resources[s] && finish[q].iter().any(Option::is_none));
                if blocked {
                    continue;
                }
                let ready_at = a.max(b).max(free_at(&completed, resources[s]));
                match best {
                    // Tie-break: earlier stage first, then earlier chunk.
                    Some((bs, bc, bt)) if (bt, bs, bc) <= (ready_at, s, c) => {}
                    _ => best = Some((s, c, ready_at)),
                }
            }
        }
        let (s, c, start) = best.expect("deadlock: no ready task");
        let end = start + tau[s];
        finish[s][c] = Some(end);
        completed.push(Completed {
            task: Task {
                stage: s,
                chunk: c,
                resource: resources[s],
                duration: tau[s],
            },
            start,
            finish: end,
        });
    }
    let makespan = completed.iter().map(|c| c.finish).fold(0.0, f64::max);
    SimOutcome {
        completed,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Resource::{CComp, Comm, SComp};

    const FIVE: [Resource; 5] = [CComp, Comm, SComp, Comm, CComp];

    #[test]
    fn single_chunk_is_serial() {
        let out = simulate(&[1.0, 2.0, 3.0], &[CComp, Comm, SComp], 1);
        assert!((out.makespan - 6.0).abs() < 1e-12);
        assert_eq!(out.completed.len(), 3);
    }

    #[test]
    fn distinct_resources_pipeline() {
        let out = simulate(&[1.0, 1.0, 1.0], &[CComp, Comm, SComp], 2);
        assert!((out.makespan - 4.0).abs() < 1e-12);
    }

    #[test]
    fn shared_resource_serializes() {
        let out = simulate(&[1.0, 1.0], &[CComp, CComp], 3);
        // Stage 1 cannot start until stage 0 finished all chunks (FIFO).
        assert!((out.makespan - 6.0).abs() < 1e-12);
    }

    #[test]
    fn tasks_never_overlap_on_a_resource() {
        let out = simulate(&[2.0, 5.0, 1.0, 4.0, 2.0], &FIVE, 6);
        for r in [CComp, Comm, SComp] {
            let mut spans: Vec<(f64, f64)> = out
                .completed
                .iter()
                .filter(|c| c.task.resource == r)
                .map(|c| (c.start, c.finish))
                .collect();
            spans.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in spans.windows(2) {
                assert!(w[1].0 >= w[0].1 - 1e-12, "overlap on {r:?}: {w:?}");
            }
        }
    }

    #[test]
    fn dependencies_respected() {
        let out = simulate(&[1.0, 2.0, 1.5], &[CComp, Comm, SComp], 4);
        let find = |s: usize, c: usize| {
            out.completed
                .iter()
                .find(|t| t.task.stage == s && t.task.chunk == c)
                .unwrap()
        };
        for s in 1..3 {
            for c in 0..4 {
                assert!(find(s, c).start >= find(s - 1, c).finish - 1e-12);
            }
        }
        for s in 0..3 {
            for c in 1..4 {
                assert!(find(s, c).start >= find(s, c - 1).finish - 1e-12);
            }
        }
    }

    #[test]
    fn utilization_bounds() {
        let out = simulate(&[1.0; 5], &FIVE, 4);
        for r in [CComp, Comm, SComp] {
            let u = out.utilization(r);
            assert!(u > 0.0 && u <= 1.0 + 1e-12, "{r:?}: {u}");
        }
    }
}
