//! Cluster simulator for Dordis.
//!
//! The paper evaluates on an EC2 testbed: one r5.4xlarge server, one
//! throttled c5.xlarge per client, Zipf(a = 1.2) response latencies and
//! Zipf bandwidth in [21, 210] Mbps (§6.1). This crate reproduces that
//! environment as an analytic simulator:
//!
//! - [`hetero`]: per-client compute-speed and bandwidth profiles drawn
//!   from the paper's Zipf distributions,
//! - [`dropout`]: per-round dropout models (fixed rate, Bernoulli, and a
//!   synthetic user-behaviour trace standing in for the 136k-device trace
//!   of Yang et al. — see DESIGN.md),
//! - [`cost`]: a per-stage cost model for distributed-DP rounds (crypto
//!   op unit costs × protocol op counts, bytes ÷ bandwidth), which feeds
//!   the plain and pipelined round-time estimates of Figures 2 and 10,
//! - [`event`]: a discrete-event executor for pipelined stage workloads,
//!   independently cross-checking the Appendix-C makespan recurrence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod dropout;
pub mod event;
pub mod hetero;
