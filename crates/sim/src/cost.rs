//! Per-stage cost model for distributed-DP rounds.
//!
//! Computes the duration of each of Table 1's five stages from protocol
//! op counts (masks expanded, secrets shared, seeds regenerated, bytes
//! moved) times calibrated unit costs. Two calibrations ship:
//!
//! - [`UnitCosts::rust_native`]: microbenchmark-derived costs of *this*
//!   repository's primitives on commodity x86 (what you would deploy),
//! - [`UnitCosts::paper_testbed`]: scaled to reproduce the magnitudes of
//!   the paper's Python/PyTorch prototype on throttled EC2 instances
//!   (Figures 2 and 10 of the paper live in this regime — per-element
//!   costs two orders of magnitude above native Rust).
//!
//! Either way, the *shape* of the results (SecAgg dominance, XNoise
//! overhead shrinking with dropout, pipeline speedups growing with model
//! size) is calibration-independent; see EXPERIMENTS.md.

use serde::{Deserialize, Serialize};

use crate::hetero::ClientProfile;

/// System resource a stage occupies (paper §4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Resource {
    /// Client compute.
    CComp,
    /// Server-client communication.
    Comm,
    /// Server compute.
    SComp,
}

/// One stage's name, resource, and duration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StageCost {
    /// Stage label (matching Table 1 groupings).
    pub name: &'static str,
    /// Dominant resource.
    pub resource: Resource,
    /// Duration in seconds.
    pub secs: f64,
}

/// Calibrated unit costs (reference client; the straggler's
/// `compute_factor` scales client-side work).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct UnitCosts {
    /// PRG expansion, ns per output byte (mask generation).
    pub prg_byte_ns: f64,
    /// Skellam noise sampling / regeneration, ns per element.
    pub skellam_elem_ns: f64,
    /// DP encode (clip + rotate + round), ns per element.
    pub encode_elem_ns: f64,
    /// DP decode, ns per element.
    pub decode_elem_ns: f64,
    /// Ring addition, ns per element.
    pub add_elem_ns: f64,
    /// x25519 keypair generation, µs.
    pub ka_keygen_us: f64,
    /// x25519 agreement, µs.
    pub ka_agree_us: f64,
    /// Shamir share generation, µs per (secret, recipient) pair.
    pub shamir_share_us: f64,
    /// Shamir reconstruction, µs per secret.
    pub shamir_recon_us: f64,
    /// AEAD, ns per byte.
    pub aead_byte_ns: f64,
    /// Signature sign/verify, µs each.
    pub sig_us: f64,
    /// Per-message round-trip latency floor, seconds.
    pub rtt_secs: f64,
    /// How much faster the server is than the reference client.
    pub server_speedup: f64,
    /// Effective server NIC throughput in Mbps (shared across all
    /// clients; the bottleneck when many clients upload simultaneously).
    pub server_bandwidth_mbps: f64,
    /// Pipelining intervention cost per extra in-flight chunk, seconds
    /// (the paper's β₂ term: client resources are not isolated).
    pub intervention_secs: f64,
}

impl UnitCosts {
    /// Costs of this repository's Rust primitives on commodity x86.
    #[must_use]
    pub fn rust_native() -> Self {
        UnitCosts {
            prg_byte_ns: 6.0,
            skellam_elem_ns: 60.0,
            encode_elem_ns: 25.0,
            decode_elem_ns: 20.0,
            add_elem_ns: 2.0,
            ka_keygen_us: 300.0,
            ka_agree_us: 300.0,
            shamir_share_us: 30.0,
            shamir_recon_us: 200.0,
            aead_byte_ns: 10.0,
            sig_us: 500.0,
            rtt_secs: 0.05,
            server_speedup: 8.0,
            server_bandwidth_mbps: 10_000.0,
            intervention_secs: 0.15,
        }
    }

    /// Costs scaled to the paper's Python prototype on c5.xlarge clients
    /// (matching the Figure 2/10 magnitudes).
    #[must_use]
    pub fn paper_testbed() -> Self {
        UnitCosts {
            prg_byte_ns: 45.0,
            skellam_elem_ns: 30.0,
            encode_elem_ns: 200.0,
            decode_elem_ns: 150.0,
            add_elem_ns: 15.0,
            ka_keygen_us: 500.0,
            ka_agree_us: 500.0,
            shamir_share_us: 60.0,
            shamir_recon_us: 400.0,
            aead_byte_ns: 40.0,
            sig_us: 800.0,
            rtt_secs: 0.1,
            server_speedup: 2.5,
            server_bandwidth_mbps: 45.0,
            intervention_secs: 1.0,
        }
    }
}

/// Which aggregation protocol a round runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Protocol {
    /// No masking at all (baseline).
    Plain,
    /// Bonawitz et al. (complete masking graph).
    SecAgg,
    /// Bell et al. (k-regular masking graph of `O(log n)` degree).
    SecAggPlus,
}

impl Protocol {
    /// Masking-graph degree for `n` clients.
    #[must_use]
    pub fn degree(&self, n: usize) -> usize {
        match self {
            Protocol::Plain => 0,
            Protocol::SecAgg => n.saturating_sub(1),
            Protocol::SecAggPlus => {
                let lg = (usize::BITS - n.max(2).leading_zeros()) as usize;
                (2 * (lg + 1)).min(n.saturating_sub(1))
            }
        }
    }
}

/// Inputs describing one aggregation round for costing.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RoundCostInput {
    /// Sampled clients `n`.
    pub clients: usize,
    /// Vector (model or chunk) length `d`.
    pub vector_len: usize,
    /// Aggregation protocol.
    pub protocol: Protocol,
    /// Per-round dropout rate in `[0, 1)`.
    pub dropout_rate: f64,
    /// Distributed DP enabled (encode/decode/noise costs).
    pub dp_enabled: bool,
    /// XNoise components `T` (0 = `Orig`-style noise, no removal work).
    pub xnoise_components: usize,
    /// Ring bit width.
    pub bit_width: u32,
    /// The cohort straggler (synchronous rounds wait for it).
    pub straggler: ClientProfile,
    /// Non-aggregation time per round (local training and model I/O).
    pub other_secs: f64,
}

impl RoundCostInput {
    fn survivors(&self) -> f64 {
        (self.clients as f64) * (1.0 - self.dropout_rate)
    }

    fn dropped(&self) -> f64 {
        (self.clients as f64) * self.dropout_rate
    }
}

/// The cost model: unit costs plus the stage formulas.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CostModel {
    /// Unit costs in effect.
    pub units: UnitCosts,
}

impl CostModel {
    /// Creates a model from unit costs.
    #[must_use]
    pub fn new(units: UnitCosts) -> Self {
        CostModel { units }
    }

    /// The five Table 1 stage durations for one aggregation task over a
    /// vector of `inp.vector_len` elements.
    #[must_use]
    pub fn stage_costs(&self, inp: &RoundCostInput) -> Vec<StageCost> {
        let u = &self.units;
        let d = inp.vector_len as f64;
        let deg = inp.protocol.degree(inp.clients) as f64;
        let t_noise = inp.xnoise_components as f64;
        let cf = inp.straggler.compute_factor;
        let ns = 1e-9;
        let us = 1e-6;

        // Stage 1 (c-comp): encode, keys, shared secrets, noise, masking.
        let mut s1 = 0.0;
        if inp.dp_enabled {
            s1 += d * u.encode_elem_ns * ns; // Encode.
            let components = if inp.xnoise_components > 0 {
                t_noise + 1.0
            } else {
                1.0
            };
            s1 += components * d * u.skellam_elem_ns * ns; // Noise addition.
        }
        if inp.protocol != Protocol::Plain {
            s1 += 2.0 * u.ka_keygen_us * us; // Key generation.
            s1 += deg * u.ka_agree_us * us; // Shared secrets.
                                            // Pairwise masks with each neighbor plus the self mask.
            s1 += (deg + 1.0) * d * 8.0 * u.prg_byte_ns * ns;
            // Shamir shares: s_sk, b, and T seeds — evaluated only at
            // the `deg + 1` neighborhood x-coordinates (the owner's
            // share-holder set), not the whole roster.
            s1 += (2.0 + t_noise) * (deg + 1.0) * u.shamir_share_us * us;
            // AEAD over the share bundles.
            let bundle_bytes = 8.0 + 34.0 * (2.0 + t_noise) + 44.0;
            s1 += deg * bundle_bytes * u.aead_byte_ns * ns;
        }
        let s1 = s1 * cf;

        // Stage 2 (comm): upload masked input (+ ciphertext bundles).
        let vector_bytes = d * f64::from(inp.bit_width) / 8.0;
        let mut up_bytes = vector_bytes;
        if inp.protocol != Protocol::Plain {
            let bundle_bytes = 8.0 + 34.0 * (2.0 + t_noise) + 44.0;
            up_bytes += deg * bundle_bytes + 2.0 * 32.0;
        }
        // The server's shared NIC serves every live uploader at once.
        let live = inp.survivors();
        let server_up = live * up_bytes * 8.0 / (u.server_bandwidth_mbps * 1e6);
        let s2 = inp.straggler.transfer_secs(up_bytes).max(server_up) + u.rtt_secs;

        // Stage 3 (s-comp): aggregate, reconstruct, unmask, denoise.
        let mut s3 = inp.survivors() * d * u.add_elem_ns * ns; // Summation.
        if inp.protocol != Protocol::Plain {
            // Self-mask regeneration for survivors.
            s3 += inp.survivors() * d * 8.0 * u.prg_byte_ns * ns;
            // Pairwise-mask regeneration for dropped clients.
            let deg_alive = deg * (1.0 - inp.dropout_rate);
            s3 += inp.dropped() * (u.shamir_recon_us * us + deg_alive * u.ka_agree_us * us);
            s3 += inp.dropped() * deg_alive * d * 8.0 * u.prg_byte_ns * ns;
            s3 += inp.survivors() * u.shamir_recon_us * us; // b_u recon.
        }
        if inp.dp_enabled && inp.xnoise_components > 0 {
            // Excess-noise removal: regenerate (T - |D|) components per
            // survivor — the dominant XNoise cost, shrinking with dropout.
            let to_remove = (t_noise - inp.dropped()).max(0.0);
            s3 += inp.survivors() * to_remove * d * u.skellam_elem_ns * ns;
        }
        let s3 = s3 / u.server_speedup;

        // Stage 4 (comm): broadcast the aggregate through the same NIC.
        let server_down = live * vector_bytes * 8.0 / (u.server_bandwidth_mbps * 1e6);
        let s4 = inp.straggler.transfer_secs(vector_bytes).max(server_down) + u.rtt_secs;

        // Stage 5 (c-comp): decode and apply.
        let mut s5 = d * u.add_elem_ns * ns;
        if inp.dp_enabled {
            s5 += d * u.decode_elem_ns * ns;
        }
        let s5 = s5 * cf;

        vec![
            StageCost {
                name: "client-prepare",
                resource: Resource::CComp,
                secs: s1,
            },
            StageCost {
                name: "upload",
                resource: Resource::Comm,
                secs: s2,
            },
            StageCost {
                name: "server-aggregate",
                resource: Resource::SComp,
                secs: s3,
            },
            StageCost {
                name: "broadcast",
                resource: Resource::Comm,
                secs: s4,
            },
            StageCost {
                name: "client-decode",
                resource: Resource::CComp,
                secs: s5,
            },
        ]
    }

    /// Plain (unpipelined) execution: stages run back to back.
    /// Returns `(aggregation seconds, other seconds)`.
    #[must_use]
    pub fn plain_round(&self, inp: &RoundCostInput) -> (f64, f64) {
        let agg: f64 = self.stage_costs(inp).iter().map(|s| s.secs).sum();
        (agg, inp.other_secs)
    }

    /// Stage durations when the round is split into `m` chunks: work
    /// scales down by `m`, the per-stage constant (RTT) stays, and the
    /// intervention penalty grows with pipeline depth (the paper's
    /// `β₁ d/m + β₂ m + β₃` model).
    #[must_use]
    pub fn chunked_stage_costs(&self, inp: &RoundCostInput, m: usize) -> Vec<StageCost> {
        assert!(m >= 1);
        let mut chunk_inp = *inp;
        chunk_inp.vector_len = inp.vector_len.div_ceil(m);
        let mut costs = self.stage_costs(&chunk_inp);
        // Per-chunk protocol constants (key setup, shares) do not shrink
        // with m, and each extra in-flight chunk steals cycles.
        let intervention = self.units.intervention_secs * (m as f64 - 1.0) / m as f64;
        for c in costs.iter_mut() {
            c.secs += intervention;
        }
        costs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straggler() -> ClientProfile {
        ClientProfile {
            compute_factor: 8.0,
            bandwidth_mbps: 21.0,
        }
    }

    fn input(d: usize, n: usize, protocol: Protocol) -> RoundCostInput {
        RoundCostInput {
            clients: n,
            vector_len: d,
            protocol,
            dropout_rate: 0.1,
            dp_enabled: true,
            xnoise_components: n / 2,
            bit_width: 20,
            straggler: straggler(),
            other_secs: 20.0,
        }
    }

    #[test]
    fn five_stages_with_alternating_resources() {
        let m = CostModel::new(UnitCosts::rust_native());
        let stages = m.stage_costs(&input(1_000_000, 100, Protocol::SecAgg));
        assert_eq!(stages.len(), 5);
        let resources: Vec<Resource> = stages.iter().map(|s| s.resource).collect();
        assert_eq!(
            resources,
            vec![
                Resource::CComp,
                Resource::Comm,
                Resource::SComp,
                Resource::Comm,
                Resource::CComp
            ]
        );
        // Adjacent stages use different resources (pipelining precondition).
        for w in resources.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn aggregation_dominates_round_time() {
        // The paper's §2.3.2 observation: SecAgg is 86-97% of the round.
        let m = CostModel::new(UnitCosts::paper_testbed());
        let (agg, other) = m.plain_round(&input(11_000_000, 16, Protocol::SecAgg));
        let frac = agg / (agg + other);
        assert!(frac > 0.85, "aggregation fraction {frac}");
    }

    #[test]
    fn secagg_plus_is_cheaper_than_secagg() {
        let m = CostModel::new(UnitCosts::paper_testbed());
        let (agg_full, _) = m.plain_round(&input(1_000_000, 100, Protocol::SecAgg));
        let (agg_plus, _) = m.plain_round(&input(1_000_000, 100, Protocol::SecAggPlus));
        assert!(agg_plus < agg_full, "{agg_plus} !< {agg_full}");
    }

    #[test]
    fn plain_is_cheapest() {
        let m = CostModel::new(UnitCosts::rust_native());
        let (plain, _) = m.plain_round(&input(1_000_000, 64, Protocol::Plain));
        let (secagg, _) = m.plain_round(&input(1_000_000, 64, Protocol::SecAgg));
        assert!(plain < secagg);
    }

    #[test]
    fn cost_grows_with_clients_and_model() {
        let m = CostModel::new(UnitCosts::paper_testbed());
        let (a, _) = m.plain_round(&input(1_000_000, 32, Protocol::SecAgg));
        let (b, _) = m.plain_round(&input(1_000_000, 64, Protocol::SecAgg));
        assert!(b > a, "clients: {b} !> {a}");
        let (c, _) = m.plain_round(&input(11_000_000, 32, Protocol::SecAgg));
        assert!(c > a, "model: {c} !> {a}");
    }

    #[test]
    fn xnoise_overhead_shrinks_with_dropout() {
        // §6.3: more dropout = less noise to remove = lower overhead.
        let m = CostModel::new(UnitCosts::paper_testbed());
        let base = input(1_000_000, 100, Protocol::SecAgg);
        let overhead_at = |rate: f64| {
            let with = {
                let mut i = base;
                i.dropout_rate = rate;
                m.plain_round(&i).0
            };
            let without = {
                let mut i = base;
                i.dropout_rate = rate;
                i.xnoise_components = 0;
                m.plain_round(&i).0
            };
            (with - without) / without
        };
        let o0 = overhead_at(0.0);
        let o30 = overhead_at(0.3);
        assert!(o0 > o30, "overhead {o0} should exceed {o30}");
        assert!(o0 < 0.6, "overhead at 0% dropout is {o0}, implausibly high");
    }

    #[test]
    fn chunking_reduces_per_stage_cost_but_adds_overhead() {
        let m = CostModel::new(UnitCosts::paper_testbed());
        let inp = input(11_000_000, 16, Protocol::SecAgg);
        let whole: f64 = m.stage_costs(&inp).iter().map(|s| s.secs).sum();
        let per_chunk: f64 = m.chunked_stage_costs(&inp, 4).iter().map(|s| s.secs).sum();
        assert!(per_chunk < whole, "{per_chunk} !< {whole}");
        // But m chunks in sequence cost more than the whole (overheads),
        // which is why pipelining (overlap), not chunking, is the win.
        assert!(per_chunk * 4.0 > whole);
    }

    #[test]
    fn straggler_bandwidth_drives_comm() {
        let m = CostModel::new(UnitCosts::rust_native());
        let mut inp = input(11_000_000, 16, Protocol::SecAgg);
        let slow = m.stage_costs(&inp)[1].secs;
        inp.straggler.bandwidth_mbps = 210.0;
        let fast = m.stage_costs(&inp)[1].secs;
        assert!(slow > 5.0 * fast, "{slow} vs {fast}");
    }
}
