//! Dropout models.
//!
//! Three models cover the paper's experiments: a fixed per-round rate
//! (the §6.1 "configurable rate" model), i.i.d. Bernoulli dropout, and a
//! synthetic availability trace reproducing the *dynamics* of the 136k
//! mobile-device behaviour dataset used for Figure 1a (clients alternate
//! heavy-tailed online/offline sessions, so per-round dropout rates swing
//! across the full [0, 1] range).

use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A per-round dropout generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum DropoutModel {
    /// Nobody drops.
    None,
    /// Each sampled client independently drops with probability `rate`
    /// after being sampled (the paper's §6.1 model).
    Bernoulli {
        /// Per-client drop probability.
        rate: f64,
    },
    /// Exactly `round(rate * n)` of the sampled clients drop.
    FixedRate {
        /// Fraction of sampled clients that drop.
        rate: f64,
    },
    /// Trace-driven: clients alternate online/offline sessions with
    /// Pareto-distributed lengths (measured in rounds).
    Trace(TraceConfig),
}

/// Configuration of the synthetic availability trace.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Population size the trace is generated for.
    pub population: usize,
    /// Mean session length in rounds (how long a client stays in a
    /// state before reconsidering).
    pub mean_session: f64,
    /// Diurnal swing amplitude in [0, 0.5): population-wide availability
    /// oscillates between `0.5 - a` and `0.5 + a`. Mobile availability is
    /// strongly diurnal (Yang et al.), which is what makes per-round
    /// dropout rates span the whole [0, 1] range in Figure 1a.
    pub diurnal_amplitude: f64,
    /// Diurnal period in rounds.
    pub diurnal_period: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            population: 100,
            mean_session: 4.0,
            diurnal_amplitude: 0.45,
            diurnal_period: 50.0,
        }
    }
}

/// A realized availability trace: `availability[round][client]`.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Row per round, bit per client.
    pub availability: Vec<Vec<bool>>,
}

impl Trace {
    /// Generates `rounds` rounds of availability.
    ///
    /// Each client is a two-state Markov chain that reconsiders its state
    /// with probability `1 / mean_session` per round, resampling against
    /// the population-wide diurnal availability level.
    #[must_use]
    pub fn generate(cfg: &TraceConfig, rounds: usize, seed: u64) -> Trace {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let level = |r: usize| -> f64 {
            let phase = 2.0 * std::f64::consts::PI * (r as f64) / cfg.diurnal_period;
            (0.5 + cfg.diurnal_amplitude * phase.sin()).clamp(0.02, 0.98)
        };
        let resample_p = (1.0 / cfg.mean_session).clamp(0.0, 1.0);
        let mut availability = vec![vec![false; cfg.population]; rounds];
        let mut state: Vec<bool> = (0..cfg.population)
            .map(|_| rng.gen_bool(level(0)))
            .collect();
        for r in 0..rounds {
            let g = level(r);
            for (c, s) in state.iter_mut().enumerate() {
                if rng.gen_bool(resample_p) {
                    *s = rng.gen_bool(g);
                }
                availability[r][c] = *s;
            }
        }
        Trace { availability }
    }

    /// Dropout outcome for a set of sampled client indices at `round`:
    /// a sampled client "drops" if it is offline in this round's row.
    #[must_use]
    pub fn dropped(&self, round: usize, sampled: &[usize]) -> Vec<usize> {
        let row = &self.availability[round % self.availability.len()];
        sampled
            .iter()
            .copied()
            .filter(|&c| !row[c % row.len()])
            .collect()
    }

    /// Per-round dropout rates for a fixed sample size, emulating the
    /// paper's Figure 1a histogram input.
    #[must_use]
    pub fn round_dropout_rates(&self, sample: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let population = self.availability[0].len();
        self.availability
            .iter()
            .map(|row| {
                let mut dropped = 0usize;
                for _ in 0..sample {
                    let c = rng.gen_range(0..population);
                    if !row[c] {
                        dropped += 1;
                    }
                }
                dropped as f64 / sample as f64
            })
            .collect()
    }
}

impl DropoutModel {
    /// Sampled-client indices (positions in the round's sample) that drop
    /// this round.
    #[must_use]
    pub fn sample_dropouts(
        &self,
        round: usize,
        sampled: usize,
        trace_ids: Option<&[usize]>,
        seed: u64,
    ) -> Vec<usize> {
        let mut rng =
            rand::rngs::StdRng::seed_from_u64(seed ^ (round as u64).wrapping_mul(0x9e37_79b9));
        match self {
            DropoutModel::None => Vec::new(),
            DropoutModel::Bernoulli { rate } => (0..sampled)
                .filter(|_| rng.gen_bool((*rate).clamp(0.0, 1.0)))
                .collect(),
            DropoutModel::FixedRate { rate } => {
                let k = ((sampled as f64) * rate).round() as usize;
                let mut idx: Vec<usize> = (0..sampled).collect();
                // Partial Fisher-Yates for the first k.
                for i in 0..k.min(sampled) {
                    let j = rng.gen_range(i..sampled);
                    idx.swap(i, j);
                }
                idx.truncate(k.min(sampled));
                idx.sort_unstable();
                idx
            }
            DropoutModel::Trace(cfg) => {
                let trace = Trace::generate(cfg, round + 1, seed);
                let ids: Vec<usize> = match trace_ids {
                    Some(ids) => ids.to_vec(),
                    None => (0..sampled).collect(),
                };
                let dropped_ids = trace.dropped(round, &ids);
                ids.iter()
                    .enumerate()
                    .filter(|(_, id)| dropped_ids.contains(id))
                    .map(|(pos, _)| pos)
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_drops() {
        assert!(DropoutModel::None
            .sample_dropouts(3, 16, None, 1)
            .is_empty());
    }

    #[test]
    fn fixed_rate_is_exact() {
        let m = DropoutModel::FixedRate { rate: 0.25 };
        for round in 0..20 {
            let d = m.sample_dropouts(round, 16, None, 7);
            assert_eq!(d.len(), 4, "round {round}");
            assert!(d.iter().all(|&i| i < 16));
        }
    }

    #[test]
    fn bernoulli_mean_matches_rate() {
        let m = DropoutModel::Bernoulli { rate: 0.3 };
        let total: usize = (0..500)
            .map(|r| m.sample_dropouts(r, 100, None, 9).len())
            .sum();
        let mean = total as f64 / 500.0;
        assert!((mean - 30.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn dropouts_vary_across_rounds() {
        let m = DropoutModel::Bernoulli { rate: 0.5 };
        let a = m.sample_dropouts(1, 32, None, 9);
        let b = m.sample_dropouts(2, 32, None, 9);
        assert_ne!(a, b);
        // Same round, same seed: deterministic.
        assert_eq!(a, m.sample_dropouts(1, 32, None, 9));
    }

    #[test]
    fn trace_produces_full_spectrum_of_round_rates() {
        // Figure 1a's key property: some rounds lose almost nobody, some
        // lose almost everyone.
        let trace = Trace::generate(&TraceConfig::default(), 300, 3);
        let rates = trace.round_dropout_rates(16, 4);
        assert_eq!(rates.len(), 300);
        let low = rates.iter().filter(|&&r| r < 0.25).count();
        let high = rates.iter().filter(|&&r| r > 0.75).count();
        let mid = rates.len() - low - high;
        assert!(low > 10, "low-dropout rounds: {low}");
        assert!(high > 10, "high-dropout rounds: {high}");
        assert!(mid > 10, "mid-dropout rounds: {mid}");
    }

    #[test]
    fn trace_availability_is_persistent() {
        // Sessions span rounds: adjacent rounds should correlate.
        let trace = Trace::generate(&TraceConfig::default(), 200, 5);
        let mut same = 0usize;
        let mut total = 0usize;
        for r in 1..200 {
            for c in 0..trace.availability[0].len() {
                total += 1;
                if trace.availability[r][c] == trace.availability[r - 1][c] {
                    same += 1;
                }
            }
        }
        let persistence = same as f64 / total as f64;
        assert!(persistence > 0.6, "persistence {persistence}");
    }

    #[test]
    fn trace_mean_availability_matches_diurnal_mean() {
        let trace = Trace::generate(&TraceConfig::default(), 400, 8);
        let total: usize = trace
            .availability
            .iter()
            .map(|row| row.iter().filter(|&&b| b).count())
            .sum();
        let frac = total as f64 / (400.0 * 100.0);
        assert!((frac - 0.5).abs() < 0.08, "mean availability {frac}");
    }
}
