//! Client hardware and network heterogeneity.
//!
//! Matching §6.1 of the paper: the end-to-end compute latency of the
//! `i`-th slowest client is proportional to `i^{-a}` with `a = 1.2`
//! (Zipf), and bandwidths fall in [21, 210] Mbps following an independent
//! Zipf(1.2).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A client's static performance profile.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ClientProfile {
    /// Compute slowdown factor (1.0 = fastest client in the cohort).
    pub compute_factor: f64,
    /// Link bandwidth in Mbps.
    pub bandwidth_mbps: f64,
}

impl ClientProfile {
    /// Seconds to move `bytes` over this client's link.
    #[must_use]
    pub fn transfer_secs(&self, bytes: f64) -> f64 {
        bytes * 8.0 / (self.bandwidth_mbps * 1e6)
    }
}

/// Configuration of the heterogeneity generator.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HeteroConfig {
    /// Zipf exponent for compute (paper: 1.2).
    pub zipf_a: f64,
    /// Slowest/fastest compute ratio (the paper's Zipf rank model leaves
    /// this implicit; 10x covers commodity mobile SoC spreads).
    pub compute_spread: f64,
    /// Bandwidth range in Mbps (paper: [21, 210]).
    pub bandwidth_range: (f64, f64),
    /// Generator seed.
    pub seed: u64,
}

impl Default for HeteroConfig {
    fn default() -> Self {
        HeteroConfig {
            zipf_a: 1.2,
            compute_spread: 10.0,
            bandwidth_range: (21.0, 210.0),
            seed: 42,
        }
    }
}

/// Generates `n` client profiles.
///
/// Ranks for compute and bandwidth are shuffled independently so slow
/// CPUs are not automatically slow links (two independent Zipfs, per the
/// paper).
#[must_use]
pub fn generate(n: usize, cfg: &HeteroConfig) -> Vec<ClientProfile> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    // Zipf weight of rank i (1-based): i^-a, normalized to [0, 1].
    let weights: Vec<f64> = (1..=n).map(|i| (i as f64).powf(-cfg.zipf_a)).collect();
    let w_min = *weights.last().unwrap_or(&1.0);
    let w_max = weights.first().copied().unwrap_or(1.0);
    let span = (w_max - w_min).max(f64::MIN_POSITIVE);

    let mut compute_ranks: Vec<usize> = (0..n).collect();
    compute_ranks.shuffle(&mut rng);
    let mut bw_ranks: Vec<usize> = (0..n).collect();
    bw_ranks.shuffle(&mut rng);

    let (bw_lo, bw_hi) = cfg.bandwidth_range;
    (0..n)
        .map(|i| {
            // Normalized Zipf position in [0,1]: 1 = rank-1 (best).
            let cpos = (weights[compute_ranks[i]] - w_min) / span;
            let bpos = (weights[bw_ranks[i]] - w_min) / span;
            ClientProfile {
                // Best client factor 1.0, worst `compute_spread`.
                compute_factor: cfg.compute_spread - (cfg.compute_spread - 1.0) * cpos,
                bandwidth_mbps: bw_lo + (bw_hi - bw_lo) * bpos,
            }
        })
        .collect()
}

/// The straggler profile of a cohort: the maximum compute factor and the
/// minimum bandwidth among `profiles` (what synchronous rounds wait for).
#[must_use]
pub fn straggler(profiles: &[ClientProfile]) -> ClientProfile {
    ClientProfile {
        compute_factor: profiles
            .iter()
            .map(|p| p.compute_factor)
            .fold(1.0, f64::max),
        bandwidth_mbps: profiles
            .iter()
            .map(|p| p.bandwidth_mbps)
            .fold(f64::INFINITY, f64::min),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_within_configured_ranges() {
        let cfg = HeteroConfig::default();
        let ps = generate(100, &cfg);
        assert_eq!(ps.len(), 100);
        for p in &ps {
            assert!((1.0..=10.0).contains(&p.compute_factor), "{p:?}");
            assert!((21.0..=210.0).contains(&p.bandwidth_mbps), "{p:?}");
        }
    }

    #[test]
    fn zipf_is_skewed_toward_slow() {
        // Zipf(1.2): most clients cluster near the slow end.
        let ps = generate(200, &HeteroConfig::default());
        let slow = ps.iter().filter(|p| p.compute_factor > 5.0).count();
        assert!(slow > 120, "only {slow} of 200 in the slow half");
    }

    #[test]
    fn deterministic_by_seed() {
        let cfg = HeteroConfig::default();
        let a = generate(10, &cfg);
        let b = generate(10, &cfg);
        assert_eq!(a[3].compute_factor, b[3].compute_factor);
        let c = generate(10, &HeteroConfig { seed: 1, ..cfg });
        assert!(a
            .iter()
            .zip(&c)
            .any(|(x, y)| x.compute_factor != y.compute_factor));
    }

    #[test]
    fn compute_and_bandwidth_independent() {
        // The shuffles must decouple the two ranks: at least one client
        // should be fast compute / slow link or vice versa.
        let ps = generate(50, &HeteroConfig::default());
        let coupled = ps
            .iter()
            .all(|p| (p.compute_factor < 3.0) == (p.bandwidth_mbps > 120.0));
        assert!(!coupled);
    }

    #[test]
    fn transfer_time() {
        let p = ClientProfile {
            compute_factor: 1.0,
            bandwidth_mbps: 80.0,
        };
        // 10 MB over 80 Mbps = 1 second.
        assert!((p.transfer_secs(10e6) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn straggler_takes_worst_of_each() {
        let ps = vec![
            ClientProfile {
                compute_factor: 2.0,
                bandwidth_mbps: 100.0,
            },
            ClientProfile {
                compute_factor: 5.0,
                bandwidth_mbps: 200.0,
            },
        ];
        let s = straggler(&ps);
        assert_eq!(s.compute_factor, 5.0);
        assert_eq!(s.bandwidth_mbps, 100.0);
    }
}
