//! The Appendix C pipeline schedule.
//!
//! Given `a` stages with durations `τ_s` (per chunk) and resource tags,
//! and `m` chunks, compute begin/finish times under three constraints:
//!
//! 1. chunk `c` passes through stages in order (`b_{s,c} ≥ f_{s-1,c}`),
//! 2. a stage processes chunks in order (`b_{s,c} ≥ f_{s,c-1}`),
//! 3. FIFO resource exclusivity: stage `s` cannot start its first chunk
//!    until the *previous* stage on the same resource has finished its
//!    last chunk (`b_{s,0} ≥ f_{q,m-1}` with
//!    `q = max{i < s : resource_i = resource_s}`).
//!
//! The makespan is `f_{a-1,m-1}`.

use dordis_sim::cost::Resource;
use serde::{Deserialize, Serialize};

/// A full pipeline schedule.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Schedule {
    /// `begin[s][c]`: start time of stage `s` for chunk `c`.
    pub begin: Vec<Vec<f64>>,
    /// `finish[s][c]`.
    pub finish: Vec<Vec<f64>>,
    /// Total makespan.
    pub makespan: f64,
}

/// Computes the schedule for per-chunk stage durations `tau` (length =
/// stage count), resource tags `resources`, and `m` chunks.
///
/// # Examples
///
/// Three unit-time stages on distinct resources, two chunks: the second
/// chunk trails one step behind the first (classic pipeline overlap).
///
/// ```
/// use dordis_pipeline::schedule::schedule;
/// use dordis_pipeline::Resource::{CComp, Comm, SComp};
///
/// let s = schedule(&[1.0, 1.0, 1.0], &[CComp, Comm, SComp], 2);
/// assert!((s.makespan - 4.0).abs() < 1e-12); // vs 6.0 serially.
/// ```
///
/// # Panics
///
/// Panics if `tau`/`resources` lengths differ, are empty, or `m == 0`.
#[must_use]
pub fn schedule(tau: &[f64], resources: &[Resource], m: usize) -> Schedule {
    assert_eq!(tau.len(), resources.len());
    assert!(!tau.is_empty() && m >= 1);
    let a = tau.len();
    let mut begin = vec![vec![0.0f64; m]; a];
    let mut finish = vec![vec![0.0f64; m]; a];
    for s in 0..a {
        // Previous stage on the same resource, if any.
        let q = (0..s).rev().find(|&i| resources[i] == resources[s]);
        for c in 0..m {
            let o = if s == 0 { 0.0 } else { finish[s - 1][c] };
            let r = if c > 0 {
                finish[s][c - 1]
            } else if let Some(q) = q {
                finish[q][m - 1]
            } else {
                0.0
            };
            begin[s][c] = o.max(r);
            finish[s][c] = begin[s][c] + tau[s];
        }
    }
    let makespan = finish[a - 1][m - 1];
    Schedule {
        begin,
        finish,
        makespan,
    }
}

/// Serial (no-pipeline) execution time of `m` chunks: every chunk runs
/// all stages before the next chunk starts... which for chunked-but-
/// unpipelined execution equals `m · Σ τ_s`. With `m = 1` this is the
/// plain execution time.
#[must_use]
pub fn serial_makespan(tau: &[f64], m: usize) -> f64 {
    tau.iter().sum::<f64>() * m as f64
}

/// Resource busy fractions over the makespan (the §4 idle-time analysis:
/// plain distributed DP leaves s-comp/c-comp/comm idle most of the time).
#[must_use]
pub fn utilization(tau: &[f64], resources: &[Resource], m: usize) -> Vec<(Resource, f64)> {
    let sched = schedule(tau, resources, m);
    let mut busy: Vec<(Resource, f64)> = Vec::new();
    for (s, &r) in resources.iter().enumerate() {
        let total = tau[s] * m as f64;
        match busy.iter_mut().find(|(res, _)| *res == r) {
            Some((_, b)) => *b += total,
            None => busy.push((r, total)),
        }
    }
    busy.iter().map(|&(r, b)| (r, b / sched.makespan)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use Resource::{CComp, Comm, SComp};

    const FIVE: [Resource; 5] = [CComp, Comm, SComp, Comm, CComp];

    #[test]
    fn single_chunk_is_serial() {
        let tau = [1.0, 2.0, 3.0, 2.0, 1.0];
        let s = schedule(&tau, &FIVE, 1);
        assert!((s.makespan - 9.0).abs() < 1e-12);
    }

    #[test]
    fn hand_computed_two_chunks() {
        // Stages (c, m, s) with τ = 1 each, resources all distinct.
        let tau = [1.0, 1.0, 1.0];
        let res = [CComp, Comm, SComp];
        let s = schedule(&tau, &res, 2);
        // Chunk 0: 0-1, 1-2, 2-3. Chunk 1: 1-2, 2-3, 3-4.
        assert!((s.makespan - 4.0).abs() < 1e-12);
        assert_eq!(s.begin[0][1], 1.0);
        assert_eq!(s.begin[2][1], 3.0);
    }

    #[test]
    fn resource_reuse_serializes_stages() {
        // Two stages on the SAME resource cannot overlap across chunks:
        // stage 1 chunk 0 must wait for stage 0 chunk m-1.
        let tau = [1.0, 1.0];
        let res = [CComp, CComp];
        let s = schedule(&tau, &res, 3);
        // Stage 0 finishes chunk 2 at t=3; stage 1 runs 3,4,5 → makespan 6.
        assert!((s.makespan - 6.0).abs() < 1e-12);
        assert_eq!(s.begin[1][0], 3.0);
    }

    #[test]
    fn five_stage_pipeline_overlaps() {
        // The paper's 5-stage layout: stages 1/5 share c-comp, 2/4 share
        // comm. With 3 chunks and equal durations the pipeline must beat
        // serial chunked execution.
        let tau = [1.0; 5];
        let s3 = schedule(&tau, &FIVE, 3);
        assert!(s3.makespan < serial_makespan(&tau, 3));
        // And must respect the FIFO constraint: stage 4 (c-comp) cannot
        // start until stage 0 (c-comp) finished all chunks (t = 3).
        assert!(s3.begin[4][0] >= 3.0);
    }

    #[test]
    fn pipeline_never_loses_to_serial() {
        let tau = [2.0, 5.0, 1.0, 4.0, 2.0];
        for m in 1..=10 {
            let s = schedule(&tau, &FIVE, m);
            assert!(
                s.makespan <= serial_makespan(&tau, m) + 1e-9,
                "m={m}: {} > serial {}",
                s.makespan,
                serial_makespan(&tau, m)
            );
        }
    }

    #[test]
    fn makespan_lower_bound_is_bottleneck_resource() {
        // The busiest resource's total work lower-bounds the makespan.
        let tau = [2.0, 5.0, 1.0, 4.0, 2.0];
        let m = 6;
        let s = schedule(&tau, &FIVE, m);
        let comm_work = (tau[1] + tau[3]) * m as f64;
        let ccomp_work = (tau[0] + tau[4]) * m as f64;
        let scomp_work = tau[2] * m as f64;
        let bound = comm_work.max(ccomp_work).max(scomp_work);
        assert!(s.makespan >= bound - 1e-9);
    }

    #[test]
    fn begins_are_monotone_per_stage() {
        let tau = [1.5, 0.5, 2.0, 0.5, 1.5];
        let s = schedule(&tau, &FIVE, 5);
        for st in 0..5 {
            for c in 1..5 {
                assert!(s.begin[st][c] >= s.finish[st][c - 1] - 1e-12);
            }
        }
    }

    #[test]
    fn utilization_sums_reasonably() {
        let tau = [1.0; 5];
        let u = utilization(&tau, &FIVE, 4);
        // Three resources, each with positive utilization ≤ 1.
        assert_eq!(u.len(), 3);
        for (_, frac) in &u {
            assert!(*frac > 0.0 && *frac <= 1.0 + 1e-12, "frac {frac}");
        }
        // Plain execution (m=1) leaves every resource mostly idle.
        let u1 = utilization(&tau, &FIVE, 1);
        for (_, frac) in &u1 {
            assert!(*frac <= 0.41, "m=1 frac {frac}");
        }
    }

    #[test]
    #[should_panic]
    fn zero_chunks_panics() {
        let _ = schedule(&[1.0], &[CComp], 0);
    }
}

#[cfg(test)]
mod cross_check_tests {
    use super::*;
    use dordis_sim::event::simulate;
    use proptest::prelude::*;
    use Resource::{CComp, Comm, SComp};

    const FIVE: [Resource; 5] = [CComp, Comm, SComp, Comm, CComp];

    #[test]
    fn recurrence_matches_event_simulation_on_fixed_cases() {
        for (tau, m) in [
            (vec![1.0, 2.0, 3.0, 2.0, 1.0], 1usize),
            (vec![1.0; 5], 3),
            (vec![2.0, 5.0, 1.0, 4.0, 2.0], 6),
            (vec![0.5, 0.1, 9.0, 0.1, 0.5], 8),
        ] {
            let rec = schedule(&tau, &FIVE, m).makespan;
            let sim = simulate(&tau, &FIVE, m).makespan;
            assert!(
                (rec - sim).abs() < 1e-9,
                "m={m} tau={tau:?}: recurrence {rec} vs event-sim {sim}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The closed-form Appendix-C recurrence and the event-driven
        /// simulator are independent implementations of the same policy;
        /// they must agree on every workload.
        #[test]
        fn prop_recurrence_matches_event_simulation(
            tau in proptest::collection::vec(0.01f64..10.0, 5),
            m in 1usize..10,
        ) {
            let rec = schedule(&tau, &FIVE, m).makespan;
            let sim = simulate(&tau, &FIVE, m).makespan;
            prop_assert!((rec - sim).abs() < 1e-9, "rec {rec} vs sim {sim}");
        }
    }
}
