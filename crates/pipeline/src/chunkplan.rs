//! The chunk plan: the contract that makes a *chunk* — not a round —
//! the unit of masking, transmission, and aggregation (§4.1).
//!
//! Dordis splits the `d`-coordinate model into `m` contiguous chunks and
//! pipelines the per-chunk aggregation tasks. Every layer consumes the
//! same [`ChunkPlan`]: the client runtime splits its masked vector and
//! streams one frame per chunk, the wire codec carries the chunk id, and
//! the server holds masked-sum/unmasking state per chunk. Aggregation is
//! coordinate-wise, so `reassemble ∘ split == identity` is exactly the
//! property that makes the pipeline *correct* while the schedule makes
//! it *fast*.
//!
//! Chunk boundaries are **byte-aligned** for the round's bit width: a
//! boundary at element `e` is only legal when `e · b ≡ 0 (mod 8)`, so
//! each chunk's bit-packed payload is a whole number of bytes and the
//! concatenation of per-chunk payloads is byte-identical to the
//! single-frame packing (no re-padding anywhere except the final chunk,
//! which carries the stream's own terminal padding). That is what keeps
//! the chunked wire accounting byte-equal to the Figure 2/10 cost model.

use core::fmt;
use core::ops::Range;

use dordis_sim::cost::{CostModel, Protocol, RoundCostInput, UnitCosts};
use dordis_sim::hetero::ClientProfile;
use serde::{Deserialize, Serialize};

use crate::planner::plan_from_cost_model;

/// Errors from chunk-plan construction or use.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChunkPlanError {
    /// A vector's length does not match the plan's `vector_len`.
    LengthMismatch {
        /// Bytes/elements the plan covers.
        expected: usize,
        /// What was provided.
        got: usize,
    },
    /// Wrong number of chunk pieces handed to [`ChunkPlan::reassemble`].
    ChunkCountMismatch {
        /// Chunks in the plan.
        expected: usize,
        /// Pieces provided.
        got: usize,
    },
    /// Unsupported bit width (the ring is `Z_{2^b}` with `b ∈ 1..=62`).
    BadBitWidth(u32),
}

impl fmt::Display for ChunkPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChunkPlanError::LengthMismatch { expected, got } => {
                write!(f, "length mismatch: plan covers {expected}, got {got}")
            }
            ChunkPlanError::ChunkCountMismatch { expected, got } => {
                write!(f, "chunk count mismatch: plan has {expected}, got {got}")
            }
            ChunkPlanError::BadBitWidth(b) => write!(f, "bit width {b} out of range 1..=62"),
        }
    }
}

impl std::error::Error for ChunkPlanError {}

/// Per-chunk element ranges for one round, byte-aligned for its bit
/// width. Constructed once (server side), communicated as a chunk count
/// in the Setup broadcast, and re-derived identically by every client —
/// both sides call [`ChunkPlan::aligned`] with the same round
/// parameters, so the plan itself never travels on the wire.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkPlan {
    vector_len: usize,
    bit_width: u32,
    /// `chunks() + 1` monotone bounds; `bounds[c]..bounds[c+1]` is chunk
    /// `c`'s element range. Every internal bound is byte-aligned.
    bounds: Vec<usize>,
}

/// Greatest common divisor (tiny inputs only).
fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

impl ChunkPlan {
    /// The element-granularity at which a boundary lands on a byte
    /// boundary of the `b`-bit packing: `8 / gcd(b, 8)` elements.
    fn align_step(bit_width: u32) -> usize {
        (8 / gcd(bit_width, 8)) as usize
    }

    /// A single-chunk (unchunked) plan — the m = 1 degenerate case every
    /// pre-chunking code path maps onto.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range bit widths.
    pub fn single(vector_len: usize, bit_width: u32) -> Result<ChunkPlan, ChunkPlanError> {
        ChunkPlan::aligned(vector_len, 1, bit_width)
    }

    /// An `m`-chunk plan over `vector_len` elements with every boundary
    /// byte-aligned for `bit_width`. Targets equal chunk sizes and rounds
    /// each boundary down to the nearest aligned element; when
    /// `vector_len` is too small to yield `m` non-empty aligned chunks,
    /// the plan has fewer chunks (never zero-length ones), so callers
    /// must read the realized count back via [`ChunkPlan::chunks`].
    ///
    /// # Errors
    ///
    /// Rejects out-of-range bit widths (`1..=62`).
    pub fn aligned(
        vector_len: usize,
        chunks: usize,
        bit_width: u32,
    ) -> Result<ChunkPlan, ChunkPlanError> {
        if bit_width == 0 || bit_width > 62 {
            return Err(ChunkPlanError::BadBitWidth(bit_width));
        }
        let m = chunks.max(1);
        let step = ChunkPlan::align_step(bit_width);
        let mut bounds = vec![0usize];
        for c in 1..m {
            let target = c * vector_len / m;
            let al = target / step * step;
            if al > *bounds.last().expect("non-empty") && al < vector_len {
                bounds.push(al);
            }
        }
        bounds.push(vector_len);
        Ok(ChunkPlan {
            vector_len,
            bit_width,
            bounds,
        })
    }

    /// Number of chunks (≥ 1).
    #[must_use]
    pub fn chunks(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total element count the plan covers.
    #[must_use]
    pub fn vector_len(&self) -> usize {
        self.vector_len
    }

    /// The bit width the boundaries are aligned for.
    #[must_use]
    pub fn bit_width(&self) -> u32 {
        self.bit_width
    }

    /// Element range of chunk `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= chunks()`.
    #[must_use]
    pub fn range(&self, c: usize) -> Range<usize> {
        self.bounds[c]..self.bounds[c + 1]
    }

    /// Element count of chunk `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= chunks()`.
    #[must_use]
    pub fn chunk_len(&self, c: usize) -> usize {
        self.bounds[c + 1] - self.bounds[c]
    }

    /// Byte range of chunk `c` within the single-frame bit-packed
    /// payload. Alignment guarantees the start is exact; the final chunk
    /// absorbs the stream's terminal padding byte, if any.
    ///
    /// # Panics
    ///
    /// Panics if `c >= chunks()`.
    #[must_use]
    pub fn byte_range(&self, c: usize) -> Range<usize> {
        let b = u64::from(self.bit_width);
        let start = (self.bounds[c] as u64 * b) / 8;
        let end = (self.bounds[c + 1] as u64 * b).div_ceil(8);
        start as usize..end as usize
    }

    /// Splits a full vector into per-chunk slices in schedule order.
    ///
    /// # Errors
    ///
    /// Rejects vectors whose length differs from the plan's.
    pub fn split<'a>(&self, v: &'a [u64]) -> Result<Vec<&'a [u64]>, ChunkPlanError> {
        if v.len() != self.vector_len {
            return Err(ChunkPlanError::LengthMismatch {
                expected: self.vector_len,
                got: v.len(),
            });
        }
        Ok((0..self.chunks()).map(|c| &v[self.range(c)]).collect())
    }

    /// Reassembles per-chunk pieces (in schedule order) into the full
    /// vector — the inverse of [`ChunkPlan::split`].
    ///
    /// # Errors
    ///
    /// Rejects a wrong piece count or a piece whose length disagrees
    /// with its chunk.
    pub fn reassemble(&self, pieces: &[Vec<u64>]) -> Result<Vec<u64>, ChunkPlanError> {
        if pieces.len() != self.chunks() {
            return Err(ChunkPlanError::ChunkCountMismatch {
                expected: self.chunks(),
                got: pieces.len(),
            });
        }
        let mut out = Vec::with_capacity(self.vector_len);
        for (c, piece) in pieces.iter().enumerate() {
            if piece.len() != self.chunk_len(c) {
                return Err(ChunkPlanError::LengthMismatch {
                    expected: self.chunk_len(c),
                    got: piece.len(),
                });
            }
            out.extend_from_slice(piece);
        }
        Ok(out)
    }
}

/// Planner-chosen chunk count for a networked round: profiles the
/// paper-testbed cost model at the round's dimension/population and
/// returns the makespan-minimizing `m ∈ [1, 20]` (§4.2). This is what
/// `--chunks` defaults to when unspecified; tiny rounds come out at
/// small `m` because the per-chunk intervention overhead (`β₂ m`)
/// swamps the overlap gain.
#[must_use]
pub fn planned_chunk_count(vector_len: usize, clients: usize, bit_width: u32) -> usize {
    let cost = CostModel::new(UnitCosts::paper_testbed());
    let input = RoundCostInput {
        clients: clients.max(2),
        vector_len: vector_len.max(1),
        protocol: Protocol::SecAgg,
        dropout_rate: 0.1,
        dp_enabled: true,
        xnoise_components: 0,
        bit_width,
        straggler: ClientProfile {
            compute_factor: 2.0,
            bandwidth_mbps: 21.0,
        },
        other_secs: 0.0,
    };
    plan_from_cost_model(&cost, &input, 20, 1).chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_plan_is_one_chunk() {
        let p = ChunkPlan::single(100, 20).unwrap();
        assert_eq!(p.chunks(), 1);
        assert_eq!(p.range(0), 0..100);
        assert_eq!(p.byte_range(0), 0..250);
    }

    #[test]
    fn aligned_bounds_land_on_byte_boundaries() {
        for bits in [1u32, 7, 8, 16, 20, 33, 62] {
            let p = ChunkPlan::aligned(1000, 7, bits).unwrap();
            for c in 0..p.chunks() - 1 {
                let bound = p.range(c).end;
                assert_eq!(
                    (bound as u64 * u64::from(bits)) % 8,
                    0,
                    "bits={bits} bound={bound}"
                );
            }
            // The ranges tile the vector.
            let total: usize = (0..p.chunks()).map(|c| p.chunk_len(c)).sum();
            assert_eq!(total, 1000);
        }
    }

    #[test]
    fn tiny_vectors_clamp_the_chunk_count() {
        // 3 elements at 20 bits align only every 2 elements: at most 2
        // non-empty chunks.
        let p = ChunkPlan::aligned(3, 8, 20).unwrap();
        assert!(p.chunks() <= 2, "got {} chunks", p.chunks());
        assert_eq!(p.range(p.chunks() - 1).end, 3);
        // Zero-length vectors degrade to one empty chunk.
        let p0 = ChunkPlan::aligned(0, 4, 20).unwrap();
        assert_eq!(p0.chunks(), 1);
        assert_eq!(p0.chunk_len(0), 0);
    }

    #[test]
    fn byte_ranges_partition_the_packed_payload() {
        for bits in [1u32, 7, 8, 16, 20, 33] {
            let d = 517usize;
            let p = ChunkPlan::aligned(d, 5, bits).unwrap();
            let total_bytes = (d as u64 * u64::from(bits)).div_ceil(8) as usize;
            let mut cursor = 0usize;
            for c in 0..p.chunks() {
                let r = p.byte_range(c);
                assert_eq!(r.start, cursor, "bits={bits} chunk={c}");
                cursor = r.end;
            }
            assert_eq!(cursor, total_bytes, "bits={bits}");
        }
    }

    #[test]
    fn split_reassemble_identity() {
        let d = 237usize;
        let v: Vec<u64> = (0..d as u64).map(|i| i * 31 + 5).collect();
        for m in [1usize, 2, 4, 8, 100] {
            let p = ChunkPlan::aligned(d, m, 16).unwrap();
            let parts: Vec<Vec<u64>> = p
                .split(&v)
                .unwrap()
                .into_iter()
                .map(<[u64]>::to_vec)
                .collect();
            assert_eq!(p.reassemble(&parts).unwrap(), v, "m={m}");
        }
    }

    #[test]
    fn mismatches_rejected() {
        let p = ChunkPlan::aligned(16, 2, 16).unwrap();
        assert!(matches!(
            p.split(&[0u64; 15]),
            Err(ChunkPlanError::LengthMismatch { .. })
        ));
        assert!(matches!(
            p.reassemble(&[vec![0u64; 16]]),
            Err(ChunkPlanError::ChunkCountMismatch { .. })
        ));
        assert!(matches!(
            ChunkPlan::aligned(16, 2, 63),
            Err(ChunkPlanError::BadBitWidth(63))
        ));
    }

    #[test]
    fn planned_count_is_in_range_and_grows_with_dimension() {
        let tiny = planned_chunk_count(1_000, 16, 20);
        let big = planned_chunk_count(11_000_000, 100, 20);
        assert!((1..=20).contains(&tiny));
        assert!((1..=20).contains(&big));
        assert!(big > 1, "large models must pipeline (got m={big})");
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// `reassemble ∘ split == identity` over random dims, chunk
        /// counts, and bit widths — the correctness contract every layer
        /// leans on.
        #[test]
        fn prop_split_reassemble_identity(
            d in 0usize..700,
            m in 1usize..12,
            bits in 1u32..63,
        ) {
            let plan = ChunkPlan::aligned(d, m, bits).unwrap();
            let v: Vec<u64> = (0..d as u64).map(|i| i.wrapping_mul(0x9e37_79b9) & ((1 << bits) - 1)).collect();
            let parts: Vec<Vec<u64>> = plan.split(&v).unwrap().into_iter().map(<[u64]>::to_vec).collect();
            prop_assert_eq!(plan.reassemble(&parts).unwrap(), v);
            // Chunks tile, in order, with aligned internal bounds.
            let mut cursor = 0usize;
            for c in 0..plan.chunks() {
                prop_assert_eq!(plan.range(c).start, cursor);
                cursor = plan.range(c).end;
                if c + 1 < plan.chunks() {
                    prop_assert_eq!((cursor as u64 * u64::from(bits)) % 8, 0);
                }
            }
            prop_assert_eq!(cursor, d);
        }
    }
}
