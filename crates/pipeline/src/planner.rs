//! Optimal chunk-count search (§4.2).
//!
//! Dordis reduces pipeline planning to choosing the number of equal
//! chunks `m`; the planner evaluates the Appendix C makespan at every
//! `m ∈ [1, max_chunks]` using fitted per-stage models and returns the
//! argmin. It also bridges the simulator's cost model into fitted stage
//! models via profiling.

use dordis_sim::cost::{CostModel, Resource, RoundCostInput};
use serde::{Deserialize, Serialize};

use crate::perfmodel::{fit, profile, StageModel};
use crate::schedule::schedule;

/// Result of planning.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PipelinePlan {
    /// Chosen chunk count `m*`.
    pub chunks: usize,
    /// Predicted makespan at `m*`, seconds.
    pub makespan: f64,
    /// Predicted makespan at `m = 1` (plain execution), seconds.
    pub plain: f64,
    /// Full sweep: `makespan[m-1]` for each evaluated `m`.
    pub sweep: Vec<f64>,
}

impl PipelinePlan {
    /// Speedup of the chosen plan over plain execution.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.plain / self.makespan
    }
}

/// Picks the optimal `m` given per-stage fitted models and resources.
///
/// # Panics
///
/// Panics if `models`/`resources` lengths differ or `max_chunks == 0`.
#[must_use]
pub fn plan(models: &[StageModel], resources: &[Resource], max_chunks: usize) -> PipelinePlan {
    assert_eq!(models.len(), resources.len());
    assert!(max_chunks >= 1);
    let mut sweep = Vec::with_capacity(max_chunks);
    for m in 1..=max_chunks {
        let tau: Vec<f64> = models.iter().map(|s| s.predict(m)).collect();
        sweep.push(schedule(&tau, resources, m).makespan);
    }
    let (best_idx, best) = sweep
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite makespans"))
        .expect("non-empty sweep");
    PipelinePlan {
        chunks: best_idx + 1,
        makespan: *best,
        plain: sweep[0],
        sweep: sweep.clone(),
    }
}

/// Profiles the simulator's cost model into per-stage fitted models (the
/// paper's offline micro-benchmarking: execute the protocol on proxy
/// data at several chunk counts and regress).
#[must_use]
pub fn profile_cost_model(
    cost: &CostModel,
    input: &RoundCostInput,
    profile_noise: f64,
    seed: u64,
) -> (Vec<StageModel>, Vec<Resource>) {
    let probe_ms: Vec<usize> = vec![1, 2, 3, 4, 6, 8, 12, 16, 20];
    let stage_count = cost.stage_costs(input).len();
    let resources: Vec<Resource> = cost.stage_costs(input).iter().map(|s| s.resource).collect();
    let mut models = Vec::with_capacity(stage_count);
    for s in 0..stage_count {
        let samples = profile(
            |m| cost.chunked_stage_costs(input, m)[s].secs,
            &probe_ms,
            profile_noise,
            seed ^ (s as u64) << 8,
        );
        models.push(fit(&samples, input.vector_len as f64));
    }
    (models, resources)
}

/// End-to-end: profile the cost model, fit, and plan. Returns the plan
/// computed over fitted models (what deployed Dordis would do).
#[must_use]
pub fn plan_from_cost_model(
    cost: &CostModel,
    input: &RoundCostInput,
    max_chunks: usize,
    seed: u64,
) -> PipelinePlan {
    let (models, resources) = profile_cost_model(cost, input, 0.03, seed);
    plan(&models, &resources, max_chunks)
}

/// Ground-truth pipelined round time at a given `m` straight from the
/// cost model (no fitting) — used to evaluate plan quality and to
/// produce the Figure 10 numbers.
#[must_use]
pub fn simulate_pipelined(cost: &CostModel, input: &RoundCostInput, m: usize) -> f64 {
    let stages = cost.chunked_stage_costs(input, m);
    let tau: Vec<f64> = stages.iter().map(|s| s.secs).collect();
    let resources: Vec<Resource> = stages.iter().map(|s| s.resource).collect();
    schedule(&tau, &resources, m).makespan
}

#[cfg(test)]
mod tests {
    use super::*;
    use dordis_sim::cost::{Protocol, UnitCosts};
    use dordis_sim::hetero::ClientProfile;

    /// The paper's Figure 10 regime: 100 sampled clients, moderate
    /// straggler, tolerance T = n/2.
    fn input(d: usize) -> RoundCostInput {
        RoundCostInput {
            clients: 100,
            vector_len: d,
            protocol: Protocol::SecAgg,
            dropout_rate: 0.1,
            dp_enabled: true,
            xnoise_components: 50,
            bit_width: 20,
            straggler: ClientProfile {
                compute_factor: 2.0,
                bandwidth_mbps: 21.0,
            },
            other_secs: 20.0,
        }
    }

    #[test]
    fn plan_beats_plain_for_large_models() {
        let cost = CostModel::new(UnitCosts::paper_testbed());
        let plan = plan_from_cost_model(&cost, &input(11_000_000), 20, 1);
        assert!(plan.chunks > 1, "chose m = {}", plan.chunks);
        assert!(plan.speedup() > 1.2, "speedup {}", plan.speedup());
    }

    #[test]
    fn speedup_within_amdahl_bounds() {
        // Three resources bound the speedup at 3x; the paper reports up
        // to ~2.4x for the aggregation part.
        let cost = CostModel::new(UnitCosts::paper_testbed());
        let plan = plan_from_cost_model(&cost, &input(20_000_000), 20, 2);
        assert!(plan.speedup() <= 3.0, "speedup {}", plan.speedup());
        assert!(plan.speedup() > 1.5, "speedup {}", plan.speedup());
    }

    #[test]
    fn larger_models_gain_more() {
        let cost = CostModel::new(UnitCosts::paper_testbed());
        let small = plan_from_cost_model(&cost, &input(1_000_000), 20, 3);
        let large = plan_from_cost_model(&cost, &input(20_000_000), 20, 3);
        assert!(
            large.speedup() >= small.speedup() * 0.98,
            "large {} vs small {}",
            large.speedup(),
            small.speedup()
        );
    }

    #[test]
    fn sweep_is_consistent_with_choice() {
        let cost = CostModel::new(UnitCosts::paper_testbed());
        let plan = plan_from_cost_model(&cost, &input(5_000_000), 20, 4);
        assert_eq!(plan.sweep.len(), 20);
        let min = plan.sweep.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((plan.makespan - min).abs() < 1e-9);
        assert!((plan.sweep[plan.chunks - 1] - plan.makespan).abs() < 1e-9);
    }

    #[test]
    fn fitted_plan_close_to_ground_truth_optimum() {
        // The planner works on fitted models; its chosen m should be
        // within a few percent of the true optimum.
        let cost = CostModel::new(UnitCosts::paper_testbed());
        let inp = input(11_000_000);
        let plan = plan_from_cost_model(&cost, &inp, 20, 5);
        let truth_best = (1..=20)
            .map(|m| simulate_pipelined(&cost, &inp, m))
            .fold(f64::INFINITY, f64::min);
        let achieved = simulate_pipelined(&cost, &inp, plan.chunks);
        assert!(
            achieved <= truth_best * 1.10,
            "achieved {achieved} vs best {truth_best}"
        );
    }

    #[test]
    fn too_deep_pipelines_hurt() {
        // Intervention (β₂ m) eventually overwhelms the chunking gain.
        let cost = CostModel::new(UnitCosts::paper_testbed());
        let inp = input(5_000_000);
        let at_4 = simulate_pipelined(&cost, &inp, 4);
        let at_200 = simulate_pipelined(&cost, &inp, 200);
        assert!(at_200 > at_4, "{at_200} !> {at_4}");
    }
}
