//! Pipeline-parallel aggregation (paper §4 and Appendix C).
//!
//! Dordis abstracts a distributed-DP round into a sequence of stages with
//! alternating dominant resources (Table 1), splits the model into `m`
//! equal chunks, and pipelines the resulting `m` independent
//! chunk-aggregation tasks. This crate provides:
//!
//! - [`chunkplan`]: the [`ChunkPlan`] every layer consumes — byte-aligned
//!   per-chunk element ranges that make the chunk the first-class unit
//!   of masking, transmission, and aggregation,
//! - [`schedule`]: the exact makespan recurrence of Appendix C (stage
//!   chaining, chunk ordering, and FIFO resource exclusivity),
//! - [`perfmodel`]: the paper's empirical per-stage latency model
//!   `τ_s(m) = β₁ d/m + β₂ m + β₃` with a least-squares profiler,
//! - [`planner`]: optimal chunk-count search (enumeration over
//!   `m ∈ [1, 20]`, as §4.2 prescribes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunkplan;
pub mod perfmodel;
pub mod planner;
pub mod schedule;

pub use chunkplan::{planned_chunk_count, ChunkPlan, ChunkPlanError};
pub use dordis_sim::cost::Resource;
