//! The per-stage latency model `τ_s(m) = β₁ · d/m + β₂ · m + β₃` (§4.2)
//! and its least-squares profiler.
//!
//! `β₁` weighs partition size (work proportional to chunk length), `β₂`
//! the inter-task intervention (FL clients are not isolated: deeper
//! pipelines steal cycles from each other), and `β₃` the constant cost
//! (RTTs, key setup). The profiler fits the three coefficients from
//! `(m, observed τ)` samples by solving the 3×3 normal equations.

use serde::{Deserialize, Serialize};

/// A fitted per-stage model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StageModel {
    /// Work coefficient (seconds per element · elements-of-d).
    pub beta1: f64,
    /// Intervention coefficient (seconds per chunk of depth).
    pub beta2: f64,
    /// Constant cost (seconds).
    pub beta3: f64,
    /// Total data size `d` the model was fitted at.
    pub d: f64,
}

impl StageModel {
    /// Predicted stage latency at chunk count `m`.
    #[must_use]
    pub fn predict(&self, m: usize) -> f64 {
        self.beta1 * self.d / m as f64 + self.beta2 * m as f64 + self.beta3
    }

    /// Predicted latency at chunk count `m` with a `workers`-thread
    /// compute plane:
    /// `τ_s(m, W) = β₁ · d / (m · W_eff) + β₂ · m + β₃`.
    ///
    /// Only the work term parallelizes — a chunk's `β₁ · d/m` expansion
    /// splits across workers, while the per-chunk intervention `β₂ · m`
    /// (scheduling, completion hand-off, cache interference) and the
    /// constant `β₃` (RTTs, reconstruction) stay serial, Amdahl-style.
    /// `W_eff = min(W, m)` because a round fans out at most one job per
    /// chunk: extra workers beyond the chunk count idle. `workers = 0`
    /// (serial) predicts identically to [`StageModel::predict`].
    #[must_use]
    pub fn predict_parallel(&self, m: usize, workers: usize) -> f64 {
        // Not `clamp(1, m)`: m = 0 would panic (min > max); this form
        // degrades to the same ±inf `predict(0)` does.
        let w_eff = workers.max(1).min(m.max(1)) as f64;
        self.beta1 * self.d / (m as f64 * w_eff) + self.beta2 * m as f64 + self.beta3
    }

    /// Predicted latency at chunk count `m` with a `workers`-thread
    /// compute plane on each of `shards` aggregation shards:
    /// `τ_s(m, W, S) = β₁ · d / (m · L) + β₂ · (S − 1) + β₂ · m + β₃`,
    /// with lane count `L = min(S · W_eff, m)`.
    ///
    /// Sharding multiplies the compute lanes — `S` coordinators, each
    /// with `W_eff = min(max(W, 1), m)` workers — but the lane count
    /// still caps at `m`: a round fans out at most one unmask job per
    /// chunk, whichever shard hosts it. `β₂ · (S − 1)` is the
    /// cross-shard merge: folding `S` partial outcomes into the union
    /// report is `S − 1` serial completion hand-offs on the session
    /// thread — the same intervention class `β₂` already prices per
    /// chunk, and far cheaper than re-expanding masks (the element-wise
    /// modular adds are a vanishing fraction of a β₁ work unit).
    /// `shards <= 1` predicts identically to
    /// [`StageModel::predict_parallel`].
    #[must_use]
    pub fn predict_sharded(&self, m: usize, workers: usize, shards: usize) -> f64 {
        let s = shards.max(1);
        let w_eff = workers.max(1).min(m.max(1));
        let lanes = (s * w_eff).min(m.max(1)) as f64;
        let merge = self.beta2 * (s - 1) as f64;
        self.beta1 * self.d / (m as f64 * lanes) + merge + self.beta2 * m as f64 + self.beta3
    }
}

/// One profiling observation: chunk count and measured latency.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Sample {
    /// Chunk count `m` of the observation.
    pub m: usize,
    /// Measured per-chunk stage latency in seconds.
    pub tau: f64,
}

/// Fits `τ(m) = β₁ d/m + β₂ m + β₃` by ordinary least squares.
///
/// Needs at least three samples at distinct `m`; coefficients are
/// clamped at zero (negative work/intervention is unphysical and only
/// arises from noise).
///
/// # Panics
///
/// Panics if fewer than 3 samples or fewer than 3 distinct `m` values
/// are supplied.
#[must_use]
pub fn fit(samples: &[Sample], d: f64) -> StageModel {
    assert!(samples.len() >= 3, "need at least 3 profiling samples");
    {
        let mut ms: Vec<usize> = samples.iter().map(|s| s.m).collect();
        ms.sort_unstable();
        ms.dedup();
        assert!(ms.len() >= 3, "need 3 distinct chunk counts");
    }
    // Features x = [d/m, m, 1]; solve (XᵀX) β = Xᵀy.
    let mut xtx = [[0.0f64; 3]; 3];
    let mut xty = [0.0f64; 3];
    for s in samples {
        let x = [d / s.m as f64, s.m as f64, 1.0];
        for i in 0..3 {
            for j in 0..3 {
                xtx[i][j] += x[i] * x[j];
            }
            xty[i] += x[i] * s.tau;
        }
    }
    let beta = solve3(xtx, xty);
    StageModel {
        beta1: beta[0].max(0.0),
        beta2: beta[1].max(0.0),
        beta3: beta[2].max(0.0),
        d,
    }
}

/// Solves a 3×3 linear system by Gaussian elimination with partial
/// pivoting.
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> [f64; 3] {
    for col in 0..3 {
        // Pivot.
        let mut pivot = col;
        for row in (col + 1)..3 {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        if diag.abs() < 1e-30 {
            continue; // Degenerate; leave as-is (caller clamps).
        }
        for row in 0..3 {
            if row == col {
                continue;
            }
            let factor = a[row][col] / diag;
            for k in 0..3 {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = [0.0f64; 3];
    for i in 0..3 {
        x[i] = if a[i][i].abs() < 1e-30 {
            0.0
        } else {
            b[i] / a[i][i]
        };
    }
    x
}

/// Generates profiling samples for a stage from a ground-truth latency
/// function (e.g. the simulator's cost model) over a chunk-count sweep,
/// optionally with multiplicative noise — the paper's "offline
/// micro-benchmarking with small-scale proxy data".
#[must_use]
pub fn profile<F>(tau_at: F, ms: &[usize], noise: f64, seed: u64) -> Vec<Sample>
where
    F: Fn(usize) -> f64,
{
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    ms.iter()
        .map(|&m| {
            let factor = 1.0 + noise * (rng.gen::<f64>() * 2.0 - 1.0);
            Sample {
                m,
                tau: tau_at(m) * factor.max(0.0),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_recovery_without_noise() {
        let d = 1e6;
        let truth = StageModel {
            beta1: 3e-6,
            beta2: 0.4,
            beta3: 1.5,
            d,
        };
        let samples: Vec<Sample> = (1..=10)
            .map(|m| Sample {
                m,
                tau: truth.predict(m),
            })
            .collect();
        let fitted = fit(&samples, d);
        assert!((fitted.beta1 - truth.beta1).abs() / truth.beta1 < 1e-6);
        assert!((fitted.beta2 - truth.beta2).abs() / truth.beta2 < 1e-6);
        assert!((fitted.beta3 - truth.beta3).abs() / truth.beta3 < 1e-6);
    }

    #[test]
    fn noisy_recovery_is_close() {
        let d = 1e7;
        let truth = StageModel {
            beta1: 1e-6,
            beta2: 0.8,
            beta3: 2.0,
            d,
        };
        let samples = profile(|m| truth.predict(m), &(1..=20).collect::<Vec<_>>(), 0.05, 7);
        let fitted = fit(&samples, d);
        for m in [1usize, 4, 8, 16] {
            let rel = (fitted.predict(m) - truth.predict(m)).abs() / truth.predict(m);
            assert!(rel < 0.15, "m={m} rel err {rel}");
        }
    }

    #[test]
    fn predict_shape() {
        let model = StageModel {
            beta1: 1e-6,
            beta2: 0.5,
            beta3: 1.0,
            d: 1e7,
        };
        // Work term dominates at m=1; intervention dominates at large m —
        // so τ(m) is U-shaped.
        let t1 = model.predict(1);
        let t4 = model.predict(4);
        let t40 = model.predict(40);
        assert!(t4 < t1);
        assert!(t40 > t4);
    }

    #[test]
    fn parallel_prediction_shape() {
        let model = StageModel {
            beta1: 1e-6,
            beta2: 0.2,
            beta3: 1.0,
            d: 1e7,
        };
        // Serial and 1-worker agree with the base model.
        for m in [1usize, 4, 16] {
            assert_eq!(model.predict_parallel(m, 0), model.predict(m));
            assert_eq!(model.predict_parallel(m, 1), model.predict(m));
        }
        // More workers monotonically shrink the work term...
        assert!(model.predict_parallel(8, 4) < model.predict_parallel(8, 2));
        assert!(model.predict_parallel(8, 2) < model.predict_parallel(8, 1));
        // ...but never below the serial floor β₂·m + β₃ (Amdahl).
        let floor = 0.2 * 8.0 + 1.0;
        assert!(model.predict_parallel(8, 1_000_000) > floor);
        // Workers beyond the chunk count are wasted: one job per chunk.
        assert_eq!(model.predict_parallel(4, 4), model.predict_parallel(4, 64));
        // Degenerate m = 0 degrades like predict(0) instead of
        // panicking in clamp.
        assert!(model.predict_parallel(0, 4).is_infinite());
    }

    #[test]
    fn sharded_prediction_shape() {
        let model = StageModel {
            beta1: 1e-6,
            beta2: 0.02,
            beta3: 1.0,
            d: 1e7,
        };
        // One shard is exactly the parallel model — no merge, same lanes.
        for m in [1usize, 4, 16] {
            for w in [0usize, 1, 2, 8] {
                assert_eq!(model.predict_sharded(m, w, 0), model.predict_parallel(m, w));
                assert_eq!(model.predict_sharded(m, w, 1), model.predict_parallel(m, w));
            }
        }
        // Work-dominated regime: more shards shrink the work term
        // faster than the merge hand-offs grow.
        assert!(model.predict_sharded(16, 1, 2) < model.predict_sharded(16, 1, 1));
        assert!(model.predict_sharded(16, 1, 4) < model.predict_sharded(16, 1, 2));
        // Lanes cap at the chunk count: with S·W ≥ m already, extra
        // shards only add merge cost.
        let capped = model.predict_sharded(4, 4, 1);
        assert!(model.predict_sharded(4, 4, 2) > capped);
        // exactly one extra hand-off
        assert!((model.predict_sharded(4, 4, 2) - capped - model.beta2).abs() < 1e-12);
        // Shards × workers compose into one lane pool: 2 shards of 2
        // workers expand the same 4 lanes as 1 shard of 4 workers, plus
        // the merge hand-off.
        assert!(
            (model.predict_sharded(16, 2, 2) - model.beta2 - model.predict_parallel(16, 4)).abs()
                < 1e-12
        );
        // Never below the serial floor (Amdahl).
        let floor = model.beta2 * 8.0 + model.beta3;
        assert!(model.predict_sharded(8, 1_000, 1_000) > floor);
        // Degenerate m = 0 degrades like predict(0) instead of
        // panicking.
        assert!(model.predict_sharded(0, 4, 4).is_infinite());
    }

    #[test]
    fn negative_coefficients_clamped() {
        // Strongly decreasing samples would fit β₂ < 0; we clamp to 0.
        let samples = vec![
            Sample { m: 1, tau: 10.0 },
            Sample { m: 2, tau: 5.0 },
            Sample { m: 4, tau: 2.4 },
            Sample { m: 8, tau: 1.1 },
        ];
        let fitted = fit(&samples, 1e6);
        assert!(fitted.beta2 >= 0.0);
        assert!(fitted.beta1 >= 0.0);
    }

    #[test]
    #[should_panic(expected = "3 distinct")]
    fn duplicate_m_rejected() {
        let samples = vec![
            Sample { m: 2, tau: 1.0 },
            Sample { m: 2, tau: 1.1 },
            Sample { m: 2, tau: 0.9 },
        ];
        let _ = fit(&samples, 1e6);
    }

    #[test]
    fn solve3_known_system() {
        // x + y + z = 6; 2y + 5z = -4; 2x + 5y - z = 27 → (5, 3, -2).
        let a = [[1.0, 1.0, 1.0], [0.0, 2.0, 5.0], [2.0, 5.0, -1.0]];
        let b = [6.0, -4.0, 27.0];
        let x = solve3(a, b);
        assert!((x[0] - 5.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
        assert!((x[2] + 2.0).abs() < 1e-9);
    }
}
