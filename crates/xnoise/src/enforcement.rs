//! Online noise enforcement: client-side addition and server-side removal
//! of decomposed Skellam noise in `Z_{2^b}` (Definition 2, XNoise).
//!
//! Noise vectors are generated deterministically from per-component seeds
//! with [`dordis_dp::mechanism::skellam_vector`], so the server removes
//! *exactly* the realized noise (not just noise of matching distribution)
//! once it learns a seed — directly from a survivor, or via Shamir
//! reconstruction for clients that dropped mid-protocol.

use dordis_crypto::prg::{Prg, Seed};
use dordis_dp::mechanism::skellam_vector;
use dordis_secagg::mask::ring_mask;

use crate::decomposition::XNoisePlan;
use crate::XNoiseError;

/// Domain string for component noise streams; shared by add and remove.
const NOISE_DOMAIN: &[u8] = b"dordis.xnoise.component";

/// Derives the `T + 1` component seeds from a client's round seed.
#[must_use]
pub fn derive_component_seeds(round_seed: &Seed, components: usize) -> Vec<Seed> {
    (0..=components)
        .map(|k| Prg::fork(round_seed, b"xnoise.seed", k as u64))
        .collect()
}

/// Generates the integer noise vector for one component.
#[must_use]
pub fn component_noise(seed: &Seed, len: usize, variance: f64) -> Vec<i64> {
    skellam_vector(seed, NOISE_DOMAIN, len, variance)
}

/// Client-side: adds all `T + 1` noise components to an encoded update.
///
/// `update` holds ring elements (`< 2^b`); noise wraps modularly.
///
/// # Errors
///
/// Fails if the seed count does not match the plan.
pub fn perturb(
    update: &mut [u64],
    seeds: &[Seed],
    plan: &XNoisePlan,
    bit_width: u32,
) -> Result<(), XNoiseError> {
    if seeds.len() != plan.dropout_tolerance + 1 {
        return Err(XNoiseError::BadParameter(format!(
            "expected {} seeds, got {}",
            plan.dropout_tolerance + 1,
            seeds.len()
        )));
    }
    let ring = ring_mask(bit_width);
    for (k, seed) in seeds.iter().enumerate() {
        let noise = component_noise(seed, update.len(), plan.component_variance(k));
        for (u, &z) in update.iter_mut().zip(noise.iter()) {
            *u = add_ring(*u, z, ring);
        }
    }
    Ok(())
}

/// Server-side: removes the excessive components from the aggregate.
///
/// `removal_seeds` is the `(client, component k, seed)` list produced by
/// secure aggregation; `survivors`/`dropped` determine which components
/// *must* be present. Removal is idempotent over duplicates (they are
/// deduplicated) and fails loudly if a required seed is missing.
///
/// # Errors
///
/// [`XNoiseError::ToleranceExceeded`] when more clients dropped than `T`;
/// [`XNoiseError::MissingSeed`] if a required `(client, k)` seed is absent.
pub fn remove_excess(
    aggregate: &mut [u64],
    removal_seeds: &[(u32, usize, Seed)],
    survivors: &[u32],
    plan: &XNoisePlan,
    bit_width: u32,
) -> Result<(), XNoiseError> {
    let dropped = plan.clients.saturating_sub(survivors.len());
    let range = plan.removal_components(dropped)?;
    let ring = ring_mask(bit_width);
    // Deduplicate: a seed may arrive both directly and via reconstruction.
    let mut seen = std::collections::BTreeMap::new();
    for (c, k, s) in removal_seeds {
        seen.insert((*c, *k), *s);
    }
    for &client in survivors {
        for k in range.clone() {
            let seed = seen.get(&(client, k)).ok_or(XNoiseError::MissingSeed {
                client,
                component: k,
            })?;
            let noise = component_noise(seed, aggregate.len(), plan.component_variance(k));
            for (a, &z) in aggregate.iter_mut().zip(noise.iter()) {
                *a = add_ring(*a, -z, ring);
            }
        }
    }
    Ok(())
}

/// The `Orig` baseline (Definition 1): each client adds a single
/// `σ²∗ / |U|` share of the target noise, with no removal machinery.
/// Returns the noise vector so callers can model dropout by simply not
/// adding some clients' shares.
#[must_use]
pub fn orig_noise(seed: &Seed, len: usize, target_variance: f64, clients: usize) -> Vec<i64> {
    skellam_vector(seed, NOISE_DOMAIN, len, target_variance / clients as f64)
}

/// Adds a signed integer to a ring element.
#[inline]
fn add_ring(value: u64, delta: i64, ring: u64) -> u64 {
    let m = ring.wrapping_add(1); // 2^b (or 0 for b = 64, handled by mask).
    let d = if m == 0 {
        delta as u64
    } else {
        (delta.rem_euclid(m as i64)) as u64
    };
    value.wrapping_add(d) & ring
}

/// Centered interpretation of a ring element (for analysis/tests).
#[must_use]
pub fn center(value: u64, bit_width: u32) -> i64 {
    let m = 1i64 << bit_width;
    let v = value as i64;
    if v >= m / 2 {
        v - m
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BITS: u32 = 24;

    fn plan(n: usize, t: usize, sigma_sq: f64) -> XNoisePlan {
        XNoisePlan::new(sigma_sq, n, t, 0, n / 2 + 1).unwrap()
    }

    fn seeds_for(client: u32, t: usize) -> Vec<Seed> {
        derive_component_seeds(&[client as u8 + 1; 32], t)
    }

    /// Simulates a full add-then-remove round in the ring and returns the
    /// centered residual aggregate (inputs are zero, so the residual IS
    /// the noise).
    fn residual_noise(n: usize, t: usize, drop: usize, sigma_sq: f64, len: usize) -> Vec<i64> {
        let plan = plan(n, t, sigma_sq);
        let survivors: Vec<u32> = (drop as u32..n as u32).collect();
        let mut aggregate = vec![0u64; len];
        let ring = ring_mask(BITS);
        for &c in &survivors {
            let mut update = vec![0u64; len];
            perturb(&mut update, &seeds_for(c, t), &plan, BITS).unwrap();
            for (a, u) in aggregate.iter_mut().zip(update.iter()) {
                *a = (*a + *u) & ring;
            }
        }
        // Seeds for removal: components |D|+1..=T from every survivor.
        let mut removal = Vec::new();
        for &c in &survivors {
            let s = seeds_for(c, t);
            for k in (drop + 1)..=t {
                removal.push((c, k, s[k]));
            }
        }
        remove_excess(&mut aggregate, &removal, &survivors, &plan, BITS).unwrap();
        aggregate.iter().map(|&v| center(v, BITS)).collect()
    }

    fn variance(xs: &[i64]) -> f64 {
        let n = xs.len() as f64;
        let mean = xs.iter().map(|&x| x as f64).sum::<f64>() / n;
        xs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / (n - 1.0)
    }

    #[test]
    fn theorem1_statistical_no_dropout() {
        let v = variance(&residual_noise(8, 3, 0, 100.0, 30_000));
        assert!((v - 100.0).abs() < 6.0, "residual variance {v}");
    }

    #[test]
    fn theorem1_statistical_partial_dropout() {
        let v = variance(&residual_noise(8, 3, 2, 100.0, 30_000));
        assert!((v - 100.0).abs() < 6.0, "residual variance {v}");
    }

    #[test]
    fn theorem1_statistical_full_tolerance_dropout() {
        let v = variance(&residual_noise(8, 3, 3, 100.0, 30_000));
        assert!((v - 100.0).abs() < 6.0, "residual variance {v}");
    }

    #[test]
    fn orig_under_noises_with_dropout() {
        // The contrast experiment: Orig's residual with 2/8 dropped is
        // (6/8)·σ²∗ — visibly below target.
        let len = 30_000;
        let mut acc = vec![0i64; len];
        for c in 2..8u32 {
            let noise = orig_noise(&[c as u8; 32], len, 100.0, 8);
            for (a, z) in acc.iter_mut().zip(noise.iter()) {
                *a += z;
            }
        }
        let v = variance(&acc);
        assert!((v - 75.0).abs() < 5.0, "orig residual {v}");
    }

    #[test]
    fn removal_is_exact_not_just_distributional() {
        // With inputs included, add-then-remove must return *exactly* the
        // sum of inputs plus the non-removed components — check by
        // removing every component and recovering the clean sum.
        let plan = plan(4, 3, 50.0); // T = n - 1: removal can strip all.
        let len = 64;
        let ring = ring_mask(BITS);
        let inputs: Vec<Vec<u64>> = (0..4u32)
            .map(|c| {
                (0..len)
                    .map(|i| (u64::from(c) * 1000 + i as u64) & ring)
                    .collect()
            })
            .collect();
        let mut aggregate = vec![0u64; len];
        for (c, input) in inputs.iter().enumerate() {
            let mut update = input.clone();
            perturb(&mut update, &seeds_for(c as u32, 3), &plan, BITS).unwrap();
            for (a, u) in aggregate.iter_mut().zip(update.iter()) {
                *a = (*a + *u) & ring;
            }
        }
        // Remove components 1..=3 (|D| = 0), leaving only component 0 —
        // then strip component 0 manually to verify exactness.
        let survivors: Vec<u32> = (0..4).collect();
        let mut removal = Vec::new();
        for &c in &survivors {
            let s = seeds_for(c, 3);
            for k in 1..=3usize {
                removal.push((c, k, s[k]));
            }
        }
        remove_excess(&mut aggregate, &removal, &survivors, &plan, BITS).unwrap();
        for &c in &survivors {
            let s = seeds_for(c, 3);
            let noise = component_noise(&s[0], len, plan.component_variance(0));
            for (a, &z) in aggregate.iter_mut().zip(noise.iter()) {
                *a = super::add_ring(*a, -z, ring);
            }
        }
        let mut expect = vec![0u64; len];
        for input in &inputs {
            for (e, v) in expect.iter_mut().zip(input.iter()) {
                *e = (*e + *v) & ring;
            }
        }
        assert_eq!(aggregate, expect);
    }

    #[test]
    fn missing_seed_is_detected() {
        let plan = plan(4, 2, 10.0);
        let survivors: Vec<u32> = vec![0, 1, 2, 3];
        let mut removal = Vec::new();
        for &c in &survivors {
            let s = seeds_for(c, 2);
            for k in 1..=2usize {
                if c == 2 && k == 2 {
                    continue; // Withhold one seed.
                }
                removal.push((c, k, s[k]));
            }
        }
        let mut agg = vec![0u64; 8];
        let err = remove_excess(&mut agg, &removal, &survivors, &plan, BITS).unwrap_err();
        assert_eq!(
            err,
            XNoiseError::MissingSeed {
                client: 2,
                component: 2
            }
        );
    }

    #[test]
    fn tolerance_exceeded_is_detected() {
        let plan = plan(8, 2, 10.0);
        let survivors: Vec<u32> = vec![0, 1, 2]; // 5 dropped > T = 2.
        let mut agg = vec![0u64; 8];
        let err = remove_excess(&mut agg, &[], &survivors, &plan, BITS).unwrap_err();
        assert!(matches!(
            err,
            XNoiseError::ToleranceExceeded { dropped: 5, .. }
        ));
    }

    #[test]
    fn wrong_seed_count_rejected() {
        let plan = plan(4, 2, 10.0);
        let mut update = vec![0u64; 4];
        let err = perturb(&mut update, &seeds_for(0, 1), &plan, BITS).unwrap_err();
        assert!(matches!(err, XNoiseError::BadParameter(_)));
    }

    #[test]
    fn derived_seeds_are_distinct_and_deterministic() {
        let a = derive_component_seeds(&[7u8; 32], 3);
        let b = derive_component_seeds(&[7u8; 32], 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        for i in 0..a.len() {
            for j in (i + 1)..a.len() {
                assert_ne!(a[i], a[j]);
            }
        }
    }

    #[test]
    fn center_roundtrip() {
        assert_eq!(center(0, 8), 0);
        assert_eq!(center(127, 8), 127);
        assert_eq!(center(128, 8), -128);
        assert_eq!(center(255, 8), -1);
    }

    #[test]
    fn add_ring_handles_negative() {
        let ring = ring_mask(8);
        assert_eq!(super::add_ring(5, -10, ring), 251);
        assert_eq!(super::add_ring(250, 10, ring), 4);
        assert_eq!(super::add_ring(0, -256, ring), 0);
    }
}
