//! Network-footprint model: XNoise vs rebasing (Table 3 of the paper).
//!
//! Computes the *additional* per-round network bytes a surviving client
//! pays compared to `Orig`, under the wire sizes the paper specifies
//! (§6.3): model weight 2.5 B, noise seed 32 B, Shamir share of a seed
//! 16 B, ciphertext of a share 120 B.
//!
//! XNoise's extra traffic is seeds and shares only — independent of the
//! model size; rebasing ships a whole model-sized adjustment vector.

use serde::{Deserialize, Serialize};

/// Wire sizes used by the model (defaults match the paper's §6.3).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WireSizes {
    /// Bytes per model weight on the wire.
    pub weight: f64,
    /// Bytes per noise seed.
    pub seed: f64,
    /// Bytes per Shamir share of a seed.
    pub share: f64,
    /// Bytes per encrypted share (ciphertext).
    pub share_ciphertext: f64,
}

impl Default for WireSizes {
    fn default() -> Self {
        WireSizes {
            weight: 2.5,
            seed: 32.0,
            share: 16.0,
            share_ciphertext: 120.0,
        }
    }
}

/// Scenario parameters for the footprint comparison.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FootprintScenario {
    /// Model parameter count `d`.
    pub model_params: u64,
    /// Sampled clients `n` per round.
    pub sampled: usize,
    /// Per-round dropout rate in `[0, 1)`.
    pub dropout_rate: f64,
    /// XNoise dropout tolerance `T` (the paper sizes it as the worst-case
    /// dropout the round must absorb; we default to `ceil(0.5 n)` like
    /// the artifact's configuration when unspecified).
    pub tolerance: usize,
}

impl FootprintScenario {
    /// Number of dropped clients this scenario assumes.
    #[must_use]
    pub fn dropped(&self) -> usize {
        ((self.sampled as f64) * self.dropout_rate).round() as usize
    }

    /// Surviving clients.
    #[must_use]
    pub fn survivors(&self) -> usize {
        self.sampled - self.dropped()
    }
}

/// Additional per-round bytes for a surviving client under **XNoise**,
/// relative to `Orig`.
///
/// A surviving client pays for:
/// - `T` encrypted shares of its own seeds to each of the `n-1` peers at
///   `ShareKeys` time — amortized here as `T·(n-1)` ciphertexts *sent*
///   (downlink of others' shares is symmetric and counted once, matching
///   the paper's single-client accounting),
/// - its own revealed seeds `(T - |D|)` at unmasking,
/// - shares of `U3 \ U5` clients' seeds at stage 5 (zero in the common
///   path, bounded by `T` per dropped-late client; we take the paper's
///   common-path accounting of zero).
#[must_use]
pub fn xnoise_extra_bytes(s: &FootprintScenario, w: &WireSizes) -> f64 {
    let t = s.tolerance as f64;
    let n = s.sampled as f64;
    // Figure 5 generates shares for the full roster (n per component).
    let shares_out = t * n * w.share_ciphertext;
    let seeds_revealed = (t - s.dropped() as f64).max(0.0) * w.seed;
    shares_out + seeds_revealed
}

/// Additional per-round bytes for a surviving client under **rebasing**.
///
/// The client ships a model-sized adjustment vector whenever removal is
/// needed (i.e. whenever fewer than `T` clients dropped).
#[must_use]
pub fn rebasing_extra_bytes(s: &FootprintScenario, w: &WireSizes) -> f64 {
    if s.dropped() >= s.tolerance {
        return 0.0;
    }
    s.model_params as f64 * w.weight
}

/// One Table 3 row: `(rebasing MB, XNoise MB)` for the scenario
/// (mebibytes; the paper's 11.9 MB for a 5M-weight adjustment vector at
/// 2.5 B/weight pins the unit to 2^20).
#[must_use]
pub fn table3_row(s: &FootprintScenario, w: &WireSizes) -> (f64, f64) {
    let mb = 1024.0 * 1024.0;
    (
        rebasing_extra_bytes(s, w) / mb,
        xnoise_extra_bytes(s, w) / mb,
    )
}

/// The paper's default tolerance for a Table 3 scenario: 50% of sampled.
#[must_use]
pub fn default_tolerance(sampled: usize) -> usize {
    sampled / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(params_m: u64, n: usize, rate: f64) -> FootprintScenario {
        FootprintScenario {
            model_params: params_m * 1_000_000,
            sampled: n,
            dropout_rate: rate,
            tolerance: default_tolerance(n),
        }
    }

    #[test]
    fn xnoise_is_invariant_to_model_size() {
        let w = WireSizes::default();
        let a = xnoise_extra_bytes(&scenario(5, 100, 0.0), &w);
        let b = xnoise_extra_bytes(&scenario(500, 100, 0.0), &w);
        assert_eq!(a, b);
    }

    #[test]
    fn rebasing_scales_linearly_with_model_size() {
        let w = WireSizes::default();
        let a = rebasing_extra_bytes(&scenario(5, 100, 0.0), &w);
        let b = rebasing_extra_bytes(&scenario(50, 100, 0.0), &w);
        let c = rebasing_extra_bytes(&scenario(500, 100, 0.0), &w);
        assert!((b / a - 10.0).abs() < 1e-9);
        assert!((c / a - 100.0).abs() < 1e-9);
    }

    #[test]
    fn paper_magnitudes_5m_100_clients() {
        // Table 3, first row: rebasing ≈ 11.9 MB, XNoise ≈ 0.6 MB.
        let w = WireSizes::default();
        let (rebase, xnoise) = table3_row(&scenario(5, 100, 0.0), &w);
        assert!((rebase - 11.9).abs() < 0.1, "rebasing {rebase} MB");
        assert!((xnoise - 0.6).abs() < 0.1, "xnoise {xnoise} MB");
    }

    #[test]
    fn paper_magnitudes_growth_with_clients() {
        // Table 3: 200 clients ≈ 2.4 MB, 300 clients ≈ 5.5 MB for XNoise.
        let w = WireSizes::default();
        let (_, x200) = table3_row(&scenario(5, 200, 0.0), &w);
        let (_, x300) = table3_row(&scenario(5, 300, 0.0), &w);
        assert!((x200 - 2.4).abs() < 0.2, "200 clients: {x200} MB");
        assert!((x300 - 5.5).abs() < 0.4, "300 clients: {x300} MB");
    }

    #[test]
    fn xnoise_cost_slightly_decreases_with_dropout() {
        // Fewer seeds are revealed when more clients drop (Table 3 shows
        // 5.5 -> 5.2 MB for 300 clients as dropout goes 0 -> 30%).
        let w = WireSizes::default();
        let x0 = xnoise_extra_bytes(&scenario(5, 300, 0.0), &w);
        let x30 = xnoise_extra_bytes(&scenario(5, 300, 0.3), &w);
        assert!(x30 < x0);
        assert!((x0 - x30) / x0 < 0.1, "decrease should be mild");
    }

    #[test]
    fn rebasing_free_only_at_full_tolerance_dropout() {
        let w = WireSizes::default();
        let mut s = scenario(5, 100, 0.5);
        assert_eq!(rebasing_extra_bytes(&s, &w), 0.0);
        s.dropout_rate = 0.49;
        assert!(rebasing_extra_bytes(&s, &w) > 0.0);
    }
}
