//! XNoise: dropout-resilient 'add-then-remove' noise enforcement (§3 of
//! the Dordis paper).
//!
//! The problem: with `Orig`-style distributed DP, each of the `|U|`
//! sampled clients adds a `1/|U|` share of the target noise `σ²∗`; clients
//! that drop take their shares with them and the released aggregate is
//! under-noised, silently over-spending the privacy budget (paper §2.3.1).
//!
//! XNoise inverts the failure mode:
//!
//! 1. **Add**: every client adds an *excessive* noise of level
//!    `σ²∗ / (|U| - T)`, decomposed into `T + 1` additive components
//!    ([`decomposition`]), each generated from its own seed.
//! 2. **Remove**: after aggregation, the server learns the actual dropout
//!    `|D| ≤ T` and removes the components with index `k > |D|` from every
//!    surviving client — by regenerating them from seeds revealed directly
//!    or reconstructed from Shamir shares ([`enforcement`]).
//!
//! The residual noise is exactly `σ²∗` for *any* dropout outcome within
//! tolerance (Theorem 1; tested here both algebraically and
//! statistically).
//!
//! The crate also implements the 'rebasing' alternative of Baek et al.
//! ([`rebasing`]) — whole-vector noise adjustment — and the network
//! footprint model comparing the two ([`footprint`], Table 3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decomposition;
pub mod enforcement;
pub mod footprint;
pub mod rebasing;

/// Errors from noise enforcement.
#[derive(Debug, Clone, PartialEq)]
pub enum XNoiseError {
    /// More clients dropped than the configured tolerance.
    ToleranceExceeded {
        /// Observed dropouts.
        dropped: usize,
        /// Configured tolerance `T`.
        tolerance: usize,
    },
    /// A parameter was outside its valid domain.
    BadParameter(String),
    /// A required removal seed is missing (protocol violated).
    MissingSeed {
        /// Seed owner.
        client: u32,
        /// Component index.
        component: usize,
    },
}

impl core::fmt::Display for XNoiseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            XNoiseError::ToleranceExceeded { dropped, tolerance } => {
                write!(f, "{dropped} dropouts exceed tolerance T={tolerance}")
            }
            XNoiseError::BadParameter(why) => write!(f, "bad parameter: {why}"),
            XNoiseError::MissingSeed { client, component } => {
                write!(
                    f,
                    "missing removal seed: client {client} component {component}"
                )
            }
        }
    }
}

impl std::error::Error for XNoiseError {}
