//! Noise decomposition (§3.2): how a client's excessive noise splits into
//! `T + 1` additive components whose partial sums realize every possible
//! removal requirement.
//!
//! With `n = |U|` sampled clients, dropout tolerance `T`, and target
//! central level `σ²∗`, a client adds components with variances
//!
//! - `k = 0`:       `σ²∗ / n`
//! - `k = 1..=T`:   `σ²∗ / ((n - k + 1)(n - k))`
//!
//! (each multiplied by the collusion inflation factor `t / (t - T_C)` when
//! a nonzero collusion tolerance is configured, §3.3). The telescoping
//! identity `Σ_k σ²_k = σ²∗ / (n - T)` and the removal identity of
//! Theorem 1 are verified in the tests.

use serde::{Deserialize, Serialize};

use crate::XNoiseError;

/// Static parameters of the XNoise scheme for one round.
///
/// # Examples
///
/// The paper's Figure 4: 4 clients, tolerance 2, target variance 1 —
/// components 1/4, 1/12, 1/6, and the residual is exactly 1 for every
/// dropout outcome within tolerance.
///
/// ```
/// use dordis_xnoise::decomposition::XNoisePlan;
///
/// let plan = XNoisePlan::new(1.0, 4, 2, 0, 3).unwrap();
/// assert!((plan.component_variance(0) - 1.0 / 4.0).abs() < 1e-12);
/// assert!((plan.component_variance(1) - 1.0 / 12.0).abs() < 1e-12);
/// assert!((plan.component_variance(2) - 1.0 / 6.0).abs() < 1e-12);
/// for dropped in 0..=2 {
///     assert!((plan.residual_variance(dropped).unwrap() - 1.0).abs() < 1e-9);
/// }
/// ```
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct XNoisePlan {
    /// Target central noise variance `σ²∗` (in the units of the encoded
    /// update domain — integer units for DSkellam).
    pub target_variance: f64,
    /// Number of sampled clients `|U|`.
    pub clients: usize,
    /// Dropout tolerance `T` (`0 ≤ T < |U|`).
    pub dropout_tolerance: usize,
    /// Collusion tolerance `T_C` (`0` disables inflation).
    pub collusion_tolerance: usize,
    /// SecAgg threshold `t` (used only in the inflation factor).
    pub threshold: usize,
}

impl XNoisePlan {
    /// Creates and validates a plan.
    ///
    /// # Errors
    ///
    /// Rejects `T ≥ |U|`, `T_C ≥ t`, and non-positive variances.
    pub fn new(
        target_variance: f64,
        clients: usize,
        dropout_tolerance: usize,
        collusion_tolerance: usize,
        threshold: usize,
    ) -> Result<Self, XNoiseError> {
        if !(target_variance > 0.0) {
            return Err(XNoiseError::BadParameter(
                "target variance must be positive".into(),
            ));
        }
        if clients == 0 {
            return Err(XNoiseError::BadParameter("need at least one client".into()));
        }
        if dropout_tolerance >= clients {
            return Err(XNoiseError::BadParameter(format!(
                "dropout tolerance {dropout_tolerance} must be < clients {clients}"
            )));
        }
        if threshold == 0 || threshold > clients {
            return Err(XNoiseError::BadParameter("threshold out of range".into()));
        }
        if collusion_tolerance >= threshold {
            return Err(XNoiseError::BadParameter(format!(
                "collusion tolerance {collusion_tolerance} must be < threshold {threshold}"
            )));
        }
        Ok(XNoisePlan {
            target_variance,
            clients,
            dropout_tolerance,
            collusion_tolerance,
            threshold,
        })
    }

    /// The collusion inflation factor `t / (t - T_C)` (§3.3); 1 when no
    /// collusion is tolerated.
    #[must_use]
    pub fn inflation(&self) -> f64 {
        self.threshold as f64 / (self.threshold - self.collusion_tolerance) as f64
    }

    /// Variance of noise component `k ∈ 0..=T` for one client.
    ///
    /// # Panics
    ///
    /// Panics if `k > T`.
    #[must_use]
    pub fn component_variance(&self, k: usize) -> f64 {
        assert!(k <= self.dropout_tolerance, "component index out of range");
        let n = self.clients as f64;
        let base = if k == 0 {
            self.target_variance / n
        } else {
            let kf = k as f64;
            self.target_variance / ((n - kf + 1.0) * (n - kf))
        };
        base * self.inflation()
    }

    /// All component variances, indices `0..=T`.
    #[must_use]
    pub fn component_variances(&self) -> Vec<f64> {
        (0..=self.dropout_tolerance)
            .map(|k| self.component_variance(k))
            .collect()
    }

    /// Total per-client noise level `σ²∗ / (n - T)` (times inflation).
    #[must_use]
    pub fn per_client_variance(&self) -> f64 {
        self.target_variance / (self.clients - self.dropout_tolerance) as f64 * self.inflation()
    }

    /// Excess noise level the server must remove when `dropped` clients
    /// dropped (Equation 1): `(T - |D|) / (n - T) · σ²∗`.
    ///
    /// # Errors
    ///
    /// Fails when `dropped > T`.
    pub fn excess_level(&self, dropped: usize) -> Result<f64, XNoiseError> {
        if dropped > self.dropout_tolerance {
            return Err(XNoiseError::ToleranceExceeded {
                dropped,
                tolerance: self.dropout_tolerance,
            });
        }
        let n = self.clients as f64;
        let t = self.dropout_tolerance as f64;
        Ok((t - dropped as f64) / (n - t) * self.target_variance * self.inflation())
    }

    /// Component indices each *survivor* must have removed when `dropped`
    /// clients dropped: `k ∈ |D|+1 ..= T` (may be empty).
    ///
    /// # Errors
    ///
    /// Fails when `dropped > T`.
    pub fn removal_components(
        &self,
        dropped: usize,
    ) -> Result<std::ops::RangeInclusive<usize>, XNoiseError> {
        if dropped > self.dropout_tolerance {
            return Err(XNoiseError::ToleranceExceeded {
                dropped,
                tolerance: self.dropout_tolerance,
            });
        }
        Ok((dropped + 1)..=self.dropout_tolerance)
    }

    /// The residual aggregate variance after faithful removal with
    /// `dropped` dropouts — Theorem 1 says this is exactly `σ²∗` (times
    /// inflation) for every `dropped ≤ T`.
    ///
    /// # Errors
    ///
    /// Fails when `dropped > T`.
    pub fn residual_variance(&self, dropped: usize) -> Result<f64, XNoiseError> {
        let survivors = self.clients - dropped;
        let added = survivors as f64 * self.per_client_variance();
        let removed_per_survivor: f64 = self
            .removal_components(dropped)?
            .map(|k| self.component_variance(k))
            .sum();
        Ok(added - survivors as f64 * removed_per_survivor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn plan(n: usize, t_drop: usize) -> XNoisePlan {
        XNoisePlan::new(1.0, n, t_drop, 0, n.div_ceil(2) + 1).unwrap()
    }

    #[test]
    fn paper_example_figure4() {
        // |U| = 4, T = 2, σ²∗ = 1: components 1/4, 1/12, 1/6, per-client
        // total 1/2 (Figure 4a).
        let p = plan(4, 2);
        assert!((p.component_variance(0) - 1.0 / 4.0).abs() < 1e-12);
        assert!((p.component_variance(1) - 1.0 / 12.0).abs() < 1e-12);
        assert!((p.component_variance(2) - 1.0 / 6.0).abs() < 1e-12);
        assert!((p.per_client_variance() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn components_sum_to_per_client_level() {
        for (n, t) in [(4, 2), (10, 3), (16, 8), (100, 40), (7, 0)] {
            let p = plan(n, t);
            let sum: f64 = p.component_variances().iter().sum();
            assert!(
                (sum - p.per_client_variance()).abs() < 1e-9,
                "n={n} t={t}: {sum} vs {}",
                p.per_client_variance()
            );
        }
    }

    #[test]
    fn theorem1_residual_is_exact_target() {
        // For every dropout count within tolerance, the residual variance
        // equals σ²∗.
        for (n, t) in [(4usize, 2usize), (16, 5), (100, 30)] {
            let p = plan(n, t);
            for d in 0..=t {
                let residual = p.residual_variance(d).unwrap();
                assert!(
                    (residual - 1.0).abs() < 1e-9,
                    "n={n} T={t} |D|={d}: residual {residual}"
                );
            }
        }
    }

    #[test]
    fn excess_matches_equation_1() {
        let p = plan(16, 5);
        for d in 0..=5usize {
            let lex = p.excess_level(d).unwrap();
            let expect = (5 - d) as f64 / (16.0 - 5.0);
            assert!((lex - expect).abs() < 1e-12, "d={d}");
        }
        // Zero excess at full-tolerance dropout.
        assert_eq!(p.excess_level(5).unwrap(), 0.0);
    }

    #[test]
    fn removal_range_shrinks_with_dropout() {
        let p = plan(8, 3);
        assert_eq!(p.removal_components(0).unwrap(), 1..=3);
        assert_eq!(p.removal_components(2).unwrap(), 3..=3);
        assert!(p.removal_components(3).unwrap().is_empty());
        assert!(matches!(
            p.removal_components(4),
            Err(XNoiseError::ToleranceExceeded { .. })
        ));
    }

    #[test]
    fn collusion_inflation() {
        // t = 10, T_C = 2 => inflation 10/8 = 1.25.
        let p = XNoisePlan::new(1.0, 16, 4, 2, 10).unwrap();
        assert!((p.inflation() - 1.25).abs() < 1e-12);
        // Residual after removal is σ²∗ times inflation (the paper's
        // "noise inflation factor" — privacy never drops below target).
        let residual = p.residual_variance(1).unwrap();
        assert!((residual - 1.25).abs() < 1e-9);
    }

    #[test]
    fn zero_tolerance_means_orig_behaviour() {
        let p = plan(10, 0);
        assert_eq!(p.component_variances().len(), 1);
        assert!((p.per_client_variance() - 0.1).abs() < 1e-12);
        assert!(p.removal_components(0).unwrap().is_empty());
    }

    #[test]
    fn invalid_plans_rejected() {
        assert!(XNoisePlan::new(0.0, 4, 2, 0, 3).is_err());
        assert!(XNoisePlan::new(1.0, 0, 0, 0, 1).is_err());
        assert!(XNoisePlan::new(1.0, 4, 4, 0, 3).is_err());
        assert!(XNoisePlan::new(1.0, 4, 2, 3, 3).is_err()); // T_C >= t.
        assert!(XNoisePlan::new(1.0, 4, 2, 0, 5).is_err()); // t > n.
    }

    proptest! {
        #[test]
        fn prop_theorem1_holds(
            n in 2usize..60,
            t_frac in 0.0f64..0.9,
            d_frac in 0.0f64..1.0,
            sigma in 0.1f64..100.0,
        ) {
            let t = ((n as f64 - 1.0) * t_frac) as usize;
            let d = (t as f64 * d_frac) as usize;
            let p = XNoisePlan::new(sigma, n, t, 0, n.div_ceil(2) + 1).unwrap();
            let residual = p.residual_variance(d).unwrap();
            prop_assert!((residual - sigma).abs() < 1e-6 * sigma.max(1.0));
        }

        #[test]
        fn prop_component_variances_positive(n in 2usize..100, t_frac in 0.0f64..0.95) {
            let t = ((n as f64 - 1.0) * t_frac) as usize;
            let p = XNoisePlan::new(2.5, n, t, 0, n.div_ceil(2) + 1).unwrap();
            for v in p.component_variances() {
                prop_assert!(v > 0.0);
            }
        }
    }
}
