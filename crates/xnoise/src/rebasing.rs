//! The 'rebasing' alternative (§3.1, adopted by Baek et al.), implemented
//! as a comparison baseline.
//!
//! Each client adds a single whole noise vector `n_o ~ χ(σ²∗/(n-T))`. When
//! fewer than `T` clients drop, each survivor must *rebase*: compute the
//! newly-required noise `n_u ~ χ(σ²∗/(n-|D|))` and ship the full-length
//! difference `n_u - n_o` to the server, which adds it to the aggregate.
//! Two structural flaws motivate XNoise's decomposition design:
//!
//! 1. the difference vector cannot be compressed to a seed (it couples two
//!    secret vectors), so network cost scales with the model size
//!    (Table 3), and
//! 2. a survivor dropping *during* removal leaves the aggregate
//!    permanently over-noised — the adjustment cannot be reconstructed
//!    from shares because it did not exist before aggregation.

use dordis_crypto::prg::{Prg, Seed};
use dordis_dp::mechanism::skellam_vector;
use dordis_secagg::mask::ring_mask;

use crate::XNoiseError;

/// Per-round rebasing state for one client.
pub struct RebasingClient {
    round_seed: Seed,
    per_client_variance: f64,
    len: usize,
}

impl RebasingClient {
    /// Creates the client state; `per_client_variance = σ²∗ / (n - T)`.
    #[must_use]
    pub fn new(round_seed: Seed, per_client_variance: f64, len: usize) -> Self {
        RebasingClient {
            round_seed,
            per_client_variance,
            len,
        }
    }

    /// The original noise `n_o` added before aggregation.
    #[must_use]
    pub fn original_noise(&self) -> Vec<i64> {
        skellam_vector(
            &self.round_seed,
            b"rebase.original",
            self.len,
            self.per_client_variance,
        )
    }

    /// Adds `n_o` to an encoded update in `Z_{2^b}`.
    pub fn perturb(&self, update: &mut [u64], bit_width: u32) {
        let ring = ring_mask(bit_width);
        for (u, z) in update.iter_mut().zip(self.original_noise()) {
            *u = add_ring(*u, z, ring);
        }
    }
}

/// Orchestrates rebasing for a round: knows `n`, `T`, and `σ²∗`, hands
/// out per-client states, and applies adjustments server-side.
pub struct RebasingRound {
    /// Target central variance `σ²∗`.
    pub target_variance: f64,
    /// Sampled clients `n`.
    pub clients: usize,
    /// Dropout tolerance `T`.
    pub tolerance: usize,
    /// Vector length.
    pub len: usize,
}

impl RebasingRound {
    /// Per-client original noise variance `σ²∗ / (n - T)`.
    #[must_use]
    pub fn per_client_variance(&self) -> f64 {
        self.target_variance / (self.clients - self.tolerance) as f64
    }

    /// Builds client `c`'s state.
    #[must_use]
    pub fn client(&self, round_seed: Seed) -> RebasingClient {
        RebasingClient::new(round_seed, self.per_client_variance(), self.len)
    }

    /// The *exact* adjustment each survivor must transmit so the residual
    /// lands on `σ²∗`: `n_u - n_o` with
    /// `n_u ~ χ(σ²∗ / survivors)`.
    ///
    /// # Errors
    ///
    /// Fails when more clients dropped than `T` (noise already
    /// insufficient; rebasing cannot help) or no survivors remain.
    pub fn adjustment_for(
        &self,
        client: &RebasingClient,
        survivors: usize,
    ) -> Result<Vec<i64>, XNoiseError> {
        let dropped = self.clients.saturating_sub(survivors);
        if dropped > self.tolerance {
            return Err(XNoiseError::ToleranceExceeded {
                dropped,
                tolerance: self.tolerance,
            });
        }
        if survivors == 0 {
            return Err(XNoiseError::BadParameter("no survivors".into()));
        }
        let new_variance = self.target_variance / survivors as f64;
        let n_u = skellam_vector(
            &Prg::fork(&client.round_seed, b"rebase.new", survivors as u64),
            b"rebase.updated",
            self.len,
            new_variance,
        );
        Ok(n_u
            .iter()
            .zip(client.original_noise())
            .map(|(nu, no)| nu - no)
            .collect())
    }

    /// Server-side: applies survivors' adjustment vectors to the
    /// aggregate.
    pub fn apply_adjustments(
        &self,
        aggregate: &mut [u64],
        adjustments: &[Vec<i64>],
        bit_width: u32,
    ) {
        let ring = ring_mask(bit_width);
        for adj in adjustments {
            for (a, &z) in aggregate.iter_mut().zip(adj.iter()) {
                *a = add_ring(*a, z, ring);
            }
        }
    }

    /// Bytes a survivor transmits during removal: the full vector (this is
    /// the Table 3 scaling flaw).
    #[must_use]
    pub fn removal_bytes(&self, bytes_per_weight: f64) -> u64 {
        (self.len as f64 * bytes_per_weight).ceil() as u64
    }
}

#[inline]
fn add_ring(value: u64, delta: i64, ring: u64) -> u64 {
    let m = ring.wrapping_add(1);
    let d = if m == 0 {
        delta as u64
    } else {
        (delta.rem_euclid(m as i64)) as u64
    };
    value.wrapping_add(d) & ring
}

#[cfg(test)]
mod tests {
    use super::*;
    use dordis_secagg::mask::ring_mask;

    const BITS: u32 = 24;

    fn variance(xs: &[i64]) -> f64 {
        let n = xs.len() as f64;
        let mean = xs.iter().map(|&x| x as f64).sum::<f64>() / n;
        xs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / (n - 1.0)
    }

    fn center(v: u64) -> i64 {
        let m = 1i64 << BITS;
        let x = v as i64;
        if x >= m / 2 {
            x - m
        } else {
            x
        }
    }

    /// Rebasing end-to-end: residual noise after adjustments ≈ σ²∗.
    fn run(n: usize, t: usize, drop: usize, sigma_sq: f64, len: usize) -> Vec<i64> {
        let round = RebasingRound {
            target_variance: sigma_sq,
            clients: n,
            tolerance: t,
            len,
        };
        let survivors = n - drop;
        let ring = ring_mask(BITS);
        let clients: Vec<RebasingClient> = (0..survivors)
            .map(|c| round.client([c as u8 + 1; 32]))
            .collect();
        let mut aggregate = vec![0u64; len];
        for c in &clients {
            let mut update = vec![0u64; len];
            c.perturb(&mut update, BITS);
            for (a, u) in aggregate.iter_mut().zip(update.iter()) {
                *a = (*a + *u) & ring;
            }
        }
        let adjustments: Vec<Vec<i64>> = clients
            .iter()
            .map(|c| round.adjustment_for(c, survivors).unwrap())
            .collect();
        round.apply_adjustments(&mut aggregate, &adjustments, BITS);
        aggregate.iter().map(|&v| center(v)).collect()
    }

    #[test]
    fn rebasing_hits_target_no_dropout() {
        let v = variance(&run(8, 3, 0, 100.0, 30_000));
        assert!((v - 100.0).abs() < 6.0, "residual {v}");
    }

    #[test]
    fn rebasing_hits_target_with_dropout() {
        let v = variance(&run(8, 3, 2, 100.0, 30_000));
        assert!((v - 100.0).abs() < 6.0, "residual {v}");
    }

    #[test]
    fn rebasing_fails_beyond_tolerance() {
        let round = RebasingRound {
            target_variance: 10.0,
            clients: 8,
            tolerance: 2,
            len: 4,
        };
        let c = round.client([1u8; 32]);
        assert!(matches!(
            round.adjustment_for(&c, 5),
            Err(XNoiseError::ToleranceExceeded { .. })
        ));
    }

    #[test]
    fn adjustment_is_full_vector_length() {
        // The structural cost: the adjustment has model length, unlike
        // XNoise's constant-size seeds.
        let round = RebasingRound {
            target_variance: 10.0,
            clients: 4,
            tolerance: 1,
            len: 1000,
        };
        let c = round.client([2u8; 32]);
        assert_eq!(round.adjustment_for(&c, 4).unwrap().len(), 1000);
        assert_eq!(round.removal_bytes(2.5), 2500);
    }

    #[test]
    fn mid_removal_dropout_breaks_rebasing() {
        // If one survivor's adjustment never arrives, the residual
        // variance stays at the (excessive) pre-adjustment level — the
        // robustness flaw §3.1 calls out. Verify the residual is
        // significantly over target.
        let n = 8;
        let t = 3;
        let sigma_sq = 100.0;
        let len = 30_000;
        let round = RebasingRound {
            target_variance: sigma_sq,
            clients: n,
            tolerance: t,
            len,
        };
        let ring = ring_mask(BITS);
        let clients: Vec<RebasingClient> =
            (0..n).map(|c| round.client([c as u8 + 1; 32])).collect();
        let mut aggregate = vec![0u64; len];
        for c in &clients {
            let mut update = vec![0u64; len];
            c.perturb(&mut update, BITS);
            for (a, u) in aggregate.iter_mut().zip(update.iter()) {
                *a = (*a + *u) & ring;
            }
        }
        // Only 7 of 8 adjustments arrive.
        let adjustments: Vec<Vec<i64>> = clients
            .iter()
            .take(n - 1)
            .map(|c| round.adjustment_for(c, n).unwrap())
            .collect();
        round.apply_adjustments(&mut aggregate, &adjustments, BITS);
        let residual: Vec<i64> = aggregate.iter().map(|&v| center(v)).collect();
        let v = variance(&residual);
        // Missing adjustment leaves var = σ²∗ + (per-client excess):
        // 7 clients at σ²/8 + 1 client at σ²/(n-T) = σ²(7/8 + 1/5).
        let expect = sigma_sq * (7.0 / 8.0 + 1.0 / 5.0);
        assert!(
            (v - expect).abs() < 8.0,
            "residual {v}, expected ≈ {expect}"
        );
        assert!(v > sigma_sq + 5.0, "must be visibly over-noised");
    }
}
