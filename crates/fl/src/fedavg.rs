//! Local training and FedAvg aggregation.
//!
//! Each sampled client downloads the global parameters, runs `local_epochs`
//! of mini-batch SGD on its shard, and reports the parameter *delta*. The
//! server aggregates deltas (weighted by example counts in plain FedAvg;
//! uniformly when secure aggregation/DP is in the loop, since weights leak
//! example counts) and applies the mean to the global model.

use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::data::Dataset;
use crate::model::Model;
use crate::optim::Optimizer;
use crate::tensor;

/// Hyper-parameters for client-side local training.
#[derive(Clone, Copy, Debug)]
pub struct LocalTrainConfig {
    /// Number of passes over the client shard.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Shuffling seed (varied per round for stochasticity).
    pub seed: u64,
}

/// The result of one client's local training.
#[derive(Clone, Debug)]
pub struct ClientUpdate {
    /// Parameter delta (`local - global`).
    pub delta: Vec<f32>,
    /// Number of training examples used.
    pub examples: usize,
}

/// Runs local training and returns the parameter delta.
///
/// The model is restored to the global parameters on return (the caller's
/// model object is reusable across clients).
pub fn local_train(
    model: &mut dyn Model,
    global: &[f32],
    shard: &Dataset,
    optimizer: &mut dyn Optimizer,
    cfg: &LocalTrainConfig,
) -> ClientUpdate {
    model.set_params(global);
    optimizer.reset();
    if shard.is_empty() {
        return ClientUpdate {
            delta: vec![0.0; global.len()],
            examples: 0,
        };
    }
    let mut params = global.to_vec();
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..shard.len()).collect();
    let mut grad = vec![0.0f32; global.len()];
    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        for batch in order.chunks(cfg.batch_size.max(1)) {
            let xs: Vec<&[f32]> = batch
                .iter()
                .map(|&i| shard.features[i].as_slice())
                .collect();
            let ys: Vec<usize> = batch.iter().map(|&i| shard.labels[i]).collect();
            grad.iter_mut().for_each(|g| *g = 0.0);
            model.grad_batch(&xs, &ys, &mut grad);
            optimizer.step(&mut params, &grad);
            model.set_params(&params);
        }
    }
    let delta = tensor::sub(&params, global);
    model.set_params(global);
    ClientUpdate {
        delta,
        examples: shard.len(),
    }
}

/// Uniform (unweighted) FedAvg over deltas — the aggregation distributed
/// DP uses, since per-client weights would leak data sizes.
///
/// # Panics
///
/// Panics if `updates` is empty or lengths disagree.
#[must_use]
pub fn aggregate_uniform(updates: &[ClientUpdate]) -> Vec<f32> {
    assert!(!updates.is_empty(), "cannot aggregate zero updates");
    let n = updates.len() as f32;
    let len = updates[0].delta.len();
    let mut out = vec![0.0f32; len];
    for u in updates {
        assert_eq!(u.delta.len(), len);
        tensor::axpy(1.0 / n, &u.delta, &mut out);
    }
    out
}

/// Example-count-weighted FedAvg (the classic McMahan et al. rule), used
/// by the non-private baseline.
#[must_use]
pub fn aggregate_weighted(updates: &[ClientUpdate]) -> Vec<f32> {
    assert!(!updates.is_empty(), "cannot aggregate zero updates");
    let total: usize = updates.iter().map(|u| u.examples).sum();
    let len = updates[0].delta.len();
    let mut out = vec![0.0f32; len];
    if total == 0 {
        return out;
    }
    for u in updates {
        tensor::axpy(u.examples as f32 / total as f32, &u.delta, &mut out);
    }
    out
}

/// Applies an aggregated delta to the global parameters.
pub fn apply_update(global: &mut [f32], aggregate: &[f32], server_lr: f32) {
    tensor::axpy(server_lr, aggregate, global);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{synthetic_classification, SyntheticConfig};
    use crate::model::Linear;
    use crate::optim::Sgd;

    fn toy_dataset() -> Dataset {
        synthetic_classification(&SyntheticConfig {
            samples: 200,
            dim: 6,
            classes: 4,
            noise: 0.3,
            seed: 11,
        })
    }

    #[test]
    fn local_train_reduces_loss() {
        let data = toy_dataset();
        let mut model = Linear::new(6, 4);
        let global = model.params();
        let loss_before: f32 = data
            .features
            .iter()
            .zip(data.labels.iter())
            .map(|(x, &y)| model.loss(x, y))
            .sum::<f32>()
            / data.len() as f32;
        let mut opt = Sgd::new(0.2, 0.9);
        let update = local_train(
            &mut model,
            &global,
            &data,
            &mut opt,
            &LocalTrainConfig {
                epochs: 3,
                batch_size: 20,
                seed: 1,
            },
        );
        assert_eq!(update.examples, 200);
        // Model restored to global afterwards.
        assert_eq!(model.params(), global);
        // Applying the delta must reduce loss.
        let mut trained = global.clone();
        apply_update(&mut trained, &update.delta, 1.0);
        model.set_params(&trained);
        let loss_after: f32 = data
            .features
            .iter()
            .zip(data.labels.iter())
            .map(|(x, &y)| model.loss(x, y))
            .sum::<f32>()
            / data.len() as f32;
        assert!(loss_after < loss_before, "{loss_after} !< {loss_before}");
    }

    #[test]
    fn empty_shard_yields_zero_delta() {
        let data = toy_dataset().subset(&[]);
        let mut model = Linear::new(6, 4);
        let global = model.params();
        let mut opt = Sgd::new(0.1, 0.0);
        let u = local_train(
            &mut model,
            &global,
            &data,
            &mut opt,
            &LocalTrainConfig {
                epochs: 1,
                batch_size: 8,
                seed: 0,
            },
        );
        assert_eq!(u.examples, 0);
        assert!(u.delta.iter().all(|&d| d == 0.0));
    }

    #[test]
    fn uniform_aggregation_is_mean() {
        let ups = vec![
            ClientUpdate {
                delta: vec![1.0, 2.0],
                examples: 10,
            },
            ClientUpdate {
                delta: vec![3.0, 4.0],
                examples: 90,
            },
        ];
        assert_eq!(aggregate_uniform(&ups), vec![2.0, 3.0]);
    }

    #[test]
    fn weighted_aggregation_respects_examples() {
        let ups = vec![
            ClientUpdate {
                delta: vec![1.0],
                examples: 1,
            },
            ClientUpdate {
                delta: vec![5.0],
                examples: 3,
            },
        ];
        assert_eq!(aggregate_weighted(&ups), vec![4.0]);
    }

    #[test]
    #[should_panic(expected = "zero updates")]
    fn aggregate_empty_panics() {
        let _ = aggregate_uniform(&[]);
    }

    #[test]
    fn federated_training_converges() {
        // 5 clients, Dirichlet split, 15 rounds of FedAvg: accuracy on the
        // training data should be far above chance (25%).
        let data = toy_dataset();
        let parts = crate::data::dirichlet_partition(&data, 5, 1.0, 2);
        let mut model = Linear::new(6, 4);
        let mut global = model.params();
        for round in 0..15u64 {
            let mut updates = Vec::new();
            for (c, part) in parts.iter().enumerate() {
                let shard = data.subset(part);
                let mut opt = Sgd::new(0.2, 0.9);
                updates.push(local_train(
                    &mut model,
                    &global,
                    &shard,
                    &mut opt,
                    &LocalTrainConfig {
                        epochs: 1,
                        batch_size: 16,
                        seed: round * 100 + c as u64,
                    },
                ));
            }
            let agg = aggregate_uniform(&updates);
            apply_update(&mut global, &agg, 1.0);
        }
        model.set_params(&global);
        let correct = data
            .features
            .iter()
            .zip(data.labels.iter())
            .filter(|(x, &y)| model.predict(x) == y)
            .count();
        let acc = correct as f64 / data.len() as f64;
        assert!(acc > 0.6, "accuracy {acc}");
    }
}
