//! Optimizers: mini-batch SGD with momentum and AdamW.
//!
//! The paper trains FEMNIST/CIFAR with momentum SGD and Reddit with AdamW
//! (§6.1); both are provided here, operating on flat parameter vectors.

/// A first-order optimizer over a flat parameter vector.
pub trait Optimizer: Send {
    /// Applies one step given the gradient, mutating `params`.
    fn step(&mut self, params: &mut [f32], grad: &[f32]);
    /// Resets internal state (e.g. between clients sharing an instance).
    fn reset(&mut self);
}

/// SGD with classical momentum: `v = m·v + g; p -= lr·v`.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Creates momentum SGD (`momentum = 0` gives plain SGD).
    #[must_use]
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f32], grad: &[f32]) {
        assert_eq!(params.len(), grad.len());
        if self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        for i in 0..params.len() {
            self.velocity[i] = self.momentum * self.velocity[i] + grad[i];
            params[i] -= self.lr * self.velocity[i];
        }
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }
}

/// AdamW (decoupled weight decay).
pub struct AdamW {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u32,
}

impl AdamW {
    /// Creates AdamW with the usual defaults for betas/eps.
    #[must_use]
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        AdamW {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }
}

impl Optimizer for AdamW {
    fn step(&mut self, params: &mut [f32], grad: &[f32]) {
        assert_eq!(params.len(), grad.len());
        if self.m.len() != params.len() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grad[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            params[i] -=
                self.lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * params[i]);
        }
    }

    fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(p) = Σ (p_i - target_i)² with the given optimizer.
    fn converges_on_quadratic(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let target = [1.0f32, -2.0, 0.5];
        let mut p = [0.0f32; 3];
        for _ in 0..steps {
            let grad: Vec<f32> = p
                .iter()
                .zip(target.iter())
                .map(|(x, t)| 2.0 * (x - t))
                .collect();
            opt.step(&mut p, &grad);
        }
        p.iter()
            .zip(target.iter())
            .map(|(x, t)| (x - t).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn sgd_converges() {
        let err = converges_on_quadratic(&mut Sgd::new(0.1, 0.0), 200);
        assert!(err < 1e-3, "err {err}");
    }

    #[test]
    fn momentum_accelerates() {
        let plain = converges_on_quadratic(&mut Sgd::new(0.02, 0.0), 60);
        let momentum = converges_on_quadratic(&mut Sgd::new(0.02, 0.9), 60);
        assert!(momentum < plain, "momentum {momentum} vs plain {plain}");
    }

    #[test]
    fn adamw_converges() {
        let err = converges_on_quadratic(&mut AdamW::new(0.1, 0.0), 500);
        assert!(err < 1e-2, "err {err}");
    }

    #[test]
    fn weight_decay_shrinks_params() {
        // With zero gradient, AdamW weight decay pulls params toward 0.
        let mut opt = AdamW::new(0.1, 0.1);
        let mut p = [10.0f32];
        for _ in 0..100 {
            opt.step(&mut p, &[0.0]);
        }
        assert!(p[0].abs() < 10.0 * 0.9);
    }

    #[test]
    fn reset_clears_state() {
        let mut opt = Sgd::new(0.1, 0.9);
        let mut p = [0.0f32];
        opt.step(&mut p, &[1.0]);
        opt.reset();
        let mut q = [0.0f32];
        opt.step(&mut q, &[1.0]);
        // Fresh state: the two single steps from zero must agree.
        assert_eq!(p[0] - p[0], q[0] - q[0]);
    }
}
