//! Federated-learning substrate for Dordis.
//!
//! The paper evaluates Dordis on CIFAR-10/100, FEMNIST, and Reddit with
//! PyTorch models. This crate provides the equivalent machinery from
//! scratch so the reproduction is self-contained:
//!
//! - [`tensor`]: dense vector math used by models and aggregation,
//! - [`model`]: linear and MLP classifiers with manual backprop,
//! - [`optim`]: mini-batch SGD with momentum and AdamW,
//! - [`data`]: synthetic classification/LM datasets with Dirichlet
//!   (LDA-style) non-IID partitioning, standing in for the real datasets
//!   (see DESIGN.md for the substitution argument),
//! - [`fedavg`]: local training, update clipping, and FedAvg aggregation,
//! - [`eval`]: accuracy and perplexity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod eval;
pub mod fedavg;
pub mod model;
pub mod optim;
pub mod tensor;
