//! Synthetic datasets and non-IID partitioning.
//!
//! Stand-ins for the paper's CIFAR-10/100, FEMNIST, and Reddit workloads
//! (see DESIGN.md §1 for the substitution rationale): Gaussian class
//! prototypes give a classification task whose difficulty is controlled by
//! `noise`, and a Dirichlet (LDA) partitioner reproduces the label skew the
//! paper configures with concentration `α = 1.0`.

use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// An in-memory labelled dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature vectors, all of equal dimension.
    pub features: Vec<Vec<f32>>,
    /// Class labels in `0..num_classes`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

impl Dataset {
    /// Number of examples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True if the dataset is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Feature dimension (0 for an empty dataset).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// Builds the subset selected by `indices`.
    #[must_use]
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            features: indices.iter().map(|&i| self.features[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            num_classes: self.num_classes,
        }
    }
}

/// Configuration for the synthetic classification generator.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Total number of examples.
    pub samples: usize,
    /// Feature dimension.
    pub dim: usize,
    /// Number of classes.
    pub classes: usize,
    /// Within-class Gaussian noise (higher = harder task).
    pub noise: f32,
    /// Generator seed.
    pub seed: u64,
}

impl SyntheticConfig {
    /// A CIFAR-10-like task: 10 classes, moderate difficulty.
    #[must_use]
    pub fn cifar10_like(samples: usize, seed: u64) -> Self {
        SyntheticConfig {
            samples,
            dim: 32,
            classes: 10,
            noise: 0.9,
            seed,
        }
    }

    /// A CIFAR-100-like task: 100 classes, hard.
    #[must_use]
    pub fn cifar100_like(samples: usize, seed: u64) -> Self {
        SyntheticConfig {
            samples,
            dim: 48,
            classes: 100,
            noise: 1.1,
            seed,
        }
    }

    /// A FEMNIST-like task: 62 classes, moderately hard.
    #[must_use]
    pub fn femnist_like(samples: usize, seed: u64) -> Self {
        SyntheticConfig {
            samples,
            dim: 40,
            classes: 62,
            noise: 0.8,
            seed,
        }
    }

    /// A Reddit-like next-token task (vocabulary as classes; accuracy is
    /// reported as perplexity by the evaluator).
    #[must_use]
    pub fn reddit_like(samples: usize, seed: u64) -> Self {
        SyntheticConfig {
            samples,
            dim: 24,
            classes: 30,
            noise: 1.3,
            seed,
        }
    }
}

/// Standard-normal sample via Box–Muller on a `rand` RNG.
fn normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generates a synthetic classification dataset with Gaussian class
/// prototypes.
#[must_use]
pub fn synthetic_classification(cfg: &SyntheticConfig) -> Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    // Class prototypes on a scaled sphere.
    let prototypes: Vec<Vec<f32>> = (0..cfg.classes)
        .map(|_| (0..cfg.dim).map(|_| normal(&mut rng) as f32).collect())
        .collect();
    let mut features = Vec::with_capacity(cfg.samples);
    let mut labels = Vec::with_capacity(cfg.samples);
    for i in 0..cfg.samples {
        let label = i % cfg.classes;
        let feat: Vec<f32> = prototypes[label]
            .iter()
            .map(|&p| p + cfg.noise * normal(&mut rng) as f32)
            .collect();
        features.push(feat);
        labels.push(label);
    }
    Dataset {
        features,
        labels,
        num_classes: cfg.classes,
    }
}

/// Gamma(shape, 1) sample via Marsaglia–Tsang.
fn gamma<R: Rng>(rng: &mut R, shape: f64) -> f64 {
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
        let u: f64 = rng.gen_range(1e-12..1.0);
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(1e-12..1.0);
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Draws a probability vector from Dirichlet(α, ..., α).
fn dirichlet<R: Rng>(rng: &mut R, alpha: f64, k: usize) -> Vec<f64> {
    let mut g: Vec<f64> = (0..k).map(|_| gamma(rng, alpha)).collect();
    let sum: f64 = g.iter().sum();
    if sum <= 0.0 {
        return vec![1.0 / k as f64; k];
    }
    for x in g.iter_mut() {
        *x /= sum;
    }
    g
}

/// Partitions a dataset across `num_clients` with Dirichlet label skew
/// (latent Dirichlet allocation over class-to-client proportions, the
/// paper's LDA with concentration `alpha = 1.0`).
///
/// Returns per-client index lists. Every example is assigned to exactly
/// one client; clients can end up with zero examples of some classes —
/// that is the point.
#[must_use]
pub fn dirichlet_partition(
    dataset: &Dataset,
    num_clients: usize,
    alpha: f64,
    seed: u64,
) -> Vec<Vec<usize>> {
    assert!(num_clients > 0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); dataset.num_classes];
    for (i, &y) in dataset.labels.iter().enumerate() {
        by_class[y].push(i);
    }
    let mut clients: Vec<Vec<usize>> = vec![Vec::new(); num_clients];
    for idxs in by_class.iter() {
        let props = dirichlet(&mut rng, alpha, num_clients);
        // Convert proportions to cumulative counts over this class.
        let n = idxs.len();
        let mut cuts = Vec::with_capacity(num_clients);
        let mut acc = 0.0;
        for &p in &props[..num_clients - 1] {
            acc += p;
            cuts.push(((acc * n as f64).round() as usize).min(n));
        }
        let mut start = 0usize;
        for (c, client) in clients.iter_mut().enumerate() {
            let end = if c + 1 == num_clients { n } else { cuts[c] };
            let end = end.max(start);
            client.extend_from_slice(&idxs[start..end]);
            start = end;
        }
    }
    clients
}

/// Splits a dataset into train and test sets (deterministic interleaving).
#[must_use]
pub fn train_test_split(dataset: &Dataset, test_fraction: f64) -> (Dataset, Dataset) {
    let period = (1.0 / test_fraction.clamp(0.01, 0.5)).round() as usize;
    let mut train_idx = Vec::new();
    let mut test_idx = Vec::new();
    for i in 0..dataset.len() {
        if i % period == 0 {
            test_idx.push(i);
        } else {
            train_idx.push(i);
        }
    }
    (dataset.subset(&train_idx), dataset.subset(&test_idx))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        synthetic_classification(&SyntheticConfig {
            samples: 600,
            dim: 8,
            classes: 6,
            noise: 0.5,
            seed: 9,
        })
    }

    #[test]
    fn generator_shape_and_labels() {
        let d = small();
        assert_eq!(d.len(), 600);
        assert_eq!(d.dim(), 8);
        assert!(d.labels.iter().all(|&y| y < 6));
        // Balanced by construction.
        for c in 0..6 {
            assert_eq!(d.labels.iter().filter(|&&y| y == c).count(), 100);
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.features[0], b.features[0]);
        let c = synthetic_classification(&SyntheticConfig {
            seed: 10,
            ..SyntheticConfig {
                samples: 600,
                dim: 8,
                classes: 6,
                noise: 0.5,
                seed: 9,
            }
        });
        assert_ne!(a.features[0], c.features[0]);
    }

    #[test]
    fn classes_are_separable_at_low_noise() {
        // Nearest-prototype classification should beat chance easily.
        let d = synthetic_classification(&SyntheticConfig {
            samples: 300,
            dim: 16,
            classes: 3,
            noise: 0.2,
            seed: 4,
        });
        // Rebuild prototypes as per-class means and classify.
        let mut means = vec![vec![0.0f32; 16]; 3];
        let mut counts = [0usize; 3];
        for (f, &y) in d.features.iter().zip(d.labels.iter()) {
            counts[y] += 1;
            for (m, x) in means[y].iter_mut().zip(f.iter()) {
                *m += x;
            }
        }
        for (m, &c) in means.iter_mut().zip(counts.iter()) {
            for x in m.iter_mut() {
                *x /= c as f32;
            }
        }
        let mut correct = 0;
        for (f, &y) in d.features.iter().zip(d.labels.iter()) {
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for (c, m) in means.iter().enumerate() {
                let dist: f32 = f.iter().zip(m.iter()).map(|(a, b)| (a - b) * (a - b)).sum();
                if dist < best_d {
                    best_d = dist;
                    best = c;
                }
            }
            correct += usize::from(best == y);
        }
        assert!(correct as f64 / d.len() as f64 > 0.9);
    }

    #[test]
    fn partition_covers_every_example_once() {
        let d = small();
        let parts = dirichlet_partition(&d, 10, 1.0, 3);
        assert_eq!(parts.len(), 10);
        let mut seen = vec![false; d.len()];
        for p in &parts {
            for &i in p {
                assert!(!seen[i], "example {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn low_alpha_skews_labels() {
        let d = small();
        let skewed = dirichlet_partition(&d, 6, 0.05, 5);
        let uniform = dirichlet_partition(&d, 6, 100.0, 5);
        // Measure max class fraction per client, averaged.
        let max_frac = |parts: &Vec<Vec<usize>>| -> f64 {
            let mut total = 0.0;
            let mut counted = 0;
            for p in parts {
                if p.is_empty() {
                    continue;
                }
                let mut counts = vec![0usize; d.num_classes];
                for &i in p {
                    counts[d.labels[i]] += 1;
                }
                total += *counts.iter().max().unwrap() as f64 / p.len() as f64;
                counted += 1;
            }
            total / counted as f64
        };
        assert!(max_frac(&skewed) > max_frac(&uniform));
    }

    #[test]
    fn split_fractions() {
        let d = small();
        let (train, test) = train_test_split(&d, 0.2);
        assert_eq!(train.len() + test.len(), d.len());
        let frac = test.len() as f64 / d.len() as f64;
        assert!((0.15..0.25).contains(&frac), "frac {frac}");
    }

    #[test]
    fn subset_preserves_pairing() {
        let d = small();
        let s = d.subset(&[5, 10, 15]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.features[1], d.features[10]);
        assert_eq!(s.labels[2], d.labels[15]);
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for &alpha in &[0.1, 1.0, 10.0] {
            let p = dirichlet(&mut rng, alpha, 8);
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn gamma_mean_close_to_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for &shape in &[0.5f64, 1.0, 4.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| gamma(&mut rng, shape)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.1 * shape.max(1.0),
                "shape {shape} mean {mean}"
            );
        }
    }
}
