//! Dense vector math shared by models, optimizers, and aggregation.

/// `y += alpha * x` (AXPY).
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Dot product.
#[must_use]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[must_use]
pub fn l2_norm(v: &[f32]) -> f32 {
    v.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Scales `v` in place.
pub fn scale(v: &mut [f32], s: f32) {
    for x in v.iter_mut() {
        *x *= s;
    }
}

/// Clips `v` in place to L2 norm at most `bound`; returns the original
/// norm.
pub fn clip_l2(v: &mut [f32], bound: f32) -> f32 {
    let n = l2_norm(v);
    if n > bound && n > 0.0 {
        scale(v, bound / n);
    }
    n
}

/// Elementwise difference `a - b`.
#[must_use]
pub fn sub(a: &[f32], b: &[f32]) -> Vec<f32> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// Numerically stable softmax (in place).
pub fn softmax_inplace(logits: &mut [f32]) {
    let m = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for x in logits.iter_mut() {
        *x = (*x - m).exp();
        sum += *x;
    }
    for x in logits.iter_mut() {
        *x /= sum;
    }
}

/// Index of the maximum element.
#[must_use]
pub fn argmax(v: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_basic() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn clip_reduces_norm() {
        let mut v = vec![3.0, 4.0];
        let orig = clip_l2(&mut v, 1.0);
        assert!((orig - 5.0).abs() < 1e-6);
        assert!((l2_norm(&v) - 1.0).abs() < 1e-6);
        // Already-small vectors are untouched.
        let mut w = vec![0.3, 0.4];
        clip_l2(&mut w, 1.0);
        assert_eq!(w, vec![0.3, 0.4]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let mut v = vec![1000.0, 1001.0, 999.0];
        softmax_inplace(&mut v);
        let sum: f32 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(v.iter().all(|x| x.is_finite()));
        assert!(v[1] > v[0] && v[0] > v[2]);
    }

    #[test]
    fn argmax_first_max() {
        assert_eq!(argmax(&[0.1, 0.9, 0.5]), 1);
        assert_eq!(argmax(&[2.0, 1.0]), 0);
    }

    #[test]
    fn sub_elementwise() {
        assert_eq!(sub(&[5.0, 7.0], &[2.0, 3.0]), vec![3.0, 4.0]);
    }
}
