//! Model evaluation: accuracy and perplexity.

use crate::data::Dataset;
use crate::model::Model;

/// Classification accuracy in `[0, 1]`.
#[must_use]
pub fn accuracy(model: &dyn Model, data: &Dataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let correct = data
        .features
        .iter()
        .zip(data.labels.iter())
        .filter(|(x, &y)| model.predict(x) == y)
        .count();
    correct as f64 / data.len() as f64
}

/// Mean cross-entropy loss.
#[must_use]
pub fn mean_loss(model: &dyn Model, data: &Dataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let total: f64 = data
        .features
        .iter()
        .zip(data.labels.iter())
        .map(|(x, &y)| model.loss(x, y) as f64)
        .sum();
    total / data.len() as f64
}

/// Perplexity: `exp(mean cross-entropy)`. The paper reports this for the
/// Reddit next-word-prediction task (lower is better).
#[must_use]
pub fn perplexity(model: &dyn Model, data: &Dataset) -> f64 {
    mean_loss(model, data).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{synthetic_classification, SyntheticConfig};
    use crate::model::{Linear, Model};

    #[test]
    fn untrained_model_near_chance() {
        let data = synthetic_classification(&SyntheticConfig {
            samples: 500,
            dim: 8,
            classes: 5,
            noise: 0.5,
            seed: 3,
        });
        let m = Linear::new(8, 5);
        let acc = accuracy(&m, &data);
        // Zero-init predicts class 0 always => exactly 1/classes here
        // (balanced data).
        assert!((acc - 0.2).abs() < 0.01, "acc {acc}");
        // Uniform probabilities => perplexity == classes.
        let ppl = perplexity(&m, &data);
        assert!((ppl - 5.0).abs() < 0.01, "ppl {ppl}");
    }

    #[test]
    fn empty_dataset_is_zero() {
        let data = Dataset {
            features: vec![],
            labels: vec![],
            num_classes: 3,
        };
        let m = Linear::new(4, 3);
        assert_eq!(accuracy(&m, &data), 0.0);
        assert_eq!(mean_loss(&m, &data), 0.0);
    }

    #[test]
    fn perfect_model_has_low_perplexity() {
        // Craft a linear model that classifies one-hot inputs perfectly.
        let mut m = Linear::new(3, 3);
        let mut p = vec![0.0f32; m.num_params()];
        for c in 0..3 {
            p[c * 3 + c] = 20.0; // Strong diagonal.
        }
        m.set_params(&p);
        let data = Dataset {
            features: vec![
                vec![1.0, 0.0, 0.0],
                vec![0.0, 1.0, 0.0],
                vec![0.0, 0.0, 1.0],
            ],
            labels: vec![0, 1, 2],
            num_classes: 3,
        };
        assert_eq!(accuracy(&m, &data), 1.0);
        assert!(perplexity(&m, &data) < 1.01);
    }
}
