//! Classification models with manual backpropagation.
//!
//! Two trainable architectures cover the paper's utility experiments in
//! synthetic form: a softmax-regression [`Linear`] model and a one-hidden-
//! layer ReLU [`Mlp`]. Both expose a flat parameter vector so federated
//! aggregation, DP encoding, and secure aggregation can treat models as
//! opaque `Vec<f32>`s — exactly how Dordis treats PyTorch state dicts.

use crate::tensor::{argmax, softmax_inplace};

/// A model trainable by the federated loop.
pub trait Model: Send {
    /// Number of scalar parameters.
    fn num_params(&self) -> usize;
    /// Copies the flattened parameters out.
    fn params(&self) -> Vec<f32>;
    /// Overwrites parameters from a flat slice.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.num_params()`.
    fn set_params(&mut self, params: &[f32]);
    /// Accumulates the gradient of the mean cross-entropy loss over a
    /// batch into `grad` (which must be zeroed by the caller) and returns
    /// the mean loss.
    fn grad_batch(&self, xs: &[&[f32]], ys: &[usize], grad: &mut [f32]) -> f32;
    /// Predicts the class of one example.
    fn predict(&self, x: &[f32]) -> usize;
    /// Cross-entropy loss of one example.
    fn loss(&self, x: &[f32], y: usize) -> f32;
    /// Boxed clone (object-safe).
    fn clone_box(&self) -> Box<dyn Model>;
}

/// Softmax regression: `logits = W x + b`.
#[derive(Clone, Debug)]
pub struct Linear {
    input_dim: usize,
    classes: usize,
    /// Row-major `classes x input_dim` weights followed by `classes` biases.
    params: Vec<f32>,
}

impl Linear {
    /// Creates a zero-initialized linear classifier.
    #[must_use]
    pub fn new(input_dim: usize, classes: usize) -> Self {
        Linear {
            input_dim,
            classes,
            params: vec![0.0; classes * input_dim + classes],
        }
    }

    fn logits(&self, x: &[f32]) -> Vec<f32> {
        debug_assert_eq!(x.len(), self.input_dim);
        let mut out = vec![0.0f32; self.classes];
        for c in 0..self.classes {
            let row = &self.params[c * self.input_dim..(c + 1) * self.input_dim];
            let mut acc = self.params[self.classes * self.input_dim + c];
            for (w, xi) in row.iter().zip(x.iter()) {
                acc += w * xi;
            }
            out[c] = acc;
        }
        out
    }

    fn probs(&self, x: &[f32]) -> Vec<f32> {
        let mut l = self.logits(x);
        softmax_inplace(&mut l);
        l
    }
}

impl Model for Linear {
    fn num_params(&self) -> usize {
        self.params.len()
    }

    fn params(&self) -> Vec<f32> {
        self.params.clone()
    }

    fn set_params(&mut self, params: &[f32]) {
        assert_eq!(params.len(), self.params.len());
        self.params.copy_from_slice(params);
    }

    fn grad_batch(&self, xs: &[&[f32]], ys: &[usize], grad: &mut [f32]) -> f32 {
        assert_eq!(grad.len(), self.params.len());
        assert_eq!(xs.len(), ys.len());
        let n = xs.len() as f32;
        let mut total_loss = 0.0f32;
        let bias_off = self.classes * self.input_dim;
        for (x, &y) in xs.iter().zip(ys.iter()) {
            let p = self.probs(x);
            total_loss += -(p[y].max(1e-12)).ln();
            for c in 0..self.classes {
                let err = (p[c] - if c == y { 1.0 } else { 0.0 }) / n;
                let row = &mut grad[c * self.input_dim..(c + 1) * self.input_dim];
                for (g, xi) in row.iter_mut().zip(x.iter()) {
                    *g += err * xi;
                }
                grad[bias_off + c] += err;
            }
        }
        total_loss / n
    }

    fn predict(&self, x: &[f32]) -> usize {
        argmax(&self.logits(x))
    }

    fn loss(&self, x: &[f32], y: usize) -> f32 {
        -(self.probs(x)[y].max(1e-12)).ln()
    }

    fn clone_box(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

/// One-hidden-layer ReLU MLP: `logits = W2 relu(W1 x + b1) + b2`.
#[derive(Clone, Debug)]
pub struct Mlp {
    input_dim: usize,
    hidden: usize,
    classes: usize,
    /// Layout: `W1 (hidden x input) || b1 (hidden) || W2 (classes x hidden)
    /// || b2 (classes)`.
    params: Vec<f32>,
}

impl Mlp {
    /// Creates an MLP with small deterministic He-style initialization.
    #[must_use]
    pub fn new(input_dim: usize, hidden: usize, classes: usize, seed: u64) -> Self {
        let count = hidden * input_dim + hidden + classes * hidden + classes;
        let mut params = vec![0.0f32; count];
        // Deterministic xorshift init so experiments are reproducible.
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Map to roughly N(0,1) by averaging uniforms.
            let u1 = (state >> 11) as f32 / (1u64 << 53) as f32;
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u2 = (state >> 11) as f32 / (1u64 << 53) as f32;
            (u1 + u2 - 1.0) * 1.732
        };
        let w1_scale = (2.0 / input_dim as f32).sqrt();
        for p in params.iter_mut().take(hidden * input_dim) {
            *p = next() * w1_scale;
        }
        let w2_off = hidden * input_dim + hidden;
        let w2_scale = (2.0 / hidden as f32).sqrt();
        for p in params[w2_off..w2_off + classes * hidden].iter_mut() {
            *p = next() * w2_scale;
        }
        Mlp {
            input_dim,
            hidden,
            classes,
            params,
        }
    }

    fn forward(&self, x: &[f32]) -> (Vec<f32>, Vec<f32>) {
        debug_assert_eq!(x.len(), self.input_dim);
        let b1_off = self.hidden * self.input_dim;
        let w2_off = b1_off + self.hidden;
        let b2_off = w2_off + self.classes * self.hidden;
        let mut h = vec![0.0f32; self.hidden];
        for j in 0..self.hidden {
            let row = &self.params[j * self.input_dim..(j + 1) * self.input_dim];
            let mut acc = self.params[b1_off + j];
            for (w, xi) in row.iter().zip(x.iter()) {
                acc += w * xi;
            }
            h[j] = acc.max(0.0);
        }
        let mut logits = vec![0.0f32; self.classes];
        for c in 0..self.classes {
            let row = &self.params[w2_off + c * self.hidden..w2_off + (c + 1) * self.hidden];
            let mut acc = self.params[b2_off + c];
            for (w, hj) in row.iter().zip(h.iter()) {
                acc += w * hj;
            }
            logits[c] = acc;
        }
        (h, logits)
    }
}

impl Model for Mlp {
    fn num_params(&self) -> usize {
        self.params.len()
    }

    fn params(&self) -> Vec<f32> {
        self.params.clone()
    }

    fn set_params(&mut self, params: &[f32]) {
        assert_eq!(params.len(), self.params.len());
        self.params.copy_from_slice(params);
    }

    fn grad_batch(&self, xs: &[&[f32]], ys: &[usize], grad: &mut [f32]) -> f32 {
        assert_eq!(grad.len(), self.params.len());
        let n = xs.len() as f32;
        let b1_off = self.hidden * self.input_dim;
        let w2_off = b1_off + self.hidden;
        let b2_off = w2_off + self.classes * self.hidden;
        let mut total_loss = 0.0f32;
        for (x, &y) in xs.iter().zip(ys.iter()) {
            let (h, mut probs) = self.forward(x);
            softmax_inplace(&mut probs);
            total_loss += -(probs[y].max(1e-12)).ln();
            // dL/dlogits.
            let mut dlog = probs;
            dlog[y] -= 1.0;
            for d in dlog.iter_mut() {
                *d /= n;
            }
            // W2, b2 grads and dL/dh.
            let mut dh = vec![0.0f32; self.hidden];
            for c in 0..self.classes {
                let row_off = w2_off + c * self.hidden;
                for j in 0..self.hidden {
                    grad[row_off + j] += dlog[c] * h[j];
                    dh[j] += dlog[c] * self.params[row_off + j];
                }
                grad[b2_off + c] += dlog[c];
            }
            // Through ReLU into W1, b1.
            for j in 0..self.hidden {
                if h[j] <= 0.0 {
                    continue;
                }
                let row_off = j * self.input_dim;
                for (g, xi) in grad[row_off..row_off + self.input_dim]
                    .iter_mut()
                    .zip(x.iter())
                {
                    *g += dh[j] * xi;
                }
                grad[b1_off + j] += dh[j];
            }
        }
        total_loss / n
    }

    fn predict(&self, x: &[f32]) -> usize {
        argmax(&self.forward(x).1)
    }

    fn loss(&self, x: &[f32], y: usize) -> f32 {
        let (_, mut logits) = self.forward(x);
        softmax_inplace(&mut logits);
        -(logits[y].max(1e-12)).ln()
    }

    fn clone_box(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(model: &dyn Model, x: &[f32], y: usize) {
        // Compare analytic gradient to central differences at a few
        // random coordinates.
        let mut grad = vec![0.0f32; model.num_params()];
        model.grad_batch(&[x], &[y], &mut grad);
        let params = model.params();
        let mut m = model.clone_box();
        let eps = 1e-3f32;
        for &i in &[0usize, 1, params.len() / 2, params.len() - 1] {
            let mut p = params.clone();
            p[i] += eps;
            m.set_params(&p);
            let lp = m.loss(x, y);
            p[i] -= 2.0 * eps;
            m.set_params(&p);
            let lm = m.loss(x, y);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad[i]).abs() < 2e-2,
                "param {i}: numeric {numeric} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn linear_gradient_matches_finite_differences() {
        let mut m = Linear::new(4, 3);
        let p: Vec<f32> = (0..m.num_params())
            .map(|i| (i as f32 * 0.13).sin() * 0.5)
            .collect();
        m.set_params(&p);
        finite_diff_check(&m, &[0.5, -1.0, 0.25, 2.0], 1);
    }

    #[test]
    fn mlp_gradient_matches_finite_differences() {
        let m = Mlp::new(5, 8, 3, 42);
        finite_diff_check(&m, &[0.5, -1.0, 0.25, 2.0, -0.3], 2);
    }

    #[test]
    fn linear_learns_separable_data() {
        let mut m = Linear::new(2, 2);
        let data: Vec<(Vec<f32>, usize)> = (0..40)
            .map(|i| {
                let s = if i % 2 == 0 { 1.0 } else { -1.0 };
                (
                    vec![s * 1.0 + (i as f32) * 0.001, s * 0.5],
                    usize::from(i % 2 == 1),
                )
            })
            .collect();
        for _ in 0..200 {
            let mut grad = vec![0.0f32; m.num_params()];
            let xs: Vec<&[f32]> = data.iter().map(|(x, _)| x.as_slice()).collect();
            let ys: Vec<usize> = data.iter().map(|(_, y)| *y).collect();
            m.grad_batch(&xs, &ys, &mut grad);
            let mut p = m.params();
            crate::tensor::axpy(-0.5, &grad, &mut p);
            m.set_params(&p);
        }
        let correct = data.iter().filter(|(x, y)| m.predict(x) == *y).count();
        assert_eq!(correct, data.len());
    }

    #[test]
    fn mlp_learns_xor() {
        let mut m = Mlp::new(2, 16, 2, 7);
        let data: [(&[f32], usize); 4] = [
            (&[0.0, 0.0], 0),
            (&[0.0, 1.0], 1),
            (&[1.0, 0.0], 1),
            (&[1.0, 1.0], 0),
        ];
        for _ in 0..2000 {
            let mut grad = vec![0.0f32; m.num_params()];
            let xs: Vec<&[f32]> = data.iter().map(|(x, _)| *x).collect();
            let ys: Vec<usize> = data.iter().map(|(_, y)| *y).collect();
            m.grad_batch(&xs, &ys, &mut grad);
            let mut p = m.params();
            crate::tensor::axpy(-0.5, &grad, &mut p);
            m.set_params(&p);
        }
        for (x, y) in &data {
            assert_eq!(m.predict(x), *y, "input {x:?}");
        }
    }

    #[test]
    fn params_roundtrip() {
        let mut m = Mlp::new(3, 4, 2, 1);
        let p: Vec<f32> = (0..m.num_params()).map(|i| i as f32).collect();
        m.set_params(&p);
        assert_eq!(m.params(), p);
    }

    #[test]
    fn param_counts() {
        assert_eq!(Linear::new(10, 4).num_params(), 44);
        assert_eq!(Mlp::new(10, 8, 4, 0).num_params(), 10 * 8 + 8 + 8 * 4 + 4);
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn set_params_wrong_len_panics() {
        let mut m = Linear::new(2, 2);
        m.set_params(&[0.0]);
    }
}
