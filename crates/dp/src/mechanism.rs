//! Noise samplers: Gaussian, Poisson, and the symmetric Skellam mechanism.
//!
//! All samplers draw from a [`Prg`] stream, so a 32-byte seed fully
//! determines the noise vector. This is what makes XNoise work: a client
//! adds noise generated from seed `g_{u,k}`, and the server can later
//! regenerate (and subtract) *exactly* the same vector from the seed alone
//! (paper §3.1, "decomposition").

use dordis_crypto::prg::{Prg, Seed};

use crate::math::ln_factorial;

/// A Gaussian sampler over a PRG stream (Box–Muller with caching).
pub struct GaussianSampler {
    prg: Prg,
    spare: Option<f64>,
}

impl GaussianSampler {
    /// Creates a sampler from a seed and domain string.
    #[must_use]
    pub fn new(seed: &Seed, domain: &[u8]) -> Self {
        GaussianSampler {
            prg: Prg::new(seed, domain),
            spare: None,
        }
    }

    /// Draws one `N(0, σ²)` sample.
    pub fn sample(&mut self, sigma: f64) -> f64 {
        self.standard() * sigma
    }

    /// Draws one standard normal sample.
    pub fn standard(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller; u1 is kept away from zero to avoid ln(0).
        let u1 = loop {
            let u = self.prg.next_f64();
            if u > 1e-300 {
                break u;
            }
        };
        let u2 = self.prg.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Fills a vector with `N(0, σ²)` samples.
    pub fn sample_vec(&mut self, sigma: f64, len: usize) -> Vec<f64> {
        (0..len).map(|_| self.sample(sigma)).collect()
    }
}

/// Draws a Poisson(μ) sample from the PRG.
///
/// Small means use Knuth's product-of-uniforms method; large means use
/// Atkinson's logistic-envelope rejection (exact, expected O(1) trials).
pub fn poisson(prg: &mut Prg, mu: f64) -> u64 {
    assert!(mu >= 0.0, "Poisson mean must be non-negative");
    if mu == 0.0 {
        return 0;
    }
    if mu < 30.0 {
        // Knuth: count multiplications until the product drops below e^-μ.
        let limit = (-mu).exp();
        let mut product = 1.0;
        let mut count = 0u64;
        loop {
            product *= prg.next_f64();
            if product <= limit {
                return count;
            }
            count += 1;
        }
    }
    // Atkinson (1979): rejection from a logistic envelope.
    let beta = std::f64::consts::PI / (3.0 * mu).sqrt();
    let alpha = beta * mu;
    let c = 0.767 - 3.36 / mu;
    let k = c.ln() - mu - beta.ln();
    loop {
        let u1 = prg.next_f64();
        if u1 <= 0.0 || u1 >= 1.0 {
            continue;
        }
        let x = (alpha - ((1.0 - u1) / u1).ln()) / beta;
        let n = (x + 0.5).floor();
        if n < 0.0 {
            continue;
        }
        let u2 = prg.next_f64();
        if u2 <= 0.0 {
            continue;
        }
        let y = alpha - beta * x;
        let lhs = y + (u2 / (1.0 + y.exp()).powi(2)).ln();
        let rhs = k + n * mu.ln() - ln_factorial(n as u64);
        if lhs <= rhs {
            return n as u64;
        }
    }
}

/// Draws one symmetric Skellam sample with the given total variance.
///
/// `Skellam(μ, μ) = Poisson(μ) - Poisson(μ)` with `μ = variance / 2`; the
/// result has mean 0 and variance `2μ = variance`. Skellam noise is closed
/// under summation — the property XNoise's decomposition relies on.
pub fn skellam(prg: &mut Prg, variance: f64) -> i64 {
    assert!(variance >= 0.0);
    if variance == 0.0 {
        return 0;
    }
    let mu = variance / 2.0;
    poisson(prg, mu) as i64 - poisson(prg, mu) as i64
}

/// Generates a full Skellam noise vector from a seed.
///
/// Each coordinate is an independent `Skellam` draw with the given
/// per-coordinate variance. Deterministic in `(seed, domain)`: the server
/// can regenerate the identical vector during XNoise removal.
#[must_use]
pub fn skellam_vector(seed: &Seed, domain: &[u8], len: usize, variance: f64) -> Vec<i64> {
    let mut prg = Prg::new(seed, domain);
    (0..len).map(|_| skellam(&mut prg, variance)).collect()
}

/// Generates a full Gaussian noise vector from a seed (continuous analogue
/// of [`skellam_vector`], used by the continuous-mechanism configurations).
#[must_use]
pub fn gaussian_vector(seed: &Seed, domain: &[u8], len: usize, sigma: f64) -> Vec<f64> {
    let mut s = GaussianSampler::new(seed, domain);
    s.sample_vec(sigma, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn gaussian_moments() {
        let mut s = GaussianSampler::new(&[1u8; 32], b"test");
        let xs = s.sample_vec(3.0, 40_000);
        let (mean, var) = mean_var(&xs);
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn gaussian_deterministic_by_seed() {
        let a = gaussian_vector(&[2u8; 32], b"n", 100, 1.0);
        let b = gaussian_vector(&[2u8; 32], b"n", 100, 1.0);
        assert_eq!(a, b);
        let c = gaussian_vector(&[3u8; 32], b"n", 100, 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_small_mu_moments() {
        let mut prg = Prg::new(&[4u8; 32], b"p");
        let xs: Vec<f64> = (0..30_000).map(|_| poisson(&mut prg, 3.5) as f64).collect();
        let (mean, var) = mean_var(&xs);
        assert!((mean - 3.5).abs() < 0.1, "mean {mean}");
        assert!((var - 3.5).abs() < 0.2, "var {var}");
    }

    #[test]
    fn poisson_large_mu_moments() {
        let mut prg = Prg::new(&[5u8; 32], b"p");
        let mu = 400.0;
        let xs: Vec<f64> = (0..20_000).map(|_| poisson(&mut prg, mu) as f64).collect();
        let (mean, var) = mean_var(&xs);
        assert!((mean - mu).abs() < 2.0, "mean {mean}");
        assert!((var - mu).abs() < 20.0, "var {var}");
    }

    #[test]
    fn poisson_zero_mu() {
        let mut prg = Prg::new(&[6u8; 32], b"p");
        assert_eq!(poisson(&mut prg, 0.0), 0);
    }

    #[test]
    fn poisson_boundary_between_algorithms() {
        // Means just below and above the algorithm switch should both be
        // close to their targets.
        for &mu in &[29.0, 31.0] {
            let mut prg = Prg::new(&[7u8; 32], b"p");
            let xs: Vec<f64> = (0..20_000).map(|_| poisson(&mut prg, mu) as f64).collect();
            let (mean, var) = mean_var(&xs);
            assert!((mean - mu).abs() < 0.5, "mu={mu} mean={mean}");
            assert!((var - mu).abs() < 2.5, "mu={mu} var={var}");
        }
    }

    #[test]
    fn skellam_moments() {
        let mut prg = Prg::new(&[8u8; 32], b"s");
        let variance = 16.0;
        let xs: Vec<f64> = (0..30_000)
            .map(|_| skellam(&mut prg, variance) as f64)
            .collect();
        let (mean, var) = mean_var(&xs);
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - variance).abs() < 0.8, "var {var}");
    }

    #[test]
    fn skellam_vector_deterministic() {
        let a = skellam_vector(&[9u8; 32], b"k0", 64, 4.0);
        let b = skellam_vector(&[9u8; 32], b"k0", 64, 4.0);
        assert_eq!(a, b);
        let c = skellam_vector(&[9u8; 32], b"k1", 64, 4.0);
        assert_ne!(a, c);
    }

    #[test]
    fn skellam_sum_variance_is_additive() {
        // Sum of two independent Skellams with variances v1, v2 has
        // variance v1 + v2 — the closure property in §3 of the paper.
        let n = 20_000;
        let a = skellam_vector(&[10u8; 32], b"a", n, 3.0);
        let b = skellam_vector(&[11u8; 32], b"b", n, 5.0);
        let sums: Vec<f64> = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| (x + y) as f64)
            .collect();
        let (mean, var) = mean_var(&sums);
        assert!(mean.abs() < 0.15, "mean {mean}");
        assert!((var - 8.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn skellam_zero_variance() {
        let v = skellam_vector(&[12u8; 32], b"z", 16, 0.0);
        assert!(v.iter().all(|&x| x == 0));
    }
}
