//! Offline noise planning (paper §2.2).
//!
//! Given a global privacy budget `(ε_G, δ_G)` that the whole training run
//! may consume, the planner binary-searches the minimum per-round central
//! noise multiplier `z∗ = σ∗/Δ₂` such that composing all rounds stays
//! within budget. "Minimum" matters: any extra noise is pure utility loss,
//! which is exactly why `Orig`-style under-noising (dropout) or
//! conservative over-noising (the paper's `ConX` variants) are both bad.

use serde::{Deserialize, Serialize};

use crate::accountant::{Mechanism, RdpAccountant};
use crate::DpError;

/// Inputs to offline noise planning.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// Global privacy budget ε_G.
    pub epsilon: f64,
    /// Global privacy budget δ_G.
    pub delta: f64,
    /// Total number of training rounds.
    pub rounds: u32,
    /// Per-round client sampling probability.
    pub sample_rate: f64,
    /// Which mechanism perturbs the aggregate.
    pub mechanism: Mechanism,
}

/// The result of offline noise planning.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NoisePlan {
    /// Minimum central noise multiplier `z∗ = σ∗ / Δ₂` per round.
    pub noise_multiplier: f64,
    /// The ε this plan actually realizes (≤ the budget, nearly tight).
    pub realized_epsilon: f64,
}

impl NoisePlan {
    /// Central noise standard deviation for updates with L2 sensitivity
    /// (clipping bound) `clip`.
    #[must_use]
    pub fn central_sigma(&self, clip: f64) -> f64 {
        self.noise_multiplier * clip
    }
}

/// Plans the minimum per-round noise for the given budget.
///
/// # Errors
///
/// Returns [`DpError::InfeasibleBudget`] if even enormous noise cannot meet
/// the budget (e.g. δ ≥ 1 requested indirectly) or
/// [`DpError::BadParameter`] for out-of-domain inputs.
pub fn plan(cfg: &PlannerConfig) -> Result<NoisePlan, DpError> {
    if !(cfg.epsilon > 0.0) {
        return Err(DpError::BadParameter("epsilon must be positive"));
    }
    if !(cfg.delta > 0.0 && cfg.delta < 1.0) {
        return Err(DpError::BadParameter("delta must be in (0,1)"));
    }
    if cfg.rounds == 0 {
        return Err(DpError::BadParameter("rounds must be positive"));
    }
    if !(cfg.sample_rate > 0.0 && cfg.sample_rate <= 1.0) {
        return Err(DpError::BadParameter("sample_rate must be in (0,1]"));
    }

    let eps_at = |z: f64| -> f64 {
        RdpAccountant::project(cfg.mechanism, cfg.sample_rate, z, cfg.rounds, cfg.delta)
    };

    // Bracket: grow `hi` until the budget is met.
    let mut lo = 1e-3;
    let mut hi = 1.0;
    let mut guard = 0;
    while eps_at(hi) > cfg.epsilon {
        hi *= 2.0;
        guard += 1;
        if guard > 60 {
            return Err(DpError::InfeasibleBudget(format!(
                "ε={} δ={} not reachable even with z={hi}",
                cfg.epsilon, cfg.delta
            )));
        }
    }
    if eps_at(lo) <= cfg.epsilon {
        // Essentially free; return the bracket floor.
        return Ok(NoisePlan {
            noise_multiplier: lo,
            realized_epsilon: eps_at(lo),
        });
    }
    // Binary search: eps_at is monotone decreasing in z.
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if eps_at(mid) > cfg.epsilon {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(NoisePlan {
        noise_multiplier: hi,
        realized_epsilon: eps_at(hi),
    })
}

/// Plans noise assuming a conservatively *estimated* per-round dropout
/// rate (the paper's `ConX` baselines, §2.3.1).
///
/// If a fraction `est_dropout` of sampled clients is expected to vanish,
/// each client inflates its share so the *surviving* noise still meets the
/// plan: the per-client share grows by `1/(1 - est_dropout)`, and when
/// actual dropout is lower than estimated, the aggregate is over-noised
/// (utility loss); when higher, the budget is overrun.
pub fn plan_conservative(
    cfg: &PlannerConfig,
    est_dropout: f64,
) -> Result<ConservativePlan, DpError> {
    if !(0.0..1.0).contains(&est_dropout) {
        return Err(DpError::BadParameter("est_dropout must be in [0,1)"));
    }
    let base = plan(cfg)?;
    Ok(ConservativePlan { base, est_dropout })
}

/// A `ConX`-style plan: the base minimum plan plus a dropout estimate.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ConservativePlan {
    /// The underlying minimum-noise plan.
    pub base: NoisePlan,
    /// The assumed per-round dropout fraction.
    pub est_dropout: f64,
}

impl ConservativePlan {
    /// Per-client noise variance share when `n` clients are sampled,
    /// inflated for the assumed dropout.
    #[must_use]
    pub fn per_client_variance(&self, clip: f64, n: usize) -> f64 {
        let sigma = self.base.central_sigma(clip);
        let survivors = ((n as f64) * (1.0 - self.est_dropout)).max(1.0);
        sigma * sigma / survivors
    }

    /// The central noise multiplier actually realized when the true
    /// dropout rate is `actual_dropout`.
    ///
    /// Each surviving client contributes variance `z²/(n(1-est))`, so the
    /// aggregate variance is `z² (1-actual)/(1-est)`: over-noised when the
    /// estimate was pessimistic, under-noised (privacy overrun) when it
    /// was optimistic.
    #[must_use]
    pub fn realized_multiplier(&self, actual_dropout: f64) -> f64 {
        let ratio = (1.0 - actual_dropout).max(0.0) / (1.0 - self.est_dropout);
        self.base.noise_multiplier * ratio.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PlannerConfig {
        PlannerConfig {
            epsilon: 6.0,
            delta: 1e-2,
            rounds: 150,
            sample_rate: 0.16,
            mechanism: Mechanism::Gaussian,
        }
    }

    #[test]
    fn plan_meets_budget_tightly() {
        let p = plan(&cfg()).unwrap();
        assert!(p.realized_epsilon <= 6.0);
        assert!(p.realized_epsilon > 5.9, "got {}", p.realized_epsilon);
        assert!(p.noise_multiplier > 0.0);
    }

    #[test]
    fn smaller_budget_needs_more_noise() {
        let loose = plan(&cfg()).unwrap();
        let tight = plan(&PlannerConfig {
            epsilon: 3.0,
            ..cfg()
        })
        .unwrap();
        assert!(tight.noise_multiplier > loose.noise_multiplier);
    }

    #[test]
    fn more_rounds_need_more_noise() {
        let short = plan(&cfg()).unwrap();
        let long = plan(&PlannerConfig {
            rounds: 600,
            ..cfg()
        })
        .unwrap();
        assert!(long.noise_multiplier > short.noise_multiplier);
    }

    #[test]
    fn lower_sampling_rate_needs_less_noise() {
        let dense = plan(&cfg()).unwrap();
        let sparse = plan(&PlannerConfig {
            sample_rate: 0.02,
            ..cfg()
        })
        .unwrap();
        assert!(sparse.noise_multiplier < dense.noise_multiplier);
    }

    #[test]
    fn skellam_needs_at_least_gaussian_noise() {
        let g = plan(&cfg()).unwrap();
        let s = plan(&PlannerConfig {
            mechanism: Mechanism::Skellam { l1_per_l2: 10.0 },
            ..cfg()
        })
        .unwrap();
        assert!(s.noise_multiplier >= g.noise_multiplier * 0.999);
    }

    #[test]
    fn central_sigma_scales_with_clip() {
        let p = plan(&cfg()).unwrap();
        assert!((p.central_sigma(3.0) - 3.0 * p.noise_multiplier).abs() < 1e-12);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(plan(&PlannerConfig {
            epsilon: 0.0,
            ..cfg()
        })
        .is_err());
        assert!(plan(&PlannerConfig {
            delta: 0.0,
            ..cfg()
        })
        .is_err());
        assert!(plan(&PlannerConfig { rounds: 0, ..cfg() }).is_err());
        assert!(plan(&PlannerConfig {
            sample_rate: 0.0,
            ..cfg()
        })
        .is_err());
        assert!(plan(&PlannerConfig {
            sample_rate: 1.5,
            ..cfg()
        })
        .is_err());
    }

    #[test]
    fn conservative_plan_inflates_per_client_share() {
        let base = plan_conservative(&cfg(), 0.0).unwrap();
        let con5 = plan_conservative(&cfg(), 0.5).unwrap();
        let n = 16;
        let v0 = base.per_client_variance(1.0, n);
        let v5 = con5.per_client_variance(1.0, n);
        assert!(v5 > v0 * 1.9 && v5 < v0 * 2.1, "v0={v0} v5={v5}");
    }

    #[test]
    fn conservative_bad_estimate_rejected() {
        assert!(plan_conservative(&cfg(), 1.0).is_err());
        assert!(plan_conservative(&cfg(), -0.1).is_err());
    }

    #[test]
    fn conservative_realized_multiplier_cases() {
        let con5 = plan_conservative(&cfg(), 0.5).unwrap();
        let z = con5.base.noise_multiplier;
        // Exactly as estimated: on target.
        assert!((con5.realized_multiplier(0.5) - z).abs() < 1e-12);
        // No dropout: over-noised by sqrt(2).
        assert!((con5.realized_multiplier(0.0) - z * 2f64.sqrt()).abs() < 1e-12);
        // Worse than estimated: under-noised -> privacy overrun.
        assert!(con5.realized_multiplier(0.8) < z);
    }
}
