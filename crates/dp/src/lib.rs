//! Differential-privacy machinery for Dordis.
//!
//! Distributed DP in Dordis (paper §2.2) works in two phases:
//!
//! 1. **Offline noise planning** ([`planner`]): given a global privacy
//!    budget `(ε_G, δ_G)`, a round count, and per-round client sampling,
//!    compute the *minimum* central noise variance `σ²∗` each round's
//!    aggregate must carry so that the whole training run exactly exhausts
//!    the budget.
//! 2. **Online noise enforcement** ([`ledger`]): during training, account
//!    for the noise that each aggregate *actually* carried. With the
//!    baseline `Orig` scheme, client dropout removes noise shares and the
//!    realized ε exceeds the budget (Figures 1 and 8 of the paper); with
//!    XNoise the ledger stays exactly on budget.
//!
//! Accounting is done in Rényi-DP space ([`rdp`]) and converted to
//! `(ε, δ)`. The mechanism layer provides the Skellam sampler and the
//! full DSkellam client encoding pipeline ([`encoding`]): L2 clipping,
//! randomized Hadamard flattening, conditional randomized rounding, and
//! modular arithmetic in `Z_{2^b}` compatible with secure aggregation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accountant;
pub mod encoding;
pub mod ledger;
pub mod math;
pub mod mechanism;
pub mod planner;
pub mod rdp;

/// Errors produced by DP planning and encoding.
#[derive(Debug, Clone, PartialEq)]
pub enum DpError {
    /// The requested privacy budget cannot be met with any finite noise.
    InfeasibleBudget(String),
    /// A parameter was outside its valid domain.
    BadParameter(&'static str),
    /// Encoding failed (e.g. vector norm overflowed the modular range).
    Encoding(&'static str),
}

impl core::fmt::Display for DpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DpError::InfeasibleBudget(why) => write!(f, "infeasible privacy budget: {why}"),
            DpError::BadParameter(what) => write!(f, "bad parameter: {what}"),
            DpError::Encoding(what) => write!(f, "encoding error: {what}"),
        }
    }
}

impl std::error::Error for DpError {}
