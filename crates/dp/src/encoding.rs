//! The DSkellam client-side encoding pipeline (paper §5).
//!
//! Secure aggregation sums vectors in `Z_{2^b}`, so real-valued model
//! updates must be discretized first. Following Agarwal et al. (DSkellam),
//! each client:
//!
//! 1. clips the update to L2 norm `clip`,
//! 2. flattens it with a randomized Hadamard rotation `H·D` (shared
//!    per-round seed, so aggregation commutes with the rotation),
//! 3. scales by `gamma` and applies *conditional randomized rounding*
//!    (retry until the rounded vector's norm is within the analytic bound,
//!    keeping the sensitivity used for accounting valid),
//! 4. maps signed integers into `Z_{2^b}` by wraparound.
//!
//! The server sums modulo `2^b`, lifts back to signed integers, divides by
//! `gamma`, and inverts the rotation. Modular wraparound is harmless as
//! long as the true sum stays within `±2^(b-1)`, which the parameters are
//! sized for (`bit_width = 20` in the paper's configuration).

use dordis_crypto::prg::{Prg, Seed};
use serde::{Deserialize, Serialize};

use crate::math::next_pow2;
use crate::DpError;

/// Parameters of the DSkellam encoding.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EncodingConfig {
    /// Modular bit width `b`; coordinates live in `Z_{2^b}`.
    pub bit_width: u32,
    /// Scale factor `γ` applied before rounding.
    pub gamma: f64,
    /// L2 clipping bound `c` on raw updates.
    pub clip: f64,
    /// Failure probability `β` of the randomized-rounding norm bound
    /// (the paper fixes `β = e^{-0.5}`).
    pub beta: f64,
}

impl Default for EncodingConfig {
    fn default() -> Self {
        EncodingConfig {
            bit_width: 20,
            gamma: 64.0,
            clip: 1.0,
            beta: (-0.5f64).exp(),
        }
    }
}

impl EncodingConfig {
    /// Modulus `2^b`.
    #[must_use]
    pub fn modulus(&self) -> u64 {
        1u64 << self.bit_width
    }

    /// The post-rounding L2 norm bound on encoded vectors of (padded)
    /// dimension `dim` — the conditional randomized-rounding bound of the
    /// DSkellam paper:
    ///
    /// `‖z‖₂ ≤ γc + √d/2 · slack`, concretely
    /// `√(γ²c² + d/4 + √(2 ln(1/β)) · (γc + √d/2))`.
    #[must_use]
    pub fn norm_bound(&self, dim: usize) -> f64 {
        let d = dim as f64;
        let gc = self.gamma * self.clip;
        let slack = (2.0 * (1.0 / self.beta).ln()).sqrt();
        (gc * gc + d / 4.0 + slack * (gc + 0.5 * d.sqrt())).sqrt()
    }

    /// L2 sensitivity of the encoded update (used by the accountant):
    /// the norm bound itself, since one client's whole encoded vector is
    /// what changes between neighbouring datasets.
    #[must_use]
    pub fn l2_sensitivity(&self, dim: usize) -> f64 {
        self.norm_bound(next_pow2(dim))
    }

    /// Bound on Δ₁/Δ₂ for the encoded update (√d for a d-dimensional
    /// vector, by Cauchy–Schwarz).
    #[must_use]
    pub fn l1_per_l2(&self, dim: usize) -> f64 {
        (next_pow2(dim) as f64).sqrt()
    }
}

/// Fast in-place Walsh–Hadamard transform, orthonormalized
/// (`H` is its own inverse).
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn wht_inplace(v: &mut [f64]) {
    let n = v.len();
    assert!(n.is_power_of_two(), "WHT length must be a power of two");
    let mut h = 1;
    while h < n {
        for i in (0..n).step_by(h * 2) {
            for j in i..i + h {
                let x = v[j];
                let y = v[j + h];
                v[j] = x + y;
                v[j + h] = x - y;
            }
        }
        h *= 2;
    }
    let scale = 1.0 / (n as f64).sqrt();
    for x in v.iter_mut() {
        *x *= scale;
    }
}

/// Applies the random sign flips `D` derived from `seed`.
fn apply_signs(seed: &Seed, v: &mut [f64]) {
    let mut prg = Prg::new(seed, b"dskellam.signs");
    let mut word = 0u64;
    let mut bits_left = 0u32;
    for x in v.iter_mut() {
        if bits_left == 0 {
            word = prg.next_u64();
            bits_left = 64;
        }
        if word & 1 == 1 {
            *x = -*x;
        }
        word >>= 1;
        bits_left -= 1;
    }
}

/// Forward rotation `y = H D x` (after padding to a power of two).
fn rotate(seed: &Seed, v: &mut [f64]) {
    apply_signs(seed, v);
    wht_inplace(v);
}

/// Inverse rotation `x = D Hᵀ y = D H y` (H symmetric orthonormal).
fn unrotate(seed: &Seed, v: &mut [f64]) {
    wht_inplace(v);
    apply_signs(seed, v);
}

/// A client-side encoder bound to a per-round rotation seed.
///
/// # Examples
///
/// ```
/// use dordis_dp::encoding::{Encoder, EncodingConfig};
///
/// let cfg = EncodingConfig::default();
/// let enc = Encoder::new(&cfg, [7u8; 32]);
/// let update = vec![0.01, -0.02, 0.03];
/// let encoded = enc.encode(&update, &[1u8; 32]).unwrap();
/// let decoded = enc.decode(&encoded, update.len());
/// for (d, u) in decoded.iter().zip(update.iter()) {
///     assert!((d - u).abs() < 0.05);
/// }
/// ```
pub struct Encoder<'a> {
    config: &'a EncodingConfig,
    rotation_seed: Seed,
}

impl<'a> Encoder<'a> {
    /// Creates an encoder; all clients of a round must share
    /// `rotation_seed` (the server broadcasts it with the round config).
    #[must_use]
    pub fn new(config: &'a EncodingConfig, rotation_seed: Seed) -> Self {
        Encoder {
            config,
            rotation_seed,
        }
    }

    /// Encodes a raw update into `Z_{2^b}` integers of padded length.
    ///
    /// `round_seed` supplies the client's private rounding randomness.
    ///
    /// # Errors
    ///
    /// Fails if conditional rounding cannot meet the norm bound after many
    /// retries (ill-sized `gamma`/`bit_width`).
    pub fn encode(&self, update: &[f64], round_seed: &Seed) -> Result<Vec<u64>, DpError> {
        let padded = next_pow2(update.len());
        let mut v = vec![0.0f64; padded];
        v[..update.len()].copy_from_slice(update);

        // 1. Clip.
        let norm = l2_norm(&v);
        if norm > self.config.clip {
            let s = self.config.clip / norm;
            for x in v.iter_mut() {
                *x *= s;
            }
        }
        // 2. Flatten.
        rotate(&self.rotation_seed, &mut v);
        // 3. Scale.
        for x in v.iter_mut() {
            *x *= self.config.gamma;
        }
        // 4. Conditional randomized rounding.
        let bound = self.config.norm_bound(padded);
        let mut prg = Prg::new(round_seed, b"dskellam.round");
        let modulus = self.config.modulus();
        let half = (modulus / 2) as i64;
        for attempt in 0..100 {
            let mut z = Vec::with_capacity(padded);
            let mut norm_sq = 0.0f64;
            for &x in v.iter() {
                let floor = x.floor();
                let frac = x - floor;
                let up = prg.next_f64() < frac;
                let r = floor as i64 + i64::from(up);
                norm_sq += (r as f64) * (r as f64);
                z.push(r);
            }
            if norm_sq.sqrt() <= bound {
                // 5. Wrap into Z_2^b.
                if z.iter().any(|&r| r >= half || r < -half) {
                    return Err(DpError::Encoding("coordinate exceeds modulus range"));
                }
                let out = z
                    .into_iter()
                    .map(|r| (r.rem_euclid(modulus as i64)) as u64)
                    .collect();
                return Ok(out);
            }
            let _ = attempt;
        }
        Err(DpError::Encoding("conditional rounding failed to converge"))
    }

    /// Decodes an aggregate in `Z_{2^b}` back to real values.
    ///
    /// `original_len` strips the power-of-two padding.
    #[must_use]
    pub fn decode(&self, aggregate: &[u64], original_len: usize) -> Vec<f64> {
        let modulus = self.config.modulus();
        let half = modulus / 2;
        let mut v: Vec<f64> = aggregate
            .iter()
            .map(|&x| {
                debug_assert!(x < modulus);
                if x >= half {
                    (x as i64 - modulus as i64) as f64
                } else {
                    x as f64
                }
            })
            .collect();
        for x in v.iter_mut() {
            *x /= self.config.gamma;
        }
        unrotate(&self.rotation_seed, &mut v);
        v.truncate(original_len);
        v
    }

    /// Padded length for a raw update of length `len`.
    #[must_use]
    pub fn padded_len(len: usize) -> usize {
        next_pow2(len)
    }
}

/// Adds two vectors in `Z_{2^b}` (coordinate-wise, wrapping).
#[must_use]
pub fn add_mod(a: &[u64], b: &[u64], bit_width: u32) -> Vec<u64> {
    let mask = if bit_width == 64 {
        u64::MAX
    } else {
        (1u64 << bit_width) - 1
    };
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| x.wrapping_add(y) & mask)
        .collect()
}

/// Subtracts `b` from `a` in `Z_{2^b}`.
#[must_use]
pub fn sub_mod(a: &[u64], b: &[u64], bit_width: u32) -> Vec<u64> {
    let mask = if bit_width == 64 {
        u64::MAX
    } else {
        (1u64 << bit_width) - 1
    };
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| x.wrapping_sub(y) & mask)
        .collect()
}

fn l2_norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg() -> EncodingConfig {
        EncodingConfig::default()
    }

    #[test]
    fn wht_is_self_inverse() {
        let mut v: Vec<f64> = (0..64).map(|i| (i as f64) * 0.37 - 3.0).collect();
        let orig = v.clone();
        wht_inplace(&mut v);
        wht_inplace(&mut v);
        for (a, b) in v.iter().zip(orig.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn wht_preserves_norm() {
        let mut v: Vec<f64> = (0..128).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let before = l2_norm(&v);
        wht_inplace(&mut v);
        assert!((l2_norm(&v) - before).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn wht_rejects_non_pow2() {
        let mut v = vec![0.0; 3];
        wht_inplace(&mut v);
    }

    #[test]
    fn rotation_roundtrip() {
        let seed = [3u8; 32];
        let mut v: Vec<f64> = (0..32).map(|i| (i as f64).sin()).collect();
        let orig = v.clone();
        rotate(&seed, &mut v);
        unrotate(&seed, &mut v);
        for (a, b) in v.iter().zip(orig.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn encode_decode_single_client() {
        let config = cfg();
        let enc = Encoder::new(&config, [1u8; 32]);
        let update: Vec<f64> = (0..50).map(|i| ((i as f64) * 0.11).sin() * 0.1).collect();
        let encoded = enc.encode(&update, &[2u8; 32]).unwrap();
        assert_eq!(encoded.len(), 64);
        let decoded = enc.decode(&encoded, update.len());
        for (d, u) in decoded.iter().zip(update.iter()) {
            assert!((d - u).abs() < 0.05, "decoded {d} vs {u}");
        }
    }

    #[test]
    fn aggregation_commutes_with_encoding() {
        // sum(decode) == decode(modular sum of encodings): the property
        // secure aggregation relies on.
        let config = cfg();
        let enc = Encoder::new(&config, [7u8; 32]);
        let n = 8;
        let dim = 30;
        let mut encodings = Vec::new();
        let mut true_sum = vec![0.0f64; dim];
        for c in 0..n {
            let update: Vec<f64> = (0..dim)
                .map(|i| (((c * dim + i) as f64) * 0.13).sin() * 0.05)
                .collect();
            for (s, u) in true_sum.iter_mut().zip(update.iter()) {
                *s += u;
            }
            let seed = [c as u8 + 10; 32];
            encodings.push(enc.encode(&update, &seed).unwrap());
        }
        let mut agg = encodings[0].clone();
        for e in &encodings[1..] {
            agg = add_mod(&agg, e, config.bit_width);
        }
        let decoded = enc.decode(&agg, dim);
        for (d, s) in decoded.iter().zip(true_sum.iter()) {
            assert!((d - s).abs() < 0.2, "decoded {d} vs true {s}");
        }
    }

    #[test]
    fn clipping_enforced() {
        let config = EncodingConfig { clip: 0.5, ..cfg() };
        let enc = Encoder::new(&config, [9u8; 32]);
        // A vector with huge norm gets clipped to 0.5.
        let update = vec![10.0f64; 16];
        let encoded = enc.encode(&update, &[1u8; 32]).unwrap();
        let decoded = enc.decode(&encoded, 16);
        let norm = l2_norm(&decoded);
        assert!((norm - 0.5).abs() < 0.05, "norm {norm}");
    }

    #[test]
    fn norm_bound_holds_post_encoding() {
        let config = cfg();
        let enc = Encoder::new(&config, [4u8; 32]);
        let update: Vec<f64> = (0..100).map(|i| ((i as f64) * 0.7).cos() * 0.09).collect();
        let encoded = enc.encode(&update, &[5u8; 32]).unwrap();
        let modulus = config.modulus();
        let half = modulus / 2;
        let norm_sq: f64 = encoded
            .iter()
            .map(|&x| {
                let s = if x >= half {
                    x as i64 - modulus as i64
                } else {
                    x as i64
                };
                (s as f64) * (s as f64)
            })
            .sum();
        assert!(norm_sq.sqrt() <= config.norm_bound(128) + 1e-9);
    }

    #[test]
    fn sensitivity_monotone_in_gamma_and_clip() {
        let a = EncodingConfig {
            gamma: 32.0,
            ..cfg()
        }
        .l2_sensitivity(1000);
        let b = EncodingConfig {
            gamma: 128.0,
            ..cfg()
        }
        .l2_sensitivity(1000);
        assert!(b > a);
        let c = EncodingConfig { clip: 2.0, ..cfg() }.l2_sensitivity(1000);
        assert!(c > cfg().l2_sensitivity(1000));
    }

    #[test]
    fn mod_arithmetic_roundtrip() {
        let a = vec![5u64, (1 << 20) - 1, 7];
        let b = vec![3u64, 2, (1 << 20) - 1];
        let sum = add_mod(&a, &b, 20);
        assert_eq!(sum, vec![8, 1, 6]);
        let back = sub_mod(&sum, &b, 20);
        assert_eq!(back, a);
    }

    proptest! {
        #[test]
        fn prop_encode_decode_close(
            vals in proptest::collection::vec(-0.05f64..0.05, 1..40),
            seed_byte in any::<u8>(),
        ) {
            let config = cfg();
            let enc = Encoder::new(&config, [seed_byte; 32]);
            let encoded = enc.encode(&vals, &[seed_byte.wrapping_add(1); 32]).unwrap();
            let decoded = enc.decode(&encoded, vals.len());
            for (d, v) in decoded.iter().zip(vals.iter()) {
                prop_assert!((d - v).abs() < 0.1);
            }
        }

        #[test]
        fn prop_mod_add_commutes(
            a in proptest::collection::vec(0u64..(1<<20), 8),
            b in proptest::collection::vec(0u64..(1<<20), 8),
        ) {
            prop_assert_eq!(add_mod(&a, &b, 20), add_mod(&b, &a, 20));
        }
    }
}
