//! Online privacy-budget ledger.
//!
//! The ledger records, for each completed round, the central noise
//! multiplier the aggregate *actually* carried and maintains the realized
//! `(ε, δ)`. It is the instrument behind the paper's Figures 1 and 8:
//! under `Orig`, dropout removes noise shares, the realized per-round
//! multiplier shrinks by `√((n-|D|)/n)`, and ε overruns the budget; under
//! XNoise every round lands exactly on the planned multiplier and the
//! final ε equals the budget.

use serde::{Deserialize, Serialize};

use crate::accountant::{Mechanism, RdpAccountant};
use crate::DpError;

/// A per-round ledger entry.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// Round index (0-based).
    pub round: u32,
    /// Sampling probability used this round.
    pub sample_rate: f64,
    /// Central noise multiplier the released aggregate carried.
    pub achieved_multiplier: f64,
    /// Realized ε after this round.
    pub epsilon_after: f64,
}

/// Tracks realized privacy loss across a training run.
///
/// # Examples
///
/// Dropout under `Orig` shrinks the achieved noise multiplier and the
/// realized ε overruns the budget; enforced noise stays on budget:
///
/// ```
/// use dordis_dp::accountant::Mechanism;
/// use dordis_dp::ledger::PrivacyLedger;
///
/// let z = 1.0; // Planned per-round multiplier.
/// let mut enforced = PrivacyLedger::new(Mechanism::Gaussian, 6.0, 1e-2).unwrap();
/// let mut dropped = PrivacyLedger::new(Mechanism::Gaussian, 6.0, 1e-2).unwrap();
/// for _ in 0..50 {
///     enforced.record_round(0.16, z);
///     dropped.record_round(0.16, z * 0.7f64.sqrt()); // 30% noise missing.
/// }
/// assert!(dropped.realized_epsilon() > enforced.realized_epsilon());
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PrivacyLedger {
    mechanism: Mechanism,
    delta: f64,
    budget_epsilon: f64,
    accountant: RdpAccountant,
    entries: Vec<LedgerEntry>,
    /// Highest *wire* round id recorded so far (0 = nothing recorded;
    /// wire rounds start at 1). The double-count guard: a restored
    /// ledger refuses to record any round at or below the watermark, so
    /// a round that was committed before a coordinator failover can
    /// never be accounted twice by the successor.
    watermark: u64,
}

impl PrivacyLedger {
    /// Creates a ledger for a run with budget `(ε_G, δ_G)`.
    ///
    /// # Errors
    ///
    /// Rejects out-of-domain budgets.
    pub fn new(mechanism: Mechanism, budget_epsilon: f64, delta: f64) -> Result<Self, DpError> {
        if !(budget_epsilon > 0.0) {
            return Err(DpError::BadParameter("budget epsilon must be positive"));
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(DpError::BadParameter("delta must be in (0,1)"));
        }
        Ok(PrivacyLedger {
            mechanism,
            delta,
            budget_epsilon,
            accountant: RdpAccountant::new(),
            entries: Vec::new(),
            watermark: 0,
        })
    }

    /// Records a completed round.
    ///
    /// `achieved_multiplier` is the central noise multiplier of the round's
    /// released aggregate (`σ_achieved / Δ₂`). A zero multiplier (e.g. all
    /// noise lost) is recorded as (near-)infinite privacy loss.
    pub fn record_round(&mut self, sample_rate: f64, achieved_multiplier: f64) {
        let next = self.watermark + 1;
        self.record_inner(sample_rate, achieved_multiplier);
        self.watermark = next;
    }

    /// Records a completed round pinned to an explicit wire round id.
    ///
    /// This is the failover-safe entry point: the coordinator passes the
    /// round id it is committing, and the ledger refuses to account any
    /// round at or below its watermark. Replaying an already-recorded
    /// round — exactly what a naive restart after a crash between
    /// checkpoint and commit would do — is rejected instead of silently
    /// double-counting privacy loss.
    ///
    /// # Errors
    ///
    /// [`DpError::BadParameter`] when `wire_round` is at or below the
    /// watermark (the round was already recorded).
    pub fn record_round_at(
        &mut self,
        wire_round: u64,
        sample_rate: f64,
        achieved_multiplier: f64,
    ) -> Result<(), DpError> {
        if wire_round <= self.watermark {
            return Err(DpError::BadParameter(
                "round already recorded in ledger (watermark replay guard)",
            ));
        }
        self.record_inner(sample_rate, achieved_multiplier);
        self.watermark = wire_round;
        Ok(())
    }

    fn record_inner(&mut self, sample_rate: f64, achieved_multiplier: f64) {
        // Guard against a degenerate zero-noise release: clamp far below
        // any useful multiplier so ε blows up visibly but finitely.
        let z = achieved_multiplier.max(1e-6);
        self.accountant.record_round(self.mechanism, sample_rate, z);
        let eps = self.accountant.epsilon(self.delta);
        self.entries.push(LedgerEntry {
            round: self.entries.len() as u32,
            sample_rate,
            achieved_multiplier,
            epsilon_after: eps,
        });
    }

    /// Highest wire round id recorded so far (0 = nothing recorded).
    #[must_use]
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Serializes the complete ledger state (accountant accumulator,
    /// entries, watermark) for a coordinator checkpoint. The encoding is
    /// exact: floats round-trip bit-identically, so a restored ledger
    /// continues composing ε as if the crash never happened.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_string(self)
            .expect("ledger state is always serializable")
            .into_bytes()
    }

    /// Restores a ledger from [`PrivacyLedger::to_bytes`] output.
    ///
    /// # Errors
    ///
    /// [`DpError::BadParameter`] when the bytes do not parse as a ledger
    /// checkpoint.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DpError> {
        let s = core::str::from_utf8(bytes)
            .map_err(|_| DpError::BadParameter("ledger checkpoint is not utf-8"))?;
        serde_json::from_str(s)
            .map_err(|_| DpError::BadParameter("ledger checkpoint failed to parse"))
    }

    /// Realized ε so far.
    #[must_use]
    pub fn realized_epsilon(&self) -> f64 {
        self.accountant.epsilon(self.delta)
    }

    /// The δ the ledger reports ε at.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The configured budget ε_G.
    #[must_use]
    pub fn budget_epsilon(&self) -> f64 {
        self.budget_epsilon
    }

    /// True once realized ε meets or exceeds the budget.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.realized_epsilon() >= self.budget_epsilon
    }

    /// Remaining budget (never negative).
    #[must_use]
    pub fn remaining(&self) -> f64 {
        (self.budget_epsilon - self.realized_epsilon()).max(0.0)
    }

    /// All per-round entries recorded so far.
    #[must_use]
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Number of recorded rounds.
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.entries.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{plan, PlannerConfig};

    fn planned() -> (PlannerConfig, f64) {
        let cfg = PlannerConfig {
            epsilon: 6.0,
            delta: 1e-2,
            rounds: 100,
            sample_rate: 0.16,
            mechanism: Mechanism::Gaussian,
        };
        let z = plan(&cfg).unwrap().noise_multiplier;
        (cfg, z)
    }

    #[test]
    fn enforced_noise_lands_on_budget() {
        let (cfg, z) = planned();
        let mut ledger = PrivacyLedger::new(cfg.mechanism, cfg.epsilon, cfg.delta).unwrap();
        for _ in 0..cfg.rounds {
            ledger.record_round(cfg.sample_rate, z);
        }
        let eps = ledger.realized_epsilon();
        assert!(eps <= cfg.epsilon + 1e-9, "eps {eps}");
        assert!(eps > 0.98 * cfg.epsilon, "eps {eps} not tight");
    }

    #[test]
    fn dropout_without_enforcement_overruns_budget() {
        // Orig with 30% dropout: every round's multiplier shrinks by
        // sqrt(0.7); the realized epsilon must exceed the budget.
        let (cfg, z) = planned();
        let mut ledger = PrivacyLedger::new(cfg.mechanism, cfg.epsilon, cfg.delta).unwrap();
        for _ in 0..cfg.rounds {
            ledger.record_round(cfg.sample_rate, z * 0.7f64.sqrt());
        }
        assert!(
            ledger.realized_epsilon() > cfg.epsilon,
            "eps {} should exceed budget",
            ledger.realized_epsilon()
        );
    }

    #[test]
    fn higher_dropout_higher_overrun() {
        let (cfg, z) = planned();
        let mut eps_prev = 0.0;
        for drop in [0.0f64, 0.1, 0.2, 0.4] {
            let mut ledger = PrivacyLedger::new(cfg.mechanism, cfg.epsilon, cfg.delta).unwrap();
            for _ in 0..cfg.rounds {
                ledger.record_round(cfg.sample_rate, z * (1.0 - drop).sqrt());
            }
            let eps = ledger.realized_epsilon();
            assert!(eps > eps_prev, "drop={drop} eps={eps} prev={eps_prev}");
            eps_prev = eps;
        }
    }

    #[test]
    fn exhaustion_detection_for_early_stopping() {
        let (cfg, z) = planned();
        let mut ledger = PrivacyLedger::new(cfg.mechanism, cfg.epsilon, cfg.delta).unwrap();
        // Under-noised rounds must exhaust before the planned horizon.
        let mut stopped_at = None;
        for r in 0..cfg.rounds {
            if ledger.exhausted() {
                stopped_at = Some(r);
                break;
            }
            ledger.record_round(cfg.sample_rate, z * 0.6f64.sqrt());
        }
        let r = stopped_at.expect("budget should run out early");
        assert!(r < cfg.rounds, "stopped at {r}");
        assert!(ledger.remaining() == 0.0);
    }

    #[test]
    fn entries_are_monotone() {
        let (cfg, z) = planned();
        let mut ledger = PrivacyLedger::new(cfg.mechanism, cfg.epsilon, cfg.delta).unwrap();
        for _ in 0..10 {
            ledger.record_round(cfg.sample_rate, z);
        }
        let entries = ledger.entries();
        assert_eq!(entries.len(), 10);
        for w in entries.windows(2) {
            assert!(w[1].epsilon_after > w[0].epsilon_after);
            assert_eq!(w[1].round, w[0].round + 1);
        }
    }

    #[test]
    fn zero_multiplier_is_clamped_not_infinite() {
        let mut ledger = PrivacyLedger::new(Mechanism::Gaussian, 6.0, 1e-2).unwrap();
        ledger.record_round(0.1, 0.0);
        assert!(ledger.realized_epsilon().is_finite());
        assert!(ledger.exhausted());
    }

    #[test]
    fn bad_budget_rejected() {
        assert!(PrivacyLedger::new(Mechanism::Gaussian, 0.0, 1e-2).is_err());
        assert!(PrivacyLedger::new(Mechanism::Gaussian, 1.0, 1.0).is_err());
    }
}
