//! Numeric helpers: log-gamma, log-binomial, log-sum-exp.
//!
//! Used by the RDP accountant (binomial expansions of the subsampled
//! Gaussian) and by the Poisson sampler (Stirling-type bounds).

/// Natural log of the gamma function, via the Lanczos approximation
/// (g = 7, n = 9 coefficients). Accurate to ~1e-13 over the positive reals,
/// which is far below the accountant's needs.
///
/// # Panics
///
/// Panics if `x <= 0` (the reflection branch is not needed here).
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain: x > 0");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_59,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx).
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln n!`.
#[must_use]
pub fn ln_factorial(n: u64) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

/// `ln C(n, k)`.
#[must_use]
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Numerically stable `ln Σ exp(x_i)`.
#[must_use]
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let sum: f64 = xs.iter().map(|&x| (x - m).exp()).sum();
    m + sum.ln()
}

/// Next power of two at or above `n` (with `next_pow2(0) == 1`).
#[must_use]
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_integers() {
        // Γ(n) = (n-1)!.
        assert!((ln_gamma(1.0)).abs() < 1e-12);
        assert!((ln_gamma(2.0)).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(11.0) - 3_628_800f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π.
        let want = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - want).abs() < 1e-10);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x Γ(x).
        for &x in &[0.7, 1.3, 2.9, 10.4, 55.0] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    fn ln_factorial_small() {
        assert!((ln_factorial(0)).abs() < 1e-12);
        assert!((ln_factorial(4) - 24f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn binomial_symmetry_and_values() {
        assert!((ln_binomial(10, 3) - 120f64.ln()).abs() < 1e-9);
        assert!((ln_binomial(10, 3) - ln_binomial(10, 7)).abs() < 1e-9);
        assert_eq!(ln_binomial(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn log_sum_exp_stability() {
        // Huge exponents must not overflow.
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!((v - (1000.0 + 2f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        let single = log_sum_exp(&[-3.5]);
        assert!((single + 3.5).abs() < 1e-12);
    }

    #[test]
    fn pow2() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1024), 1024);
        assert_eq!(next_pow2(1025), 2048);
    }
}
