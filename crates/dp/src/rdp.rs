//! Rényi differential privacy (RDP) bounds for the mechanisms Dordis uses.
//!
//! All accounting happens at a fixed grid of Rényi orders and is converted
//! to `(ε, δ)` at the end. Three bounds are provided:
//!
//! - the Gaussian mechanism,
//! - the Poisson-subsampled Gaussian mechanism (Mironov–Talwar–Zhang '19,
//!   integer orders via the binomial expansion),
//! - the symmetric Skellam mechanism (Agarwal–Kairouz–Liu, NeurIPS '21),
//!   whose bound approaches the Gaussian one as the variance grows.

use crate::math::{ln_binomial, log_sum_exp};

/// The default grid of Rényi orders used by the accountant.
///
/// Integer orders (needed by the subsampled-Gaussian expansion) spanning
/// the range useful for ε in roughly [0.1, 20].
pub const DEFAULT_ORDERS: [f64; 20] = [
    2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0, 12.0, 14.0, 16.0, 20.0, 24.0, 28.0, 32.0, 48.0, 64.0,
    96.0, 128.0, 256.0,
];

/// RDP of the Gaussian mechanism with noise multiplier `z = σ/Δ₂` at
/// order `α`: `ε(α) = α / (2 z²)`.
#[must_use]
pub fn gaussian_rdp(alpha: f64, noise_multiplier: f64) -> f64 {
    assert!(noise_multiplier > 0.0);
    alpha / (2.0 * noise_multiplier * noise_multiplier)
}

/// RDP of the Poisson-subsampled Gaussian mechanism at integer order `α`.
///
/// Implements the exact integer-order expansion of Mironov, Talwar and
/// Zhang, "Rényi Differential Privacy of the Sampled Gaussian Mechanism"
/// (2019), Sec. 3.3:
///
/// `ε(α) = (α-1)⁻¹ · ln Σ_{k=0}^{α} C(α,k) (1-q)^{α-k} q^k e^{k(k-1)/(2z²)}`
///
/// where `q` is the per-round sampling probability and `z` the noise
/// multiplier. For `q = 1` this reduces to the plain Gaussian bound (up to
/// the integer-order restriction).
#[must_use]
pub fn subsampled_gaussian_rdp(alpha: u64, q: f64, noise_multiplier: f64) -> f64 {
    assert!(alpha >= 2, "subsampled RDP needs α ≥ 2");
    assert!((0.0..=1.0).contains(&q), "q must be a probability");
    assert!(noise_multiplier > 0.0);
    if q == 0.0 {
        return 0.0;
    }
    if (q - 1.0).abs() < 1e-12 {
        return gaussian_rdp(alpha as f64, noise_multiplier);
    }
    let z2 = noise_multiplier * noise_multiplier;
    let log_q = q.ln();
    let log_1q = (1.0 - q).ln();
    let mut terms = Vec::with_capacity(alpha as usize + 1);
    for k in 0..=alpha {
        let kf = k as f64;
        let t = ln_binomial(alpha, k)
            + (alpha - k) as f64 * log_1q
            + kf * log_q
            + kf * (kf - 1.0) / (2.0 * z2);
        terms.push(t);
    }
    log_sum_exp(&terms) / (alpha as f64 - 1.0)
}

/// RDP of the symmetric Skellam mechanism at order `α`.
///
/// For per-coordinate noise `Skellam(μ, μ)` (variance `2μ`) applied to a
/// query with L2 sensitivity `Δ₂` and L1 sensitivity `Δ₁`, Agarwal,
/// Kairouz and Liu ("The Skellam Mechanism for Differentially Private
/// Federated Learning", NeurIPS 2021) bound
///
/// `ε(α) ≤ α Δ₂² / (4μ) + min( (2α-1) Δ₂² + 6 Δ₁, 3 Δ₁ ) / (4 μ²)`.
///
/// The first term matches the Gaussian mechanism with `σ² = 2μ`; the
/// second is the discreteness penalty, vanishing as `μ → ∞`.
#[must_use]
pub fn skellam_rdp(alpha: f64, delta2: f64, delta1: f64, mu: f64) -> f64 {
    assert!(mu > 0.0 && delta2 > 0.0 && delta1 > 0.0);
    let base = alpha * delta2 * delta2 / (4.0 * mu);
    let c1 = (2.0 * alpha - 1.0) * delta2 * delta2 + 6.0 * delta1;
    let c2 = 3.0 * delta1;
    base + c1.min(c2) / (4.0 * mu * mu)
}

/// Converts an RDP curve to `(ε, δ)` using the improved conversion of
/// Balle, Barthe, Gaboardi, Hsu and Sato (2020):
///
/// `ε(δ) = min_α [ ε_RDP(α) + ln((α-1)/α) - (ln δ + ln α) / (α-1) ]`.
///
/// `curve` supplies `ε_RDP` at each order in `orders`.
#[must_use]
pub fn rdp_to_epsilon(orders: &[f64], curve: &[f64], delta: f64) -> f64 {
    assert_eq!(orders.len(), curve.len());
    assert!(delta > 0.0 && delta < 1.0);
    let mut best = f64::INFINITY;
    for (&alpha, &eps_rdp) in orders.iter().zip(curve.iter()) {
        if alpha <= 1.0 || !eps_rdp.is_finite() {
            continue;
        }
        let eps =
            eps_rdp + ((alpha - 1.0) / alpha).ln() - (delta.ln() + alpha.ln()) / (alpha - 1.0);
        if eps >= 0.0 && eps < best {
            best = eps;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_rdp_scales_linearly_in_alpha() {
        let z = 2.0;
        assert!((gaussian_rdp(4.0, z) - 2.0 * gaussian_rdp(2.0, z)).abs() < 1e-12);
    }

    #[test]
    fn gaussian_rdp_decreases_in_noise() {
        assert!(gaussian_rdp(2.0, 1.0) > gaussian_rdp(2.0, 2.0));
        assert!(gaussian_rdp(2.0, 2.0) > gaussian_rdp(2.0, 8.0));
    }

    #[test]
    fn subsampling_amplifies_privacy() {
        // q < 1 must give strictly better (smaller) RDP than q = 1.
        let full = subsampled_gaussian_rdp(8, 1.0, 1.5);
        let sampled = subsampled_gaussian_rdp(8, 0.1, 1.5);
        assert!(sampled < full, "sampled {sampled} vs full {full}");
        // And roughly quadratic in q for small q.
        let q1 = subsampled_gaussian_rdp(2, 0.01, 2.0);
        let q2 = subsampled_gaussian_rdp(2, 0.02, 2.0);
        let ratio = q2 / q1;
        assert!(
            (3.0..5.0).contains(&ratio),
            "expected ~4x growth, got {ratio}"
        );
    }

    #[test]
    fn subsampled_matches_gaussian_at_q1() {
        let a = subsampled_gaussian_rdp(16, 1.0, 1.2);
        let b = gaussian_rdp(16.0, 1.2);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn subsampled_zero_rate_is_free() {
        assert_eq!(subsampled_gaussian_rdp(4, 0.0, 1.0), 0.0);
    }

    #[test]
    fn skellam_approaches_gaussian_for_large_mu() {
        // With variance 2μ, Gaussian RDP would be α Δ² / (2 · 2μ).
        let (alpha, d2, d1) = (8.0, 1.0, 10.0);
        let mu = 1e8;
        let skellam = skellam_rdp(alpha, d2, d1, mu);
        let gaussian_equiv = alpha * d2 * d2 / (4.0 * mu);
        let rel = (skellam - gaussian_equiv) / gaussian_equiv;
        assert!(rel < 1e-4, "relative excess {rel}");
    }

    #[test]
    fn skellam_penalty_shrinks_with_mu() {
        let a = skellam_rdp(4.0, 1.0, 5.0, 10.0);
        let b = skellam_rdp(4.0, 1.0, 5.0, 100.0);
        assert!(a > b);
    }

    #[test]
    fn conversion_monotone_in_delta() {
        let orders: Vec<f64> = DEFAULT_ORDERS.to_vec();
        let curve: Vec<f64> = orders.iter().map(|&a| gaussian_rdp(a, 1.0)).collect();
        let tight = rdp_to_epsilon(&orders, &curve, 1e-5);
        let loose = rdp_to_epsilon(&orders, &curve, 1e-3);
        assert!(tight > loose);
    }

    #[test]
    fn conversion_sanity_gaussian() {
        // σ = 1, single shot, δ=1e-5: ε should be a few units (classic
        // Gaussian-mechanism ballpark).
        let orders: Vec<f64> = DEFAULT_ORDERS.to_vec();
        let curve: Vec<f64> = orders.iter().map(|&a| gaussian_rdp(a, 1.0)).collect();
        let eps = rdp_to_epsilon(&orders, &curve, 1e-5);
        assert!((2.0..8.0).contains(&eps), "eps = {eps}");
    }

    #[test]
    fn composition_increases_epsilon() {
        let orders: Vec<f64> = DEFAULT_ORDERS.to_vec();
        let one: Vec<f64> = orders
            .iter()
            .map(|&a| subsampled_gaussian_rdp(a as u64, 0.1, 1.0))
            .collect();
        let ten: Vec<f64> = one.iter().map(|e| 10.0 * e).collect();
        let e1 = rdp_to_epsilon(&orders, &one, 1e-5);
        let e10 = rdp_to_epsilon(&orders, &ten, 1e-5);
        assert!(e10 > e1);
        // Sub-linear growth thanks to RDP composition.
        assert!(e10 < 10.0 * e1);
    }
}
