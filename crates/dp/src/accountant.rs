//! RDP composition accountant.
//!
//! Accumulates per-round RDP at a fixed grid of orders and converts to
//! `(ε, δ)` on demand. Supports the two mechanisms Dordis deploys:
//! subsampled Gaussian and subsampled Skellam (DSkellam).

use serde::{Deserialize, Serialize};

use crate::rdp::{self, DEFAULT_ORDERS};

/// Which distributed-DP mechanism is being accounted for.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Mechanism {
    /// Continuous Gaussian noise (used by DDGauss-style deployments).
    Gaussian,
    /// Symmetric Skellam noise on the discretized update (DSkellam).
    ///
    /// `l1_per_l2` bounds Δ₁/Δ₂ for the encoded updates (after Hadamard
    /// flattening, coordinates are balanced so Δ₁ ≈ √d·Δ₂ in the worst
    /// case; the encoder reports the value it guarantees).
    Skellam {
        /// Ratio of L1 to L2 sensitivity of the encoded update.
        l1_per_l2: f64,
    },
}

/// Composes per-round RDP costs across a training run.
///
/// Serializable so a coordinator checkpoint can carry the exact
/// accountant state across a failover: the restored accountant composes
/// bit-identically to the original (the RDP accumulator is a plain
/// `Vec<f64>` and JSON floats round-trip exactly through the shortest
/// round-trip `Display` form).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RdpAccountant {
    orders: Vec<f64>,
    accum: Vec<f64>,
    steps: u32,
}

impl Default for RdpAccountant {
    fn default() -> Self {
        Self::new()
    }
}

impl RdpAccountant {
    /// Creates an accountant over the default order grid.
    #[must_use]
    pub fn new() -> Self {
        Self::with_orders(DEFAULT_ORDERS.to_vec())
    }

    /// Creates an accountant over a custom order grid (all orders > 1).
    #[must_use]
    pub fn with_orders(orders: Vec<f64>) -> Self {
        assert!(orders.iter().all(|&a| a > 1.0));
        let n = orders.len();
        RdpAccountant {
            orders,
            accum: vec![0.0; n],
            steps: 0,
        }
    }

    /// Number of recorded rounds.
    #[must_use]
    pub fn steps(&self) -> u32 {
        self.steps
    }

    /// Records one round of the given mechanism.
    ///
    /// `q` is the client-sampling probability, `noise_multiplier` the
    /// *central* noise multiplier actually achieved this round
    /// (`σ_central / Δ₂`). For Skellam, the discreteness penalty uses the
    /// scaled sensitivities implied by the multiplier.
    pub fn record_round(&mut self, mechanism: Mechanism, q: f64, noise_multiplier: f64) {
        for (i, &alpha) in self.orders.iter().enumerate() {
            let base = rdp::subsampled_gaussian_rdp(alpha.round() as u64, q, noise_multiplier);
            let cost = match mechanism {
                Mechanism::Gaussian => base,
                Mechanism::Skellam { l1_per_l2 } => {
                    // Gaussian part via subsampling; discreteness penalty
                    // (Agarwal et al.) added un-amplified — conservative.
                    // With Δ₂ normalized to 1, μ = z²/2 and Δ₁ = l1_per_l2.
                    let mu = noise_multiplier * noise_multiplier / 2.0;
                    let penalty = if mu > 0.0 {
                        let c1 = (2.0 * alpha - 1.0) + 6.0 * l1_per_l2;
                        let c2 = 3.0 * l1_per_l2;
                        c1.min(c2) / (4.0 * mu * mu)
                    } else {
                        f64::INFINITY
                    };
                    base + penalty
                }
            };
            self.accum[i] += cost;
        }
        self.steps += 1;
    }

    /// Current `(ε, δ)` guarantee for a given `δ`.
    #[must_use]
    pub fn epsilon(&self, delta: f64) -> f64 {
        if self.steps == 0 {
            return 0.0;
        }
        rdp::rdp_to_epsilon(&self.orders, &self.accum, delta)
    }

    /// The hypothetical ε after composing `rounds` identical rounds of the
    /// given mechanism (without mutating the accountant).
    #[must_use]
    pub fn project(
        mechanism: Mechanism,
        q: f64,
        noise_multiplier: f64,
        rounds: u32,
        delta: f64,
    ) -> f64 {
        let mut acct = RdpAccountant::new();
        acct.record_round(mechanism, q, noise_multiplier);
        let curve: Vec<f64> = acct.accum.iter().map(|e| e * rounds as f64).collect();
        rdp::rdp_to_epsilon(&acct.orders, &curve, delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accountant_spends_nothing() {
        let acct = RdpAccountant::new();
        assert_eq!(acct.epsilon(1e-5), 0.0);
    }

    #[test]
    fn epsilon_grows_with_rounds() {
        let mut acct = RdpAccountant::new();
        let mut prev = 0.0;
        for _ in 0..5 {
            acct.record_round(Mechanism::Gaussian, 0.1, 1.0);
            let eps = acct.epsilon(1e-5);
            assert!(eps > prev);
            prev = eps;
        }
    }

    #[test]
    fn project_matches_loop() {
        let mut acct = RdpAccountant::new();
        for _ in 0..20 {
            acct.record_round(Mechanism::Gaussian, 0.16, 0.8);
        }
        let looped = acct.epsilon(1e-2);
        let projected = RdpAccountant::project(Mechanism::Gaussian, 0.16, 0.8, 20, 1e-2);
        assert!((looped - projected).abs() < 1e-9);
    }

    #[test]
    fn lower_noise_costs_more() {
        let hi = RdpAccountant::project(Mechanism::Gaussian, 0.1, 2.0, 100, 1e-5);
        let lo = RdpAccountant::project(Mechanism::Gaussian, 0.1, 1.0, 100, 1e-5);
        assert!(lo > hi);
    }

    #[test]
    fn skellam_costs_at_least_gaussian() {
        let g = RdpAccountant::project(Mechanism::Gaussian, 0.1, 1.0, 50, 1e-5);
        let s = RdpAccountant::project(Mechanism::Skellam { l1_per_l2: 30.0 }, 0.1, 1.0, 50, 1e-5);
        assert!(s >= g);
        // ...but the gap shrinks with larger noise.
        let g_big = RdpAccountant::project(Mechanism::Gaussian, 0.1, 40.0, 50, 1e-5);
        let s_big =
            RdpAccountant::project(Mechanism::Skellam { l1_per_l2: 30.0 }, 0.1, 40.0, 50, 1e-5);
        assert!((s_big - g_big) < (s - g));
    }

    #[test]
    fn steps_counted() {
        let mut acct = RdpAccountant::new();
        acct.record_round(Mechanism::Gaussian, 0.5, 1.0);
        acct.record_round(Mechanism::Gaussian, 0.5, 1.0);
        assert_eq!(acct.steps(), 2);
    }
}
