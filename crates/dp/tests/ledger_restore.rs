//! Checkpoint/restore exactness for the privacy ledger: serializing a
//! ledger mid-run and restoring it must be invisible — the restored
//! ledger composes ε bit-identically to one that never crashed — and
//! the watermark replay guard must reject re-recording any committed
//! round. Both properties are what makes coordinator failover a
//! *privacy-preserving* operation, not just an availability one.

use dordis_dp::accountant::Mechanism;
use dordis_dp::ledger::PrivacyLedger;
use proptest::prelude::*;

fn mechanism(skellam: bool, l1_per_l2: f64) -> Mechanism {
    if skellam {
        Mechanism::Skellam { l1_per_l2 }
    } else {
        Mechanism::Gaussian
    }
}

/// A plausible per-round observation sequence: sampling rate in (0, 1),
/// achieved multiplier spanning under-noised (dropout) to
/// over-provisioned. Derived from one flat vector (the vendored
/// proptest has no tuple strategies).
fn to_rounds(raw: &[f64]) -> Vec<(f64, f64)> {
    raw.chunks_exact(2)
        .map(|pair| (pair[0].max(1e-3), pair[1] * 4.0))
        .collect()
}

fn raw_rounds() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..1.0, 2..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Serialize → restore at an arbitrary cut point, then drive both
    /// the restored ledger and the never-interrupted original through
    /// the identical tail of rounds: every observable — ε, entries,
    /// watermark, and the full serialized state — must match
    /// bit-for-bit.
    #[test]
    fn restore_is_bit_exact_at_any_cut_point(
        raw in raw_rounds(),
        cut_frac in 0.0f64..1.0,
        skellam in any::<bool>(),
        l1_per_l2 in 1.0f64..100.0,
    ) {
        let rounds = to_rounds(&raw);
        let mech = mechanism(skellam, l1_per_l2);
        let mut live = PrivacyLedger::new(mech, 6.0, 1e-2).unwrap();
        let cut = ((rounds.len() as f64) * cut_frac) as usize;
        for &(rate, z) in &rounds[..cut] {
            live.record_round(rate, z);
        }

        let mut restored = PrivacyLedger::from_bytes(&live.to_bytes()).unwrap();
        prop_assert_eq!(restored.watermark(), live.watermark());
        prop_assert_eq!(restored.realized_epsilon().to_bits(),
                        live.realized_epsilon().to_bits());

        for &(rate, z) in &rounds[cut..] {
            live.record_round(rate, z);
            restored.record_round(rate, z);
        }
        prop_assert!(restored.realized_epsilon().to_bits() == live.realized_epsilon().to_bits(),
                     "restored ledger diverged after the cut");
        prop_assert_eq!(restored.rounds(), live.rounds());
        for (a, b) in restored.entries().iter().zip(live.entries().iter()) {
            prop_assert_eq!(a.round, b.round);
            prop_assert_eq!(a.epsilon_after.to_bits(), b.epsilon_after.to_bits());
            prop_assert_eq!(a.achieved_multiplier.to_bits(), b.achieved_multiplier.to_bits());
        }
        prop_assert_eq!(restored.to_bytes(), live.to_bytes());
    }

    /// The watermark replay guard: after restoring, recording any wire
    /// round at or below the committed watermark is rejected — and
    /// rejected *without* touching the accountant, so a foiled replay
    /// leaves ε unchanged.
    #[test]
    fn replaying_a_recorded_round_is_rejected(
        raw in raw_rounds(),
        skellam in any::<bool>(),
        replay_back in 0u64..50,
    ) {
        let rounds = to_rounds(&raw);
        let mech = mechanism(skellam, 10.0);
        let mut ledger = PrivacyLedger::new(mech, 6.0, 1e-2).unwrap();
        for (i, &(rate, z)) in rounds.iter().enumerate() {
            ledger.record_round_at(i as u64 + 1, rate, z).unwrap();
        }
        let mut restored = PrivacyLedger::from_bytes(&ledger.to_bytes()).unwrap();
        let watermark = restored.watermark();
        prop_assert_eq!(watermark, rounds.len() as u64);

        let eps_before = restored.realized_epsilon().to_bits();
        let replay = watermark.saturating_sub(replay_back).max(1);
        prop_assert!(restored.record_round_at(replay, 0.1, 1.0).is_err(),
                     "replay of committed round {} accepted", replay);
        prop_assert!(restored.realized_epsilon().to_bits() == eps_before,
                     "rejected replay still perturbed the accountant");
        prop_assert_eq!(restored.rounds(), ledger.rounds());

        // The next *legitimate* round is still accepted.
        restored.record_round_at(watermark + 1, 0.1, 1.0).unwrap();
        prop_assert_eq!(restored.watermark(), watermark + 1);
    }
}
