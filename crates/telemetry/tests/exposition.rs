//! Property tests for the Prometheus text exposition format: whatever
//! mix of counters, gauges, and histograms a run registers, the
//! rendered page must parse line by line, never repeat a series, and
//! keep every histogram's cumulative buckets monotone with `le`.

use std::collections::BTreeSet;

use dordis_telemetry::Telemetry;
use proptest::collection;
use proptest::prelude::*;

/// Parses a non-comment exposition line into its series id (name +
/// label block), failing on any malformed shape — including a value
/// that does not parse as an integer.
fn parse_line(line: &str) -> Result<&str, String> {
    let (series, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("no value separator in {line:?}"))?;
    value
        .parse::<u64>()
        .map_err(|_| format!("non-numeric value in {line:?}"))?;
    if series.is_empty() || series.starts_with(' ') {
        return Err(format!("empty series id in {line:?}"));
    }
    // A label block, when present, must be balanced and trailing.
    match (series.find('{'), series.ends_with('}')) {
        (Some(_), true) | (None, false) => Ok(series),
        _ => Err(format!("unbalanced label block in {line:?}")),
    }
}

/// Drives a telemetry registry from random words: each word picks an
/// instrument kind, a label variant, and an observed value, so the
/// rendered page mixes families, label sets, and histogram buckets.
fn registry_from(ops: &[u64]) -> Telemetry {
    let t = Telemetry::enabled();
    for op in ops {
        let v = op >> 8;
        let label = if (op >> 2) & 1 == 0 { "a" } else { "b" };
        match op % 3 {
            0 => t.counter("t_requests_total", &[("kind", label)]).add(v),
            1 => t.gauge("t_depth", &[]).set(v),
            _ => t.histogram("t_latency_ns", &[("kind", label)]).observe(v),
        }
    }
    t
}

proptest! {
    #[test]
    fn every_line_parses_and_no_series_repeats(
        ops in collection::vec(any::<u64>(), 1..64),
    ) {
        let t = registry_from(&ops);
        let page = t.render_prometheus();
        let mut seen: BTreeSet<String> = BTreeSet::new();
        for line in page.lines() {
            if line.starts_with('#') {
                prop_assert!(
                    line.starts_with("# TYPE "),
                    "unknown comment shape: {line:?}"
                );
                continue;
            }
            let series = match parse_line(line) {
                Ok(s) => s,
                Err(why) => return Err(TestCaseError::fail(why)),
            };
            prop_assert!(
                seen.insert(series.to_string()),
                "duplicate series {:?}",
                series
            );
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_monotone(
        ops in collection::vec(any::<u64>(), 1..64),
    ) {
        let t = registry_from(&ops);
        let page = t.render_prometheus();
        // Collect each histogram's bucket ladder, keyed by its series
        // id minus the `le` label (the renderer always appends `le`
        // last). Ladders come out in ascending-`le` page order ending
        // at `+Inf`, so the counts must be nondecreasing and the last
        // one must equal the histogram's `_count` series.
        let mut samples: Vec<(String, u64)> = Vec::new();
        let mut ladders: Vec<(String, Vec<u64>)> = Vec::new();
        for line in page.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            let value: u64 = value.parse().expect("numeric value");
            samples.push((series.to_string(), value));
            let Some(bucket_at) = series.find("_bucket{") else {
                continue;
            };
            let family = &series[..bucket_at];
            let labels = &series[bucket_at + "_bucket".len()..];
            let without_le = match labels.find(",le=") {
                Some(i) => format!("{}}}", &labels[..i]),
                None => String::new(), // `le` was the only label
            };
            let key = format!("{family}{without_le}");
            match ladders.last_mut() {
                Some((k, counts)) if *k == key => counts.push(value),
                _ => ladders.push((key, vec![value])),
            }
        }
        for (key, counts) in &ladders {
            prop_assert!(
                counts.windows(2).all(|w| w[0] <= w[1]),
                "bucket counts regressed for {key:?}: {counts:?}"
            );
            let count_series = match key.find('{') {
                Some(i) => format!("{}_count{}", &key[..i], &key[i..]),
                None => format!("{key}_count"),
            };
            let total = samples
                .iter()
                .find(|(s, _)| *s == count_series)
                .map(|(_, v)| *v)
                .expect("histogram _count series");
            // `+Inf` (the ladder's last entry) must agree with `_count`.
            prop_assert_eq!(*counts.last().expect("nonempty ladder"), total);
        }
    }

    #[test]
    fn snapshot_deltas_match_interleaved_increments(
        before in collection::vec(1u64..1_000, 1..16),
        after in collection::vec(1u64..1_000, 1..16),
    ) {
        let t = Telemetry::enabled();
        let c = t.counter("t_delta_total", &[]);
        for v in &before {
            c.add(*v);
        }
        let base = t.snapshot().expect("enabled");
        for v in &after {
            c.add(*v);
        }
        let delta = t.snapshot().expect("enabled").delta(&base);
        prop_assert_eq!(delta.get("t_delta_total"), after.iter().sum::<u64>());
    }
}
