//! The span timeline: fixed-capacity ring of closed spans, per-thread
//! track ids, and the Chrome-tracing JSON exporter.
//!
//! Recording a span is one short mutex hold over a pre-allocated ring —
//! the coordinator closes at most a few spans per (round, stage, chunk)
//! boundary, and compute workers one per job, so contention is nil and
//! nothing allocates on the hot path (track names are interned once per
//! thread). When the ring fills, the oldest spans are overwritten: the
//! exported timeline always shows the most recent window.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

/// Default ring capacity (spans retained for export).
pub(crate) const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// Process-wide track-id allocator: each OS thread that records a span
/// gets a stable small integer used as the Chrome-tracing `tid`.
static NEXT_TRACK: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static TRACK_ID: Cell<u32> = const { Cell::new(u32::MAX) };
}

/// One closed span.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Category (`"stage"`, `"chunk"`, `"compute"`, `"session"`).
    pub cat: &'static str,
    /// Event name (stage name, `"unmask_job"`, `"join"` ...).
    pub name: &'static str,
    /// Session round the span belongs to.
    pub round: u64,
    /// Chunk id, when the span is chunk-scoped.
    pub chunk: Option<u16>,
    /// Start offset from the telemetry epoch, nanoseconds.
    pub start_ns: u64,
    /// End offset from the telemetry epoch, nanoseconds.
    pub end_ns: u64,
    /// Track (thread) id the span was recorded on.
    pub track: u32,
    /// Chrome-tracing process id: 1 for the session itself, one per
    /// aggregation shard (via `Telemetry::shard_scope`) so a round's
    /// critical path stays visible across shards.
    pub pid: u32,
}

#[derive(Debug, Default)]
struct Ring {
    /// Overwrite-oldest storage: `slots[next % capacity]`.
    slots: Vec<SpanRecord>,
    next: usize,
    /// Track id → (pid, thread name), captured at first span per
    /// thread. A track belongs to the process that first recorded on
    /// it — shard worker threads are born inside their shard scope, so
    /// first-pid-wins groups them correctly.
    tracks: BTreeMap<u32, (u32, String)>,
    /// Pid → process name, for `ph:M` `process_name` metadata.
    processes: BTreeMap<u32, String>,
}

/// Where closed spans land. Shared by every instrumented layer through
/// the enabled `Telemetry` handle.
#[derive(Debug)]
pub(crate) struct SpanSink {
    capacity: usize,
    ring: Mutex<Ring>,
}

impl SpanSink {
    pub(crate) fn new(capacity: usize) -> Self {
        SpanSink {
            capacity,
            ring: Mutex::new(Ring::default()),
        }
    }

    /// Stable per-thread track id, allocating (and naming the track)
    /// on this thread's first span.
    fn track_id(&self, ring: &mut Ring, pid: u32) -> u32 {
        TRACK_ID.with(|slot| {
            let mut id = slot.get();
            if id == u32::MAX {
                id = NEXT_TRACK.fetch_add(1, Ordering::Relaxed);
                slot.set(id);
            }
            ring.tracks.entry(id).or_insert_with(|| {
                (
                    pid,
                    std::thread::current()
                        .name()
                        .unwrap_or("unnamed")
                        .to_string(),
                )
            });
            id
        })
    }

    /// Names a Chrome-tracing process (shard scopes call this once so
    /// the exported timeline labels each shard's track group).
    pub(crate) fn set_process_name(&self, pid: u32, name: &str) {
        let mut ring = self.ring.lock().expect("span ring poisoned");
        ring.processes
            .entry(pid)
            .or_insert_with(|| name.to_string());
    }

    // A span is genuinely seven-dimensional (cat/name/round/chunk ×
    // the time pair × the trace process); a builder here would only
    // add allocation to the hot path.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record(
        &self,
        cat: &'static str,
        name: &'static str,
        round: u64,
        chunk: Option<u16>,
        start_ns: u64,
        end_ns: u64,
        pid: u32,
    ) {
        let mut ring = self.ring.lock().expect("span ring poisoned");
        let track = self.track_id(&mut ring, pid);
        let rec = SpanRecord {
            cat,
            name,
            round,
            chunk,
            start_ns,
            end_ns,
            track,
            pid,
        };
        if ring.slots.len() < self.capacity {
            ring.slots.push(rec);
        } else {
            let idx = ring.next % self.capacity;
            ring.slots[idx] = rec;
        }
        ring.next += 1;
    }

    /// Number of spans recorded so far (including overwritten ones).
    pub(crate) fn recorded(&self) -> usize {
        self.ring.lock().expect("span ring poisoned").next
    }

    /// Spans currently retained, oldest first.
    pub(crate) fn collect(&self) -> Vec<SpanRecord> {
        let ring = self.ring.lock().expect("span ring poisoned");
        if ring.slots.len() < self.capacity {
            ring.slots.clone()
        } else {
            let split = ring.next % self.capacity;
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&ring.slots[split..]);
            out.extend_from_slice(&ring.slots[..split]);
            out
        }
    }

    /// Chrome-tracing ("trace event format") JSON of the retained
    /// spans — load in Perfetto or `chrome://tracing`. Complete `ph:X`
    /// events on per-thread tracks, with `ph:M` metadata naming them.
    pub(crate) fn export_chrome_trace(&self) -> String {
        let ring = self.ring.lock().expect("span ring poisoned");
        let spans: Vec<&SpanRecord> = if ring.slots.len() < self.capacity {
            ring.slots.iter().collect()
        } else {
            let split = ring.next % self.capacity;
            ring.slots[split..]
                .iter()
                .chain(&ring.slots[..split])
                .collect()
        };
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for (pid, name) in &ring.processes {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape_json(name)
            ));
        }
        for (tid, (pid, name)) in &ring.tracks {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape_json(name)
            ));
        }
        for s in spans {
            if !first {
                out.push(',');
            }
            first = false;
            let ts_us = s.start_ns / 1_000;
            let dur_us = (s.end_ns.saturating_sub(s.start_ns)).max(1_000) / 1_000;
            out.push_str(&format!(
                "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"cat\":\"{}\",\"name\":\"{}\",\
                 \"ts\":{ts_us},\"dur\":{dur_us},\"args\":{{\"round\":{}",
                s.pid,
                s.track,
                escape_json(s.cat),
                escape_json(s.name),
                s.round
            ));
            if let Some(c) = s.chunk {
                out.push_str(&format!(",\"chunk\":{c}"));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest() {
        let sink = SpanSink::new(4);
        for i in 0..6u64 {
            sink.record("t", "s", i, None, i * 10, i * 10 + 5, 1);
        }
        let spans = sink.collect();
        assert_eq!(spans.len(), 4);
        // Oldest two (rounds 0, 1) were overwritten.
        assert_eq!(spans[0].round, 2);
        assert_eq!(spans[3].round, 5);
        assert_eq!(sink.recorded(), 6);
    }

    #[test]
    fn chrome_trace_shape() {
        let sink = SpanSink::new(16);
        sink.record("stage", "Setup", 3, None, 1_000_000, 2_000_000, 1);
        sink.record("chunk", "chunk", 3, Some(2), 2_000_000, 3_500_000, 1);
        let json = sink.export_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.ends_with("]}"), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ph\":\"M\""), "{json}");
        assert!(json.contains("\"name\":\"Setup\""), "{json}");
        assert!(json.contains("\"chunk\":2"), "{json}");
        assert!(json.contains("\"ts\":1000"), "{json}");
    }

    #[test]
    fn sub_microsecond_spans_get_min_duration() {
        let sink = SpanSink::new(4);
        sink.record("t", "tiny", 0, None, 100, 200, 1);
        let json = sink.export_chrome_trace();
        // 100ns would floor to dur 0 and vanish in Perfetto; clamp up.
        assert!(json.contains("\"dur\":1,"), "{json}");
    }

    #[test]
    fn spans_carry_their_process_id() {
        let sink = SpanSink::new(8);
        sink.set_process_name(2, "shard-0");
        sink.record("stage", "Setup", 1, None, 1_000_000, 2_000_000, 2);
        let json = sink.export_chrome_trace();
        assert!(
            json.contains("\"name\":\"process_name\""),
            "process metadata missing: {json}"
        );
        assert!(json.contains("\"name\":\"shard-0\""), "{json}");
        assert!(json.contains("\"ph\":\"X\",\"pid\":2,"), "{json}");
    }
}
