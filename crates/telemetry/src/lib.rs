//! Hand-rolled observability for the Dordis reproduction (no crates.io,
//! matching the workspace's vendored-shim constraint).
//!
//! Two instruments behind one handle:
//!
//! - a **span timeline**: monotonic-clock spans opened/closed at every
//!   (round, stage, chunk) boundary, around each compute-plane unmask
//!   job, and around session join/seating/park phases, kept in a
//!   fixed-capacity overwrite-oldest ring and exportable as
//!   Chrome-tracing JSON ([`Telemetry::export_chrome_trace`]) for
//!   Perfetto / `chrome://tracing`;
//! - a **metrics registry**: typed counters / gauges / log2-bucketed
//!   histograms (fixed allocation), rendered in Prometheus text
//!   exposition format ([`Telemetry::render_prometheus`]) and
//!   snapshottable for per-round deltas ([`Telemetry::snapshot`]).
//!
//! The whole layer is zero-cost when disabled: [`Telemetry::disabled`]
//! hands out handles whose operations are a branch on `None` — no
//! clock reads, no atomics, no locks. Instrumented code never checks a
//! flag; it just increments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod spans;

pub use metrics::{Counter, Gauge, Histogram, MetricsSnapshot, LOG_BUCKETS};
pub use spans::SpanRecord;

use std::sync::Arc;
use std::time::Instant;

use metrics::Registry;
use spans::SpanSink;

#[derive(Debug)]
struct Inner {
    /// All span/snapshot timestamps are offsets from this epoch, so
    /// exported traces start near t=0 and u64 nanoseconds never
    /// overflow in a process lifetime.
    epoch: Instant,
    registry: Registry,
    spans: SpanSink,
}

/// The telemetry handle threaded through reactor, coordinator, session,
/// compute plane, and transports. Cloning is cheap (one `Arc` bump or a
/// `None` copy); every clone shares the same registry and span ring.
///
/// A handle may be *scoped* ([`Telemetry::shard_scope`]): scoped clones
/// share the same registry and span ring but stamp every metric series
/// with extra labels and every span with a distinct Chrome-tracing pid,
/// so per-shard instrumentation federates through one scrape endpoint
/// and one exported timeline without any instrument-site changes.
#[derive(Clone, Debug)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
    /// Labels merged into every series this handle registers.
    scope_labels: Vec<(String, String)>,
    /// Chrome-tracing process id spans recorded through this handle
    /// carry (1 = the unscoped session process).
    pid: u32,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::disabled()
    }
}

impl Telemetry {
    /// A disabled handle: every operation is a no-op, every query
    /// returns empty. This is the default everywhere.
    #[must_use]
    pub fn disabled() -> Telemetry {
        Telemetry {
            inner: None,
            scope_labels: Vec::new(),
            pid: 1,
        }
    }

    /// An enabled handle with the default span-ring capacity.
    #[must_use]
    pub fn enabled() -> Telemetry {
        Telemetry::with_span_capacity(spans::DEFAULT_SPAN_CAPACITY)
    }

    /// An enabled handle retaining at most `capacity` spans (oldest
    /// overwritten first).
    #[must_use]
    pub fn with_span_capacity(capacity: usize) -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                registry: Registry::default(),
                spans: SpanSink::new(capacity.max(1)),
            })),
            scope_labels: Vec::new(),
            pid: 1,
        }
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A shard-scoped view of this handle: same registry and span ring,
    /// but every series gains a `shard` label and every span the
    /// shard's own Chrome-tracing pid (named `shard-{s}` in the
    /// export). Disabled handles stay disabled.
    #[must_use]
    pub fn shard_scope(&self, shard: u16) -> Telemetry {
        let pid = u32::from(shard) + 2; // pid 1 is the session process
        if let Some(inner) = &self.inner {
            inner.spans.set_process_name(pid, &format!("shard-{shard}"));
        }
        let mut scope_labels = self.scope_labels.clone();
        scope_labels.push(("shard".to_string(), shard.to_string()));
        Telemetry {
            inner: self.inner.clone(),
            scope_labels,
            pid,
        }
    }

    /// The given labels merged with this handle's scope labels.
    fn merged<'a>(&'a self, labels: &[(&'a str, &'a str)]) -> Vec<(&'a str, &'a str)> {
        let mut out: Vec<(&str, &str)> = Vec::with_capacity(labels.len() + self.scope_labels.len());
        out.extend_from_slice(labels);
        out.extend(
            self.scope_labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str())),
        );
        out
    }

    /// Registers (or re-resolves) a counter series. Call once and keep
    /// the handle; the handle's `inc`/`add` are the hot path.
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match &self.inner {
            Some(inner) if self.scope_labels.is_empty() => inner.registry.counter(name, labels),
            Some(inner) => inner.registry.counter(name, &self.merged(labels)),
            None => Counter::default(),
        }
    }

    /// Registers (or re-resolves) a gauge series.
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match &self.inner {
            Some(inner) if self.scope_labels.is_empty() => inner.registry.gauge(name, labels),
            Some(inner) => inner.registry.gauge(name, &self.merged(labels)),
            None => Gauge::default(),
        }
    }

    /// Registers (or re-resolves) a histogram series.
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match &self.inner {
            Some(inner) if self.scope_labels.is_empty() => inner.registry.histogram(name, labels),
            Some(inner) => inner.registry.histogram(name, &self.merged(labels)),
            None => Histogram::default(),
        }
    }

    /// Nanoseconds since this handle's epoch (0 when disabled — only
    /// meaningful paired with [`Telemetry::record_span`]).
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(inner) => u64::try_from(inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX),
            None => 0,
        }
    }

    /// Opens a span closed (and recorded) when the returned guard
    /// drops. Disabled handles return an inert guard without reading
    /// the clock.
    #[must_use]
    pub fn span(
        &self,
        cat: &'static str,
        name: &'static str,
        round: u64,
        chunk: Option<u16>,
    ) -> SpanGuard {
        match &self.inner {
            Some(inner) => SpanGuard {
                inner: Some(Arc::clone(inner)),
                cat,
                name,
                round,
                chunk,
                start_ns: u64::try_from(inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX),
                pid: self.pid,
            },
            None => SpanGuard {
                inner: None,
                cat,
                name,
                round,
                chunk,
                start_ns: 0,
                pid: self.pid,
            },
        }
    }

    /// Records an already-timed span (for phases whose start predates
    /// the scope that ends them, e.g. a peer parked across rounds).
    /// Timestamps are [`Telemetry::now_ns`] values.
    pub fn record_span(
        &self,
        cat: &'static str,
        name: &'static str,
        round: u64,
        chunk: Option<u16>,
        start_ns: u64,
        end_ns: u64,
    ) {
        if let Some(inner) = &self.inner {
            inner
                .spans
                .record(cat, name, round, chunk, start_ns, end_ns, self.pid);
        }
    }

    /// Total spans recorded so far, including overwritten ones (0 when
    /// disabled).
    #[must_use]
    pub fn spans_recorded(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.spans.recorded())
    }

    /// The retained spans, oldest first (empty when disabled).
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.spans.collect())
    }

    /// The registry as a Prometheus text-format page. Disabled handles
    /// render an explanatory comment so a scrape never looks broken.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        match &self.inner {
            Some(inner) => inner.registry.render(),
            None => "# telemetry disabled\n".to_string(),
        }
    }

    /// Point-in-time numeric snapshot of every series, or `None` when
    /// disabled. Subtract two with [`MetricsSnapshot::delta`] for
    /// per-round views.
    #[must_use]
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.inner.as_ref().map(|i| i.registry.snapshot())
    }

    /// The retained span timeline as Chrome-tracing JSON (empty but
    /// well-formed when disabled).
    #[must_use]
    pub fn export_chrome_trace(&self) -> String {
        match &self.inner {
            Some(inner) => inner.spans.export_chrome_trace(),
            None => "{\"traceEvents\":[]}".to_string(),
        }
    }
}

/// Closes its span on drop. Hold it for the duration of the phase:
///
/// ```
/// # let telemetry = dordis_telemetry::Telemetry::enabled();
/// {
///     let _span = telemetry.span("stage", "Setup", 0, None);
///     // ... run the stage ...
/// } // recorded here
/// assert_eq!(telemetry.spans_recorded(), 1);
/// ```
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<Arc<Inner>>,
    cat: &'static str,
    name: &'static str,
    round: u64,
    chunk: Option<u16>,
    start_ns: u64,
    pid: u32,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = &self.inner {
            let end_ns = u64::try_from(inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
            inner.spans.record(
                self.cat,
                self.name,
                self.round,
                self.chunk,
                self.start_ns,
                end_ns,
                self.pid,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.counter("c_total", &[]).inc();
        t.gauge("g", &[]).set(5);
        t.histogram("h", &[]).observe(9);
        {
            let _s = t.span("cat", "name", 0, None);
        }
        assert_eq!(t.spans_recorded(), 0);
        assert_eq!(t.now_ns(), 0);
        assert!(t.snapshot().is_none());
        assert_eq!(t.render_prometheus(), "# telemetry disabled\n");
        assert_eq!(t.export_chrome_trace(), "{\"traceEvents\":[]}");
    }

    #[test]
    fn enabled_records_spans_and_metrics() {
        let t = Telemetry::enabled();
        assert!(t.is_enabled());
        let c = t.counter("polls_total", &[]);
        c.add(4);
        {
            let _s = t.span("stage", "Setup", 7, None);
        }
        {
            let _s = t.span("chunk", "chunk", 7, Some(1));
        }
        assert_eq!(t.spans_recorded(), 2);
        let page = t.render_prometheus();
        assert!(page.contains("polls_total 4\n"), "{page}");
        let snap = t.snapshot().expect("enabled");
        assert_eq!(snap.get("polls_total"), 4);
        let json = t.export_chrome_trace();
        assert!(json.contains("\"name\":\"Setup\""), "{json}");
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::enabled();
        let t2 = t.clone();
        t.counter("shared_total", &[]).inc();
        assert_eq!(t2.snapshot().expect("enabled").get("shared_total"), 1);
    }

    #[test]
    fn shard_scope_labels_series_and_stamps_pids() {
        let t = Telemetry::enabled();
        let s0 = t.shard_scope(0);
        let s1 = t.shard_scope(1);
        t.counter("frames_total", &[("dir", "in")]).inc();
        s0.counter("frames_total", &[("dir", "in")]).add(2);
        s1.counter("frames_total", &[("dir", "in")]).add(3);
        let page = t.render_prometheus();
        assert!(page.contains("frames_total{dir=\"in\"} 1"), "{page}");
        assert!(
            page.contains("frames_total{dir=\"in\",shard=\"0\"} 2"),
            "{page}"
        );
        assert!(
            page.contains("frames_total{dir=\"in\",shard=\"1\"} 3"),
            "{page}"
        );
        {
            let _a = t.span("stage", "Setup", 1, None);
        }
        {
            let _b = s1.span("stage", "Setup", 1, None);
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().any(|s| s.pid == 1));
        assert!(spans.iter().any(|s| s.pid == 3), "shard 1 → pid 3");
        let trace = t.export_chrome_trace();
        assert!(trace.contains("\"name\":\"shard-1\""), "{trace}");
    }

    #[test]
    fn record_span_is_manual_entry() {
        let t = Telemetry::enabled();
        let start = t.now_ns();
        let end = t.now_ns().max(start + 1);
        t.record_span("session", "park", 2, None, start, end);
        assert_eq!(t.spans_recorded(), 1);
    }
}
