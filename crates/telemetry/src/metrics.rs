//! Typed metrics: counters, gauges, log-bucketed histograms, and the
//! registry that renders them in Prometheus text exposition format.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap clonable
//! wrappers over `Arc`'d atomics, pre-resolved once at registration so
//! the hot path is a single relaxed atomic op — or, when telemetry is
//! disabled, a branch on `None` that the optimizer removes.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log2 histogram buckets before the implicit `+Inf` bucket.
/// Upper bounds are `2^0, 2^1, ..., 2^(LOG_BUCKETS-1)`.
pub const LOG_BUCKETS: usize = 32;

/// A monotonically increasing counter. Cloning shares the cell;
/// a default-constructed (or disabled-registry) counter is a no-op.
#[derive(Clone, Debug, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// Increments by 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge: a value that can be set to arbitrary levels.
#[derive(Clone, Debug, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Fixed-allocation storage behind a [`Histogram`] handle: one atomic
/// per log2 bucket plus running sum and count. Cumulative bucket counts
/// are computed only at render time, which makes the exposed
/// `_bucket{le=...}` series monotone by construction.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    /// `buckets[i]` counts observations with `value <= 2^i` that did
    /// not fit a smaller bucket (non-cumulative).
    buckets: [AtomicU64; LOG_BUCKETS],
    /// Observations above the largest finite bound (`+Inf` bucket).
    overflow: AtomicU64,
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: u64) {
        // Bucket i has upper bound 2^i; find the smallest bound >= v.
        // v = 0 and v = 1 both land in bucket 0 (le = 1).
        let idx = if v <= 1 {
            0
        } else {
            64 - usize::try_from((v - 1).leading_zeros()).unwrap_or(64)
        };
        if idx < LOG_BUCKETS {
            self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        } else {
            self.overflow.fetch_add(1, Ordering::Relaxed);
        }
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// (per-bucket counts, overflow, sum, count) snapshot.
    fn load(&self) -> ([u64; LOG_BUCKETS], u64, u64, u64) {
        let buckets = std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        (
            buckets,
            self.overflow.load(Ordering::Relaxed),
            self.sum.load(Ordering::Relaxed),
            self.count.load(Ordering::Relaxed),
        )
    }
}

/// A log2-bucketed histogram handle. Observation is two relaxed atomic
/// adds plus a leading-zeros bucket pick; no allocation ever.
#[derive(Clone, Debug, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(core) = &self.0 {
            core.observe(v);
        }
    }

    /// Total observation count (0 when disabled).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }
}

/// What kind of cell a registered series holds.
#[derive(Debug)]
enum Cell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

#[derive(Debug)]
struct Series {
    /// Family name (`dordis_reactor_polls_total`).
    name: String,
    /// Rendered label block (`{stage="Setup"}`), or empty.
    labels: String,
    cell: Cell,
}

/// The series registry. Registration takes a lock and allocates;
/// the returned handles do not — register once, increment forever.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    /// Keyed by the canonical series id `name{labels}` so the same
    /// (name, labels) always resolves to the same cell.
    series: Mutex<BTreeMap<String, Series>>,
}

fn canonical_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<&(&str, &str)> = labels.iter().collect();
    sorted.sort_by_key(|(k, _)| *k);
    let mut out = String::from("{");
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for ch in v.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

impl Registry {
    pub(crate) fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let labels = canonical_labels(labels);
        let key = format!("{name}{labels}");
        let mut map = self.series.lock().expect("registry poisoned");
        if let Some(existing) = map.get(&key) {
            if let Cell::Counter(cell) = &existing.cell {
                return Counter(Some(Arc::clone(cell)));
            }
            // Kind mismatch: hand back a detached cell rather than
            // panicking in instrumentation code or corrupting the page.
            return Counter(Some(Arc::new(AtomicU64::new(0))));
        }
        let cell = Arc::new(AtomicU64::new(0));
        map.insert(
            key,
            Series {
                name: name.to_string(),
                labels,
                cell: Cell::Counter(Arc::clone(&cell)),
            },
        );
        Counter(Some(cell))
    }

    pub(crate) fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let labels = canonical_labels(labels);
        let key = format!("{name}{labels}");
        let mut map = self.series.lock().expect("registry poisoned");
        if let Some(existing) = map.get(&key) {
            if let Cell::Gauge(cell) = &existing.cell {
                return Gauge(Some(Arc::clone(cell)));
            }
            return Gauge(Some(Arc::new(AtomicU64::new(0))));
        }
        let cell = Arc::new(AtomicU64::new(0));
        map.insert(
            key,
            Series {
                name: name.to_string(),
                labels,
                cell: Cell::Gauge(Arc::clone(&cell)),
            },
        );
        Gauge(Some(cell))
    }

    pub(crate) fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let labels = canonical_labels(labels);
        let key = format!("{name}{labels}");
        let mut map = self.series.lock().expect("registry poisoned");
        if let Some(existing) = map.get(&key) {
            if let Cell::Histogram(core) = &existing.cell {
                return Histogram(Some(Arc::clone(core)));
            }
            return Histogram(Some(Arc::new(HistogramCore::new())));
        }
        let core = Arc::new(HistogramCore::new());
        map.insert(
            key,
            Series {
                name: name.to_string(),
                labels,
                cell: Cell::Histogram(Arc::clone(&core)),
            },
        );
        Histogram(Some(core))
    }

    /// Renders the whole registry as a Prometheus text-format page.
    pub(crate) fn render(&self) -> String {
        let map = self.series.lock().expect("registry poisoned");
        let mut out = String::new();
        let mut last_family = "";
        // BTreeMap order groups a family's label variants together, so
        // one `# TYPE` line per family is emitted at first sight.
        for series in map.values() {
            if series.name != last_family {
                let kind = match &series.cell {
                    Cell::Counter(_) => "counter",
                    Cell::Gauge(_) => "gauge",
                    Cell::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# TYPE {} {kind}\n", series.name));
            }
            match &series.cell {
                Cell::Counter(c) | Cell::Gauge(c) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        series.name,
                        series.labels,
                        c.load(Ordering::Relaxed)
                    ));
                }
                Cell::Histogram(h) => {
                    let (buckets, overflow, sum, count) = h.load();
                    let mut cumulative = 0u64;
                    for (i, b) in buckets.iter().enumerate() {
                        cumulative += b;
                        let le = 1u64 << i;
                        out.push_str(&format!(
                            "{}_bucket{} {cumulative}\n",
                            series.name,
                            merge_label(&series.labels, &format!("le=\"{le}\"")),
                        ));
                    }
                    cumulative += overflow;
                    out.push_str(&format!(
                        "{}_bucket{} {cumulative}\n",
                        series.name,
                        merge_label(&series.labels, "le=\"+Inf\""),
                    ));
                    out.push_str(&format!("{}_sum{} {sum}\n", series.name, series.labels));
                    out.push_str(&format!("{}_count{} {count}\n", series.name, series.labels));
                }
            }
            last_family = &series.name;
        }
        out
    }

    /// Flat numeric snapshot of every series, for per-round deltas.
    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        let map = self.series.lock().expect("registry poisoned");
        let mut series = BTreeMap::new();
        for (key, s) in map.iter() {
            match &s.cell {
                Cell::Counter(c) | Cell::Gauge(c) => {
                    series.insert(key.clone(), c.load(Ordering::Relaxed));
                }
                Cell::Histogram(h) => {
                    let (_, _, sum, count) = h.load();
                    series.insert(format!("{key}::count"), count);
                    series.insert(format!("{key}::sum"), sum);
                }
            }
        }
        MetricsSnapshot { series }
    }
}

/// Inserts an extra label into an already-rendered label block.
fn merge_label(labels: &str, extra: &str) -> String {
    if labels.is_empty() {
        format!("{{{extra}}}")
    } else {
        // `{a="b"}` -> `{a="b",extra}`
        format!("{},{}}}", &labels[..labels.len() - 1], extra)
    }
}

/// A point-in-time numeric view of every registered series, keyed by
/// canonical series id. Histograms contribute `...::count` and
/// `...::sum` entries. Supports saturating subtraction for per-round
/// deltas.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Canonical series id → value.
    pub series: BTreeMap<String, u64>,
}

impl MetricsSnapshot {
    /// Value for a series id (0 if absent).
    #[must_use]
    pub fn get(&self, key: &str) -> u64 {
        self.series.get(key).copied().unwrap_or(0)
    }

    /// Per-key saturating difference `self - base`. Keys absent from
    /// `base` (registered mid-interval) pass through unchanged.
    #[must_use]
    pub fn delta(&self, base: &MetricsSnapshot) -> MetricsSnapshot {
        let series = self
            .series
            .iter()
            .map(|(k, v)| (k.clone(), v.saturating_sub(base.get(k))))
            .collect();
        MetricsSnapshot { series }
    }

    /// True when no series are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_noops() {
        let c = Counter::default();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        let g = Gauge::default();
        g.set(7);
        assert_eq!(g.get(), 0);
        let h = Histogram::default();
        h.observe(123);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn same_series_shares_cell() {
        let r = Registry::default();
        let a = r.counter("x_total", &[("k", "v")]);
        let b = r.counter("x_total", &[("k", "v")]);
        a.add(3);
        assert_eq!(b.get(), 3);
        // Label order does not matter for identity.
        let c = r.counter("y_total", &[("a", "1"), ("b", "2")]);
        let d = r.counter("y_total", &[("b", "2"), ("a", "1")]);
        c.inc();
        assert_eq!(d.get(), 1);
    }

    #[test]
    fn kind_mismatch_detaches() {
        let r = Registry::default();
        let c = r.counter("clash", &[]);
        let g = r.gauge("clash", &[]);
        c.add(5);
        g.set(9);
        // The page still renders the original counter only.
        let page = r.render();
        assert!(page.contains("clash 5\n"), "page:\n{page}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_monotone() {
        let r = Registry::default();
        let h = r.histogram("lat_ns", &[]);
        for v in [0u64, 1, 2, 3, 1000, u64::MAX] {
            h.observe(v);
        }
        let page = r.render();
        let mut prev = 0u64;
        let mut inf = None;
        for line in page.lines() {
            if let Some(rest) = line.strip_prefix("lat_ns_bucket{le=") {
                let val: u64 = rest.split(' ').nth(1).expect("value").parse().expect("u64");
                assert!(val >= prev, "non-monotone bucket in:\n{page}");
                prev = val;
                if rest.starts_with("\"+Inf\"") {
                    inf = Some(val);
                }
            }
        }
        assert_eq!(inf, Some(6), "+Inf bucket must equal count");
        assert!(page.contains("lat_ns_count 6\n"));
    }

    #[test]
    fn snapshot_delta_saturates() {
        let r = Registry::default();
        let c = r.counter("n_total", &[]);
        c.add(5);
        let base = r.snapshot();
        c.add(2);
        let now = r.snapshot();
        assert_eq!(now.delta(&base).get("n_total"), 2);
        // A snapshot from "the future" saturates to zero.
        assert_eq!(base.delta(&now).get("n_total"), 0);
    }
}
