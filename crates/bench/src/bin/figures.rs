//! Regenerates every table and figure of the Dordis paper's evaluation.
//!
//! ```sh
//! cargo run -p dordis-bench --bin figures --release -- all --quick
//! cargo run -p dordis-bench --bin figures --release -- fig8
//! ```
//!
//! Subcommands: `fig1a fig1bc fig1d fig2 fig8 fig9 table2 table3 fig10
//! chunks collusion all`. Absolute numbers come from the simulated
//! testbed (see DESIGN.md for the substitution table); the shapes are the
//! reproduction targets, and EXPERIMENTS.md records both.

use dordis_bench::{eval_tasks, fig10_scenarios, fig2_scenarios, with_variant, Scale, Table};
use dordis_core::config::{TaskSpec, Variant};
use dordis_core::timing::estimate;
use dordis_core::trainer::train;
use dordis_dp::accountant::Mechanism;
use dordis_dp::ledger::PrivacyLedger;
use dordis_dp::planner::{plan, PlannerConfig};
use dordis_pipeline::planner::plan_from_cost_model;
use dordis_sim::cost::{CostModel, UnitCosts};
use dordis_sim::dropout::{DropoutModel, Trace, TraceConfig};
use dordis_xnoise::decomposition::XNoisePlan;
use dordis_xnoise::footprint::{default_tolerance, table3_row, FootprintScenario, WireSizes};

const XNOISE: Variant = Variant::XNoise {
    tolerance_frac: 0.5,
    collusion_frac: 0.0,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    let run = |name: &str| which == name || which == "all";
    if run("fig1a") {
        fig1a();
    }
    if run("fig1bc") {
        fig1bc(scale);
    }
    if run("fig1d") {
        fig1d();
    }
    if run("fig2") {
        fig2();
    }
    if run("fig8") {
        fig8();
    }
    if run("fig9") {
        fig9(scale);
    }
    if run("table2") {
        table2(scale);
    }
    if run("table3") {
        table3();
    }
    if run("fig10") {
        fig10();
    }
    if run("chunks") {
        chunks();
    }
    if run("collusion") {
        collusion();
    }
}

fn banner(title: &str) {
    println!("\n==== {title} ====");
}

/// Figure 1a: distribution of per-round dropout rates from the
/// (synthetic) user-behaviour trace.
fn fig1a() {
    banner("Figure 1a: client dynamics (per-round dropout rate histogram)");
    let trace = Trace::generate(&TraceConfig::default(), 150, 1);
    let rates = trace.round_dropout_rates(16, 2);
    let mut buckets = [0usize; 10];
    for &r in &rates {
        let b = ((r * 10.0) as usize).min(9);
        buckets[b] += 1;
    }
    let mut t = Table::new(&["dropout rate", "% of rounds"]);
    for (i, &count) in buckets.iter().enumerate() {
        t.row(vec![
            format!("{:.1}-{:.1}", i as f64 / 10.0, (i + 1) as f64 / 10.0),
            format!("{:.0}%", 100.0 * count as f64 / rates.len() as f64),
        ]);
    }
    println!("{}", t.render());
    println!("paper: rates spread over the whole [0,1] range (great dynamics).");
}

/// Figure 1b/1c: privacy cost vs accuracy for the naive baselines under
/// trace-driven dropout.
fn fig1bc(scale: Scale) {
    banner("Figure 1b/1c: privacy vs utility of naive fixes (trace dropout)");
    let variants: [(&str, Variant); 6] = [
        ("Orig", Variant::Orig),
        ("Early", Variant::Early),
        ("Con8", Variant::Conservative { est_dropout: 0.8 }),
        ("Con5", Variant::Conservative { est_dropout: 0.5 }),
        ("Con2", Variant::Conservative { est_dropout: 0.2 }),
        // XNoise with a tolerance covering the trace's worst rounds.
        (
            "XNoise",
            Variant::XNoise {
                tolerance_frac: 0.8,
                collusion_frac: 0.0,
            },
        ),
    ];
    // Trace with moderate diurnal swing, matching the dropout severity
    // implied by the paper's Figure 1b privacy costs (rates mostly in
    // [0.2, 0.8]).
    let trace = TraceConfig {
        diurnal_amplitude: 0.3,
        ..TraceConfig::default()
    };
    for (task_name, mut base) in [
        ("CIFAR-10-like (150 rounds)", TaskSpec::cifar10_like(5)),
        ("CIFAR-100-like proxy (300 rounds)", {
            let mut t = TaskSpec::cifar10_like(5);
            t.name = "cifar100-like".into();
            // A 20-class proxy: the paper's 100-class task needs an
            // 11M-parameter model to be trainable under DP noise; at this
            // repo's model scale 100 classes sit at chance for every
            // variant, which would hide the *relative* utility ordering
            // the figure is about.
            t.dataset = dordis_fl::data::SyntheticConfig {
                samples: 6000,
                dim: 32,
                classes: 20,
                noise: 0.8,
                seed: 5,
            };
            t.rounds = 300;
            t
        }),
    ] {
        base.rounds = scale.rounds(base.rounds);
        base.dropout = DropoutModel::Trace(trace);
        println!("\n{task_name}, budget ε = {}", base.privacy.epsilon);
        let mut t = Table::new(&["variant", "privacy cost ε", "accuracy", "rounds"]);
        for &(name, variant) in &variants {
            let report = train(&with_variant(base.clone(), variant)).expect("train");
            t.row(vec![
                name.into(),
                format!("{:.2}", report.epsilon_consumed),
                format!("{:.1}%", report.final_accuracy * 100.0),
                format!("{}", report.rounds_completed),
            ]);
        }
        println!("{}", t.render());
    }
    println!("paper shape: Orig overruns (8.6/7.9); Early on budget but low accuracy;");
    println!("Con8 wastes budget (ε 2.3) at an accuracy cost; Con2 overruns; XNoise tight.");
}

/// Figure 1d: privacy cost vs dropout rate for several budgets
/// (ledger-only computation, matching the paper's CIFAR-10 testbed).
fn fig1d() {
    banner("Figure 1d: privacy cost under various dropout rates (Orig)");
    let mut t = Table::new(&["dropout", "budget ε=3", "budget ε=6", "budget ε=9"]);
    let rounds = 150u32;
    let q = 0.16;
    let mech = Mechanism::Gaussian;
    for rate_pc in (0..=40).step_by(10) {
        let rate = rate_pc as f64 / 100.0;
        let mut cells = vec![format!("{rate_pc}%")];
        for budget in [3.0, 6.0, 9.0] {
            let z = plan(&PlannerConfig {
                epsilon: budget,
                delta: 1e-2,
                rounds,
                sample_rate: q,
                mechanism: mech,
            })
            .expect("plan")
            .noise_multiplier;
            let mut ledger = PrivacyLedger::new(mech, budget, 1e-2).expect("ledger");
            for _ in 0..rounds {
                ledger.record_round(q, z * (1.0 - rate).sqrt());
            }
            cells.push(format!("{:.1}", ledger.realized_epsilon()));
        }
        t.row(cells);
    }
    println!("{}", t.render());
    println!("paper shape: realized ε grows with dropout for every budget");
    println!("(ε=6 reaches ~11.8 and ε=9 ~19.3 at 40% in the paper's testbed).");
}

/// Figure 2: round-time breakdown for SecAgg/SecAgg+ at 32/48/64 clients.
fn fig2() {
    banner("Figure 2: secure aggregation dominates training time");
    let units = UnitCosts::paper_testbed();
    let mut t = Table::new(&["scenario", "round time", "agg share"]);
    for s in fig2_scenarios() {
        let rt = estimate(&s, &units, 7);
        t.row(vec![
            s.name.clone(),
            format!("{:.2} h", rt.plain_total() / 3600.0),
            format!("{:.0}%", rt.agg_fraction() * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!("paper shape: aggregation 86-97% of round time, growing with client");
    println!("count; DP adds a little; SecAgg+ cheaper than SecAgg but still dominant.");
}

/// Figure 8: realized ε vs dropout rate, Orig vs XNoise, three tasks.
fn fig8() {
    banner("Figure 8: privacy budget consumption vs dropout rate");
    let tasks: [(&str, u32, f64, f64); 3] = [
        ("FEMNIST (δ=1e-3)", 50, 0.1, 1e-3),
        ("CIFAR-10 (δ=1e-2)", 150, 0.16, 1e-2),
        ("Reddit (δ=5e-3)", 50, 0.16, 5e-3),
    ];
    let mech = Mechanism::Gaussian;
    for (name, rounds, q, delta) in tasks {
        println!("\n{name}: budget ε = 6");
        let mut t = Table::new(&["dropout", "Orig ε", "XNoise ε"]);
        let z = plan(&PlannerConfig {
            epsilon: 6.0,
            delta,
            rounds,
            sample_rate: q,
            mechanism: mech,
        })
        .expect("plan")
        .noise_multiplier;
        for rate_pc in (0..=40).step_by(10) {
            let rate = rate_pc as f64 / 100.0;
            let orig = {
                let mut ledger = PrivacyLedger::new(mech, 6.0, delta).expect("ledger");
                for _ in 0..rounds {
                    ledger.record_round(q, z * (1.0 - rate).sqrt());
                }
                ledger.realized_epsilon()
            };
            let xnoise = {
                let mut ledger = PrivacyLedger::new(mech, 6.0, delta).expect("ledger");
                for _ in 0..rounds {
                    ledger.record_round(q, z); // Enforced exactly.
                }
                ledger.realized_epsilon()
            };
            t.row(vec![
                format!("{rate_pc}%"),
                format!("{orig:.2}"),
                format!("{xnoise:.2}"),
            ]);
        }
        println!("{}", t.render());
    }
    println!("paper shape: XNoise flat at ε = 6; Orig climbs to ~8.2-8.7 at 40%.");
}

/// Figure 9: round-to-accuracy curves at 20% dropout.
fn fig9(scale: Scale) {
    banner("Figure 9: round-to-accuracy at 20% dropout (Orig vs XNoise)");
    for mut task in eval_tasks(scale, 9) {
        task.dropout = DropoutModel::Bernoulli { rate: 0.2 };
        task.eval_every = (task.rounds / 10).max(1);
        println!("\n{}:", task.name);
        let orig = train(&with_variant(task.clone(), Variant::Orig)).expect("train");
        let xnoise = train(&with_variant(task.clone(), XNOISE)).expect("train");
        let mut t = Table::new(&["round", "Orig acc", "XNoise acc"]);
        for (ro, rx) in orig.records.iter().zip(xnoise.records.iter()) {
            if let (Some(a), Some(b)) = (ro.accuracy, rx.accuracy) {
                t.row(vec![
                    format!("{}", ro.round + 1),
                    format!("{:.1}%", a * 100.0),
                    format!("{:.1}%", b * 100.0),
                ]);
            }
        }
        println!("{}", t.render());
    }
    println!("paper shape: the two curves coincide — XNoise costs no convergence.");
    println!("note: absolute accuracies here sit at a few multiples of chance — the");
    println!("synthetic models are small and DP noise at ε=6 dominates; compare the");
    println!("two columns, not the magnitudes (see EXPERIMENTS.md).");
}

/// Table 2: final accuracy across dropout rates.
fn table2(scale: Scale) {
    banner("Table 2: final accuracy/perplexity, Orig vs XNoise, by dropout rate");
    for task in eval_tasks(scale, 13) {
        println!("\n{}:", task.name);
        let lm = task.name.contains("reddit");
        let mut t = Table::new(&["dropout", "Orig", "XNoise"]);
        for rate_pc in (0..=40).step_by(10) {
            let rate = rate_pc as f64 / 100.0;
            let mut spec = task.clone();
            spec.dropout = DropoutModel::Bernoulli { rate };
            let orig = train(&with_variant(spec.clone(), Variant::Orig)).expect("train");
            let xnoise = train(&with_variant(spec, XNOISE)).expect("train");
            let fmt = |r: &dordis_core::trainer::TrainingReport| {
                if lm {
                    format!("ppl {:.1}", r.final_perplexity)
                } else {
                    format!("{:.1}%", r.final_accuracy * 100.0)
                }
            };
            t.row(vec![format!("{rate_pc}%"), fmt(&orig), fmt(&xnoise)]);
        }
        println!("{}", t.render());
    }
    println!("paper shape: XNoise within ±1% of Orig everywhere (it enforces the");
    println!("budget with the *minimum* extra noise), sometimes slightly better.");
    println!("note: column-to-column comparison is the target; absolute accuracy of");
    println!("the small synthetic models under ε=6 noise is a few multiples of chance.");
}

/// Table 3: per-client extra network bytes — rebasing vs XNoise.
fn table3() {
    banner("Table 3: additional network footprint (MB), rebasing (r) vs XNoise (X)");
    let w = WireSizes::default();
    let mut t = Table::new(&[
        "dropout",
        "n sampled",
        "5M r",
        "5M X",
        "50M r",
        "50M X",
        "500M r",
        "500M X",
    ]);
    for rate_pc in [0usize, 10, 20, 30] {
        for sampled in [100usize, 200, 300] {
            let mut cells = vec![format!("{rate_pc}%"), format!("{sampled}")];
            for params_m in [5u64, 50, 500] {
                let s = FootprintScenario {
                    model_params: params_m * 1_000_000,
                    sampled,
                    dropout_rate: rate_pc as f64 / 100.0,
                    tolerance: default_tolerance(sampled),
                };
                let (r, x) = table3_row(&s, &w);
                cells.push(format!("{r:.1}"));
                cells.push(format!("{x:.1}"));
            }
            t.row(cells);
        }
    }
    println!("{}", t.render());
    println!("paper shape: XNoise constant in model size (0.6/2.4/5.5 MB by n);");
    println!("rebasing scales linearly with model size (11.9 → 1192 MB).");
}

/// Figure 10: plain vs pipelined round times for every task/protocol/
/// variant/dropout combination.
fn fig10() {
    banner("Figure 10: round time, plain vs pipelined (minutes)");
    let units = UnitCosts::paper_testbed();
    for rate_pc in [0usize, 10, 20, 30] {
        println!("\nper-round dropout rate d = {rate_pc}%:");
        let mut t = Table::new(&["scenario", "plain", "agg%", "piped", "speedup", "m*"]);
        for s in fig10_scenarios(rate_pc as f64 / 100.0) {
            let rt = estimate(&s, &units, 17);
            t.row(vec![
                s.name.clone(),
                format!("{:.1} min", rt.plain_total() / 60.0),
                format!("{:.0}%", rt.agg_fraction() * 100.0),
                format!("{:.1} min", rt.piped_total() / 60.0),
                format!("{:.2}x", rt.speedup()),
                format!("{}", rt.chunks),
            ]);
        }
        println!("{}", t.render());
    }
    println!("paper shape: XNoise ≤34% slower than Orig (shrinking with dropout);");
    println!("pipelining speeds rounds up to ~2.4x, more for larger models and");
    println!("more clients; SecAgg+ uniformly cheaper than SecAgg.");
}

/// §4.2 / Appendix C ablation: makespan vs chunk count.
fn chunks() {
    banner("Appendix C ablation: makespan vs chunk count m");
    let units = UnitCosts::paper_testbed();
    let cost = CostModel::new(units);
    let mut t = Table::new(&["model", "m=1", "m=2", "m=4", "m=8", "m=16", "m*"]);
    for (name, params) in [
        ("cnn-1M", 1_000_000usize),
        ("resnet18-11M", 11_000_000),
        ("vgg19-20M", 20_000_000),
    ] {
        let scen = dordis_core::timing::TimingScenario {
            name: name.into(),
            model_params: params,
            clients: 100,
            protocol: dordis_sim::cost::Protocol::SecAgg,
            dp: true,
            xnoise: true,
            dropout_rate: 0.1,
            other_secs: 0.0,
            bit_width: 20,
        };
        let input = dordis_core::timing::cost_input(&scen, &dordis_core::timing::paper_hetero(3));
        let plan = plan_from_cost_model(&cost, &input, 20, 3);
        let at = |m: usize| format!("{:.0}s", plan.sweep[m - 1]);
        t.row(vec![
            name.into(),
            at(1),
            at(2),
            at(4),
            at(8),
            at(16),
            format!("{}", plan.chunks),
        ]);
    }
    println!("{}", t.render());
    println!("shape: U-curve — work shrinks with m, intervention (β₂·m) grows;");
    println!("the optimum sits at a small m and grows with model size.");
}

/// §3.3 ablation: the collusion noise-inflation factor.
fn collusion() {
    banner("§3.3 ablation: noise inflation t/(t-T_C) under collusion tolerance");
    let n = 100;
    let t_secagg = 67; // 2t > n + |C∩U| comfortably.
    let mut table = Table::new(&["T_C (clients)", "inflation", "residual var (σ²∗=1)"]);
    for tc in [0usize, 1, 2, 5, 10, 20] {
        let plan = XNoisePlan::new(1.0, n, 40, tc, t_secagg).expect("plan");
        table.row(vec![
            format!("{tc}"),
            format!("{:.3}x", plan.inflation()),
            format!("{:.3}", plan.residual_variance(10).expect("residual")),
        ]);
    }
    println!("{}", table.render());
    println!("shape: inflation 1.0 at T_C=0 and only slightly above 1 for mild");
    println!("collusion (e.g. 1% of clients), as §3.3 argues.");
}
