//! Shared scenario builders and table formatting for the Dordis
//! benchmark harness.
//!
//! The `figures` binary (`cargo run -p dordis-bench --bin figures --release`)
//! regenerates every table and figure of the paper's evaluation; this
//! library holds the scenario definitions so tests can pin them down.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dordis_core::config::{ModelSpec, TaskSpec, Variant};
use dordis_core::timing::TimingScenario;
use dordis_sim::cost::Protocol;

/// Scale factor for training-based experiments: `quick` shrinks rounds
/// so the whole figure suite completes in a couple of minutes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Paper-shaped round counts (150/300/50).
    Full,
    /// Reduced rounds for smoke runs.
    Quick,
}

impl Scale {
    /// Scales a round count.
    #[must_use]
    pub fn rounds(&self, full: u32) -> u32 {
        match self {
            Scale::Full => full,
            Scale::Quick => (full / 5).max(10),
        }
    }
}

/// The three evaluation tasks of §6.1, sized for the semantic trainer.
///
/// Sizing note: with distributed DP, the per-round signal-to-noise ratio
/// scales as `n_survivors / (z · √params)`. The paper's tasks sit in a
/// trainable regime thanks to heavy over-parameterization and long
/// horizons; these synthetic stand-ins reach the same regime by sampling
/// more clients relative to their (small) model sizes.
#[must_use]
pub fn eval_tasks(scale: Scale, seed: u64) -> Vec<TaskSpec> {
    let mut femnist = TaskSpec::femnist_like(seed);
    femnist.rounds = scale.rounds(50);
    // Keep the semantic run affordable: fewer parallel clients sampled
    // but the same sampling *rate* so accounting matches the paper.
    femnist.population = 250;
    femnist.sampled_per_round = 50;
    femnist.dataset.samples = 5000;
    femnist.dataset.dim = 24;
    femnist.dataset.noise = 0.5;

    let mut cifar = TaskSpec::cifar10_like(seed);
    cifar.rounds = scale.rounds(150);
    cifar.model = ModelSpec::Linear;
    cifar.dataset.noise = 0.6;

    let mut reddit = TaskSpec::reddit_like(seed);
    reddit.rounds = scale.rounds(50);
    reddit.model = ModelSpec::Linear;

    vec![femnist, cifar, reddit]
}

/// Applies a variant to a task spec (builder-style).
#[must_use]
pub fn with_variant(mut spec: TaskSpec, variant: Variant) -> TaskSpec {
    spec.variant = variant;
    spec
}

/// The Figure 10 scenario grid: task × protocol × variant.
///
/// Models match the paper: CNN 1M, ResNet-18 11M, VGG-19 20M; client
/// counts 100 (FEMNIST) and 16 (CIFAR-10); `other` seconds estimated
/// from the paper's plain-other bars.
#[must_use]
pub fn fig10_scenarios(dropout_rate: f64) -> Vec<TimingScenario> {
    let mut out = Vec::new();
    let tasks: [(&str, usize, usize, f64); 4] = [
        ("femnist/cnn-1M", 1_000_000, 100, 25.0),
        ("femnist/resnet18-11M", 11_000_000, 100, 60.0),
        ("cifar10/resnet18-11M", 11_000_000, 16, 70.0),
        ("cifar10/vgg19-20M", 20_000_000, 16, 110.0),
    ];
    for (task, params, clients, other) in tasks {
        for (proto_name, protocol) in [
            ("secagg", Protocol::SecAgg),
            ("secagg+", Protocol::SecAggPlus),
        ] {
            for (var_name, xnoise) in [("orig", false), ("xnoise", true)] {
                out.push(TimingScenario {
                    name: format!("{task}/{proto_name}/{var_name}"),
                    model_params: params,
                    clients,
                    protocol,
                    dp: true,
                    xnoise,
                    dropout_rate,
                    other_secs: other,
                    bit_width: 20,
                });
            }
        }
    }
    out
}

/// The Figure 2 scenario grid: SecAgg/SecAgg+ × client counts × DP.
#[must_use]
pub fn fig2_scenarios() -> Vec<TimingScenario> {
    let mut out = Vec::new();
    for (proto_name, protocol) in [
        ("secagg", Protocol::SecAgg),
        ("secagg+", Protocol::SecAggPlus),
    ] {
        for clients in [32usize, 48, 64] {
            for dp in [false, true] {
                out.push(TimingScenario {
                    name: format!(
                        "{proto_name}/n={clients}/{}",
                        if dp { "dp" } else { "nodp" }
                    ),
                    model_params: 11_000_000,
                    clients,
                    protocol,
                    dp,
                    xnoise: false,
                    dropout_rate: 0.1,
                    other_secs: 70.0,
                    bit_width: 20,
                });
            }
        }
    }
    out
}

/// Simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_grids_have_expected_sizes() {
        assert_eq!(fig10_scenarios(0.1).len(), 16);
        assert_eq!(fig2_scenarios().len(), 12);
        assert_eq!(eval_tasks(Scale::Quick, 1).len(), 3);
    }

    #[test]
    fn tasks_validate() {
        for t in eval_tasks(Scale::Full, 2) {
            t.validate().unwrap();
        }
    }

    #[test]
    fn quick_scale_shrinks() {
        assert_eq!(Scale::Quick.rounds(150), 30);
        assert_eq!(Scale::Full.rounds(150), 150);
        assert_eq!(Scale::Quick.rounds(20), 10);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "20000".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic]
    fn table_rejects_wrong_arity() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
