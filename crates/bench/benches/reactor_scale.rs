//! Coordinator scaling: the readiness-driven reactor versus the legacy
//! round-robin poll sweep, on a loopback transport shaped like a real
//! deployment — throttled client uplinks (every frame costs a little
//! latency) and a cohort-proportional sprinkle of *junk connections*
//! (peers that connect but never speak the protocol: crashed clients
//! reconnecting, health checks, scanners).
//!
//! The junk connections are where the sweep's `O(clients)` wall-clock
//! term lives: its join loop does one **unsliced** blocking `recv_env`
//! per accepted connection, so every junk peer serializes a full stage
//! timeout before the next client can even be read. The reactor holds
//! all pending joins under provisional tokens concurrently, so the same
//! junk costs one deadline *in parallel* — and is discarded the moment
//! the sampled set completes. Collection loops contribute the secondary
//! term: one `tick`-long `recv_deadline` slice per un-ready channel per
//! sweep revolution, versus one `epoll_pwait` wake-up per event batch.
//!
//! For each cohort size the same chunked round runs once per
//! [`CollectMode`], measuring wall-clock and *coordinator-thread* CPU
//! (`/proc/thread-self/stat`, so the client threads don't pollute the
//! number). Results land in `BENCH_reactor_scale.json` at the workspace
//! root; `REACTOR_SCALE_SMOKE=1` shrinks the cohorts for CI and skips
//! the JSON write.
//!
//! ```sh
//! cargo bench -p dordis-bench --bench reactor_scale
//! REACTOR_SCALE_SMOKE=1 cargo bench -p dordis-bench --bench reactor_scale
//! ```

use std::time::{Duration, Instant};

use dordis_net::coordinator::{run_coordinator, CollectMode, CoordinatorConfig};
use dordis_net::runtime::{run_client, ClientOptions};
use dordis_net::transport::{Channel as _, LoopbackHub, ThrottledChannel};
use dordis_secagg::client::ClientInput;
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::{ClientId, RoundParams, ThreatModel};

const DIM: usize = 256;
const BITS: u32 = 16;
const CHUNKS: usize = 4;
const SEED: u64 = 4242;
/// Simulated per-frame uplink latency with a little per-client jitter,
/// so arrivals are spread rather than lockstep.
const PER_FRAME_BASE: Duration = Duration::from_millis(25);
const PER_FRAME_JITTER_MS: u64 = 25;
const UPLINK_BYTES_PER_SEC: u64 = 400_000;
/// Per-stage dropout deadline — also what each junk connection costs
/// the sweep's serial join loop.
const STAGE_TIMEOUT: Duration = Duration::from_millis(900);

/// Junk connections per cohort: one per twenty clients, at least two.
fn junk_for(n: u32) -> usize {
    (n as usize / 20).max(2)
}

/// Deterministic per-client uplink latency.
fn per_frame(id: ClientId) -> Duration {
    PER_FRAME_BASE + Duration::from_millis((u64::from(id) * 37) % PER_FRAME_JITTER_MS)
}

/// This thread's cumulative CPU time (user + system) from
/// `/proc/thread-self/stat`, so the coordinator can be measured without
/// counting the client threads.
fn thread_cpu() -> Duration {
    let Ok(stat) = std::fs::read_to_string("/proc/thread-self/stat") else {
        return Duration::ZERO;
    };
    // The comm field may contain spaces; skip past its closing paren.
    let Some(close) = stat.rfind(')') else {
        return Duration::ZERO;
    };
    let fields: Vec<&str> = stat[close + 1..].split_whitespace().collect();
    // Fields 14/15 overall are utime/stime; 11/12 after pid+comm+state.
    let utime: u64 = fields.get(11).and_then(|f| f.parse().ok()).unwrap_or(0);
    let stime: u64 = fields.get(12).and_then(|f| f.parse().ok()).unwrap_or(0);
    // USER_HZ is 100 on every Linux this runs on.
    Duration::from_millis((utime + stime) * 10)
}

fn params(n: u32) -> RoundParams {
    RoundParams {
        round: 1,
        clients: (0..n).collect(),
        threshold: (n as usize / 2).clamp(2, 10),
        bit_width: BITS,
        vector_len: DIM,
        noise_components: 0,
        threat_model: ThreatModel::SemiHonest,
        graph: MaskingGraph::harary_for(n as usize),
    }
}

fn input_for(id: ClientId) -> ClientInput {
    let mask = (1u64 << BITS) - 1;
    ClientInput {
        vector: (0..DIM)
            .map(|i| (u64::from(id) * 31 + i as u64) & mask)
            .collect(),
        noise_seeds: Vec::new(),
    }
}

struct RunResult {
    wall: Duration,
    cpu: Duration,
    polls: u64,
    events: u64,
}

fn timed_round(n: u32, mode: CollectMode) -> RunResult {
    let (hub, mut acceptor) = LoopbackHub::new();
    let mut handles = Vec::new();
    let mut junk_handles = Vec::new();
    let junk = junk_for(n);
    let junk_every = (n as usize / junk).max(1);
    for id in 0..n {
        if (id as usize).is_multiple_of(junk_every) && junk_handles.len() < junk {
            // A connection that never speaks: it just waits until the
            // coordinator gives up on it and closes the channel.
            let hub = hub.clone();
            let j = junk_handles.len();
            junk_handles.push(std::thread::spawn(move || {
                let mut chan = hub.connect(&format!("junk{j}")).expect("connect");
                let _ = chan.recv_deadline(Instant::now() + Duration::from_secs(120));
            }));
        }
        let hub = hub.clone();
        handles.push(std::thread::spawn(move || {
            let inner = hub.connect(&format!("c{id}")).expect("connect");
            let mut chan =
                ThrottledChannel::new(Box::new(inner), UPLINK_BYTES_PER_SEC, per_frame(id));
            let opts = ClientOptions {
                id,
                rng_seed: SEED,
                fail: None,
                recv_timeout: Duration::from_secs(600),
                silent_linger: Duration::from_secs(1),
            };
            run_client(&mut chan, &opts, move |_| Ok(input_for(id)), |_| None)
        }));
    }
    let cfg = CoordinatorConfig::new(
        params(n),
        Duration::from_secs(300),
        STAGE_TIMEOUT,
        CHUNKS,
        None,
    )
    .with_mode(mode);
    let cpu0 = thread_cpu();
    let start = Instant::now();
    let report = run_coordinator(&mut acceptor, &cfg).expect("coordinator");
    let wall = start.elapsed();
    let cpu = thread_cpu().saturating_sub(cpu0);
    assert!(
        report.dropouts.is_empty(),
        "clean round expected: {:?}",
        report.dropouts
    );
    assert_eq!(report.outcome.survivors.len(), n as usize);
    for h in handles {
        h.join().expect("client thread").expect("client run");
    }
    for h in junk_handles {
        h.join().expect("junk thread");
    }
    let (polls, events) = report.reactor.map_or((0, 0), |s| (s.polls, s.events));
    RunResult {
        wall,
        cpu,
        polls,
        events,
    }
}

fn main() {
    let smoke = std::env::var("REACTOR_SCALE_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    // 255 was the per-round maximum when every Shamir polynomial was
    // evaluated at global GF(256) coordinates; neighborhood indexing
    // lifted that (see cohort_scale), but 255 stays the top rung here
    // so the sweep-vs-reactor series remains comparable over time.
    let cohorts: &[u32] = if smoke { &[8, 16] } else { &[32, 128, 255] };
    let best_of = if smoke { 1 } else { 2 };

    let mut rows = Vec::new();
    for &n in cohorts {
        let mut best: Option<(RunResult, RunResult)> = None;
        for _ in 0..best_of {
            let sweep = timed_round(n, CollectMode::PollSweep);
            let reactor = timed_round(n, CollectMode::Reactor);
            let better = match &best {
                None => true,
                Some((_, prev)) => reactor.wall < prev.wall,
            };
            if better {
                best = Some((sweep, reactor));
            }
        }
        let (sweep, reactor) = best.expect("at least one run");
        println!(
            "clients {n:3} (+{} junk): sweep {:7.3}s wall {:6.3}s cpu | reactor {:7.3}s wall \
             {:6.3}s cpu ({} polls, {} events) | speedup {:.2}x",
            junk_for(n),
            sweep.wall.as_secs_f64(),
            sweep.cpu.as_secs_f64(),
            reactor.wall.as_secs_f64(),
            reactor.cpu.as_secs_f64(),
            reactor.polls,
            reactor.events,
            sweep.wall.as_secs_f64() / reactor.wall.as_secs_f64().max(1e-9),
        );
        rows.push((n, sweep, reactor));
    }

    if smoke {
        println!("smoke mode: skipping BENCH_reactor_scale.json");
        return;
    }
    let mut entries = String::new();
    for (i, (n, sweep, reactor)) in rows.iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\n      \"clients\": {n},\n      \"junk_connections\": {},\n      \
             \"sweep_wall_secs\": {:.6},\n      \"sweep_cpu_secs\": {:.6},\n      \
             \"reactor_wall_secs\": {:.6},\n      \"reactor_cpu_secs\": {:.6},\n      \
             \"reactor_polls\": {},\n      \"reactor_events\": {},\n      \
             \"speedup\": {:.4}\n    }}",
            junk_for(*n),
            sweep.wall.as_secs_f64(),
            sweep.cpu.as_secs_f64(),
            reactor.wall.as_secs_f64(),
            reactor.cpu.as_secs_f64(),
            reactor.polls,
            reactor.events,
            sweep.wall.as_secs_f64() / reactor.wall.as_secs_f64().max(1e-9),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"reactor_scale\",\n  \"dim\": {DIM},\n  \"bit_width\": {BITS},\n  \
         \"chunks\": {CHUNKS},\n  \"per_frame_base_ms\": {},\n  \
         \"per_frame_jitter_ms\": {PER_FRAME_JITTER_MS},\n  \
         \"uplink_bytes_per_sec\": {UPLINK_BYTES_PER_SEC},\n  \"stage_timeout_ms\": {},\n  \
         \"cohorts\": [\n{entries}\n  ]\n}}\n",
        PER_FRAME_BASE.as_millis(),
        STAGE_TIMEOUT.as_millis(),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_reactor_scale.json"
    );
    std::fs::write(path, &json).expect("write BENCH_reactor_scale.json");
    println!("wrote {path}");
}
