//! XNoise benchmarks: client-side perturbation and server-side excess
//! removal across dropout outcomes — the cost that §6.3 reports as "up
//! to 34% overhead, shrinking with dropout".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dordis_xnoise::decomposition::XNoisePlan;
use dordis_xnoise::enforcement::{derive_component_seeds, perturb, remove_excess};

const DIM: usize = 10_000;
const BITS: u32 = 20;

fn plan(n: usize, t: usize) -> XNoisePlan {
    XNoisePlan::new(1000.0, n, t, 0, n / 2 + 1).unwrap()
}

fn bench_perturb(c: &mut Criterion) {
    let mut g = c.benchmark_group("xnoise_perturb_10k");
    g.sample_size(10);
    for t in [4usize, 8, 16] {
        let p = plan(32, t);
        let seeds = derive_component_seeds(&[1u8; 32], t);
        g.bench_with_input(BenchmarkId::new("tolerance", t), &t, |b, _| {
            b.iter(|| {
                let mut update = vec![0u64; DIM];
                perturb(&mut update, &seeds, &p, BITS).unwrap();
                update[0]
            });
        });
    }
    g.finish();
}

fn bench_removal(c: &mut Criterion) {
    // Removal work shrinks as dropout grows: fewer components to strip.
    let mut g = c.benchmark_group("xnoise_remove_10k_t8");
    g.sample_size(10);
    let t = 8usize;
    let n = 32usize;
    let p = plan(n, t);
    for dropped in [0usize, 4, 8] {
        let survivors: Vec<u32> = (dropped as u32..n as u32).collect();
        let mut removal = Vec::new();
        for &cid in &survivors {
            let seeds = derive_component_seeds(&[cid as u8 + 1; 32], t);
            for k in (dropped + 1)..=t {
                removal.push((cid, k, seeds[k]));
            }
        }
        g.bench_with_input(BenchmarkId::new("dropped", dropped), &dropped, |b, _| {
            b.iter(|| {
                let mut agg = vec![0u64; DIM];
                remove_excess(&mut agg, &removal, &survivors, &p, BITS).unwrap();
                agg[0]
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_perturb, bench_removal);
criterion_main!(benches);
