//! Round throughput versus aggregation shard count, on a fixed cohort.
//!
//! A sharded session partitions the cohort into S independent
//! aggregation shards (own `RoundMachine`, reactor, and — with the
//! Complete graph — own pairwise-mask neighborhood) and merges the
//! per-shard sums. Two effects compound:
//!
//!   * **parallelism** — the S shard machines run on their own threads;
//!   * **complexity** — pairwise masking is quadratic in the roster, so
//!     S shards of ~n/S clients do ~n²/S total mask-expansion work
//!     instead of n².
//!
//! This bench runs the identical cohort, inputs, and per-round seeds at
//! S ∈ {1, 2, 4} over loopback transport, and reports wall time plus
//! process CPU (utime + stime around the session, covering the shard
//! coordinator threads and the in-process clients — whose masking work
//! shrinks with the shard roster too, which is the point).
//!
//! On hosts with ≥ 4 cores the near-linear claim is armed: S = 4 must
//! at least halve the S = 1 wall time. On smaller hosts the parallel
//! half of the win cannot materialize, so the run only prints the
//! ratios (a ≤ 1x result on a 1-core box is expected, not a failure —
//! the complexity half still shows up in the CPU column).
//!
//! Results land in `BENCH_shard_scale.json` at the workspace root;
//! `SHARD_SCALE_SMOKE=1` shrinks the cohort for CI and skips the JSON
//! write.
//!
//! ```sh
//! cargo bench -p dordis-bench --bench shard_scale
//! SHARD_SCALE_SMOKE=1 cargo bench -p dordis-bench --bench shard_scale
//! ```

use std::time::{Duration, Instant};

use dordis_net::coordinator::{CollectMode, CoordinatorConfig};
use dordis_net::faults::FaultPlan;
use dordis_net::runtime::{run_session_client, SessionClientOptions, SessionEndKind};
use dordis_net::session::{Seating, Session, SessionConfig};
use dordis_net::transport::LoopbackHub;
use dordis_secagg::client::ClientInput;
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::{ClientId, RoundParams, ThreatModel};
use dordis_telemetry::Telemetry;

const BITS: u32 = 16;
const SEED: u64 = 9_090_909;
const CHUNKS: usize = 4;
const JOIN_TIMEOUT: Duration = Duration::from_secs(60);
const STAGE_TIMEOUT: Duration = Duration::from_secs(60);

fn params_for_round(round: u64, n: u32, dim: usize) -> RoundParams {
    RoundParams {
        round,
        clients: (0..n).collect(),
        threshold: (n as usize) / 2 + 1,
        bit_width: BITS,
        vector_len: dim,
        noise_components: 0,
        threat_model: ThreatModel::SemiHonest,
        graph: MaskingGraph::Complete,
    }
}

fn input_for(id: ClientId, round: u64, dim: usize) -> ClientInput {
    let mask = (1u64 << BITS) - 1;
    ClientInput {
        vector: (0..dim)
            .map(|i| (u64::from(id) * 131 + round * 977 + i as u64 * 17) & mask)
            .collect(),
        noise_seeds: Vec::new(),
    }
}

/// Process CPU (utime + stime) from `/proc/self/stat`, in seconds.
/// Covers every thread: the session, the shard coordinators, and the
/// in-process loopback clients.
fn process_cpu() -> f64 {
    let stat = std::fs::read_to_string("/proc/self/stat").unwrap_or_default();
    // Fields 14/15 (1-indexed) after the parenthesized comm, which may
    // itself contain spaces.
    let after = stat.rsplit(')').next().unwrap_or("");
    let fields: Vec<&str> = after.split_whitespace().collect();
    let ticks: u64 = fields
        .get(11) // utime: field 14 overall, index 11 past state
        .and_then(|f| f.parse().ok())
        .unwrap_or(0);
    let sticks: u64 = fields.get(12).and_then(|f| f.parse().ok()).unwrap_or(0);
    (ticks + sticks) as f64 / 100.0
}

/// One full session at the given shard count: R rounds, fixed cohort,
/// identical per-round seeds. Returns (wall, process-CPU delta).
fn run_at(shards: usize, n: u32, rounds: u64, dim: usize) -> (Duration, f64) {
    let (hub, mut acceptor) = LoopbackHub::new();
    let cpu0 = process_cpu();
    let start = Instant::now();
    let mut handles = Vec::new();
    for id in 0..n {
        let hub = hub.clone();
        handles.push(std::thread::spawn(move || {
            let mut chan = hub.connect(&format!("c{id}")).expect("connect");
            let opts = SessionClientOptions {
                id,
                rng_seed: SEED,
                recv_timeout: Duration::from_secs(120),
                silent_linger: Duration::from_secs(1),
            };
            let report = run_session_client(
                &mut chan,
                &opts,
                |_| None,
                |_| None,
                |r, _params, _cohort, _payload| Ok(input_for(id, r, dim)),
                |_| None,
            )
            .expect("session client");
            assert!(matches!(report.end, SessionEndKind::Ended));
        }));
    }
    let cfg = SessionConfig {
        first_round: 1,
        rounds,
        join_timeout: JOIN_TIMEOUT,
        stage_timeout: STAGE_TIMEOUT,
        chunks: CHUNKS,
        chunk_compute: None,
        tick: CoordinatorConfig::DEFAULT_TICK,
        mode: CollectMode::Reactor,
        workers: 0,
        shards,
        ingress_budget: 0,
        announce: true,
        population: (0..n).collect(),
        seating: Seating::Roster,
        params_for: Box::new(move |round, _| params_for_round(round, n, dim)),
        telemetry: Telemetry::disabled(),
        metrics_addr: None,
        replica: None,
        faults: FaultPlan::none(),
    };
    let mut session = Session::new(&mut acceptor, cfg).expect("session");
    for _ in 0..rounds {
        let report = session.run_round(&[]).expect("round");
        assert_eq!(report.outcome.survivors.len(), n as usize);
    }
    session.finish();
    for h in handles {
        h.join().expect("client thread");
    }
    (start.elapsed(), process_cpu() - cpu0)
}

struct Row {
    shards: usize,
    wall: Duration,
    cpu_s: f64,
}

fn main() {
    let smoke = std::env::var("SHARD_SCALE_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);
    // The tentpole configuration: a fixed 128-client cohort. Smoke mode
    // shrinks it so CI spends seconds, not minutes, but keeps every
    // shard ≥ 2 members at S = 4 (splitmix64 splits 0..32 into sizes
    // {7, 5, 13, 7}).
    let n: u32 = if smoke { 32 } else { 128 };
    let dim = if smoke { 256 } else { 1024 };
    let rounds: u64 = if smoke { 1 } else { 2 };
    let best_of = if smoke { 1 } else { 3 };

    let mut rows = Vec::new();
    for shards in [1usize, 2, 4] {
        let mut wall = Duration::MAX;
        let mut cpu_s = f64::MAX;
        for _ in 0..best_of {
            let (w, c) = run_at(shards, n, rounds, dim);
            wall = wall.min(w);
            cpu_s = cpu_s.min(c);
        }
        println!(
            "S = {shards}: wall {:8.2} ms | process cpu {:8.0} ms | ({n} clients, {rounds} rounds)",
            wall.as_secs_f64() * 1e3,
            cpu_s * 1e3,
        );
        rows.push(Row {
            shards,
            wall,
            cpu_s,
        });
    }

    let base = rows[0].wall.as_secs_f64();
    for row in &rows[1..] {
        println!(
            "S = {}: {:.2}x wall speedup over S = 1 ({:.2}x cpu)",
            row.shards,
            base / row.wall.as_secs_f64().max(1e-9),
            rows[0].cpu_s / row.cpu_s.max(1e-9),
        );
    }
    if host_cores < 4 {
        println!(
            "host has {host_cores} core(s): shard threads serialize, so a ≤ 1x wall ratio here \
             is expected — the scaling assertion needs ≥ 4 cores and is skipped"
        );
    }

    if smoke {
        println!("smoke mode: skipping BENCH_shard_scale.json");
        return;
    }
    if host_cores >= 4 {
        // Near-linear, with generous headroom for the merge phase and
        // the join/announce segments that stay serial: 4 shards must at
        // least halve the unsharded wall time.
        let s4 = rows.iter().find(|r| r.shards == 4).expect("S=4 row");
        assert!(
            s4.wall.as_secs_f64() <= base / 2.0,
            "S = 4 should at least halve the S = 1 round time on a {host_cores}-core host \
             ({:?} vs {:?})",
            s4.wall,
            rows[0].wall
        );
    }
    let mut entries = String::new();
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\n      \"shards\": {},\n      \"wall_ms\": {:.3},\n      \
             \"process_cpu_ms\": {:.1},\n      \"wall_speedup\": {:.4}\n    }}",
            row.shards,
            row.wall.as_secs_f64() * 1e3,
            row.cpu_s * 1e3,
            base / row.wall.as_secs_f64().max(1e-9),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"shard_scale\",\n  \"transport\": \"loopback\",\n  \
         \"host_cores\": {host_cores},\n  \"clients\": {n},\n  \"dim\": {dim},\n  \
         \"bit_width\": {BITS},\n  \"chunks\": {CHUNKS},\n  \"rounds_per_run\": {rounds},\n  \
         \"configs\": [\n{entries}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard_scale.json");
    std::fs::write(path, json).expect("write BENCH_shard_scale.json");
    println!("wrote {path}");
}
