//! Pipeline-planning benchmarks: the Appendix C makespan recurrence and
//! the full profile-fit-plan loop must be cheap enough to run per
//! deployment (the paper runs it offline once per task).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dordis_core::timing::{cost_input, paper_hetero, TimingScenario};
use dordis_pipeline::planner::plan_from_cost_model;
use dordis_pipeline::schedule::schedule;
use dordis_sim::cost::{CostModel, Protocol, Resource, UnitCosts};

fn bench_schedule(c: &mut Criterion) {
    let tau = [12.0, 4.0, 9.0, 4.0, 2.0];
    let res = [
        Resource::CComp,
        Resource::Comm,
        Resource::SComp,
        Resource::Comm,
        Resource::CComp,
    ];
    let mut g = c.benchmark_group("appendix_c_schedule");
    for m in [4usize, 20, 100] {
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| schedule(&tau, &res, m).makespan);
        });
    }
    g.finish();
}

fn bench_full_planning(c: &mut Criterion) {
    let scenario = TimingScenario {
        name: "bench".into(),
        model_params: 11_000_000,
        clients: 100,
        protocol: Protocol::SecAgg,
        dp: true,
        xnoise: true,
        dropout_rate: 0.1,
        other_secs: 60.0,
        bit_width: 20,
    };
    let cost = CostModel::new(UnitCosts::paper_testbed());
    let input = cost_input(&scenario, &paper_hetero(1));
    c.bench_function("profile_fit_plan_m20", |b| {
        b.iter(|| plan_from_cost_model(&cost, &input, 20, 1).chunks);
    });
}

criterion_group!(benches, bench_schedule, bench_full_planning);
criterion_main!(benches);
