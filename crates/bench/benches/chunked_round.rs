//! Figure 12 end to end: a networked SecAgg round on a loopback
//! transport with injected per-stage latency (bandwidth-throttled
//! uplinks, emulated per-chunk server compute), at m = 1 versus the
//! planner-chosen chunk count. The scenario is the shared
//! [`dordis_net::figure12::OverlapScenario`] harness — the same
//! definition the `pipeline_overlap` regression test asserts on.
//! Results are also written to `BENCH_chunked_round.json` at the
//! workspace root so the perf trajectory tracks the pipeline speedup
//! across PRs.
//!
//! ```sh
//! cargo bench -p dordis-bench --bench chunked_round
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dordis_net::figure12::OverlapScenario;

fn bench_chunked_round(c: &mut Criterion) {
    let scenario = OverlapScenario::default_loopback();
    let mstar = scenario.planner_chunks();
    let mut g = c.benchmark_group("chunked_round");
    g.sample_size(2);
    for m in [1usize, mstar] {
        g.bench_with_input(BenchmarkId::new("loopback_round", m), &m, |b, &m| {
            b.iter(|| scenario.timed_round(m));
        });
    }
    g.finish();

    // The Figure 12 trajectory point: best-of-3 wall clock per config,
    // written where the perf history can pick it up.
    let best = |m: usize| {
        (0..3)
            .map(|_| scenario.timed_round(m).1)
            .min()
            .expect("three runs")
            .as_secs_f64()
    };
    let t1 = best(1);
    let tm = best(mstar);
    let json = format!(
        "{{\n  \"bench\": \"chunked_round\",\n  \"dim\": {},\n  \"clients\": {},\n  \
         \"bit_width\": {},\n  \"uplink_bytes_per_sec\": {},\n  \
         \"injected_compute_ms\": {},\n  \"planner_chunks\": {mstar},\n  \
         \"secs_m1\": {t1:.6},\n  \"secs_planned\": {tm:.6},\n  \"speedup\": {:.4}\n}}\n",
        scenario.dim,
        scenario.clients,
        scenario.bit_width,
        scenario.uplink_bytes_per_sec,
        scenario.compute.as_millis(),
        t1 / tm,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_chunked_round.json"
    );
    std::fs::write(path, json).expect("write BENCH_chunked_round.json");
    println!(
        "chunked_round: m=1 {t1:.3}s, m={mstar} {tm:.3}s, speedup {:.2}x -> {path}",
        t1 / tm
    );
}

criterion_group!(benches, bench_chunked_round);
criterion_main!(benches);
