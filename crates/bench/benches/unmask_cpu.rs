//! Serial versus pooled unmask-phase CPU time.
//!
//! Unmasking recovery is SecAgg's dominant server cost under dropout
//! (Bonawitz et al., CCS'17): every survivor's self-mask plus, per
//! mid-round dropout, one full-dimension pairwise mask per
//! masking-graph neighbor. This bench isolates exactly that phase — the
//! stages through the unmasking *responses* run once per variant as
//! setup, then the measured region is `reconstruct + unmask` — and
//! compares the serial reference (inline full-length correction)
//! against the dordis-compute plane (per-chunk jobs on a worker pool,
//! each seeking the mask streams to its chunk offset).
//!
//! Results land in `BENCH_unmask_cpu.json` at the workspace root,
//! including `host_cores`: the ≥2x acceptance claim applies on a ≥4-core
//! host and is asserted only there (a 1-core container records ~1x).
//! `UNMASK_CPU_SMOKE=1` shrinks the grid for CI and skips the JSON
//! write; both paths always assert bit-equality.
//!
//! ```sh
//! cargo bench -p dordis-bench --bench unmask_cpu
//! UNMASK_CPU_SMOKE=1 cargo bench -p dordis-bench --bench unmask_cpu
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use dordis_compute::JobOutcome;
use dordis_net::compute::ComputePlane;
use dordis_pipeline::ChunkPlan;
use dordis_secagg::client::ClientInput;
use dordis_secagg::driver::run_until_unmasking;
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::messages::UnmaskingResponse;
use dordis_secagg::server::Server;
use dordis_secagg::{ClientId, RoundParams, ThreatModel};

const BITS: u32 = 20;
const SEED: u64 = 90_210;
const CHUNKS: usize = 8;

fn params(n: u32, dim: usize) -> RoundParams {
    let graph = MaskingGraph::harary_for(n as usize);
    // SecAgg+ convention: the share threshold is ~2/3 of the masking
    // degree, leaving deg/3 per-neighborhood dropout tolerance
    // (`share_threshold` is min(threshold, degree)).
    let threshold = (2 * graph.degree(n as usize) / 3).max(2);
    RoundParams {
        round: 1,
        clients: (0..n).collect(),
        threshold,
        bit_width: BITS,
        vector_len: dim,
        noise_components: 0,
        threat_model: ThreatModel::SemiHonest,
        graph,
    }
}

/// Stages 0–3 plus the unmasking responses — the setup outside the
/// measured region (the shared `run_until_unmasking` driver; `dropped`
/// clients vanish before the masked input, forcing pairwise recovery).
fn round_until_unmasking(
    p: &RoundParams,
    plan: &ChunkPlan,
    dropped: &[ClientId],
) -> (Server, Vec<UnmaskingResponse>) {
    let dim = p.vector_len;
    let (server, responses, _) = run_until_unmasking(p, plan, dropped, SEED, |id| ClientInput {
        vector: (0..dim)
            .map(|i| (u64::from(id) * 131 + i as u64 * 17) & ((1 << BITS) - 1))
            .collect(),
        noise_seeds: Vec::new(),
    })
    .expect("round setup");
    (server, responses)
}

/// Serial unmask phase: reconstruct + inline per-chunk unmasking.
fn serial_unmask(mut server: Server, responses: Vec<UnmaskingResponse>) -> (Duration, Vec<u64>) {
    let start = Instant::now();
    server.collect_unmasking(responses).expect("serial unmask");
    let wall = start.elapsed();
    (wall, server.finish().sum)
}

/// Pooled unmask phase: plan + per-chunk jobs on the compute plane
/// (exactly the code path the networked coordinator runs with
/// `--workers N`).
fn pooled_unmask(
    mut server: Server,
    responses: Vec<UnmaskingResponse>,
    plan: &ChunkPlan,
    plane: &mut ComputePlane,
) -> (Duration, Vec<u64>) {
    let start = Instant::now();
    let jobs = Arc::new(server.plan_unmasking(responses).expect("plan"));
    for c in 0..plan.chunks() {
        let inputs = server.take_chunk_inputs(c).expect("take inputs");
        let jobs = Arc::clone(&jobs);
        let range = plan.range(c);
        let bits = plan.bit_width();
        plane.submit(c, move || {
            dordis_secagg::server::unmask_chunk_task(&inputs, &jobs, range.start, range.len(), bits)
        });
    }
    let mut installed = 0;
    while installed < plan.chunks() {
        let (c, outcome) = plane.wait_complete().expect("completion");
        match outcome {
            JobOutcome::Done(sum) => server.install_chunk_sum(c, sum).expect("install"),
            JobOutcome::Panicked(m) => panic!("worker panicked: {m}"),
        }
        installed += 1;
    }
    let wall = start.elapsed();
    (wall, server.finish().sum)
}

struct Row {
    clients: u32,
    dropout_rate: f64,
    dim: usize,
    serial: Duration,
    pooled: Duration,
}

fn main() {
    let smoke = std::env::var("UNMASK_CPU_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);
    let workers = host_cores.clamp(1, CHUNKS);

    // clients × dropout-rate × dim; the acceptance point is
    // (128, 0.2, ≥50k).
    let grid: Vec<(u32, f64, usize)> = if smoke {
        vec![(16, 0.0, 4_096), (16, 0.2, 4_096)]
    } else {
        vec![
            (32, 0.0, 50_000),
            (32, 0.2, 50_000),
            (128, 0.0, 50_000),
            (128, 0.2, 50_000),
            (128, 0.2, 200_000),
        ]
    };
    let best_of = if smoke { 1 } else { 3 };

    let mut plane = ComputePlane::new(workers, None);
    let mut rows = Vec::new();
    for &(n, rate, dim) in &grid {
        let p = params(n, dim);
        let plan = ChunkPlan::aligned(dim, CHUNKS, BITS).expect("plan");
        // Dropouts spread uniformly around the Harary ring, so no one
        // neighborhood loses more shares than the threshold tolerates.
        let k = (n as f64 * rate) as u32;
        let dropped: Vec<ClientId> = (0..k).map(|i| i * n / k.max(1)).collect();

        let mut row = Row {
            clients: n,
            dropout_rate: rate,
            dim,
            serial: Duration::MAX,
            pooled: Duration::MAX,
        };
        let mut serial_sum = Vec::new();
        let mut pooled_sum = Vec::new();
        for _ in 0..best_of {
            let (server, responses) = round_until_unmasking(&p, &plan, &dropped);
            let (wall, sum) = serial_unmask(server, responses);
            row.serial = row.serial.min(wall);
            serial_sum = sum;

            let (server, responses) = round_until_unmasking(&p, &plan, &dropped);
            let (wall, sum) = pooled_unmask(server, responses, &plan, &mut plane);
            row.pooled = row.pooled.min(wall);
            pooled_sum = sum;
        }
        assert_eq!(
            serial_sum, pooled_sum,
            "pooled unmask not bit-equal at n={n} rate={rate} dim={dim}"
        );
        println!(
            "n = {:3}, dropout = {:>4.0}%, d = {:6}: serial {:9.2} ms | pooled({workers}w) \
             {:9.2} ms | speedup {:.2}x",
            n,
            rate * 100.0,
            dim,
            row.serial.as_secs_f64() * 1e3,
            row.pooled.as_secs_f64() * 1e3,
            row.serial.as_secs_f64() / row.pooled.as_secs_f64().max(1e-9),
        );
        rows.push(row);
    }

    // Acceptance claim: ≥2x at 128 clients / 20% dropout / dim ≥ 50k —
    // only meaningful with real cores to parallelize over.
    if host_cores >= 4 {
        for row in &rows {
            if row.clients == 128 && row.dropout_rate >= 0.2 && row.dim >= 50_000 {
                let speedup = row.serial.as_secs_f64() / row.pooled.as_secs_f64().max(1e-9);
                assert!(
                    speedup >= 2.0,
                    "pooled unmask speedup {speedup:.2}x < 2x at the acceptance point \
                     ({host_cores} cores, {workers} workers)"
                );
            }
        }
    }

    if smoke {
        println!("smoke mode: skipping BENCH_unmask_cpu.json");
        return;
    }
    let mut entries = String::new();
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\n      \"clients\": {},\n      \"dropout_rate\": {},\n      \
             \"dim\": {},\n      \"serial_ms\": {:.3},\n      \"pooled_ms\": {:.3},\n      \
             \"speedup\": {:.4}\n    }}",
            row.clients,
            row.dropout_rate,
            row.dim,
            row.serial.as_secs_f64() * 1e3,
            row.pooled.as_secs_f64() * 1e3,
            row.serial.as_secs_f64() / row.pooled.as_secs_f64().max(1e-9),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"unmask_cpu\",\n  \"host_cores\": {host_cores},\n  \
         \"workers\": {workers},\n  \"chunks\": {CHUNKS},\n  \"bit_width\": {BITS},\n  \
         \"configs\": [\n{entries}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_unmask_cpu.json");
    std::fs::write(path, json).expect("write BENCH_unmask_cpu.json");
    println!("wrote {path}");
}
