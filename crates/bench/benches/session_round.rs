//! Persistent-connection sessions versus reconnect-per-round, on real
//! TCP sockets.
//!
//! The Dordis pipeline amortization only pays off when rounds run back
//! to back; this bench measures the session layer's contribution: R
//! rounds over one warm connection per client (one `Session`, round
//! announces, per-round `RoundMachine`s) against the same R rounds
//! executed the pre-session way — a fresh TCP connection, client
//! thread, and join handshake for every client in every round. Both
//! variants run the identical per-round protocol with identical
//! per-round seeds ([`round_rng_seed`]), so the delta is pure
//! connection/session overhead.
//!
//! Results land in `BENCH_session_round.json` at the workspace root;
//! `SESSION_ROUND_SMOKE=1` shrinks the schedule for CI and skips the
//! JSON write.
//!
//! ```sh
//! cargo bench -p dordis-bench --bench session_round
//! SESSION_ROUND_SMOKE=1 cargo bench -p dordis-bench --bench session_round
//! ```

use std::time::{Duration, Instant};

use dordis_net::coordinator::{run_coordinator, CollectMode, CoordinatorConfig};
use dordis_net::faults::FaultPlan;
use dordis_net::runtime::{
    round_rng_seed, run_client, run_session_client, ClientOptions, SessionClientOptions,
    SessionEndKind,
};
use dordis_net::session::{Seating, Session, SessionConfig};
use dordis_net::tcp::{TcpAcceptor, TcpChannel};
use dordis_net::transport::Acceptor as _;
use dordis_secagg::client::ClientInput;
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::{ClientId, RoundParams, ThreatModel};
use dordis_telemetry::Telemetry;

const N: u32 = 8;
const BITS: u32 = 16;
const CHUNKS: usize = 4;
const SEED: u64 = 1_234_987;
const JOIN_TIMEOUT: Duration = Duration::from_secs(30);
const STAGE_TIMEOUT: Duration = Duration::from_secs(30);

fn params_for_round(round: u64, dim: usize) -> RoundParams {
    RoundParams {
        round,
        clients: (0..N).collect(),
        threshold: (N as usize) / 2 + 1,
        bit_width: BITS,
        vector_len: dim,
        noise_components: 0,
        threat_model: ThreatModel::SemiHonest,
        graph: MaskingGraph::harary_for(N as usize),
    }
}

fn input_for(id: ClientId, round: u64, dim: usize) -> ClientInput {
    let mask = (1u64 << BITS) - 1;
    ClientInput {
        vector: (0..dim)
            .map(|i| (u64::from(id) * 131 + round * 977 + i as u64 * 17) & mask)
            .collect(),
        noise_seeds: Vec::new(),
    }
}

/// R rounds over one persistent connection per client.
fn persistent(rounds: u64, dim: usize, telemetry: Telemetry) -> Duration {
    let mut acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind");
    let addr = acceptor.local_addr();
    let start = Instant::now();
    let mut handles = Vec::new();
    for id in 0..N {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            let mut chan = TcpChannel::connect(&addr).expect("connect");
            let opts = SessionClientOptions {
                id,
                rng_seed: SEED,
                recv_timeout: Duration::from_secs(120),
                silent_linger: Duration::from_secs(1),
            };
            let report = run_session_client(
                &mut chan,
                &opts,
                |_| None,
                |_| None,
                |r, _params, _cohort, _payload| Ok(input_for(id, r, dim)),
                |_| None,
            )
            .expect("session client");
            assert!(matches!(report.end, SessionEndKind::Ended));
            assert_eq!(report.rounds.len() as u64, rounds);
        }));
    }
    let cfg = SessionConfig {
        first_round: 1,
        rounds,
        join_timeout: JOIN_TIMEOUT,
        stage_timeout: STAGE_TIMEOUT,
        chunks: CHUNKS,
        chunk_compute: None,
        tick: CoordinatorConfig::DEFAULT_TICK,
        mode: CollectMode::Reactor,
        workers: 0,
        shards: 1,
        ingress_budget: 0,
        announce: true,
        population: (0..N).collect(),
        seating: Seating::Roster,
        params_for: Box::new(move |round, _| params_for_round(round, dim)),
        telemetry,
        metrics_addr: None,
        replica: None,
        faults: FaultPlan::none(),
    };
    let mut session = Session::new(&mut acceptor, cfg).expect("session");
    for _ in 0..rounds {
        let report = session.run_round(&[]).expect("round");
        assert_eq!(report.outcome.survivors.len(), N as usize);
    }
    session.finish();
    for h in handles {
        h.join().expect("client thread");
    }
    start.elapsed()
}

/// The same R rounds the pre-session way: fresh connections, client
/// threads, and a full join handshake every round.
fn reconnect_per_round(rounds: u64, dim: usize) -> Duration {
    let mut acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind");
    let addr = acceptor.local_addr();
    let start = Instant::now();
    for round in 1..=rounds {
        let mut handles = Vec::new();
        for id in 0..N {
            let addr = addr.clone();
            handles.push(std::thread::spawn(move || {
                let mut chan = TcpChannel::connect(&addr).expect("connect");
                let opts = ClientOptions {
                    id,
                    rng_seed: round_rng_seed(SEED, round),
                    fail: None,
                    recv_timeout: Duration::from_secs(120),
                    silent_linger: Duration::from_secs(1),
                };
                run_client(
                    &mut chan,
                    &opts,
                    move |_| Ok(input_for(id, round, dim)),
                    |_| None,
                )
                .expect("client run");
            }));
        }
        let cfg = CoordinatorConfig::new(
            params_for_round(round, dim),
            JOIN_TIMEOUT,
            STAGE_TIMEOUT,
            CHUNKS,
            None,
        );
        let report = run_coordinator(&mut acceptor, &cfg).expect("round");
        assert_eq!(report.outcome.survivors.len(), N as usize);
        for h in handles {
            h.join().expect("client thread");
        }
    }
    start.elapsed()
}

struct Row {
    rounds: u64,
    persistent: Duration,
    reconnect: Duration,
}

fn main() {
    let smoke = std::env::var("SESSION_ROUND_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let dim = if smoke { 512 } else { 4096 };
    let schedule: &[u64] = if smoke { &[1, 2] } else { &[1, 5, 10] };
    let best_of = if smoke { 1 } else { 3 };

    let mut rows = Vec::new();
    for &rounds in schedule {
        // Per-variant minima over the repetitions: each variant's best
        // run is its least-noisy one, and the two need not come from
        // the same repetition.
        let mut row = Row {
            rounds,
            persistent: Duration::MAX,
            reconnect: Duration::MAX,
        };
        for _ in 0..best_of {
            row.persistent = row
                .persistent
                .min(persistent(rounds, dim, Telemetry::disabled()));
            row.reconnect = row.reconnect.min(reconnect_per_round(rounds, dim));
        }
        println!(
            "R = {:2}: persistent {:8.2} ms | reconnect-per-round {:8.2} ms | speedup {:.2}x \
             ({:.2} ms saved per round)",
            rounds,
            row.persistent.as_secs_f64() * 1e3,
            row.reconnect.as_secs_f64() * 1e3,
            row.reconnect.as_secs_f64() / row.persistent.as_secs_f64().max(1e-9),
            (row.reconnect.as_secs_f64() - row.persistent.as_secs_f64()) * 1e3 / rounds as f64,
        );
        rows.push(row);
    }

    // Telemetry overhead: the same persistent session with every probe
    // live (spans + metrics) against the disabled-handle baseline the
    // schedule above already measured. The disabled handle is the
    // default everywhere, so this is the price of *asking* for
    // observability, not of shipping it.
    let t_rounds = rows.last().expect("rows").rounds;
    let t_off = rows.last().expect("rows").persistent;
    let mut t_on = Duration::MAX;
    for _ in 0..best_of {
        t_on = t_on.min(persistent(t_rounds, dim, Telemetry::enabled()));
    }
    let overhead_pct = (t_on.as_secs_f64() / t_off.as_secs_f64().max(1e-9) - 1.0) * 100.0;
    println!(
        "telemetry: disabled {:8.2} ms | enabled {:8.2} ms | overhead {overhead_pct:+.1}% (R = {t_rounds})",
        t_off.as_secs_f64() * 1e3,
        t_on.as_secs_f64() * 1e3,
    );

    if smoke {
        println!("smoke mode: skipping BENCH_session_round.json");
        return;
    }
    // Loose guard (sockets + scheduler noise): enabled telemetry may
    // cost something, but it must never dominate the round time.
    assert!(
        t_on.as_secs_f64() <= t_off.as_secs_f64() * 2.0,
        "enabled telemetry more than doubled the session time \
         ({t_on:?} vs {t_off:?})"
    );
    let last = rows.last().expect("rows");
    assert!(
        last.persistent < last.reconnect,
        "persistent connections should beat reconnect-per-round at R = {}",
        last.rounds
    );
    let mut entries = String::new();
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\n      \"rounds\": {},\n      \"persistent_ms\": {:.3},\n      \
             \"reconnect_per_round_ms\": {:.3},\n      \"speedup\": {:.4}\n    }}",
            row.rounds,
            row.persistent.as_secs_f64() * 1e3,
            row.reconnect.as_secs_f64() * 1e3,
            row.reconnect.as_secs_f64() / row.persistent.as_secs_f64().max(1e-9),
        ));
    }
    let telemetry_section = format!(
        "  \"telemetry\": {{\n    \"rounds\": {t_rounds},\n    \"disabled_ms\": {:.3},\n    \
         \"enabled_ms\": {:.3},\n    \"overhead_pct\": {overhead_pct:.2}\n  }},\n",
        t_off.as_secs_f64() * 1e3,
        t_on.as_secs_f64() * 1e3,
    );
    let json = format!(
        "{{\n  \"bench\": \"session_round\",\n  \"transport\": \"tcp\",\n  \"clients\": {N},\n  \
         \"dim\": {dim},\n  \"bit_width\": {BITS},\n  \"chunks\": {CHUNKS},\n\
         {telemetry_section}  \"configs\": [\n{entries}\n  ]\n}}\n"
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_session_round.json"
    );
    std::fs::write(path, json).expect("write BENCH_session_round.json");
    println!("wrote {path}");
}
