//! Microbenchmarks of the cryptographic substrate.
//!
//! These are the numbers behind the `UnitCosts::rust_native` calibration
//! of the simulator's cost model: PRG (mask) expansion throughput, key
//! agreement, signatures, Shamir, and AEAD.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dordis_crypto::ed25519::SigningKey;
use dordis_crypto::ka::KeyPair;
use dordis_crypto::prg::Prg;
use dordis_crypto::sha256::sha256;
use dordis_crypto::{aead, shamir};
use rand::SeedableRng;

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [64usize, 4096, 65536] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| sha256(d));
        });
    }
    g.finish();
}

fn bench_mask_expansion(c: &mut Criterion) {
    // The dominant SecAgg cost: expanding pairwise masks in Z_2^20.
    let mut g = c.benchmark_group("prg_mask_expand");
    for elems in [1_000usize, 100_000] {
        let mut out = vec![0u64; elems];
        g.throughput(Throughput::Elements(elems as u64));
        g.bench_with_input(BenchmarkId::from_parameter(elems), &elems, |b, _| {
            b.iter(|| {
                Prg::new(&[7u8; 32], b"bench").fill_mod2b(20, &mut out);
                out[0]
            });
        });
    }
    g.finish();
}

fn bench_x25519(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let a = KeyPair::generate(&mut rng);
    let b_kp = KeyPair::generate(&mut rng);
    c.bench_function("x25519_agree", |b| {
        b.iter(|| a.agree(&b_kp.public));
    });
    c.bench_function("x25519_keygen", |b| {
        b.iter(|| KeyPair::generate(&mut rng).public);
    });
}

fn bench_signatures(c: &mut Criterion) {
    let sk = SigningKey::from_seed(&[3u8; 32]);
    let vk = sk.verifying_key();
    let msg = b"round 12 consistency check over U3";
    let sig = sk.sign(msg);
    c.bench_function("ed25519_sign", |b| b.iter(|| sk.sign(msg)));
    c.bench_function("ed25519_verify", |b| b.iter(|| vk.verify(msg, &sig)));
}

fn bench_shamir(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let secret = [9u8; 32];
    c.bench_function("shamir_share_32B_t50_n100", |b| {
        b.iter(|| shamir::share(&secret, 50, 100, &mut rng).unwrap());
    });
    // Neighborhood-sized sharing: with neighborhood-scoped x-coordinates
    // a client only evaluates `deg + 1` points — 25 at n = 1024 under
    // the recommended Harary graph — regardless of roster size.
    c.bench_function("shamir_share_32B_t24_n25", |b| {
        b.iter(|| shamir::share(&secret, 24, 25, &mut rng).unwrap());
    });
    let shares = shamir::share(&secret, 50, 100, &mut rng).unwrap();
    c.bench_function("shamir_reconstruct_32B_t50", |b| {
        b.iter(|| shamir::reconstruct(&shares[..50], 50).unwrap());
    });
}

fn bench_aead(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let key = [5u8; 32];
    let bundle = vec![0u8; 2048]; // A realistic share bundle.
    let ct = aead::seal(&key, b"aad", &bundle, &mut rng);
    c.bench_function("aead_seal_2KiB", |b| {
        b.iter(|| aead::seal(&key, b"aad", &bundle, &mut rng));
    });
    c.bench_function("aead_open_2KiB", |b| {
        b.iter(|| aead::open(&key, b"aad", &ct).unwrap());
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_mask_expansion,
    bench_x25519,
    bench_signatures,
    bench_shamir,
    bench_aead
);
criterion_main!(benches);
