//! Peak memory under a 1k-connection ingress burst: budgeted versus
//! unbudgeted frame pool.
//!
//! The memory plane's claim is that `--ingress-budget` turns
//! coordinator memory from O(cohort × update) into O(budget): when
//! every client blasts its masked-input chunks at once, the unbudgeted
//! reactor buffers the whole burst in userspace, while the budgeted one
//! pauses over-share connections (dropping their read interest, so TCP
//! flow control pushes back) and drains the backlog at aggregation
//! speed.
//!
//! `VmHWM` — the process's lifetime peak resident set — is monotonic,
//! so each scenario runs the coordinator in its **own child process**
//! (re-exec of this binary, role-switched via `DORDIS_BURST_ROLE`), and
//! the 1k clients run in a third process so their input vectors never
//! pollute the coordinator's peak. The orchestrator pins both
//! scenarios' aggregates bit-equal to the in-memory driver round,
//! checks the broadcast path encodes O(1) frames per round regardless
//! of cohort size, and writes `BENCH_ingress_burst.json` (peak RSS +
//! join-latency percentiles) at the workspace root.
//!
//! `INGRESS_BURST_SMOKE=1` shrinks the cohort for CI; the JSON is
//! written in both modes (CI validates its shape), but the ≥3x RSS
//! ratio is only asserted at full scale.
//!
//! ```sh
//! cargo bench -p dordis-bench --bench ingress_burst
//! INGRESS_BURST_SMOKE=1 cargo bench -p dordis-bench --bench ingress_burst
//! ```

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write as _};
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use dordis_net::coordinator::{CollectMode, CoordinatorConfig};
use dordis_net::faults::FaultPlan;
use dordis_net::runtime::{round_rng_seed, run_session_client, SessionClientOptions};
use dordis_net::session::{Seating, Session, SessionConfig};
use dordis_net::tcp::{TcpAcceptor, TcpChannel};
use dordis_net::transport::Acceptor as _;
use dordis_secagg::client::ClientInput;
use dordis_secagg::driver::{run_round, DropoutSchedule, RoundSpec};
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::{ClientId, RoundParams};
use dordis_telemetry::Telemetry;

const BITS: u32 = 16;
const SEED: u64 = 90_210;
const ROUND: u64 = 1;

/// Everything a child process needs, carried in the environment.
#[derive(Clone)]
struct Scale {
    clients: u32,
    dim: usize,
    chunks: usize,
    budget: u64,
}

impl Scale {
    fn from_env() -> Scale {
        let get = |k: &str| -> u64 {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("missing/bad {k}"))
        };
        Scale {
            clients: get("DORDIS_BURST_N") as u32,
            dim: get("DORDIS_BURST_DIM") as usize,
            chunks: get("DORDIS_BURST_CHUNKS") as usize,
            budget: get("DORDIS_BURST_BUDGET"),
        }
    }
}

fn params(s: &Scale) -> RoundParams {
    RoundParams {
        round: ROUND,
        clients: (0..s.clients).collect(),
        threshold: (s.clients as usize / 2).clamp(2, 16),
        bit_width: BITS,
        vector_len: s.dim,
        noise_components: 0,
        threat_model: dordis_secagg::ThreatModel::SemiHonest,
        graph: MaskingGraph::recommended(s.clients as usize),
    }
}

fn input_for(id: ClientId, dim: usize) -> ClientInput {
    let mask = (1u64 << BITS) - 1;
    ClientInput {
        vector: (0..dim)
            .map(|i| (u64::from(id) * 131 + ROUND * 977 + i as u64 * 17) & mask)
            .collect(),
        noise_seeds: Vec::new(),
    }
}

/// FNV-1a over the aggregate, so bit-equality travels across process
/// boundaries as one number.
fn sum_hash(sum: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in sum {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Peak resident set (`VmHWM`) of this process, in KiB.
fn peak_rss_kib() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

// ---------------------------------------------------------------------
// Child: the coordinator under measurement.
// ---------------------------------------------------------------------

fn coordinator_child(s: &Scale) {
    let telemetry = Telemetry::enabled();
    let mut acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind");
    println!("ADDR {}", acceptor.local_addr());
    std::io::stdout().flush().expect("flush addr");

    let s2 = s.clone();
    let cfg = SessionConfig {
        first_round: ROUND,
        rounds: 1,
        join_timeout: Duration::from_secs(120),
        stage_timeout: Duration::from_secs(240),
        chunks: s.chunks,
        chunk_compute: None,
        tick: CoordinatorConfig::DEFAULT_TICK,
        mode: CollectMode::Reactor,
        workers: 0,
        shards: 1,
        ingress_budget: s.budget,
        announce: true,
        population: (0..s.clients).collect(),
        seating: Seating::Roster,
        params_for: Box::new(move |round, _| {
            let mut p = params(&s2);
            p.round = round;
            p
        }),
        telemetry: telemetry.clone(),
        metrics_addr: None,
        replica: None,
        faults: FaultPlan::none(),
    };
    let mut session = Session::new(&mut acceptor, cfg).expect("session");
    let start = Instant::now();
    let report = session.run_round(&[]).expect("round");
    let wall = start.elapsed();
    session.finish();

    let snap = telemetry.snapshot().expect("enabled telemetry");
    let (polls, events) = report
        .reactor
        .as_ref()
        .map_or((0, 0), |r| (r.polls, r.events));
    println!(
        "RESULT peak_rss_kib={} survivors={} sum_hash={:#x} wall_ms={} \
         broadcast_encodes={} frames_recycled={} frames_allocated={} pauses={} \
         high_water_in={} polls={polls} events={events}",
        peak_rss_kib(),
        report.outcome.survivors.len(),
        sum_hash(&report.outcome.sum),
        wall.as_millis(),
        snap.get("dordis_broadcast_encodes_total"),
        snap.get("dordis_frames_recycled_total"),
        snap.get("dordis_frames_allocated_total"),
        snap.get("dordis_ingress_pauses_total"),
        snap.get("dordis_buffered_bytes_high_water{direction=\"in\"}"),
    );
}

// ---------------------------------------------------------------------
// Child: the 1k-client burst.
// ---------------------------------------------------------------------

fn clients_child(s: &Scale) {
    let addr = std::env::var("DORDIS_BURST_ADDR").expect("DORDIS_BURST_ADDR");
    let join_latencies: Mutex<Vec<Duration>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for id in 0..s.clients {
            let addr = &addr;
            let dim = s.dim;
            let join_latencies = &join_latencies;
            scope.spawn(move || {
                let connect_at = Instant::now();
                let mut chan = TcpChannel::connect(addr).expect("connect");
                // A paused coordinator legitimately stalls our uplink
                // for a while; the default 10 s send deadline is sized
                // for failure detection, not deliberate backpressure.
                chan.set_write_timeout(Duration::from_secs(180));
                let opts = SessionClientOptions {
                    id,
                    rng_seed: SEED,
                    recv_timeout: Duration::from_secs(240),
                    silent_linger: Duration::from_secs(1),
                };
                let report = run_session_client(
                    &mut chan,
                    &opts,
                    |_| None,
                    |_| None,
                    |_, _params, _cohort, _payload| {
                        // Seated: the join handshake round-trip is done.
                        join_latencies
                            .lock()
                            .expect("latencies")
                            .push(connect_at.elapsed());
                        Ok(input_for(id, dim))
                    },
                    |_| None,
                )
                .expect("session client");
                assert_eq!(report.rounds.len(), 1, "client {id} missed the round");
            });
        }
    });
    let mut lats = join_latencies.into_inner().expect("latencies");
    lats.sort_unstable();
    let pct = |p: f64| -> f64 {
        if lats.is_empty() {
            return 0.0;
        }
        let idx = ((lats.len() as f64 - 1.0) * p).round() as usize;
        lats[idx].as_secs_f64() * 1e3
    };
    println!(
        "RESULT joined={} join_p50_ms={:.3} join_p99_ms={:.3}",
        lats.len(),
        pct(0.50),
        pct(0.99),
    );
}

// ---------------------------------------------------------------------
// Orchestrator.
// ---------------------------------------------------------------------

/// One scenario's numbers, parsed from the children's RESULT lines.
#[derive(Default, Clone)]
struct Outcome {
    fields: BTreeMap<String, String>,
}

impl Outcome {
    fn num(&self, key: &str) -> u64 {
        let raw = self
            .fields
            .get(key)
            .unwrap_or_else(|| panic!("missing {key}"));
        if let Some(hex) = raw.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).expect("hex field")
        } else {
            raw.parse().expect("numeric field")
        }
    }

    fn float(&self, key: &str) -> f64 {
        self.fields
            .get(key)
            .unwrap_or_else(|| panic!("missing {key}"))
            .parse()
            .expect("float field")
    }
}

fn parse_result(line: &str) -> Outcome {
    let mut fields = BTreeMap::new();
    for kv in line.trim_start_matches("RESULT ").split_whitespace() {
        if let Some((k, v)) = kv.split_once('=') {
            fields.insert(k.to_string(), v.to_string());
        }
    }
    Outcome { fields }
}

/// Reads child stdout lines until one starts with `prefix`.
fn read_line_with(child: &mut Child, reader: &mut impl BufRead, prefix: &str) -> String {
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("child stdout") == 0 {
            let _ = child.kill();
            panic!("child exited before printing `{prefix}`");
        }
        if line.starts_with(prefix) {
            return line.trim_end().to_string();
        }
        // Pass through the child's narration.
        print!("  | {line}");
    }
}

fn spawn_role(role: &str, s: &Scale, extra: &[(&str, &str)]) -> Child {
    let exe = std::env::current_exe().expect("current exe");
    let mut cmd = Command::new(exe);
    cmd.env("DORDIS_BURST_ROLE", role)
        .env("DORDIS_BURST_N", s.clients.to_string())
        .env("DORDIS_BURST_DIM", s.dim.to_string())
        .env("DORDIS_BURST_CHUNKS", s.chunks.to_string())
        .env("DORDIS_BURST_BUDGET", s.budget.to_string())
        .stdout(Stdio::piped());
    for (k, v) in extra {
        cmd.env(k, v);
    }
    cmd.spawn().expect("spawn child")
}

/// Runs one scenario: a coordinator child at the given budget plus a
/// clients child, returning (coordinator numbers, client numbers).
fn run_scenario(s: &Scale) -> (Outcome, Outcome) {
    let mut coord = spawn_role("coord", s, &[]);
    let mut coord_out = BufReader::new(coord.stdout.take().expect("coord stdout"));
    let addr_line = read_line_with(&mut coord, &mut coord_out, "ADDR ");
    let addr = addr_line.trim_start_matches("ADDR ").to_string();

    let mut clients = spawn_role("clients", s, &[("DORDIS_BURST_ADDR", addr.as_str())]);
    let mut clients_out = BufReader::new(clients.stdout.take().expect("clients stdout"));

    let coord_result = read_line_with(&mut coord, &mut coord_out, "RESULT ");
    let clients_result = read_line_with(&mut clients, &mut clients_out, "RESULT ");
    assert!(
        coord.wait().expect("coord wait").success(),
        "coordinator failed"
    );
    assert!(
        clients.wait().expect("clients wait").success(),
        "clients failed"
    );
    (parse_result(&coord_result), parse_result(&clients_result))
}

fn orchestrate() {
    let smoke = std::env::var("INGRESS_BURST_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    // Payloads are bit-packed (BITS bits per element), so a client's
    // masked upload is dim × BITS / 8 bytes: 128 KiB at full scale —
    // enough that 1k unbudgeted connections dwarf the coordinator's
    // baseline RSS — and 32 KiB in smoke, still past the per-connection
    // fair-share floor so pausing is exercised.
    let base = Scale {
        clients: if smoke { 48 } else { 1000 },
        dim: if smoke { 16_384 } else { 65_536 },
        chunks: 16,
        budget: 0,
    };
    let budget = if smoke { 128 * 1024 } else { 4 * 1024 * 1024 };

    // Ground truth: the same round through the in-memory driver.
    let inputs: BTreeMap<ClientId, ClientInput> = (0..base.clients)
        .map(|id| (id, input_for(id, base.dim)))
        .collect();
    let (driver, _) = run_round(RoundSpec {
        params: params(&base),
        inputs,
        dropout: DropoutSchedule::none(),
        rng_seed: round_rng_seed(SEED, ROUND),
    })
    .expect("driver round");
    let expected_hash = sum_hash(&driver.sum);
    println!(
        "driver:    {} survivors, sum hash {expected_hash:#x}",
        driver.survivors.len()
    );

    let mut rows = Vec::new();
    for budget_bytes in [0u64, budget] {
        let s = Scale {
            budget: budget_bytes,
            ..base.clone()
        };
        let label = if budget_bytes == 0 {
            "unbudgeted".to_string()
        } else {
            format!("budget {} MiB", budget_bytes as f64 / (1024.0 * 1024.0))
        };
        let (coord, clients) = run_scenario(&s);
        println!(
            "{label}: peak RSS {} KiB | join p50 {:.1} ms p99 {:.1} ms | \
             {} pauses | {} broadcast encodes | wall {} ms",
            coord.num("peak_rss_kib"),
            clients.float("join_p50_ms"),
            clients.float("join_p99_ms"),
            coord.num("pauses"),
            coord.num("broadcast_encodes"),
            coord.num("wall_ms"),
        );

        // Bit-equality: both budget regimes must reproduce the driver
        // aggregate exactly — the budget only changes *when* bytes are
        // read, never what is computed from them.
        assert_eq!(
            coord.num("survivors") as usize,
            base.clients as usize,
            "{label}: lost clients"
        );
        assert_eq!(
            coord.num("sum_hash"),
            expected_hash,
            "{label}: aggregate diverged from the in-memory driver"
        );
        assert_eq!(
            clients.num("joined"),
            u64::from(base.clients),
            "{label}: not every client was seated"
        );
        // Zero-copy broadcast: encodes per round are O(1), not
        // O(cohort) — announce + six stage broadcasts + session end.
        assert!(
            coord.num("broadcast_encodes") <= 16,
            "{label}: {} broadcast encodes for one round",
            coord.num("broadcast_encodes")
        );
        // The frame pool is actually cycling. A one-round burst parks
        // every in-flight chunk frame until its chunk aggregates, so
        // the first wave of takes legitimately allocates; what must
        // hold is that recycled allocations are being *reused* at all.
        assert!(
            coord.num("frames_recycled") > 0,
            "{label}: the frame pool never served a recycled allocation"
        );
        if budget_bytes == 0 {
            assert_eq!(coord.num("pauses"), 0, "unbudgeted run paused");
        } else {
            assert!(coord.num("pauses") > 0, "budgeted run never paused");
        }
        rows.push((budget_bytes, coord, clients));
    }

    let unbudgeted = rows[0].1.num("peak_rss_kib") as f64;
    let budgeted = rows[1].1.num("peak_rss_kib") as f64;
    let ratio = unbudgeted / budgeted.max(1.0);
    println!("peak RSS ratio (unbudgeted / budgeted): {ratio:.2}x");
    if !smoke {
        assert!(
            ratio >= 3.0,
            "ingress budget should cut peak RSS at least 3x \
             ({unbudgeted:.0} KiB vs {budgeted:.0} KiB)"
        );
        // Backpressure paces arrivals to aggregation speed, so chunk
        // frames cycle through the pool instead of piling up as fresh
        // allocations.
        assert!(
            rows[1].1.num("frames_allocated") <= rows[0].1.num("frames_allocated"),
            "budgeted run allocated more frames ({}) than unbudgeted ({})",
            rows[1].1.num("frames_allocated"),
            rows[0].1.num("frames_allocated"),
        );
    }

    let mut entries = String::new();
    for (i, (budget_bytes, coord, clients)) in rows.iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\n      \"budget_bytes\": {budget_bytes},\n      \
             \"peak_rss_kib\": {},\n      \"join_p50_ms\": {:.3},\n      \
             \"join_p99_ms\": {:.3},\n      \"round_wall_ms\": {},\n      \
             \"ingress_pauses\": {},\n      \"broadcast_encodes\": {},\n      \
             \"frames_recycled\": {},\n      \"frames_allocated\": {},\n      \
             \"high_water_in_bytes\": {},\n      \"reactor_polls\": {},\n      \
             \"reactor_events\": {}\n    }}",
            coord.num("peak_rss_kib"),
            clients.float("join_p50_ms"),
            clients.float("join_p99_ms"),
            coord.num("wall_ms"),
            coord.num("pauses"),
            coord.num("broadcast_encodes"),
            coord.num("frames_recycled"),
            coord.num("frames_allocated"),
            coord.num("high_water_in"),
            coord.num("polls"),
            coord.num("events"),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"ingress_burst\",\n  \"smoke\": {smoke},\n  \
         \"clients\": {},\n  \"dim\": {},\n  \"bit_width\": {BITS},\n  \
         \"chunks\": {},\n  \"peak_rss_ratio\": {ratio:.3},\n  \
         \"scenarios\": [\n{entries}\n  ]\n}}\n",
        base.clients, base.dim, base.chunks,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_ingress_burst.json"
    );
    std::fs::write(path, json).expect("write BENCH_ingress_burst.json");
    println!("wrote {path}");
}

fn main() {
    match std::env::var("DORDIS_BURST_ROLE").as_deref() {
        Ok("coord") => coordinator_child(&Scale::from_env()),
        Ok("clients") => clients_child(&Scale::from_env()),
        _ => orchestrate(),
    }
}
