//! Full-protocol benchmarks: complete SecAgg / SecAgg+ rounds in memory,
//! with and without dropout. These measure this repository's Rust
//! implementation (the `rust_native` cost regime), complementing the
//! simulated paper-testbed figures.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dordis_secagg::client::ClientInput;
use dordis_secagg::driver::{run_round, DropStage, DropoutSchedule, RoundSpec};
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::{ClientId, RoundParams, ThreatModel};

const DIM: usize = 256;

fn spec(n: u32, graph: MaskingGraph, drop: usize) -> RoundSpec {
    let inputs: BTreeMap<ClientId, ClientInput> = (0..n)
        .map(|id| {
            (
                id,
                ClientInput {
                    vector: vec![u64::from(id) % (1 << 16); DIM],
                    noise_seeds: vec![[id as u8; 32]; 3],
                },
            )
        })
        .collect();
    let mut dropout = DropoutSchedule::none();
    for id in 0..drop as u32 {
        dropout.drop_at(id, DropStage::BeforeMaskedInput);
    }
    RoundSpec {
        params: RoundParams {
            round: 1,
            clients: (0..n).collect(),
            threshold: (n as usize * 2).div_ceil(3),
            bit_width: 16,
            vector_len: DIM,
            noise_components: 2,
            threat_model: ThreatModel::SemiHonest,
            graph,
        },
        inputs,
        dropout,
        rng_seed: 5,
    }
}

fn bench_secagg_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("secagg_round");
    g.sample_size(10);
    for n in [8u32, 16, 24] {
        g.bench_with_input(BenchmarkId::new("complete", n), &n, |b, &n| {
            b.iter(|| run_round(spec(n, MaskingGraph::Complete, 0)).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("harary", n), &n, |b, &n| {
            b.iter(|| run_round(spec(n, MaskingGraph::harary_for(n as usize), 0)).unwrap());
        });
    }
    g.finish();
}

fn bench_secagg_with_dropout(c: &mut Criterion) {
    let mut g = c.benchmark_group("secagg_round_dropout");
    g.sample_size(10);
    for drop in [0usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(drop), &drop, |b, &d| {
            b.iter(|| run_round(spec(16, MaskingGraph::Complete, d)).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_secagg_round, bench_secagg_with_dropout);
criterion_main!(benches);
