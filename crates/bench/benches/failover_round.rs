//! Coordinator failover cost: what does the replicated checkpoint
//! plane cost when nothing fails, and what does a `kill -9` cost when
//! it does?
//!
//! Three scenarios over the full networked FL driver (loopback
//! transport, VRF-sampled cohorts, privacy ledger):
//!
//! 1. `baseline` — replication disabled: the zero-overhead reference.
//! 2. `replicated` — a standby installs a checkpoint at every round
//!    boundary and every commit is gated on its ack; no crash.
//! 3. `failover:<kill-point>` — the primary dies at the scripted
//!    [`KillPoint`] mid-session; the standby promotes and finishes.
//!
//! Every scenario must stay bit-equal to the in-memory reference
//! ([`train_session`]) — this bench prices the mechanisms, the test
//! matrix in `crates/core/tests/failover.rs` proves them. Recovery
//! cost is reported as wall time over the `replicated` run plus the
//! rounds re-executed (1 for a mid-round kill, whose uncommitted work
//! is lost; 0 for a kill after the backup's ack, where the successor
//! resumes past the committed round).
//!
//! Results land in `BENCH_failover_round.json` at the workspace root;
//! `FAILOVER_ROUND_SMOKE=1` shrinks the schedule for CI and skips the
//! JSON write.
//!
//! ```sh
//! cargo bench -p dordis-bench --bench failover_round
//! FAILOVER_ROUND_SMOKE=1 cargo bench -p dordis-bench --bench failover_round
//! ```

use std::time::{Duration, Instant};

use dordis_core::config::TaskSpec;
use dordis_core::sampling::SamplingConfig;
use dordis_core::session::{
    train_session, train_session_networked, train_session_networked_failover, CrashSpec,
    FlSessionOptions, FlSessionReport,
};
use dordis_net::faults::KillPoint;

const SEED: u64 = 20_240_424;

fn opts(rounds: u32) -> (TaskSpec, FlSessionOptions) {
    let spec = TaskSpec::tiny_for_tests(SEED);
    let sample = SamplingConfig {
        target_sample: 8,
        population: spec.population,
        over_selection: 1.5,
    };
    (spec, FlSessionOptions::new(rounds, sample))
}

/// Bit-equality against the in-memory reference: aggregates, ledger
/// spend, and final model must all survive whatever the scenario did.
fn assert_matches(got: &FlSessionReport, want: &FlSessionReport, label: &str) {
    assert_eq!(got.rounds.len(), want.rounds.len(), "{label}: round count");
    for (g, w) in got.rounds.iter().zip(want.rounds.iter()) {
        assert_eq!(g.sum, w.sum, "{label}: aggregate r{}", g.round);
        assert_eq!(g.survivors, w.survivors, "{label}: survivors r{}", g.round);
    }
    assert_eq!(
        got.training.epsilon_consumed, want.training.epsilon_consumed,
        "{label}: epsilon"
    );
    assert_eq!(
        got.training.final_accuracy, want.training.final_accuracy,
        "{label}: final accuracy"
    );
}

struct Scenario {
    label: &'static str,
    wall: Duration,
    rounds_reexecuted: u32,
}

fn timed(
    label: &'static str,
    rounds_reexecuted: u32,
    want: &FlSessionReport,
    run: impl Fn() -> FlSessionReport,
    best_of: u32,
) -> Scenario {
    let mut wall = Duration::MAX;
    for _ in 0..best_of {
        let start = Instant::now();
        let report = run();
        wall = wall.min(start.elapsed());
        assert_matches(&report, want, label);
    }
    Scenario {
        label,
        wall,
        rounds_reexecuted,
    }
}

fn main() {
    let smoke = std::env::var("FAILOVER_ROUND_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let rounds: u32 = if smoke { 3 } else { 6 };
    let best_of = if smoke { 1 } else { 2 };
    let crash_round = rounds / 2;

    let (spec, o) = opts(rounds);
    let want = train_session(&spec, &o).expect("in-memory reference");

    let kill_points = [
        ("failover:mid-masked-stage", KillPoint::MidMaskedStage, 1),
        ("failover:during-broadcast", KillPoint::DuringBroadcast, 1),
        (
            "failover:between-ack-and-commit",
            KillPoint::BetweenAckAndCommit,
            0,
        ),
    ];

    let mut rows = Vec::new();
    rows.push(timed(
        "baseline",
        0,
        &want,
        || train_session_networked(&spec, &o).expect("baseline"),
        best_of,
    ));
    rows.push(timed(
        "replicated",
        0,
        &want,
        || train_session_networked_failover(&spec, &o, None).expect("replicated"),
        best_of,
    ));
    for (label, point, reexec) in kill_points {
        rows.push(timed(
            label,
            reexec,
            &want,
            || {
                train_session_networked_failover(
                    &spec,
                    &o,
                    Some(CrashSpec {
                        round: crash_round,
                        point,
                    }),
                )
                .expect(label)
            },
            best_of,
        ));
    }

    let baseline = rows[0].wall;
    let replicated = rows[1].wall;
    for row in &rows {
        let recovery = row.wall.saturating_sub(replicated);
        println!(
            "{:32} {:8.2} ms wall | {:+7.2} ms over replicated | {} round(s) re-executed",
            row.label,
            row.wall.as_secs_f64() * 1e3,
            if row.label.starts_with("failover") {
                recovery.as_secs_f64() * 1e3
            } else {
                0.0
            },
            row.rounds_reexecuted,
        );
    }
    let overhead_pct = (replicated.as_secs_f64() / baseline.as_secs_f64().max(1e-9) - 1.0) * 100.0;
    println!(
        "replication overhead (no crash): {overhead_pct:+.1}% over the unreplicated baseline \
         ({rounds} round(s), ack-gated commits)"
    );

    if smoke {
        println!("smoke mode: skipping BENCH_failover_round.json");
        return;
    }

    let mut entries = String::new();
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        let recovery_ms = if row.label.starts_with("failover") {
            row.wall.saturating_sub(replicated).as_secs_f64() * 1e3
        } else {
            0.0
        };
        entries.push_str(&format!(
            "    {{\n      \"scenario\": \"{}\",\n      \"wall_ms\": {:.3},\n      \
             \"recovery_ms\": {:.3},\n      \"rounds_reexecuted\": {}\n    }}",
            row.label,
            row.wall.as_secs_f64() * 1e3,
            recovery_ms,
            row.rounds_reexecuted,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"failover_round\",\n  \"transport\": \"loopback\",\n  \
         \"rounds\": {rounds},\n  \"crash_round\": {crash_round},\n  \
         \"replication_overhead_pct\": {overhead_pct:.2},\n  \"scenarios\": [\n{entries}\n  ]\n}}\n"
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_failover_round.json"
    );
    std::fs::write(path, json).expect("write BENCH_failover_round.json");
    println!("wrote {path}");
}
