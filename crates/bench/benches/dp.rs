//! Microbenchmarks of the DP machinery: Skellam sampling, DSkellam
//! encoding/decoding, and privacy accounting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dordis_dp::accountant::{Mechanism, RdpAccountant};
use dordis_dp::encoding::{Encoder, EncodingConfig};
use dordis_dp::mechanism::skellam_vector;
use dordis_dp::planner::{plan, PlannerConfig};

fn bench_skellam(c: &mut Criterion) {
    let mut g = c.benchmark_group("skellam_vector");
    for (label, variance) in [("small_var", 4.0), ("large_var", 4000.0)] {
        g.throughput(Throughput::Elements(10_000));
        g.bench_with_input(BenchmarkId::from_parameter(label), &variance, |b, &v| {
            b.iter(|| skellam_vector(&[1u8; 32], b"bench", 10_000, v));
        });
    }
    g.finish();
}

fn bench_encode_decode(c: &mut Criterion) {
    let cfg = EncodingConfig::default();
    let enc = Encoder::new(&cfg, [2u8; 32]);
    let update: Vec<f64> = (0..4000)
        .map(|i| ((i as f64) * 0.01).sin() * 0.01)
        .collect();
    c.bench_function("dskellam_encode_4k", |b| {
        b.iter(|| enc.encode(&update, &[3u8; 32]).unwrap());
    });
    let encoded = enc.encode(&update, &[3u8; 32]).unwrap();
    c.bench_function("dskellam_decode_4k", |b| {
        b.iter(|| enc.decode(&encoded, update.len()));
    });
}

fn bench_accounting(c: &mut Criterion) {
    c.bench_function("rdp_compose_150_rounds", |b| {
        b.iter(|| {
            let mut acct = RdpAccountant::new();
            for _ in 0..150 {
                acct.record_round(Mechanism::Gaussian, 0.16, 0.8);
            }
            acct.epsilon(1e-2)
        });
    });
    c.bench_function("noise_planning_binary_search", |b| {
        b.iter(|| {
            plan(&PlannerConfig {
                epsilon: 6.0,
                delta: 1e-2,
                rounds: 150,
                sample_rate: 0.16,
                mechanism: Mechanism::Skellam { l1_per_l2: 64.0 },
            })
            .unwrap()
        });
    });
}

criterion_group!(
    benches,
    bench_skellam,
    bench_encode_decode,
    bench_accounting
);
criterion_main!(benches);
