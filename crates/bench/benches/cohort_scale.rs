//! Cohort scaling past the GF(256) wall: neighborhood-scoped Shamir
//! indexing makes roster size a wire-width limit (u16) instead of a
//! field-size limit, and the sparse Harary graph makes the per-client
//! share stage `O(log n)` instead of `O(n)`.
//!
//! Two measurements:
//!
//! 1. **Share stage, sparse vs complete at n = 255** — the whole cohort
//!    runs `AdvertiseKeys` then `ShareKeys` in process (no transport),
//!    once under the complete graph (254 key agreements + 255-point
//!    Shamir evaluations + 254 AEAD seals per client) and once under
//!    the recommended Harary graph (degree 18 at n = 255). The ratio is
//!    the `n/deg` win the re-indexing buys; ≥ 5x is asserted outside
//!    smoke mode.
//! 2. **Full rounds at n ∈ {255, 512, 1024}** on the sparse graph —
//!    loopback reactor coordinator, measuring wall clock and
//!    coordinator-thread CPU (`/proc/thread-self/stat`), with every
//!    cohort's outcome pinned bit-equal to the in-memory driver. The
//!    1024-client row is the first single-process round past the old
//!    255 cap. A complete-graph full round at n = 255 rides along for
//!    scale.
//!
//! Results land in `BENCH_cohort_scale.json` at the workspace root;
//! `COHORT_SCALE_SMOKE=1` shrinks the cohorts for CI and skips the
//! JSON write and the speedup assertion.
//!
//! ```sh
//! cargo bench -p dordis-bench --bench cohort_scale
//! COHORT_SCALE_SMOKE=1 cargo bench -p dordis-bench --bench cohort_scale
//! ```

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use dordis_net::coordinator::{run_coordinator, CollectMode, CoordinatorConfig};
use dordis_net::runtime::{run_client, ClientOptions};
use dordis_net::transport::LoopbackHub;
use dordis_secagg::client::{Client, ClientInput};
use dordis_secagg::driver::{client_rng, run_round, share_keys_rng, DropoutSchedule, RoundSpec};
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::server::Server;
use dordis_secagg::{ClientId, RoundParams, ThreatModel};

const DIM: usize = 256;
const BITS: u32 = 16;
const CHUNKS: usize = 4;
const NOISE_T: usize = 2;
const SEED: u64 = 9292;
const STAGE_TIMEOUT: Duration = Duration::from_secs(120);

fn params(n: u32, graph: MaskingGraph) -> RoundParams {
    RoundParams {
        round: 1,
        clients: (0..n).collect(),
        threshold: n as usize / 2 + 1,
        bit_width: BITS,
        vector_len: DIM,
        noise_components: NOISE_T,
        threat_model: ThreatModel::SemiHonest,
        graph,
    }
}

fn input_for(id: ClientId) -> ClientInput {
    let mask = (1u64 << BITS) - 1;
    ClientInput {
        vector: (0..DIM)
            .map(|i| (u64::from(id) * 31 + i as u64) & mask)
            .collect(),
        noise_seeds: vec![[(id % 251) as u8 + 1; 32]; NOISE_T + 1],
    }
}

/// This thread's cumulative CPU time (user + system) from
/// `/proc/thread-self/stat`, so the coordinator can be measured without
/// counting the client threads.
fn thread_cpu() -> Duration {
    let Ok(stat) = std::fs::read_to_string("/proc/thread-self/stat") else {
        return Duration::ZERO;
    };
    let Some(close) = stat.rfind(')') else {
        return Duration::ZERO;
    };
    let fields: Vec<&str> = stat[close + 1..].split_whitespace().collect();
    let utime: u64 = fields.get(11).and_then(|f| f.parse().ok()).unwrap_or(0);
    let stime: u64 = fields.get(12).and_then(|f| f.parse().ok()).unwrap_or(0);
    Duration::from_millis((utime + stime) * 10)
}

/// One in-process pass of the cohort's share stage under `graph`:
/// instantiate all clients, advertise, then time only `share_keys`
/// across the whole cohort.
fn share_stage_secs(n: u32, graph: MaskingGraph) -> f64 {
    let p = params(n, graph);
    let mut clients: BTreeMap<ClientId, Client> = (0..n)
        .map(|id| {
            let mut rng = client_rng(SEED, id);
            let c = Client::new(p.clone(), id, input_for(id), None, &mut rng).expect("client");
            (id, c)
        })
        .collect();
    let mut server = Server::new(p).expect("server");
    let advs = clients
        .values_mut()
        .map(|c| c.advertise_keys().expect("advertise"))
        .collect();
    let roster = server.collect_advertisements(advs).expect("roster");
    let start = Instant::now();
    for (&id, c) in clients.iter_mut() {
        let cts = c
            .share_keys(&roster, &mut share_keys_rng(SEED, id))
            .expect("share_keys");
        std::hint::black_box(&cts);
    }
    start.elapsed().as_secs_f64()
}

struct RunResult {
    wall: Duration,
    cpu: Duration,
    polls: u64,
    events: u64,
}

/// One full loopback round at `n` clients under `graph` (reactor
/// coordinator), pinned bit-equal to the in-memory driver.
fn timed_round(n: u32, graph: MaskingGraph) -> RunResult {
    let (hub, mut acceptor) = LoopbackHub::new();
    let mut handles = Vec::new();
    for id in 0..n {
        let hub = hub.clone();
        handles.push(std::thread::spawn(move || {
            let mut chan = hub.connect(&format!("c{id}")).expect("connect");
            let opts = ClientOptions {
                id,
                rng_seed: SEED,
                fail: None,
                recv_timeout: Duration::from_secs(600),
                silent_linger: Duration::from_secs(1),
            };
            run_client(&mut chan, &opts, move |_| Ok(input_for(id)), |_| None)
        }));
    }
    let cfg = CoordinatorConfig::new(
        params(n, graph),
        Duration::from_secs(300),
        STAGE_TIMEOUT,
        CHUNKS,
        None,
    )
    .with_mode(CollectMode::Reactor);
    let cpu0 = thread_cpu();
    let start = Instant::now();
    let report = run_coordinator(&mut acceptor, &cfg).expect("coordinator");
    let wall = start.elapsed();
    let cpu = thread_cpu().saturating_sub(cpu0);
    assert!(
        report.dropouts.is_empty(),
        "clean round expected: {:?}",
        report.dropouts
    );
    assert_eq!(report.outcome.survivors.len(), n as usize);
    for h in handles {
        h.join().expect("client thread").expect("client run");
    }

    // Bit-equality pin against the serial in-memory driver: same
    // params, same seeds, so sums and removal seeds must be identical.
    let inputs: BTreeMap<ClientId, ClientInput> = (0..n).map(|id| (id, input_for(id))).collect();
    let (mem, _) = run_round(RoundSpec {
        params: params(n, graph),
        inputs,
        dropout: DropoutSchedule::none(),
        rng_seed: SEED,
    })
    .expect("driver round");
    assert_eq!(report.outcome.sum, mem.sum, "n={n}: sum diverges");
    assert_eq!(report.outcome.survivors, mem.survivors, "n={n}");
    assert_eq!(
        report.outcome.removal_seeds, mem.removal_seeds,
        "n={n}: removal seeds diverge"
    );

    let (polls, events) = report.reactor.map_or((0, 0), |s| (s.polls, s.events));
    RunResult {
        wall,
        cpu,
        polls,
        events,
    }
}

fn main() {
    let smoke = std::env::var("COHORT_SCALE_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let share_n: u32 = if smoke { 64 } else { 255 };
    let cohorts: &[u32] = if smoke { &[40, 64] } else { &[255, 512, 1024] };
    let best_of = if smoke { 1 } else { 2 };

    // ---- Share stage: sparse vs complete. ----
    let sparse_graph = MaskingGraph::recommended(share_n as usize);
    let mut complete_secs = f64::MAX;
    let mut sparse_secs = f64::MAX;
    for _ in 0..best_of.max(2) {
        complete_secs = complete_secs.min(share_stage_secs(share_n, MaskingGraph::Complete));
        sparse_secs = sparse_secs.min(share_stage_secs(share_n, sparse_graph));
    }
    let share_speedup = complete_secs / sparse_secs.max(1e-9);
    println!(
        "share stage n={share_n}: complete {:.4}s | sparse(deg {}) {:.4}s | speedup {:.2}x",
        complete_secs,
        sparse_graph.degree(share_n as usize),
        sparse_secs,
        share_speedup,
    );
    if !smoke {
        assert!(
            share_speedup >= 5.0,
            "share-stage speedup {share_speedup:.2}x < 5x — neighborhood indexing regressed"
        );
    }

    // ---- Full rounds on the sparse graph (+ complete at the old cap). ----
    let mut rows = Vec::new();
    for &n in cohorts {
        let graph = MaskingGraph::recommended(n as usize);
        assert!(matches!(graph, MaskingGraph::Harary { .. }));
        let mut best: Option<RunResult> = None;
        for _ in 0..best_of {
            let run = timed_round(n, graph);
            if best.as_ref().is_none_or(|b| run.wall < b.wall) {
                best = Some(run);
            }
        }
        let run = best.expect("at least one run");
        println!(
            "clients {n:4} (deg {:2}): {:7.3}s wall {:6.3}s cpu ({} polls, {} events)",
            graph.degree(n as usize),
            run.wall.as_secs_f64(),
            run.cpu.as_secs_f64(),
            run.polls,
            run.events,
        );
        rows.push((n, graph.degree(n as usize), run));
    }
    let complete_row = if smoke {
        None
    } else {
        let run = timed_round(255, MaskingGraph::Complete);
        println!(
            "clients  255 (complete): {:7.3}s wall {:6.3}s cpu",
            run.wall.as_secs_f64(),
            run.cpu.as_secs_f64(),
        );
        Some(run)
    };

    if smoke {
        println!("smoke mode: skipping BENCH_cohort_scale.json");
        return;
    }
    let mut entries = String::new();
    for (i, (n, deg, run)) in rows.iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\n      \"clients\": {n},\n      \"degree\": {deg},\n      \
             \"wall_secs\": {:.6},\n      \"cpu_secs\": {:.6},\n      \
             \"reactor_polls\": {},\n      \"reactor_events\": {},\n      \
             \"driver_match\": true\n    }}",
            run.wall.as_secs_f64(),
            run.cpu.as_secs_f64(),
            run.polls,
            run.events,
        ));
    }
    let complete255 = complete_row.expect("non-smoke has the complete row");
    let json = format!(
        "{{\n  \"bench\": \"cohort_scale\",\n  \"dim\": {DIM},\n  \"bit_width\": {BITS},\n  \
         \"chunks\": {CHUNKS},\n  \"noise_components\": {NOISE_T},\n  \
         \"share_stage\": {{\n    \"clients\": {share_n},\n    \
         \"complete_secs\": {complete_secs:.6},\n    \"sparse_secs\": {sparse_secs:.6},\n    \
         \"sparse_degree\": {},\n    \"speedup\": {share_speedup:.4}\n  }},\n  \
         \"complete_255\": {{\n    \"wall_secs\": {:.6},\n    \"cpu_secs\": {:.6}\n  }},\n  \
         \"cohorts\": [\n{entries}\n  ]\n}}\n",
        sparse_graph.degree(share_n as usize),
        complete255.wall.as_secs_f64(),
        complete255.cpu.as_secs_f64(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cohort_scale.json");
    std::fs::write(path, &json).expect("write BENCH_cohort_scale.json");
    println!("wrote {path}");
}
