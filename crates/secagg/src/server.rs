//! The server-side protocol state machine.
//!
//! The server is an untrusted router plus aggregator: it never sees an
//! individual update in the clear, and the state machine is written so a
//! test can verify the crucial invariant that the server never holds both
//! `b_u` and `s^SK_u` for the same client (which would let it unmask a
//! single client's input).
//!
//! ## Chunked data plane
//!
//! Masked-sum and unmasking state is held **per chunk** of a
//! [`ChunkPlan`] (paper §4.1): masked inputs arrive per chunk
//! ([`Server::collect_masked_chunk`]), each chunk's aggregate is computed
//! independently ([`Server::unmask_chunk`]), and the final sum is the
//! concatenation. Key/share/consistency state stays **round-global** —
//! only the data-plane stages pipeline, exactly as in the paper. The
//! whole-round methods ([`Server::collect_masked`],
//! [`Server::collect_unmasking`]) remain as the single-call path the
//! in-memory driver uses; with the default single-chunk plan they are
//! bit-identical to the pre-chunking behaviour, and with any plan the
//! concatenated chunk sums equal the whole-vector computation because
//! every mask operation is coordinate-wise.

use std::collections::{BTreeMap, BTreeSet};

use dordis_crypto::ed25519::Signature;
use dordis_crypto::ka::KeyPair;
use dordis_crypto::prg::Seed;
use dordis_crypto::shamir::{self, Share};
use dordis_crypto::x25519;
use dordis_pipeline::ChunkPlan;

use crate::mask;
use crate::messages::{
    AdvertisedKeys, ConsistencySignature, EncryptedShares, MaskedInput, NoiseShareResponse,
    UnmaskingResponse,
};
use crate::{share_threshold, ClientId, RoundParams, SecAggError};

/// One full-dimension mask expansion owed by unmasking recovery,
/// produced by [`Server::plan_unmasking`]: a survivor's self-mask to
/// subtract, or a pairwise mask (re-derived from a reconstructed
/// dropout key) to cancel. The job carries only the 32-byte secret and
/// a sign, so it is `Send` and cheap to clone — the expensive part, the
/// `O(d)` PRG expansion, runs wherever [`MaskJob::apply`] is called
/// (inline on the coordinator, or sliced per chunk on a worker thread).
#[derive(Clone, Copy, Debug)]
pub struct MaskJob {
    /// Which PRG domain the mask lives in.
    pub kind: MaskKind,
    /// The seed / agreed key expanding to the mask.
    pub seed: Seed,
    /// Whether the mask is added (`true`) or subtracted.
    pub positive: bool,
}

/// The PRG domain of a [`MaskJob`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaskKind {
    /// A survivor's self-mask `PRG(b_u)`.
    SelfMask,
    /// A pairwise mask `PRG(s_{u,v})` of a mid-round dropout edge.
    Pairwise,
}

impl MaskJob {
    /// Accumulates this job's mask slice
    /// `[elem_offset, elem_offset + acc.len())` into `acc` (mod `2^b`),
    /// seeking the PRG stream instead of expanding the prefix.
    pub fn apply(&self, acc: &mut [u64], elem_offset: usize, bit_width: u32) {
        match self.kind {
            MaskKind::SelfMask => {
                mask::add_self_mask_assign(acc, &self.seed, elem_offset, self.positive, bit_width);
            }
            MaskKind::Pairwise => {
                mask::add_pairwise_mask_assign(
                    acc,
                    &self.seed,
                    elem_offset,
                    self.positive,
                    bit_width,
                );
            }
        }
    }
}

/// One chunk's unmask computation, as a pure function runnable on any
/// thread: sums the survivors' masked chunk vectors and folds in every
/// recovery mask's slice at the chunk's element offset. Because every
/// operation is a coordinate-wise add in `Z_{2^b}`, the result is
/// bit-identical to slicing a whole-vector correction — this is what
/// makes pooled unmasking bit-equal to the serial path.
#[must_use]
pub fn unmask_chunk_task(
    inputs: &[Vec<u64>],
    jobs: &[MaskJob],
    elem_offset: usize,
    len: usize,
    bit_width: u32,
) -> Vec<u64> {
    let mut sum = vec![0u64; len];
    for v in inputs {
        mask::add_signed_assign(&mut sum, v, true, bit_width);
    }
    for job in jobs {
        job.apply(&mut sum, elem_offset, bit_width);
    }
    sum
}

/// The result of a completed aggregation round.
#[derive(Clone, Debug)]
pub struct RoundOutcome {
    /// The unmasked sum `Σ_{u ∈ U3} Δ̃_u` in `Z_{2^b}`.
    pub sum: Vec<u64>,
    /// Clients whose inputs are in the sum (U3).
    pub survivors: Vec<ClientId>,
    /// Sampled clients missing from the sum (`U \ U3`).
    pub dropped: Vec<ClientId>,
    /// Every XNoise seed available for excessive-noise removal:
    /// `(owner ∈ U3, component k, seed g_{owner,k})`.
    pub removal_seeds: Vec<(ClientId, usize, Seed)>,
    /// Ring bit width of `sum`.
    pub bit_width: u32,
}

/// Merges per-shard [`RoundOutcome`]s of the same logical round into
/// the union outcome a single coordinator would have produced.
///
/// Each shard aggregates a disjoint subset of the sampled cohort, so
/// after unmasking the shard sums are plain sums of survivor vectors in
/// `Z_{2^b}` — merging is element-wise modular addition. Survivors are
/// the sorted union of the shard survivor sets (each shard's are
/// already sorted; a client sits in exactly one shard). Dropped clients
/// are re-derived in `union_clients` order, matching the unsharded
/// server's cohort-order accounting. Removal seeds concatenate: seed
/// keys are `(owner, component)` and owners are shard-disjoint, so no
/// duplicates arise — the privacy ledger sees the union cohort's seeds,
/// never a per-shard view.
///
/// # Errors
///
/// [`SecAggError::Config`] when the shard list is empty or the shards
/// disagree on bit width or vector length.
pub fn merge_shard_outcomes(
    union_clients: &[ClientId],
    shards: Vec<RoundOutcome>,
) -> Result<RoundOutcome, SecAggError> {
    let Some(first) = shards.first() else {
        return Err(SecAggError::Config("no shard outcomes to merge".into()));
    };
    let bit_width = first.bit_width;
    let len = first.sum.len();
    let mask = if bit_width >= 64 {
        u64::MAX
    } else {
        (1u64 << bit_width) - 1
    };
    let mut sum = vec![0u64; len];
    let mut survivors = Vec::new();
    let mut removal_seeds = Vec::new();
    for shard in shards {
        if shard.bit_width != bit_width || shard.sum.len() != len {
            return Err(SecAggError::Config(format!(
                "shard outcome shape mismatch: ({}, {}) vs ({bit_width}, {len})",
                shard.bit_width,
                shard.sum.len()
            )));
        }
        for (acc, v) in sum.iter_mut().zip(&shard.sum) {
            *acc = acc.wrapping_add(*v) & mask;
        }
        survivors.extend(shard.survivors);
        removal_seeds.extend(shard.removal_seeds);
    }
    survivors.sort_unstable();
    let dropped: Vec<ClientId> = union_clients
        .iter()
        .copied()
        .filter(|c| !survivors.contains(c))
        .collect();
    Ok(RoundOutcome {
        sum,
        survivors,
        dropped,
        removal_seeds,
        bit_width,
    })
}

/// Server state machine.
pub struct Server {
    params: RoundParams,
    /// The chunk plan the data plane is partitioned by.
    plan: ChunkPlan,
    roster: BTreeMap<ClientId, AdvertisedKeys>,
    /// Routed ciphertext edges (from, to), to know which masks were applied.
    routed: BTreeSet<(ClientId, ClientId)>,
    u2: Vec<ClientId>,
    u3: Vec<ClientId>,
    u5: Vec<ClientId>,
    /// Per-chunk masked inputs of clients whose streams are still
    /// *incomplete*: `masked[c][client]` is the client's chunk-`c`
    /// slice. Once every chunk has arrived the client's vectors are
    /// folded into [`Server::fold_sums`] and freed — so this map never
    /// holds more than the in-flight streams, not the whole cohort's
    /// decoded upload. Partial deliveries linger here but never reach
    /// a sum; `finalize_masked` discards them.
    masked: Vec<BTreeMap<ClientId, Vec<u64>>>,
    /// Clients whose complete masked input has been folded into
    /// [`Server::fold_sums`]. This *is* U3 at `finalize_masked` time.
    folded: BTreeSet<ClientId>,
    /// Per-chunk running sums (in `Z_{2^b}`) over the folded clients.
    /// Addition in `Z_{2^b}` commutes, so folding clients in completion
    /// order is bit-equal to summing them in sorted U3 order at unmask
    /// time — while peak memory drops from the cohort's whole decoded
    /// upload (`O(clients × dim)` u64s) to the running sums plus the
    /// in-flight streams.
    fold_sums: Vec<Vec<u64>>,
    /// Per-chunk unmasked aggregates (None until `unmask_chunk`).
    chunk_sums: Vec<Option<Vec<u64>>>,
    /// Full-length mask correction (`−Σ p_u ± Σ PRG(s_{u,v})`) built by
    /// `reconstruct_unmasking`; sliced per chunk by `unmask_chunk`.
    correction: Option<Vec<u64>>,
    /// Reconstructed self-mask seeds (clients in U3).
    recon_b: BTreeSet<ClientId>,
    /// Reconstructed masking secret keys (clients in U2 \ U3).
    recon_sk: BTreeSet<ClientId>,
    /// Noise seeds revealed directly or reconstructed.
    removal_seeds: BTreeMap<(ClientId, usize), Seed>,
    /// Stage-4/5 share pools.
    sk_share_pool: BTreeMap<ClientId, Vec<Share>>,
    b_share_pool: BTreeMap<ClientId, Vec<Share>>,
    seed_share_pool: BTreeMap<(ClientId, usize), Vec<Share>>,
}

impl Server {
    /// Creates a server for one round with the single-chunk (unchunked)
    /// data plane.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation failures.
    pub fn new(params: RoundParams) -> Result<Self, SecAggError> {
        params.validate()?;
        let plan = ChunkPlan::single(params.vector_len, params.bit_width)
            .map_err(|e| SecAggError::Config(e.to_string()))?;
        Server::with_chunks(params, plan)
    }

    /// Creates a server whose data plane is partitioned by `plan`.
    ///
    /// # Errors
    ///
    /// Rejects plans that disagree with the round's vector length or bit
    /// width, and propagates parameter validation failures.
    pub fn with_chunks(params: RoundParams, plan: ChunkPlan) -> Result<Self, SecAggError> {
        params.validate()?;
        if plan.vector_len() != params.vector_len || plan.bit_width() != params.bit_width {
            return Err(SecAggError::Config(format!(
                "chunk plan covers {} elements at {} bits, round has {} at {}",
                plan.vector_len(),
                plan.bit_width(),
                params.vector_len,
                params.bit_width
            )));
        }
        let m = plan.chunks();
        let fold_sums = (0..m).map(|c| vec![0u64; plan.chunk_len(c)]).collect();
        Ok(Server {
            params,
            plan,
            roster: BTreeMap::new(),
            routed: BTreeSet::new(),
            u2: Vec::new(),
            u3: Vec::new(),
            u5: Vec::new(),
            masked: vec![BTreeMap::new(); m],
            folded: BTreeSet::new(),
            fold_sums,
            chunk_sums: vec![None; m],
            correction: None,
            recon_b: BTreeSet::new(),
            recon_sk: BTreeSet::new(),
            removal_seeds: BTreeMap::new(),
            sk_share_pool: BTreeMap::new(),
            b_share_pool: BTreeMap::new(),
            seed_share_pool: BTreeMap::new(),
        })
    }

    /// The chunk plan partitioning the data plane.
    #[must_use]
    pub fn chunk_plan(&self) -> &ChunkPlan {
        &self.plan
    }

    fn index_of(&self, id: ClientId) -> Option<usize> {
        self.params.clients.iter().position(|&c| c == id)
    }

    /// Stage 0: collects advertisements; returns the roster broadcast.
    pub fn collect_advertisements(
        &mut self,
        msgs: Vec<AdvertisedKeys>,
    ) -> Result<Vec<AdvertisedKeys>, SecAggError> {
        for m in msgs {
            if self.index_of(m.client).is_none() {
                return Err(SecAggError::Config(format!(
                    "advertisement from unsampled client {}",
                    m.client
                )));
            }
            self.roster.insert(m.client, m);
        }
        if self.roster.len() < self.params.threshold {
            return Err(SecAggError::BelowThreshold {
                stage: "AdvertiseKeys",
                live: self.roster.len(),
                threshold: self.params.threshold,
            });
        }
        Ok(self.roster.values().cloned().collect())
    }

    /// Stage 1: routes encrypted share bundles; returns each live
    /// client's inbox.
    pub fn route_shares(
        &mut self,
        msgs: Vec<EncryptedShares>,
    ) -> Result<BTreeMap<ClientId, Vec<EncryptedShares>>, SecAggError> {
        let mut senders = BTreeSet::new();
        let mut inboxes: BTreeMap<ClientId, Vec<EncryptedShares>> = BTreeMap::new();
        for ct in msgs {
            senders.insert(ct.from);
            self.routed.insert((ct.from, ct.to));
            inboxes.entry(ct.to).or_default().push(ct);
        }
        if senders.len() < self.params.threshold {
            return Err(SecAggError::BelowThreshold {
                stage: "ShareKeys",
                live: senders.len(),
                threshold: self.params.threshold,
            });
        }
        self.u2 = senders.into_iter().collect();
        Ok(inboxes)
    }

    /// Stage 2, chunked: records one chunk's masked inputs. Callable per
    /// chunk in any order and interleaved with other chunks' collection —
    /// this is the entry point the pipelined coordinator drives while
    /// chunk `c+1` is still in flight.
    ///
    /// The moment a client's *last* outstanding chunk lands, its whole
    /// vector is folded into the per-chunk running sums and its decoded
    /// chunks are freed — the server never holds the full cohort's
    /// decoded upload at once. A frame arriving for an already-folded
    /// client (a duplicate) is discarded.
    ///
    /// # Errors
    ///
    /// Rejects unknown chunk indices, wrong chunk lengths, and senders
    /// outside U2.
    pub fn collect_masked_chunk(
        &mut self,
        chunk: usize,
        msgs: Vec<MaskedInput>,
    ) -> Result<(), SecAggError> {
        if chunk >= self.plan.chunks() {
            return Err(SecAggError::Config(format!(
                "chunk {chunk} out of range ({} chunks)",
                self.plan.chunks()
            )));
        }
        let bits = self.params.bit_width;
        for m in msgs {
            if m.vector.len() != self.plan.chunk_len(chunk) {
                return Err(SecAggError::Config(format!(
                    "masked input from {} has wrong length for chunk {chunk}",
                    m.client
                )));
            }
            if !self.u2.contains(&m.client) {
                return Err(SecAggError::Config(format!(
                    "masked input from {} outside U2",
                    m.client
                )));
            }
            if self.folded.contains(&m.client) {
                continue;
            }
            let client = m.client;
            self.masked[chunk].insert(client, m.vector);
            if self.masked.iter().all(|c| c.contains_key(&client)) {
                for (c, store) in self.masked.iter_mut().enumerate() {
                    let v = store.remove(&client).expect("all chunks present");
                    mask::add_signed_assign(&mut self.fold_sums[c], &v, true, bits);
                }
                self.folded.insert(client);
            }
        }
        Ok(())
    }

    /// Stage 2, closing: fixes U3 as the clients that delivered **every**
    /// chunk — a partial chunk stream is a dropout, exactly like a missed
    /// single-frame masked input.
    ///
    /// # Errors
    ///
    /// Aborts below threshold.
    pub fn finalize_masked(&mut self) -> Result<Vec<ClientId>, SecAggError> {
        // Folded = delivered every chunk; the BTreeSet iterates sorted,
        // matching the sorted per-chunk map order U3 historically had.
        let u3: Vec<ClientId> = self.folded.iter().copied().collect();
        if u3.len() < self.params.threshold {
            return Err(SecAggError::BelowThreshold {
                stage: "MaskedInputCollection",
                live: u3.len(),
                threshold: self.params.threshold,
            });
        }
        // Partial streams are dropouts: their chunks never reached a
        // fold sum, and nothing reads them past this point.
        for store in &mut self.masked {
            store.clear();
        }
        self.u3 = u3;
        Ok(self.u3.clone())
    }

    /// Stage 2, whole-vector path (the in-memory driver): splits each
    /// input by the chunk plan, records every chunk, and finalizes U3.
    ///
    /// # Errors
    ///
    /// Rejects wrong-length vectors and senders outside U2; aborts below
    /// threshold.
    pub fn collect_masked(&mut self, msgs: Vec<MaskedInput>) -> Result<Vec<ClientId>, SecAggError> {
        for m in msgs {
            if m.vector.len() != self.params.vector_len {
                return Err(SecAggError::Config(format!(
                    "masked input from {} has wrong length",
                    m.client
                )));
            }
            let pieces: Vec<Vec<u64>> = self
                .plan
                .split(&m.vector)
                .map_err(|e| SecAggError::Config(e.to_string()))?
                .into_iter()
                .map(<[u64]>::to_vec)
                .collect();
            for (c, piece) in pieces.into_iter().enumerate() {
                self.collect_masked_chunk(
                    c,
                    vec![MaskedInput {
                        client: m.client,
                        vector: piece,
                        bit_width: m.bit_width,
                    }],
                )?;
            }
        }
        self.finalize_masked()
    }

    /// Stage 3 (malicious): collects consistency signatures (U4).
    pub fn collect_consistency(
        &mut self,
        sigs: Vec<ConsistencySignature>,
    ) -> Result<Vec<(ClientId, Signature)>, SecAggError> {
        if sigs.len() < self.params.threshold {
            return Err(SecAggError::BelowThreshold {
                stage: "ConsistencyCheck",
                live: sigs.len(),
                threshold: self.params.threshold,
            });
        }
        Ok(sigs.into_iter().map(|s| (s.client, s.signature)).collect())
    }

    /// Stage 4, round-global: pools the share responses, reconstructs
    /// the survivors' self-mask seeds and the mid-round dropouts' masking
    /// secret keys, and precomputes the full-length mask correction. No
    /// chunk sum is touched — [`Server::unmask_chunk`] applies the
    /// correction slice per chunk, so unmasking pipelines with whatever
    /// collection the coordinator still has in flight.
    ///
    /// # Errors
    ///
    /// See [`Server::plan_unmasking`].
    pub fn reconstruct_unmasking(
        &mut self,
        responses: Vec<UnmaskingResponse>,
    ) -> Result<(), SecAggError> {
        let jobs = self.plan_unmasking(responses)?;
        let bits = self.params.bit_width;
        let mut correction = vec![0u64; self.params.vector_len];
        for job in &jobs {
            job.apply(&mut correction, 0, bits);
        }
        self.correction = Some(correction);
        Ok(())
    }

    /// Stage 4, round-global, compute-plane form: everything
    /// [`Server::reconstruct_unmasking`] does *except* the `O(dropped ×
    /// neighbors × d)` mask expansion — share pooling, Shamir
    /// reconstruction, key-consistency checks, and the privacy
    /// bookkeeping — returning the expansion as a list of [`MaskJob`]s.
    /// The caller either applies them inline (what
    /// `reconstruct_unmasking` does) or fans them out per chunk via
    /// [`unmask_chunk_task`] + [`Server::install_chunk_sum`].
    ///
    /// # Errors
    ///
    /// Aborts below threshold (response count or per-secret share
    /// count), and on a reconstructed key that contradicts the
    /// advertised public key.
    pub fn plan_unmasking(
        &mut self,
        responses: Vec<UnmaskingResponse>,
    ) -> Result<Vec<MaskJob>, SecAggError> {
        if responses.len() < self.params.threshold {
            return Err(SecAggError::BelowThreshold {
                stage: "Unmasking",
                live: responses.len(),
                threshold: self.params.threshold,
            });
        }
        let u3: BTreeSet<ClientId> = self.u3.iter().copied().collect();
        for r in &responses {
            self.u5.push(r.client);
            for (owner, share) in &r.sk_shares {
                if u3.contains(owner) {
                    // A share of a live client's s_sk must never reach the
                    // server; drop it defensively.
                    continue;
                }
                self.sk_share_pool
                    .entry(*owner)
                    .or_default()
                    .push(share.clone());
            }
            for (owner, share) in &r.b_shares {
                if !u3.contains(owner) {
                    continue;
                }
                self.b_share_pool
                    .entry(*owner)
                    .or_default()
                    .push(share.clone());
            }
            for (k, seed) in &r.own_seeds {
                self.removal_seeds.insert((r.client, *k), *seed);
            }
        }
        self.u5.sort_unstable();
        self.u5.dedup();

        let t_eff = share_threshold(&self.params);
        let mut jobs = Vec::new();

        // Remove self-masks of surviving clients.
        for &u in &self.u3.clone() {
            let shares = self.b_share_pool.get(&u).cloned().unwrap_or_default();
            if shares.len() < t_eff {
                return Err(SecAggError::BelowThreshold {
                    stage: "Unmasking(b-recon)",
                    live: shares.len(),
                    threshold: t_eff,
                });
            }
            let b_bytes = shamir::reconstruct(&shares, t_eff)?;
            let mut b = [0u8; 32];
            b.copy_from_slice(&b_bytes);
            self.recon_b.insert(u);
            jobs.push(MaskJob {
                kind: MaskKind::SelfMask,
                seed: b,
                positive: false,
            });
        }

        // Cancel pairwise masks of clients that dropped between ShareKeys
        // and MaskedInputCollection (v ∈ U2 \ U3).
        let dropped_mid: Vec<ClientId> = self
            .u2
            .iter()
            .copied()
            .filter(|v| !u3.contains(v))
            .collect();
        for v in dropped_mid {
            let shares = self.sk_share_pool.get(&v).cloned().unwrap_or_default();
            if shares.len() < t_eff {
                return Err(SecAggError::BelowThreshold {
                    stage: "Unmasking(sk-recon)",
                    live: shares.len(),
                    threshold: t_eff,
                });
            }
            let sk_bytes = shamir::reconstruct(&shares, t_eff)?;
            let mut sk = [0u8; 32];
            sk.copy_from_slice(&sk_bytes);
            self.recon_sk.insert(v);
            // Sanity: the reconstructed key must match the advertised one.
            let expected_pk = self.roster[&v].s_pk;
            if x25519::public_key(&sk) != expected_pk {
                return Err(SecAggError::Crypto(
                    dordis_crypto::CryptoError::InconsistentShares("sk does not match s_pk"),
                ));
            }
            let v_kp = KeyPair {
                secret: sk,
                public: expected_pk,
            };
            // Cancel the residual γ_{u,v}·PRG(s_{u,v}) left by every
            // survivor u that had applied a mask towards v.
            for &u in &self.u3.clone() {
                if !self.routed.contains(&(v, u)) {
                    continue;
                }
                let (_, s_pk_u) = (self.roster[&u].c_pk, self.roster[&u].s_pk);
                let s_vu = v_kp.agree(&s_pk_u);
                // u added sign(u > v); cancel with sign(v > u).
                jobs.push(MaskJob {
                    kind: MaskKind::Pairwise,
                    seed: s_vu,
                    positive: v > u,
                });
            }
        }
        Ok(jobs)
    }

    /// Compute-plane form of [`Server::unmask_chunk`], step 1: moves
    /// the survivors' folded chunk-`c` running sum out of the server so
    /// a worker thread can own it (every U3 member's vector was already
    /// folded in at collection time). Pair with [`unmask_chunk_task`]
    /// and [`Server::install_chunk_sum`].
    ///
    /// # Errors
    ///
    /// Fails on an out-of-range chunk or if called before
    /// [`Server::plan_unmasking`] fixed U5 (same sequencing as the
    /// serial path).
    pub fn take_chunk_inputs(&mut self, chunk: usize) -> Result<Vec<Vec<u64>>, SecAggError> {
        if chunk >= self.plan.chunks() {
            return Err(SecAggError::Config(format!(
                "chunk {chunk} out of range ({} chunks)",
                self.plan.chunks()
            )));
        }
        if self.u5.is_empty() {
            return Err(SecAggError::Config(
                "take_chunk_inputs before plan_unmasking".into(),
            ));
        }
        Ok(vec![std::mem::take(&mut self.fold_sums[chunk])])
    }

    /// Compute-plane form of [`Server::unmask_chunk`], step 3: installs
    /// a worker-computed chunk aggregate.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range chunks and wrong-length sums.
    pub fn install_chunk_sum(&mut self, chunk: usize, sum: Vec<u64>) -> Result<(), SecAggError> {
        if chunk >= self.plan.chunks() {
            return Err(SecAggError::Config(format!(
                "chunk {chunk} out of range ({} chunks)",
                self.plan.chunks()
            )));
        }
        if sum.len() != self.plan.chunk_len(chunk) {
            return Err(SecAggError::Config(format!(
                "chunk {chunk} sum has length {}, plan says {}",
                sum.len(),
                self.plan.chunk_len(chunk)
            )));
        }
        self.chunk_sums[chunk] = Some(sum);
        Ok(())
    }

    /// Stage 4, per chunk: sums the survivors' chunk-`c` inputs and
    /// applies the precomputed mask correction slice. All operations are
    /// coordinate-wise in `Z_{2^b}`, so the concatenation over chunks is
    /// bit-identical to the whole-vector computation.
    ///
    /// # Errors
    ///
    /// Fails on an out-of-range chunk or if called before
    /// [`Server::reconstruct_unmasking`].
    pub fn unmask_chunk(&mut self, chunk: usize) -> Result<(), SecAggError> {
        if chunk >= self.plan.chunks() {
            return Err(SecAggError::Config(format!(
                "chunk {chunk} out of range ({} chunks)",
                self.plan.chunks()
            )));
        }
        let Some(correction) = &self.correction else {
            return Err(SecAggError::Config(
                "unmask_chunk before reconstruct_unmasking".into(),
            ));
        };
        let bits = self.params.bit_width;
        let range = self.plan.range(chunk);
        // Every U3 member's chunk was folded into the running sum at
        // collection time (addition in `Z_{2^b}` commutes, so the fold
        // order is immaterial); only the correction remains.
        let mut sum = std::mem::take(&mut self.fold_sums[chunk]);
        mask::add_signed_assign(&mut sum, &correction[range], true, bits);
        self.chunk_sums[chunk] = Some(sum);
        Ok(())
    }

    /// Stage 4, whole-round path: reconstructs secrets and unmasks every
    /// chunk in schedule order.
    ///
    /// # Errors
    ///
    /// See [`Server::reconstruct_unmasking`] and [`Server::unmask_chunk`].
    pub fn collect_unmasking(
        &mut self,
        responses: Vec<UnmaskingResponse>,
    ) -> Result<(), SecAggError> {
        self.reconstruct_unmasking(responses)?;
        for c in 0..self.plan.chunks() {
            self.unmask_chunk(c)?;
        }
        Ok(())
    }

    /// The set U2 (clients whose encrypted shares were routed).
    #[must_use]
    pub fn u2(&self) -> &[ClientId] {
        &self.u2
    }

    /// The set U5 (responders to unmasking).
    #[must_use]
    pub fn u5(&self) -> &[ClientId] {
        &self.u5
    }

    /// Clients in `U3 \ U5` whose noise seeds still need recovery.
    #[must_use]
    pub fn pending_seed_owners(&self) -> Vec<ClientId> {
        if self.params.noise_components == 0 {
            return Vec::new();
        }
        let dropped = self.params.clients.len() - self.u3.len();
        if dropped >= self.params.noise_components {
            return Vec::new();
        }
        self.u3
            .iter()
            .copied()
            .filter(|u| !self.u5.contains(u))
            .collect()
    }

    /// Stage 5: collects seed shares and reconstructs missing noise seeds.
    pub fn collect_noise_shares(
        &mut self,
        responses: Vec<NoiseShareResponse>,
    ) -> Result<(), SecAggError> {
        if responses.len() < self.params.threshold {
            return Err(SecAggError::BelowThreshold {
                stage: "ExcessiveNoiseRemoval",
                live: responses.len(),
                threshold: self.params.threshold,
            });
        }
        let owners: BTreeSet<ClientId> = self.pending_seed_owners().into_iter().collect();
        for r in responses {
            for (owner, k, share) in r.seed_shares {
                if !owners.contains(&owner) {
                    continue;
                }
                self.seed_share_pool
                    .entry((owner, k))
                    .or_default()
                    .push(share);
            }
        }
        let t_eff = share_threshold(&self.params);
        let dropped = self.params.clients.len() - self.u3.len();
        for owner in owners {
            for k in (dropped + 1)..=self.params.noise_components {
                let shares = self
                    .seed_share_pool
                    .get(&(owner, k))
                    .cloned()
                    .unwrap_or_default();
                if shares.len() < t_eff {
                    return Err(SecAggError::BelowThreshold {
                        stage: "ExcessiveNoiseRemoval(recon)",
                        live: shares.len(),
                        threshold: t_eff,
                    });
                }
                let bytes = shamir::reconstruct(&shares, t_eff)?;
                let mut seed = [0u8; 32];
                seed.copy_from_slice(&bytes);
                self.removal_seeds.insert((owner, k), seed);
            }
        }
        Ok(())
    }

    /// Finishes the round: concatenates the per-chunk aggregates (zeros
    /// for chunks that were never unmasked, matching the pre-chunking
    /// behaviour of finishing before unmasking).
    #[must_use]
    pub fn finish(self) -> RoundOutcome {
        let survivors = self.u3.clone();
        let dropped: Vec<ClientId> = self
            .params
            .clients
            .iter()
            .copied()
            .filter(|c| !survivors.contains(c))
            .collect();
        let mut sum = Vec::with_capacity(self.params.vector_len);
        for (c, chunk_sum) in self.chunk_sums.iter().enumerate() {
            match chunk_sum {
                Some(s) => sum.extend_from_slice(s),
                None => sum.extend(std::iter::repeat_n(0u64, self.plan.chunk_len(c))),
            }
        }
        RoundOutcome {
            sum,
            survivors,
            dropped,
            removal_seeds: self
                .removal_seeds
                .into_iter()
                .map(|((c, k), s)| (c, k, s))
                .collect(),
            bit_width: self.params.bit_width,
        }
    }

    /// Test/verification hook: ids for which the server reconstructed the
    /// self-mask seed `b_u`.
    #[must_use]
    pub fn reconstructed_self_masks(&self) -> Vec<ClientId> {
        self.recon_b.iter().copied().collect()
    }

    /// Test/verification hook: ids for which the server reconstructed the
    /// masking secret key `s^SK_u`.
    #[must_use]
    pub fn reconstructed_secret_keys(&self) -> Vec<ClientId> {
        self.recon_sk.iter().copied().collect()
    }

    /// The privacy invariant of SecAgg: the server must never hold both
    /// secrets of the same client.
    #[must_use]
    pub fn privacy_invariant_holds(&self) -> bool {
        self.recon_b.intersection(&self.recon_sk).next().is_none()
    }
}
