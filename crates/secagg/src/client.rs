//! The client-side protocol state machine.
//!
//! One method per stage of Figure 5; each consumes the server's previous
//! broadcast and produces this client's next message, or an error if a
//! consistency check fails (in which case the client aborts for the rest
//! of the round — honest clients never continue past a detected attack).

use std::collections::BTreeMap;
use std::sync::Arc;

use dordis_crypto::aead;
use dordis_crypto::ed25519::{Signature, SigningKey, VerifyingKey};
use dordis_crypto::ka::KeyPair;
use dordis_crypto::prg::Seed;
use dordis_crypto::shamir::{self, Share};
use rand::Rng;

use crate::mask;
use crate::messages::{
    AdvertisedKeys, ConsistencySignature, EncryptedShares, MaskedInput, NoiseShareResponse,
    ShareBundle, UnmaskingResponse,
};
use crate::{ClientId, RoundParams, SecAggError, ThreatModel};

/// A client's per-round secret input.
#[derive(Clone, Debug)]
pub struct ClientInput {
    /// The (already DP-perturbed, encoded) update in `Z_{2^b}`.
    pub vector: Vec<u64>,
    /// XNoise seeds `g_{u,0..=T}`; must be `noise_components + 1` long, or
    /// empty when XNoise is disabled. Component 0 is never shared or
    /// revealed.
    pub noise_seeds: Vec<Seed>,
}

/// Identity material in the malicious model: the client's signing key plus
/// the PKI registry mapping every id to its verification key.
#[derive(Clone)]
pub struct Identity {
    /// This client's long-term signing key.
    pub signing: SigningKey,
    /// The PKI: everyone's verification keys.
    pub registry: Arc<BTreeMap<ClientId, VerifyingKey>>,
}

/// Client state machine.
pub struct Client {
    params: RoundParams,
    id: ClientId,
    input: ClientInput,
    identity: Option<Identity>,
    c_kp: KeyPair,
    s_kp: KeyPair,
    b_seed: Seed,
    /// Roster after AdvertiseKeys: id -> (c_pk, s_pk).
    u1: BTreeMap<ClientId, ([u8; 32], [u8; 32])>,
    /// Clients whose ciphertexts we received (U2), in id order.
    u2: Vec<ClientId>,
    /// Ciphertexts received, keyed by sender.
    inbox: BTreeMap<ClientId, Vec<u8>>,
    /// The U3 set this client accepted (set at consistency/unmask).
    u3: Vec<ClientId>,
    /// The U4/U5 supersets for later verification.
    u4: Vec<ClientId>,
    /// This client's own share of its self-mask seed `b_u` (Figure 5
    /// shares over all of U1 including oneself; the self-share is sent
    /// back at Unmasking like any other U3 member's).
    own_b_share: Option<Share>,
    aborted: bool,
}

impl Client {
    /// Creates the client. `input.vector` must match `params.vector_len`
    /// and `input.noise_seeds` must be empty or `T + 1` long.
    ///
    /// # Errors
    ///
    /// Configuration errors (wrong lengths, missing identity in the
    /// malicious model).
    pub fn new<R: Rng>(
        params: RoundParams,
        id: ClientId,
        input: ClientInput,
        identity: Option<Identity>,
        rng: &mut R,
    ) -> Result<Self, SecAggError> {
        if input.vector.len() != params.vector_len {
            return Err(SecAggError::Config(format!(
                "client {id}: vector length {} != {}",
                input.vector.len(),
                params.vector_len
            )));
        }
        let ring = params.ring_mask();
        if input.vector.iter().any(|&v| v > ring) {
            return Err(SecAggError::Config(format!(
                "client {id}: vector coordinate out of ring"
            )));
        }
        if !input.noise_seeds.is_empty() && input.noise_seeds.len() != params.noise_components + 1 {
            return Err(SecAggError::Config(format!(
                "client {id}: expected {} noise seeds, got {}",
                params.noise_components + 1,
                input.noise_seeds.len()
            )));
        }
        if params.threat_model == ThreatModel::Malicious && identity.is_none() {
            return Err(SecAggError::Config(
                "malicious model requires a PKI identity".into(),
            ));
        }
        if !params.clients.contains(&id) {
            return Err(SecAggError::Config(format!("client {id} not sampled")));
        }
        let mut b_seed = [0u8; 32];
        rng.fill(&mut b_seed[..]);
        Ok(Client {
            params,
            id,
            input,
            identity,
            c_kp: KeyPair::generate(rng),
            s_kp: KeyPair::generate(rng),
            b_seed,
            u1: BTreeMap::new(),
            u2: Vec::new(),
            inbox: BTreeMap::new(),
            u3: Vec::new(),
            u4: Vec::new(),
            own_b_share: None,
            aborted: false,
        })
    }

    /// This client's id.
    #[must_use]
    pub fn id(&self) -> ClientId {
        self.id
    }

    fn abort(&mut self, reason: impl Into<String>) -> SecAggError {
        self.aborted = true;
        SecAggError::ClientAbort {
            client: self.id,
            reason: reason.into(),
        }
    }

    fn check_live(&self) -> Result<(), SecAggError> {
        if self.aborted {
            return Err(SecAggError::ClientAbort {
                client: self.id,
                reason: "previously aborted".into(),
            });
        }
        Ok(())
    }

    /// Index of a client id in the sampled set (stable across parties).
    fn index_of(&self, id: ClientId) -> Option<usize> {
        self.params.clients.iter().position(|&c| c == id)
    }

    /// Neighbor ids in the masking graph, restricted to a live set.
    fn neighbors_in(&self, live: &[ClientId]) -> Vec<ClientId> {
        let n = self.params.clients.len();
        let my_idx = self.index_of(self.id).expect("own id sampled");
        live.iter()
            .copied()
            .filter(|&v| {
                v != self.id
                    && self
                        .index_of(v)
                        .is_some_and(|vi| self.params.graph.are_neighbors(n, my_idx, vi))
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Stage 0: AdvertiseKeys.
    // ------------------------------------------------------------------

    /// Produces the key advertisement.
    pub fn advertise_keys(&mut self) -> Result<AdvertisedKeys, SecAggError> {
        self.check_live()?;
        let signature = self.identity.as_ref().map(|ident| {
            let mut msg = Vec::with_capacity(64);
            msg.extend_from_slice(&self.c_kp.public);
            msg.extend_from_slice(&self.s_kp.public);
            ident.signing.sign(&msg)
        });
        Ok(AdvertisedKeys {
            client: self.id,
            c_pk: self.c_kp.public,
            s_pk: self.s_kp.public,
            signature,
        })
    }

    // ------------------------------------------------------------------
    // Stage 1: ShareKeys.
    // ------------------------------------------------------------------

    /// Consumes the broadcast roster; returns encrypted share bundles for
    /// every masking neighbor.
    pub fn share_keys<R: Rng>(
        &mut self,
        roster: &[AdvertisedKeys],
        rng: &mut R,
    ) -> Result<Vec<EncryptedShares>, SecAggError> {
        self.check_live()?;
        if roster.len() < self.params.threshold {
            return Err(self.abort(format!("|U1| = {} < t", roster.len())));
        }
        // All public keys must be distinct (Figure 5 assertion).
        let mut all_keys: Vec<[u8; 32]> = Vec::with_capacity(roster.len() * 2);
        for adv in roster {
            all_keys.push(adv.c_pk);
            all_keys.push(adv.s_pk);
        }
        all_keys.sort_unstable();
        if all_keys.windows(2).any(|w| w[0] == w[1]) {
            return Err(self.abort("duplicate public keys in roster"));
        }
        // Verify identity signatures in the malicious model.
        if let Some(ident) = &self.identity {
            for adv in roster {
                let vk = ident.registry.get(&adv.client).ok_or_else(|| {
                    SecAggError::Config(format!("no PKI entry for {}", adv.client))
                })?;
                let sig = adv
                    .signature
                    .as_ref()
                    .ok_or_else(|| self_abort_err(self.id, "missing roster signature"))?;
                let mut msg = Vec::with_capacity(64);
                msg.extend_from_slice(&adv.c_pk);
                msg.extend_from_slice(&adv.s_pk);
                if vk.verify(&msg, sig).is_err() {
                    return Err(self.abort(format!("bad roster signature from {}", adv.client)));
                }
            }
        }
        for adv in roster {
            if self.index_of(adv.client).is_none() {
                return Err(self.abort(format!("roster contains unsampled id {}", adv.client)));
            }
            self.u1.insert(adv.client, (adv.c_pk, adv.s_pk));
        }
        if !self.u1.contains_key(&self.id) {
            return Err(self.abort("own advertisement missing from roster"));
        }

        // Determine recipients: masking-graph neighbors that are in U1.
        let u1_ids: Vec<ClientId> = self.u1.keys().copied().collect();
        let recipients = self.neighbors_in(&u1_ids);
        if recipients.is_empty() && u1_ids.len() > 1 {
            return Err(self.abort("no live masking neighbors"));
        }

        // Shamir-share s_sk, b, and the noise seeds — indexed by
        // **neighborhood position**, not global roster index. Shares of a
        // client's secrets only ever reach (and return from) its holder
        // set `{self} ∪ neighbors`, so x-coordinates need only be unique
        // within that set: shares are evaluated at the local coordinates
        // `1..=degree+1`, recipient `v` getting the slot at `v`'s position
        // in the sorted holder list. The server's per-owner share pooling
        // is oblivious to the mapping (shares carry `x` on the wire), and
        // under the complete graph the holder list is the full roster so
        // the local x equals the historical global one bit-for-bit. This
        // cuts share generation from `O(n)` to `O(degree)` evaluations
        // per secret and frees the roster size from GF(256): only
        // `degree + 1 ≤ 255` is required (enforced by `validate`).
        // The client keeps its own b-share (it will return it at
        // Unmasking, per Figure 5's `b_{v,u}` for all `v ∈ U3`). The
        // effective threshold is capped at the masking-graph degree so
        // sparse-graph (SecAgg+) reconstruction remains possible.
        let n = self.params.clients.len();
        let my_idx = self.index_of(self.id).expect("own id sampled");
        let holders = self.params.graph.holders(n, my_idx);
        let local_slot = |idx: usize| holders.binary_search(&idx).ok();
        let t = crate::share_threshold(&self.params);
        let sk_shares = shamir::share(&self.s_kp.secret, t, holders.len(), rng)?;
        let b_shares = shamir::share(&self.b_seed, t, holders.len(), rng)?;
        let own_slot = local_slot(my_idx).expect("owner in holder set");
        self.own_b_share = Some(b_shares[own_slot].clone());
        let mut seed_share_lists: Vec<Vec<Share>> = Vec::new();
        if !self.input.noise_seeds.is_empty() {
            for seed in &self.input.noise_seeds[1..] {
                seed_share_lists.push(shamir::share(seed, t, holders.len(), rng)?);
            }
        }

        let mut out = Vec::with_capacity(recipients.len());
        for &to in recipients.iter() {
            let slot = self
                .index_of(to)
                .and_then(local_slot)
                .ok_or_else(|| SecAggError::Config(format!("unknown recipient {to}")))?;
            debug_assert_eq!(sk_shares[slot].x, (slot + 1) as u8);
            let bundle = ShareBundle {
                from: self.id,
                to,
                sk_share: sk_shares[slot].clone(),
                b_share: b_shares[slot].clone(),
                seed_shares: seed_share_lists.iter().map(|l| l[slot].clone()).collect(),
            };
            let (c_pk, _) = self.u1[&to];
            let key = self.c_kp.agree(&c_pk);
            let aad = aad_for(self.params.round, self.id, to);
            let ciphertext = aead::seal(&key, &aad, &bundle.encode(), rng);
            out.push(EncryptedShares {
                from: self.id,
                to,
                ciphertext,
            });
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Stage 2: MaskedInputCollection.
    // ------------------------------------------------------------------

    /// Consumes routed ciphertexts; returns the masked input `y_u`.
    pub fn masked_input(
        &mut self,
        ciphertexts: Vec<EncryptedShares>,
    ) -> Result<MaskedInput, SecAggError> {
        self.check_live()?;
        for ct in ciphertexts {
            if ct.to != self.id {
                return Err(self.abort("misrouted ciphertext"));
            }
            self.inbox.insert(ct.from, ct.ciphertext);
        }
        // U2 is inferred from the senders, plus ourselves.
        let mut u2: Vec<ClientId> = self.inbox.keys().copied().collect();
        u2.push(self.id);
        u2.sort_unstable();
        u2.dedup();
        // In sparse graphs a client only hears from its neighbors, so the
        // threshold check is against neighbor count when the graph is
        // sparse; Figure 5's |U2| >= t check applies to the complete graph.
        let min_live = self.min_live_neighbors();
        if self.inbox.len() < min_live {
            return Err(self.abort(format!(
                "only {} ciphertexts received, need {min_live}",
                self.inbox.len()
            )));
        }
        self.u2 = u2;

        let bits = self.params.bit_width;
        let mut y = self.input.vector.clone();
        // Self mask, fused: the keystream accumulates straight into `y`
        // (no per-mask vector is materialized; bit-equal by
        // `mask::tests::fused_expansion_equals_materialized`).
        mask::add_self_mask_assign(&mut y, &self.b_seed, 0, true, bits);
        // Pairwise masks with every live neighbor.
        let neighbors = self.neighbors_in(&self.u2.clone());
        for v in neighbors {
            let (_, s_pk_v) = self.u1[&v];
            let s_uv = self.s_kp.agree(&s_pk_v);
            mask::add_pairwise_mask_assign(&mut y, &s_uv, 0, self.id > v, bits);
        }
        Ok(MaskedInput {
            client: self.id,
            vector: y,
            bit_width: bits,
        })
    }

    /// Minimum ciphertexts a client must receive before proceeding: `t-1`
    /// in the complete graph, a 2/3 quorum of its degree in sparse graphs.
    fn min_live_neighbors(&self) -> usize {
        let n = self.params.clients.len();
        let deg = self.params.graph.degree(n);
        if deg + 1 >= n {
            self.params.threshold.saturating_sub(1)
        } else {
            (2 * deg).div_ceil(3)
        }
    }

    // ------------------------------------------------------------------
    // Stage 3: ConsistencyCheck (malicious model).
    // ------------------------------------------------------------------

    /// Signs the broadcast U3 set.
    pub fn consistency_check(
        &mut self,
        u3: &[ClientId],
    ) -> Result<ConsistencySignature, SecAggError> {
        self.check_live()?;
        self.accept_u3(u3)?;
        let ident = self
            .identity
            .as_ref()
            .ok_or_else(|| SecAggError::Config("consistency check requires identity".into()))?;
        let signature = ident.signing.sign(&u3_message(self.params.round, u3));
        Ok(ConsistencySignature {
            client: self.id,
            signature,
        })
    }

    fn accept_u3(&mut self, u3: &[ClientId]) -> Result<(), SecAggError> {
        if u3.len() < self.params.threshold {
            return Err(self.abort(format!("|U3| = {} < t", u3.len())));
        }
        if !u3.contains(&self.id) {
            return Err(self.abort("excluded from U3 despite having responded"));
        }
        // Subset check: a client can only vouch for ids it actually heard
        // from, which in a sparse masking graph is its neighborhood. Every
        // claimed survivor within our neighborhood must have shared keys
        // with us; ids outside the neighborhood are other clients'
        // responsibility.
        let n = self.params.clients.len();
        let my_idx = self.index_of(self.id).expect("own id sampled");
        for &v in u3 {
            let Some(vi) = self.index_of(v) else {
                return Err(self.abort(format!("U3 contains unsampled id {v}")));
            };
            if v != self.id
                && self.params.graph.are_neighbors(n, my_idx, vi)
                && !self.u2.contains(&v)
            {
                return Err(self.abort("U3 not a subset of U2 within neighborhood"));
            }
        }
        let mut sorted = u3.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != u3.len() {
            return Err(self.abort("duplicate ids in U3"));
        }
        self.u3 = sorted;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Stage 4: Unmasking.
    // ------------------------------------------------------------------

    /// Produces the unmasking response.
    ///
    /// In the semi-honest model, `u3` is the server's broadcast of
    /// surviving clients and `signatures` is `None`. In the malicious
    /// model, `u3` is the set fixed at `consistency_check` and
    /// `signatures` carries `{(v, ω'_v)}` for `v ∈ U4`, which must verify
    /// over `round ‖ U3` against the PKI — the defence against a server
    /// understating dropout (§3.3).
    pub fn unmask(
        &mut self,
        u3: &[ClientId],
        signatures: Option<&[(ClientId, Signature)]>,
    ) -> Result<UnmaskingResponse, SecAggError> {
        self.check_live()?;
        match self.params.threat_model {
            ThreatModel::SemiHonest => {
                self.accept_u3(u3)?;
            }
            ThreatModel::Malicious => {
                // U3 was fixed at consistency_check; the server's claim
                // must match and carry >= t valid signatures over it.
                if self.u3.is_empty() {
                    return Err(self.abort("unmask before consistency check"));
                }
                let mut claimed = u3.to_vec();
                claimed.sort_unstable();
                if claimed != self.u3 {
                    return Err(self.abort("server's U3 differs from the signed set"));
                }
                let sigs = signatures
                    .ok_or_else(|| self_abort_err(self.id, "missing consistency signatures"))?;
                if sigs.len() < self.params.threshold {
                    self.aborted = true;
                    return Err(SecAggError::ClientAbort {
                        client: self.id,
                        reason: format!("|U4| = {} < t", sigs.len()),
                    });
                }
                let ident = self
                    .identity
                    .as_ref()
                    .expect("malicious model has identity");
                let msg = u3_message(self.params.round, &self.u3);
                let mut u4 = Vec::with_capacity(sigs.len());
                for (v, sig) in sigs {
                    if !self.u3.contains(v) {
                        return Err(self.abort("U4 not a subset of U3"));
                    }
                    let vk = ident
                        .registry
                        .get(v)
                        .ok_or_else(|| SecAggError::Config(format!("no PKI entry for {v}")))?;
                    if vk.verify(&msg, sig).is_err() {
                        return Err(self.abort(format!("invalid consistency signature from {v}")));
                    }
                    u4.push(*v);
                }
                self.u4 = u4;
            }
        }

        // Decrypt every received bundle, verifying addressing.
        let mut bundles: BTreeMap<ClientId, ShareBundle> = BTreeMap::new();
        let inbox = std::mem::take(&mut self.inbox);
        for (&from, ct) in inbox.iter() {
            let (c_pk, _) = self.u1[&from];
            let key = self.c_kp.agree(&c_pk);
            let aad = aad_for(self.params.round, from, self.id);
            let plain = match aead::open(&key, &aad, ct) {
                Ok(p) => p,
                Err(_) => return Err(self.abort(format!("ciphertext from {from} failed AEAD"))),
            };
            let bundle = ShareBundle::decode(&plain)
                .ok_or_else(|| self_abort_err(self.id, "malformed share bundle"))?;
            if bundle.from != from || bundle.to != self.id {
                return Err(self.abort("share bundle addressing mismatch"));
            }
            bundles.insert(from, bundle);
        }
        self.inbox = inbox;

        // Respond: s_sk shares for dropped (U2 \ U3), b shares for alive
        // (U3), own seeds for the removal range.
        let u3 = self.u3.clone();
        let mut sk_shares = Vec::new();
        let mut b_shares = Vec::new();
        // Own share of own b (we are in U3, or we would not be here).
        if let Some(own) = self.own_b_share.clone() {
            b_shares.push((self.id, own));
        }
        for (&from, bundle) in bundles.iter() {
            if u3.contains(&from) {
                b_shares.push((from, bundle.b_share.clone()));
            } else {
                sk_shares.push((from, bundle.sk_share.clone()));
            }
        }
        let own_seeds = self.removal_seed_range().map_or_else(Vec::new, |range| {
            range
                .map(|k| (k, self.input.noise_seeds[k]))
                .collect::<Vec<_>>()
        });
        Ok(UnmaskingResponse {
            client: self.id,
            sk_shares,
            b_shares,
            own_seeds,
        })
    }

    /// The XNoise component indices to reveal: `|U \ U3| + 1 ..= T`.
    fn removal_seed_range(&self) -> Option<std::ops::RangeInclusive<usize>> {
        if self.input.noise_seeds.is_empty() {
            return None;
        }
        let t_cap = self.params.noise_components;
        let dropped = self.params.clients.len() - self.u3.len();
        if dropped >= t_cap {
            return None;
        }
        Some((dropped + 1)..=t_cap)
    }

    // ------------------------------------------------------------------
    // Stage 5: ExcessiveNoiseRemoval.
    // ------------------------------------------------------------------

    /// Returns shares of noise seeds owned by clients in `U3 \ U5` (those
    /// whose masked input is in the sum but who dropped before reporting
    /// their own seeds).
    pub fn noise_shares(&mut self, u5: &[ClientId]) -> Result<NoiseShareResponse, SecAggError> {
        self.check_live()?;
        if u5.len() < self.params.threshold {
            return Err(self.abort(format!("|U5| = {} < t", u5.len())));
        }
        if !u5.iter().all(|v| self.u3.contains(v)) {
            return Err(self.abort("U5 not a subset of U3"));
        }
        let range = match self.removal_seed_range() {
            Some(r) => r,
            None => {
                return Ok(NoiseShareResponse {
                    client: self.id,
                    seed_shares: Vec::new(),
                })
            }
        };
        let mut seed_shares = Vec::new();
        for (&from, ct) in self.inbox.iter() {
            if !self.u3.contains(&from) || u5.contains(&from) {
                continue;
            }
            let (c_pk, _) = self.u1[&from];
            let key = self.c_kp.agree(&c_pk);
            let aad = aad_for(self.params.round, from, self.id);
            let plain = aead::open(&key, &aad, ct)
                .map_err(|_| self_abort_err(self.id, "stage-5 AEAD failure"))?;
            let bundle = ShareBundle::decode(&plain)
                .ok_or_else(|| self_abort_err(self.id, "stage-5 malformed bundle"))?;
            for k in range.clone() {
                if let Some(share) = bundle.seed_shares.get(k - 1) {
                    seed_shares.push((from, k, share.clone()));
                }
            }
        }
        Ok(NoiseShareResponse {
            client: self.id,
            seed_shares,
        })
    }
}

fn self_abort_err(client: ClientId, reason: &str) -> SecAggError {
    SecAggError::ClientAbort {
        client,
        reason: reason.into(),
    }
}

/// AEAD associated data binding a ciphertext to (round, from, to).
fn aad_for(round: u64, from: ClientId, to: ClientId) -> Vec<u8> {
    let mut aad = Vec::with_capacity(16);
    aad.extend_from_slice(&round.to_le_bytes());
    aad.extend_from_slice(&from.to_le_bytes());
    aad.extend_from_slice(&to.to_le_bytes());
    aad
}

/// Message signed during the consistency check: `round ‖ sorted U3`.
pub(crate) fn u3_message(round: u64, u3: &[ClientId]) -> Vec<u8> {
    let mut sorted = u3.to_vec();
    sorted.sort_unstable();
    let mut msg = Vec::with_capacity(8 + 4 * sorted.len());
    msg.extend_from_slice(&round.to_le_bytes());
    for id in sorted {
        msg.extend_from_slice(&id.to_le_bytes());
    }
    msg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::MaskingGraph;
    use rand::SeedableRng;

    fn params(n: u32, t: usize) -> RoundParams {
        RoundParams {
            round: 1,
            clients: (0..n).collect(),
            threshold: t,
            bit_width: 16,
            vector_len: 4,
            noise_components: 0,
            threat_model: ThreatModel::SemiHonest,
            graph: MaskingGraph::Complete,
        }
    }

    fn input(v: &[u64]) -> ClientInput {
        ClientInput {
            vector: v.to_vec(),
            noise_seeds: vec![],
        }
    }

    #[test]
    fn rejects_wrong_vector_length() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let err = Client::new(params(4, 3), 0, input(&[1, 2]), None, &mut rng);
        assert!(matches!(err, Err(SecAggError::Config(_))));
    }

    #[test]
    fn rejects_out_of_ring_coordinates() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let err = Client::new(params(4, 3), 0, input(&[1, 2, 3, 1 << 20]), None, &mut rng);
        assert!(matches!(err, Err(SecAggError::Config(_))));
    }

    #[test]
    fn rejects_unsampled_client() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let err = Client::new(params(4, 3), 99, input(&[0; 4]), None, &mut rng);
        assert!(matches!(err, Err(SecAggError::Config(_))));
    }

    #[test]
    fn share_keys_needs_threshold_roster() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut c = Client::new(params(4, 3), 0, input(&[0; 4]), None, &mut rng).unwrap();
        let adv = c.advertise_keys().unwrap();
        let err = c.share_keys(&[adv], &mut rng);
        assert!(matches!(err, Err(SecAggError::ClientAbort { .. })));
    }

    #[test]
    fn duplicate_roster_keys_abort() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut a = Client::new(params(3, 2), 0, input(&[0; 4]), None, &mut rng).unwrap();
        let adv_a = a.advertise_keys().unwrap();
        let mut dup = adv_a.clone();
        dup.client = 1;
        let err = a.share_keys(&[adv_a, dup], &mut rng);
        assert!(matches!(err, Err(SecAggError::ClientAbort { .. })));
    }

    #[test]
    fn aborted_client_stays_aborted() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut c = Client::new(params(4, 3), 0, input(&[0; 4]), None, &mut rng).unwrap();
        let adv = c.advertise_keys().unwrap();
        assert!(c.share_keys(&[adv], &mut rng).is_err());
        assert!(c.advertise_keys().is_err());
    }

    #[test]
    fn u3_message_is_order_invariant() {
        assert_eq!(u3_message(5, &[3, 1, 2]), u3_message(5, &[1, 2, 3]));
        assert_ne!(u3_message(5, &[1, 2]), u3_message(6, &[1, 2]));
    }
}
