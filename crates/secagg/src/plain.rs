//! Plain (insecure) aggregation baseline.
//!
//! Sums client vectors in `Z_{2^b}` with no masking at all. Used by the
//! evaluation to separate the cost of secure aggregation from the cost of
//! moving updates (the "w/o DP"/non-private baselines of Figures 2/10).

use std::collections::BTreeMap;

use crate::mask;
use crate::{ClientId, SecAggError};

/// Aggregates vectors in `Z_{2^b}`; all vectors must share a length.
///
/// # Errors
///
/// Fails on empty input or mismatched lengths.
pub fn aggregate(
    inputs: &BTreeMap<ClientId, Vec<u64>>,
    bit_width: u32,
) -> Result<Vec<u64>, SecAggError> {
    let mut iter = inputs.values();
    let first = iter
        .next()
        .ok_or_else(|| SecAggError::Config("no inputs".into()))?;
    let mut sum = vec![0u64; first.len()];
    for v in inputs.values() {
        if v.len() != first.len() {
            return Err(SecAggError::Config("length mismatch".into()));
        }
        mask::add_signed_assign(&mut sum, v, true, bit_width);
    }
    Ok(sum)
}

/// Uplink bytes for a plain round (packed coordinates).
#[must_use]
pub fn uplink_bytes(vector_len: usize, bit_width: u32, clients: usize) -> u64 {
    (vector_len as u64 * u64::from(bit_width)).div_ceil(8) * clients as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_mod_ring() {
        let mut inputs = BTreeMap::new();
        inputs.insert(0, vec![100u64, (1 << 10) - 1]);
        inputs.insert(1, vec![50u64, 2]);
        let sum = aggregate(&inputs, 10).unwrap();
        assert_eq!(sum, vec![150, 1]);
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        assert!(aggregate(&BTreeMap::new(), 10).is_err());
        let mut inputs = BTreeMap::new();
        inputs.insert(0, vec![1u64]);
        inputs.insert(1, vec![1u64, 2]);
        assert!(aggregate(&inputs, 10).is_err());
    }

    #[test]
    fn uplink_packs_bits() {
        assert_eq!(uplink_bytes(1000, 20, 4), 2500 * 4);
    }
}
