//! In-memory round executor with dropout injection and traffic accounting.
//!
//! The driver wires the client and server state machines together exactly
//! as a network would, drops clients at configurable stage boundaries, and
//! records per-stage traffic. Protocol logic lives entirely in
//! [`crate::client`] and [`crate::server`]; the driver is deliberately
//! dumb so that tests exercising the state machines directly (e.g. the
//! malicious-server suite) see the same behaviour.

use std::collections::BTreeMap;
use std::sync::Arc;

use dordis_crypto::ed25519::SigningKey;
use rand::SeedableRng;

use crate::client::{Client, ClientInput, Identity};
use crate::messages::{IdList, WireSize};
use crate::server::{RoundOutcome, Server};
use crate::{ClientId, RoundParams, SecAggError, ThreatModel};

/// The last point at which a client is still alive; it produces no
/// messages from the named stage onward.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DropStage {
    /// Drops before advertising keys (never participates).
    BeforeAdvertise,
    /// Drops after advertising, before sharing keys.
    BeforeShareKeys,
    /// Drops after sharing keys, before sending the masked input — the
    /// paper's standard dropout model (§6.1).
    BeforeMaskedInput,
    /// Drops after the masked input, before the consistency check.
    BeforeConsistency,
    /// Drops after the consistency check, before unmasking (exercises
    /// `U3 \ U5` and therefore stage 5).
    BeforeUnmasking,
    /// Drops after unmasking, before the noise-share stage.
    BeforeNoiseShares,
    /// Stays for the whole round.
    Never,
}

/// Per-round dropout plan.
#[derive(Clone, Debug, Default)]
pub struct DropoutSchedule {
    map: BTreeMap<ClientId, DropStage>,
}

impl DropoutSchedule {
    /// No dropouts.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Marks `client` to drop at `stage`.
    pub fn drop_at(&mut self, client: ClientId, stage: DropStage) -> &mut Self {
        self.map.insert(client, stage);
        self
    }

    /// True if the client is still alive at `stage`.
    #[must_use]
    pub fn alive_at(&self, client: ClientId, stage: DropStage) -> bool {
        match self.map.get(&client) {
            None => true,
            Some(&drop) => stage < drop,
        }
    }
}

/// Traffic observed during one stage.
#[derive(Clone, Debug, Default)]
pub struct StageTraffic {
    /// Stage name.
    pub stage: &'static str,
    /// Total client→server bytes.
    pub uplink_total: u64,
    /// Largest single client's uplink bytes.
    pub uplink_max: u64,
    /// Total server→client bytes.
    pub downlink_total: u64,
    /// Largest single client's downlink bytes.
    pub downlink_max: u64,
}

/// Full traffic statistics for a round.
#[derive(Clone, Debug, Default)]
pub struct RoundStats {
    /// Per-stage traffic in execution order.
    pub stages: Vec<StageTraffic>,
    /// Clients that aborted (detected an inconsistency) rather than
    /// dropping per schedule.
    pub aborted: Vec<ClientId>,
}

impl RoundStats {
    /// Total bytes moved in the round.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| s.uplink_total + s.downlink_total)
            .sum()
    }

    /// Finds a stage's traffic by name.
    #[must_use]
    pub fn stage(&self, name: &str) -> Option<&StageTraffic> {
        self.stages.iter().find(|s| s.stage == name)
    }
}

/// Specification of one driver-executed round.
pub struct RoundSpec {
    /// Protocol parameters.
    pub params: RoundParams,
    /// Each sampled client's input.
    pub inputs: BTreeMap<ClientId, ClientInput>,
    /// Dropout plan.
    pub dropout: DropoutSchedule,
    /// Seed for all client randomness (deterministic runs).
    pub rng_seed: u64,
}

/// Runs a full round in memory.
///
/// Clients that abort due to a detected inconsistency are treated as
/// dropped from that point on (matching deployed behaviour, where an
/// aborting client simply goes silent); hard configuration errors
/// propagate.
///
/// # Errors
///
/// Returns the server's error if a stage falls below threshold, plus any
/// configuration error.
pub fn run_round(spec: RoundSpec) -> Result<(RoundOutcome, RoundStats), SecAggError> {
    let params = spec.params;
    params.validate()?;
    let mut stats = RoundStats::default();

    // PKI setup in the malicious model.
    let registry: Option<Arc<BTreeMap<ClientId, dordis_crypto::ed25519::VerifyingKey>>> =
        if params.threat_model == ThreatModel::Malicious {
            let mut reg = BTreeMap::new();
            for &id in &params.clients {
                let sk = signing_key_for(spec.rng_seed, id);
                reg.insert(id, sk.verifying_key());
            }
            Some(Arc::new(reg))
        } else {
            None
        };

    // Instantiate clients.
    let mut clients: BTreeMap<ClientId, Client> = BTreeMap::new();
    for &id in &params.clients {
        let input = spec
            .inputs
            .get(&id)
            .cloned()
            .ok_or_else(|| SecAggError::Config(format!("missing input for client {id}")))?;
        let identity = registry.as_ref().map(|reg| Identity {
            signing: signing_key_for(spec.rng_seed, id),
            registry: Arc::clone(reg),
        });
        let mut rng = client_rng(spec.rng_seed, id);
        clients.insert(
            id,
            Client::new(params.clone(), id, input, identity, &mut rng)?,
        );
    }

    let mut server = Server::new(params.clone())?;
    let alive =
        |sched: &DropoutSchedule, id: ClientId, st: DropStage| -> bool { sched.alive_at(id, st) };

    // ---- Stage 0: AdvertiseKeys. ----
    let mut advs = Vec::new();
    let mut up = Traffic::default();
    for (&id, c) in clients.iter_mut() {
        if !alive(&spec.dropout, id, DropStage::BeforeAdvertise) {
            continue;
        }
        match c.advertise_keys() {
            Ok(a) => {
                up.add(a.wire_bytes());
                advs.push(a);
            }
            Err(SecAggError::ClientAbort { client, .. }) => stats.aborted.push(client),
            Err(e) => return Err(e),
        }
    }
    let roster = server.collect_advertisements(advs)?;
    let roster_bytes: u64 = roster.iter().map(WireSize::wire_bytes).sum();
    let live_count = roster.len() as u64;
    stats.stages.push(StageTraffic {
        stage: "AdvertiseKeys",
        uplink_total: up.total,
        uplink_max: up.max,
        downlink_total: roster_bytes * live_count,
        downlink_max: roster_bytes,
    });

    // ---- Stage 1: ShareKeys. ----
    let mut all_cts = Vec::new();
    let mut up = Traffic::default();
    for (&id, c) in clients.iter_mut() {
        if !alive(&spec.dropout, id, DropStage::BeforeShareKeys) {
            continue;
        }
        match c.share_keys(&roster, &mut share_keys_rng(spec.rng_seed, id)) {
            Ok(cts) => {
                up.add(cts.iter().map(WireSize::wire_bytes).sum());
                all_cts.extend(cts);
            }
            Err(SecAggError::ClientAbort { client, .. }) => stats.aborted.push(client),
            Err(e) => return Err(e),
        }
    }
    let mut inboxes = server.route_shares(all_cts)?;
    let mut down = Traffic::default();
    for cts in inboxes.values() {
        down.add(cts.iter().map(WireSize::wire_bytes).sum());
    }
    stats.stages.push(StageTraffic {
        stage: "ShareKeys",
        uplink_total: up.total,
        uplink_max: up.max,
        downlink_total: down.total,
        downlink_max: down.max,
    });

    // ---- Stage 2: MaskedInputCollection. ----
    let mut masked = Vec::new();
    let mut up = Traffic::default();
    for (&id, c) in clients.iter_mut() {
        if !alive(&spec.dropout, id, DropStage::BeforeMaskedInput) {
            continue;
        }
        let inbox = inboxes.remove(&id).unwrap_or_default();
        match c.masked_input(inbox) {
            Ok(m) => {
                up.add(m.wire_bytes());
                masked.push(m);
            }
            Err(SecAggError::ClientAbort { client, .. }) => stats.aborted.push(client),
            Err(e) => return Err(e),
        }
    }
    let u3 = server.collect_masked(masked)?;
    let u3_bytes = IdList(u3.clone()).wire_bytes();
    stats.stages.push(StageTraffic {
        stage: "MaskedInputCollection",
        uplink_total: up.total,
        uplink_max: up.max,
        downlink_total: u3_bytes * u3.len() as u64,
        downlink_max: u3_bytes,
    });

    // ---- Stage 3: ConsistencyCheck (malicious only). ----
    let signatures = if params.threat_model == ThreatModel::Malicious {
        let mut sigs = Vec::new();
        let mut up = Traffic::default();
        for &id in &u3 {
            if !alive(&spec.dropout, id, DropStage::BeforeConsistency) {
                continue;
            }
            let c = clients.get_mut(&id).expect("sampled");
            match c.consistency_check(&u3) {
                Ok(s) => {
                    up.add(s.wire_bytes());
                    sigs.push(s);
                }
                Err(SecAggError::ClientAbort { client, .. }) => stats.aborted.push(client),
                Err(e) => return Err(e),
            }
        }
        let list = server.collect_consistency(sigs)?;
        let down_bytes = list.len() as u64 * 68;
        stats.stages.push(StageTraffic {
            stage: "ConsistencyCheck",
            uplink_total: up.total,
            uplink_max: up.max,
            downlink_total: down_bytes * u3.len() as u64,
            downlink_max: down_bytes,
        });
        Some(list)
    } else {
        None
    };

    // ---- Stage 4: Unmasking. ----
    let mut responses = Vec::new();
    let mut up = Traffic::default();
    for &id in &u3 {
        if !alive(&spec.dropout, id, DropStage::BeforeUnmasking) {
            continue;
        }
        let c = clients.get_mut(&id).expect("sampled");
        match c.unmask(&u3, signatures.as_deref()) {
            Ok(r) => {
                up.add(r.wire_bytes());
                responses.push(r);
            }
            Err(SecAggError::ClientAbort { client, .. }) => stats.aborted.push(client),
            Err(e) => return Err(e),
        }
    }
    server.collect_unmasking(responses)?;
    let u5 = server.u5().to_vec();
    let u5_bytes = IdList(u5.clone()).wire_bytes();
    stats.stages.push(StageTraffic {
        stage: "Unmasking",
        uplink_total: up.total,
        uplink_max: up.max,
        downlink_total: u5_bytes * u5.len() as u64,
        downlink_max: u5_bytes,
    });

    // ---- Stage 5: ExcessiveNoiseRemoval (only if needed). ----
    if !server.pending_seed_owners().is_empty() {
        let mut responses = Vec::new();
        let mut up = Traffic::default();
        for &id in &u5 {
            if !alive(&spec.dropout, id, DropStage::BeforeNoiseShares) {
                continue;
            }
            let c = clients.get_mut(&id).expect("sampled");
            match c.noise_shares(&u5) {
                Ok(r) => {
                    up.add(r.wire_bytes());
                    responses.push(r);
                }
                Err(SecAggError::ClientAbort { client, .. }) => stats.aborted.push(client),
                Err(e) => return Err(e),
            }
        }
        server.collect_noise_shares(responses)?;
        stats.stages.push(StageTraffic {
            stage: "ExcessiveNoiseRemoval",
            uplink_total: up.total,
            uplink_max: up.max,
            downlink_total: 0,
            downlink_max: 0,
        });
    }

    debug_assert!(server.privacy_invariant_holds());
    Ok((server.finish(), stats))
}

/// Drives a semi-honest round through stages 0–4 up to (and including)
/// the survivors' unmasking *responses*, without consuming them:
/// returns the server, the responses, and U3. `dropped` clients vanish
/// just before the masked input — the expensive recovery case — and
/// `input_for` builds each client's input.
///
/// This is the setup harness shared by the pooled-unmask equivalence
/// test and the `unmask_cpu` bench: both need to run the *same*
/// unmasking work through two different execution paths, which
/// [`run_round`]'s single-call shape cannot express.
///
/// # Errors
///
/// Rejects malicious-model parameters (the consistency stage is not
/// driven here) and propagates any stage failure.
pub fn run_until_unmasking(
    params: &RoundParams,
    plan: &dordis_pipeline::ChunkPlan,
    dropped: &[ClientId],
    rng_seed: u64,
    mut input_for: impl FnMut(ClientId) -> ClientInput,
) -> Result<
    (
        Server,
        Vec<crate::messages::UnmaskingResponse>,
        Vec<ClientId>,
    ),
    SecAggError,
> {
    if params.threat_model == ThreatModel::Malicious {
        return Err(SecAggError::Config(
            "run_until_unmasking drives semi-honest rounds only".into(),
        ));
    }
    let mut clients: BTreeMap<ClientId, Client> = BTreeMap::new();
    for &id in &params.clients {
        let mut rng = client_rng(rng_seed, id);
        clients.insert(
            id,
            Client::new(params.clone(), id, input_for(id), None, &mut rng)?,
        );
    }
    let mut server = Server::with_chunks(params.clone(), plan.clone())?;

    let advs = clients
        .values_mut()
        .map(Client::advertise_keys)
        .collect::<Result<Vec<_>, _>>()?;
    let roster = server.collect_advertisements(advs)?;

    let mut all_cts = Vec::new();
    for (&id, c) in clients.iter_mut() {
        all_cts.extend(c.share_keys(&roster, &mut share_keys_rng(rng_seed, id))?);
    }
    let mut inboxes = server.route_shares(all_cts)?;

    let mut masked = Vec::new();
    for (&id, c) in clients.iter_mut() {
        let inbox = inboxes.remove(&id).unwrap_or_default();
        let m = c.masked_input(inbox)?;
        if !dropped.contains(&id) {
            masked.push(m);
        }
    }
    let u3 = server.collect_masked(masked)?;

    let mut responses = Vec::new();
    for id in &u3 {
        responses.push(clients.get_mut(id).expect("sampled").unmask(&u3, None)?);
    }
    Ok((server, responses, u3))
}

/// Derives one round's protocol seed from a session-level base seed.
///
/// A multi-round session must reset every per-round secret — self-mask
/// seeds, pairwise key-agreement keys, Shamir polynomials — each round;
/// reusing `base` directly would make every round's masks identical
/// (and one recorded round would unmask all the others). Both the
/// networked session runtime and the in-memory reference derive the
/// per-round [`RoundSpec::rng_seed`] through this one function, so a
/// session round stays bit-equal to the equivalent driver round.
#[must_use]
pub fn round_rng_seed(base: u64, round: u64) -> u64 {
    base ^ round.rotate_left(17) ^ 0x00d0_ed15_5e55_u64.rotate_left((round % 31) as u32)
}

/// The per-client RNG for [`Client::new`]. Exported so the networked
/// runtime (`dordis-net`) derives identical randomness and a loopback
/// round reproduces a driver round bit for bit.
#[must_use]
pub fn client_rng(seed: u64, id: ClientId) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed ^ (u64::from(id) << 20) ^ 0x5eca_66d0)
}

/// The per-client RNG for [`Client::share_keys`]; see [`client_rng`].
#[must_use]
pub fn share_keys_rng(seed: u64, id: ClientId) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed ^ (u64::from(id) << 24) ^ 0x5a4e)
}

/// Deterministic per-client signing key (stands in for the PKI's
/// out-of-band key distribution). Public so the networked path
/// (`dordis-net` callers) can reproduce the same PKI for equivalence
/// testing.
pub fn signing_key_for(seed: u64, id: ClientId) -> SigningKey {
    let mut s = [0u8; 32];
    s[..8].copy_from_slice(&seed.to_le_bytes());
    s[8..12].copy_from_slice(&id.to_le_bytes());
    s[31] = 0x51;
    SigningKey::from_seed(&s)
}

#[derive(Default)]
struct Traffic {
    total: u64,
    max: u64,
}

impl Traffic {
    fn add(&mut self, bytes: u64) {
        self.total += bytes;
        self.max = self.max.max(bytes);
    }
}
