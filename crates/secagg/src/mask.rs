//! Mask expansion and modular vector arithmetic in `Z_{2^b}`.

use dordis_crypto::prg::{Prg, Seed};

/// Expands a pairwise mask vector from an agreed key.
#[must_use]
pub fn pairwise_mask(shared_key: &[u8; 32], len: usize, bit_width: u32) -> Vec<u64> {
    let mut out = vec![0u64; len];
    Prg::new(shared_key, b"secagg.pairwise").fill_mod2b(bit_width, &mut out);
    out
}

/// Expands a client's private self-mask `p_u = PRG(b_u)`.
#[must_use]
pub fn self_mask(seed: &Seed, len: usize, bit_width: u32) -> Vec<u64> {
    let mut out = vec![0u64; len];
    Prg::new(seed, b"secagg.selfmask").fill_mod2b(bit_width, &mut out);
    out
}

/// `acc += sign * mask (mod 2^b)` where `sign` is `+1` or `-1`.
pub fn add_signed_assign(acc: &mut [u64], mask: &[u64], positive: bool, bit_width: u32) {
    debug_assert_eq!(acc.len(), mask.len());
    let ring = ring_mask(bit_width);
    for (a, &m) in acc.iter_mut().zip(mask.iter()) {
        let m = if positive { m } else { m.wrapping_neg() };
        *a = a.wrapping_add(m) & ring;
    }
}

/// The ring mask `2^b - 1`.
#[must_use]
pub fn ring_mask(bit_width: u32) -> u64 {
    if bit_width == 64 {
        u64::MAX
    } else {
        (1u64 << bit_width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_masks_cancel() {
        // The defining property: +mask then -mask restores the vector.
        let key = [7u8; 32];
        let bits = 20;
        let mut acc = vec![5u64, 10, 15];
        let m = pairwise_mask(&key, 3, bits);
        add_signed_assign(&mut acc, &m, true, bits);
        add_signed_assign(&mut acc, &m, false, bits);
        assert_eq!(acc, vec![5, 10, 15]);
    }

    #[test]
    fn masks_are_deterministic_and_domain_separated() {
        let key = [1u8; 32];
        assert_eq!(pairwise_mask(&key, 8, 20), pairwise_mask(&key, 8, 20));
        assert_ne!(pairwise_mask(&key, 8, 20), self_mask(&key, 8, 20));
    }

    #[test]
    fn masks_respect_bit_width() {
        let m = pairwise_mask(&[9u8; 32], 64, 12);
        assert!(m.iter().all(|&x| x < (1 << 12)));
    }

    #[test]
    fn signed_add_wraps() {
        let bits = 8;
        let mut acc = vec![250u64];
        add_signed_assign(&mut acc, &[10], true, bits);
        assert_eq!(acc, vec![4]); // 260 mod 256.
        add_signed_assign(&mut acc, &[10], false, bits);
        assert_eq!(acc, vec![250]);
    }
}
