//! Mask expansion and modular vector arithmetic in `Z_{2^b}`.
//!
//! Two API layers:
//!
//! - The materializing layer ([`pairwise_mask`], [`self_mask`] +
//!   [`add_signed_assign`]) builds a full mask vector and then folds it
//!   in — the shape the original protocol code was written in.
//! - The fused layer ([`expand_and_add`] and the
//!   [`add_pairwise_mask_assign`] / [`add_self_mask_assign`] wrappers)
//!   accumulates the PRG keystream **directly into the running sum** in
//!   cache-sized strips, never materializing a `Vec<u64>` per mask per
//!   neighbor — the dominant allocation in unmasking recovery, where a
//!   dropout costs `O(neighbors)` full-dimension expansions. The
//!   `elem_offset` parameter seeks the mask stream (ChaCha20 is
//!   seekable), so a per-chunk compute job expands exactly its slice of
//!   every mask.
//!
//! Both layers are bit-equal: element `i` of every mask is keystream
//! word `i` masked to the ring, and addition in `Z_{2^b}` commutes.

use dordis_crypto::prg::{Prg, Seed};

/// PRG domain for pairwise masks `PRG(s_{u,v})`.
const DOMAIN_PAIRWISE: &[u8] = b"secagg.pairwise";
/// PRG domain for self-masks `PRG(b_u)`.
const DOMAIN_SELFMASK: &[u8] = b"secagg.selfmask";

/// Strip length (in `u64`s) for fused expansion: large enough to
/// amortize the ChaCha20 block loop, small enough to stay in L1.
const STRIP: usize = 512;

/// Expands a pairwise mask vector from an agreed key.
#[must_use]
pub fn pairwise_mask(shared_key: &[u8; 32], len: usize, bit_width: u32) -> Vec<u64> {
    let mut out = vec![0u64; len];
    Prg::new(shared_key, DOMAIN_PAIRWISE).fill_mod2b(bit_width, &mut out);
    out
}

/// Expands a client's private self-mask `p_u = PRG(b_u)`.
#[must_use]
pub fn self_mask(seed: &Seed, len: usize, bit_width: u32) -> Vec<u64> {
    let mut out = vec![0u64; len];
    Prg::new(seed, DOMAIN_SELFMASK).fill_mod2b(bit_width, &mut out);
    out
}

/// Fused expand-and-accumulate: `acc ± PRG-stream (mod 2^b)`, strip by
/// strip, without materializing the mask vector. `prg` must already be
/// positioned at the stream element corresponding to `acc[0]`.
pub fn expand_and_add(prg: &mut Prg, acc: &mut [u64], positive: bool, bit_width: u32) {
    let mut strip = [0u64; STRIP];
    let mut rest = acc;
    while !rest.is_empty() {
        let n = rest.len().min(STRIP);
        prg.fill_mod2b(bit_width, &mut strip[..n]);
        add_signed_assign(&mut rest[..n], &strip[..n], positive, bit_width);
        rest = &mut rest[n..];
    }
}

/// `acc ± PRG(s_{u,v})[offset .. offset + acc.len()] (mod 2^b)` — the
/// fused, seekable form of [`pairwise_mask`] + [`add_signed_assign`].
pub fn add_pairwise_mask_assign(
    acc: &mut [u64],
    shared_key: &[u8; 32],
    elem_offset: usize,
    positive: bool,
    bit_width: u32,
) {
    let mut prg = Prg::new_at(shared_key, DOMAIN_PAIRWISE, elem_offset);
    expand_and_add(&mut prg, acc, positive, bit_width);
}

/// `acc ± PRG(b_u)[offset .. offset + acc.len()] (mod 2^b)` — the
/// fused, seekable form of [`self_mask`] + [`add_signed_assign`].
pub fn add_self_mask_assign(
    acc: &mut [u64],
    seed: &Seed,
    elem_offset: usize,
    positive: bool,
    bit_width: u32,
) {
    let mut prg = Prg::new_at(seed, DOMAIN_SELFMASK, elem_offset);
    expand_and_add(&mut prg, acc, positive, bit_width);
}

/// `acc += sign * mask (mod 2^b)` where `sign` is `+1` or `-1`.
///
/// The sign branch is hoisted out of the loop (negation in `Z_{2^b}` is
/// `wrapping_neg` before the ring mask, so each arm is pure adds), and
/// the hot arms run in 4-element unrolled strips. Bit-equal to the
/// naive branch-in-loop shape, pinned by `matches_reference_shape`.
pub fn add_signed_assign(acc: &mut [u64], mask: &[u64], positive: bool, bit_width: u32) {
    debug_assert_eq!(acc.len(), mask.len());
    let ring = ring_mask(bit_width);
    let n = acc.len().min(mask.len());
    let (a_strips, a_tail) = acc[..n].split_at_mut(n - n % 4);
    let (m_strips, m_tail) = mask[..n].split_at(n - n % 4);
    if positive {
        for (a, m) in a_strips.chunks_exact_mut(4).zip(m_strips.chunks_exact(4)) {
            a[0] = a[0].wrapping_add(m[0]) & ring;
            a[1] = a[1].wrapping_add(m[1]) & ring;
            a[2] = a[2].wrapping_add(m[2]) & ring;
            a[3] = a[3].wrapping_add(m[3]) & ring;
        }
        for (a, &m) in a_tail.iter_mut().zip(m_tail.iter()) {
            *a = a.wrapping_add(m) & ring;
        }
    } else {
        for (a, m) in a_strips.chunks_exact_mut(4).zip(m_strips.chunks_exact(4)) {
            a[0] = a[0].wrapping_add(m[0].wrapping_neg()) & ring;
            a[1] = a[1].wrapping_add(m[1].wrapping_neg()) & ring;
            a[2] = a[2].wrapping_add(m[2].wrapping_neg()) & ring;
            a[3] = a[3].wrapping_add(m[3].wrapping_neg()) & ring;
        }
        for (a, &m) in a_tail.iter_mut().zip(m_tail.iter()) {
            *a = a.wrapping_add(m.wrapping_neg()) & ring;
        }
    }
}

/// The original branch-in-loop shape of [`add_signed_assign`], kept as
/// the bit-equality reference for the hoisted/unrolled version.
#[cfg(test)]
pub(crate) fn add_signed_assign_reference(
    acc: &mut [u64],
    mask: &[u64],
    positive: bool,
    bit_width: u32,
) {
    debug_assert_eq!(acc.len(), mask.len());
    let ring = ring_mask(bit_width);
    for (a, &m) in acc.iter_mut().zip(mask.iter()) {
        let m = if positive { m } else { m.wrapping_neg() };
        *a = a.wrapping_add(m) & ring;
    }
}

/// The ring mask `2^b - 1`.
#[must_use]
pub fn ring_mask(bit_width: u32) -> u64 {
    if bit_width == 64 {
        u64::MAX
    } else {
        (1u64 << bit_width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_masks_cancel() {
        // The defining property: +mask then -mask restores the vector.
        let key = [7u8; 32];
        let bits = 20;
        let mut acc = vec![5u64, 10, 15];
        let m = pairwise_mask(&key, 3, bits);
        add_signed_assign(&mut acc, &m, true, bits);
        add_signed_assign(&mut acc, &m, false, bits);
        assert_eq!(acc, vec![5, 10, 15]);
    }

    #[test]
    fn masks_are_deterministic_and_domain_separated() {
        let key = [1u8; 32];
        assert_eq!(pairwise_mask(&key, 8, 20), pairwise_mask(&key, 8, 20));
        assert_ne!(pairwise_mask(&key, 8, 20), self_mask(&key, 8, 20));
    }

    #[test]
    fn masks_respect_bit_width() {
        let m = pairwise_mask(&[9u8; 32], 64, 12);
        assert!(m.iter().all(|&x| x < (1 << 12)));
    }

    #[test]
    fn signed_add_wraps() {
        let bits = 8;
        let mut acc = vec![250u64];
        add_signed_assign(&mut acc, &[10], true, bits);
        assert_eq!(acc, vec![4]); // 260 mod 256.
        add_signed_assign(&mut acc, &[10], false, bits);
        assert_eq!(acc, vec![250]);
    }

    #[test]
    fn matches_reference_shape() {
        // The unrolled/hoisted add must be bit-equal to the original
        // branch-in-loop shape across lengths (tail handling), signs,
        // and bit widths including 64.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for bits in [1u32, 8, 20, 63, 64] {
            for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 31, 64, 100] {
                for positive in [true, false] {
                    let ring = ring_mask(bits);
                    let base: Vec<u64> = (0..len).map(|_| next() & ring).collect();
                    let mask: Vec<u64> = (0..len).map(|_| next() & ring).collect();
                    let mut fast = base.clone();
                    let mut slow = base.clone();
                    add_signed_assign(&mut fast, &mask, positive, bits);
                    add_signed_assign_reference(&mut slow, &mask, positive, bits);
                    assert_eq!(fast, slow, "bits {bits}, len {len}, positive {positive}");
                }
            }
        }
    }

    #[test]
    fn fused_expansion_equals_materialized() {
        let key = [3u8; 32];
        let seed = [4u8; 32];
        let bits = 24;
        let len = 1200; // spans multiple strips
        for positive in [true, false] {
            let mut fused = vec![7u64; len];
            let mut materialized = fused.clone();
            add_pairwise_mask_assign(&mut fused, &key, 0, positive, bits);
            let m = pairwise_mask(&key, len, bits);
            add_signed_assign(&mut materialized, &m, positive, bits);
            assert_eq!(fused, materialized, "pairwise, positive {positive}");

            let mut fused = vec![9u64; len];
            let mut materialized = fused.clone();
            add_self_mask_assign(&mut fused, &seed, 0, positive, bits);
            let p = self_mask(&seed, len, bits);
            add_signed_assign(&mut materialized, &p, positive, bits);
            assert_eq!(fused, materialized, "self, positive {positive}");
        }
    }

    #[test]
    fn offset_expansion_is_a_slice_of_the_whole() {
        // Per-chunk jobs expand [offset, offset + len) of each mask;
        // that must equal the same slice of the whole-vector expansion.
        let key = [5u8; 32];
        let bits = 18;
        let whole = pairwise_mask(&key, 1000, bits);
        for (offset, len) in [(0usize, 1000usize), (1, 37), (512, 488), (513, 200)] {
            let mut acc = vec![0u64; len];
            add_pairwise_mask_assign(&mut acc, &key, offset, true, bits);
            assert_eq!(acc, whole[offset..offset + len], "offset {offset}");
        }
    }
}
