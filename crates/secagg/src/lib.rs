//! Secure-aggregation protocols for Dordis: SecAgg and SecAgg+.
//!
//! This crate implements the protocol of Bonawitz et al. (CCS '17) exactly
//! as presented in Figure 5 of the Dordis paper — *including* the XNoise
//! integration points (extra Shamir-shared noise seeds, the
//! `ConsistencyCheck` round-signature stage, and the
//! `ExcessiveNoiseRemoval` stage) — plus the SecAgg+ variant of Bell et
//! al. (CCS '20), which replaces the complete masking graph with a sparse
//! k-regular one.
//!
//! Layering: this crate is *noise-agnostic*. Clients hand in an input
//! vector in `Z_{2^b}` that is already perturbed (by `dordis-xnoise`), plus
//! the noise seeds `g_{u,k}` to be backed up; the server-side outcome
//! reports the masked sum and every seed recovered for noise removal.
//! Regenerating and subtracting the actual noise is the caller's job,
//! which keeps the protocol reusable for any distributed-DP mechanism —
//! the "self-contained and complementary" property claimed in §3.3.
//!
//! Structure:
//! - [`graph`]: complete and Harary k-regular masking graphs,
//! - [`messages`]: wire messages with byte-size accounting,
//! - [`client`], [`server`]: per-party state machines, one method per
//!   stage,
//! - [`driver`]: in-memory round executor with a configurable dropout
//!   schedule and full traffic/crypto-op statistics,
//! - [`plain`]: the no-crypto baseline aggregator (for cost comparisons).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod driver;
pub mod graph;
pub mod mask;
pub mod messages;
pub mod plain;
pub mod server;

use dordis_crypto::CryptoError;

/// Client identifier within a round (index into the sampled set).
pub type ClientId = u32;

/// Adversary model the protocol run defends against (paper §2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreatModel {
    /// All parties follow the protocol but are curious.
    SemiHonest,
    /// The server (and colluding clients) may deviate arbitrarily; the
    /// bracketed/italicized steps of Figure 5 (signatures, consistency
    /// check) are enabled.
    Malicious,
}

/// Errors aborting a protocol run.
#[derive(Debug, Clone, PartialEq)]
pub enum SecAggError {
    /// Fewer than `t` live clients at some stage.
    BelowThreshold {
        /// Stage at which the shortfall occurred.
        stage: &'static str,
        /// Live clients observed.
        live: usize,
        /// Threshold `t`.
        threshold: usize,
    },
    /// A client aborted after detecting an inconsistency (tampering,
    /// bad signature, understated dropout, duplicate keys...).
    ClientAbort {
        /// The aborting client.
        client: ClientId,
        /// Human-readable reason.
        reason: String,
    },
    /// Underlying cryptographic failure.
    Crypto(CryptoError),
    /// Protocol misconfiguration.
    Config(String),
}

impl From<CryptoError> for SecAggError {
    fn from(e: CryptoError) -> Self {
        SecAggError::Crypto(e)
    }
}

impl core::fmt::Display for SecAggError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SecAggError::BelowThreshold {
                stage,
                live,
                threshold,
            } => write!(f, "below threshold at {stage}: {live} live < t={threshold}"),
            SecAggError::ClientAbort { client, reason } => {
                write!(f, "client {client} aborted: {reason}")
            }
            SecAggError::Crypto(e) => write!(f, "crypto failure: {e}"),
            SecAggError::Config(why) => write!(f, "bad protocol config: {why}"),
        }
    }
}

impl std::error::Error for SecAggError {}

/// Static parameters of one aggregation round.
#[derive(Clone, Debug)]
pub struct RoundParams {
    /// Round index (signed in the malicious model to prevent replay).
    pub round: u64,
    /// The sampled client set `U` (ids must be unique).
    pub clients: Vec<ClientId>,
    /// Shamir threshold `t`; reconstruction needs `t` shares and the
    /// protocol aborts below `t` live clients.
    pub threshold: usize,
    /// Bit width `b` of the aggregation ring `Z_{2^b}`.
    pub bit_width: u32,
    /// Vector (chunk) length `d`.
    pub vector_len: usize,
    /// XNoise dropout tolerance `T`: number of shared noise-seed
    /// components per client (0 disables XNoise bookkeeping).
    pub noise_components: usize,
    /// Adversary model.
    pub threat_model: ThreatModel,
    /// Masking graph (complete = SecAgg, Harary = SecAgg+).
    pub graph: graph::MaskingGraph,
}

impl RoundParams {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`SecAggError::Config`] on duplicate ids, out-of-range
    /// threshold, or an unusable masking graph.
    pub fn validate(&self) -> Result<(), SecAggError> {
        let n = self.clients.len();
        if n == 0 {
            return Err(SecAggError::Config("empty client set".into()));
        }
        let mut sorted = self.clients.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != n {
            return Err(SecAggError::Config("duplicate client ids".into()));
        }
        // Shamir x-coordinates are scoped to each owner's share-holder
        // neighborhood (`graph::MaskingGraph::holders`), so GF(256) only
        // has to seat `degree + 1` holders — the roster itself is bounded
        // by the wire's u16 roster/cohort counts, not by the field.
        if n > usize::from(u16::MAX) {
            return Err(SecAggError::Config(
                "at most 65535 clients per round (roster counts are u16 on the wire)".into(),
            ));
        }
        if self.graph.degree(n) > 254 {
            return Err(SecAggError::Config(format!(
                "masking-graph degree {} needs {} neighborhood Shamir x-coordinates, \
                 but at most 255 fit in GF(256); use a sparse graph (e.g. \
                 MaskingGraph::recommended) for rounds this large",
                self.graph.degree(n),
                self.graph.degree(n) + 1,
            )));
        }
        if self.threshold == 0 || self.threshold > n {
            return Err(SecAggError::Config(format!(
                "threshold {} out of range for {} clients",
                self.threshold, n
            )));
        }
        if self.threat_model == ThreatModel::Malicious && 2 * self.threshold <= n {
            return Err(SecAggError::Config(
                "malicious model requires 2t > |U|".into(),
            ));
        }
        if self.bit_width == 0 || self.bit_width > 62 {
            return Err(SecAggError::Config("bit width must be in 1..=62".into()));
        }
        self.graph.validate(n)?;
        Ok(())
    }

    /// The ring mask `2^b - 1`.
    #[must_use]
    pub fn ring_mask(&self) -> u64 {
        (1u64 << self.bit_width) - 1
    }
}

/// The effective Shamir threshold: the configured `t`, capped at the
/// masking-graph degree plus one (a client's shares are held by its
/// neighbors and, for the self-mask seed, by the client itself) so that
/// reconstruction stays possible under SecAgg+'s sparse graph.
#[must_use]
pub fn share_threshold(params: &RoundParams) -> usize {
    params
        .threshold
        .min(params.graph.degree(params.clients.len()))
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> RoundParams {
        RoundParams {
            round: 0,
            clients: (0..8).collect(),
            threshold: 5,
            bit_width: 20,
            vector_len: 16,
            noise_components: 2,
            threat_model: ThreatModel::SemiHonest,
            graph: graph::MaskingGraph::Complete,
        }
    }

    #[test]
    fn valid_params_pass() {
        params().validate().unwrap();
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut p = params();
        p.clients = vec![1, 2, 2];
        assert!(matches!(p.validate(), Err(SecAggError::Config(_))));
    }

    #[test]
    fn threshold_bounds() {
        let mut p = params();
        p.threshold = 0;
        assert!(p.validate().is_err());
        p.threshold = 9;
        assert!(p.validate().is_err());
    }

    #[test]
    fn malicious_needs_majority_threshold() {
        let mut p = params();
        p.threat_model = ThreatModel::Malicious;
        p.threshold = 4; // 2*4 = 8 is not > 8.
        assert!(p.validate().is_err());
        p.threshold = 5;
        assert!(p.validate().is_ok());
    }

    #[test]
    fn complete_graph_stops_at_255() {
        // The old wall, now expressed as a degree bound: the complete
        // graph's neighborhood is the whole roster, so 255 is still its
        // ceiling — but only *its* ceiling.
        let mut p = params();
        p.clients = (0..255).collect();
        p.threshold = 128;
        p.noise_components = 0;
        p.validate().unwrap();
        p.clients = (0..256).collect();
        assert!(matches!(p.validate(), Err(SecAggError::Config(_))));
    }

    #[test]
    fn sparse_graph_admits_rounds_past_255() {
        let mut p = params();
        p.clients = (0..1024).collect();
        p.threshold = 512;
        p.noise_components = 0;
        p.graph = graph::MaskingGraph::recommended(1024);
        p.validate().unwrap();
        // The Harary degree at n = 1024 leaves plenty of field headroom.
        assert!(share_threshold(&p) <= p.graph.degree(1024));
    }

    #[test]
    fn roster_wider_than_wire_rejected() {
        let mut p = params();
        p.clients = (0..70_000).collect();
        p.threshold = 2;
        p.graph = graph::MaskingGraph::Harary { half_degree: 8 };
        assert!(matches!(p.validate(), Err(SecAggError::Config(_))));
    }

    #[test]
    fn oversized_harary_degree_rejected() {
        let mut p = params();
        p.clients = (0..1000).collect();
        p.threshold = 500;
        p.graph = graph::MaskingGraph::Harary { half_degree: 130 };
        assert!(matches!(p.validate(), Err(SecAggError::Config(_))));
    }

    #[test]
    fn bit_width_bounds() {
        let mut p = params();
        p.bit_width = 0;
        assert!(p.validate().is_err());
        p.bit_width = 63;
        assert!(p.validate().is_err());
        p.bit_width = 62;
        assert!(p.validate().is_ok());
    }
}
