//! Masking graphs: who exchanges pairwise masks with whom.
//!
//! SecAgg uses the complete graph (every pair of live clients shares a
//! mask), which costs `O(n)` key agreements and mask expansions per
//! client. SecAgg+ (Bell et al.) keeps the sum secure with a sparse
//! k-regular graph of degree `O(log n)`; we use the circulant Harary
//! construction, which is symmetric and connected — the two properties
//! mask cancellation and recoverability need.

use crate::SecAggError;

/// A symmetric masking graph over `n` clients (indexed `0..n`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaskingGraph {
    /// Complete graph: classic SecAgg.
    Complete,
    /// Circulant (Harary) graph where node `i` is adjacent to
    /// `i ± 1, ..., i ± half_degree (mod n)` — SecAgg+ with
    /// `k = 2 * half_degree`.
    Harary {
        /// Half of the node degree (neighbors on each side).
        half_degree: usize,
    },
}

impl MaskingGraph {
    /// Largest roster for which [`MaskingGraph::recommended`] keeps the
    /// complete graph. Above it the Harary graph's `O(log n)` degree is
    /// already well below `n - 1`, and — with neighborhood-scoped Shamir
    /// indexing — a sparse graph is what lifts the per-round client cap
    /// past 255 (x-coordinates only need to cover `degree + 1` holders).
    pub const RECOMMENDED_COMPLETE_MAX: usize = 32;

    /// Recommended SecAgg+ degree for `n` clients: `k ≈ 2⌈log₂ n⌉ + 2`,
    /// the `O(log n)` regime of Bell et al.
    #[must_use]
    pub fn harary_for(n: usize) -> MaskingGraph {
        let lg = (usize::BITS - n.max(2).leading_zeros()) as usize; // ceil-ish log2
        MaskingGraph::Harary {
            half_degree: (lg + 1).min(n.saturating_sub(1) / 2).max(1),
        }
    }

    /// The graph a round of `n` clients should use when the caller has
    /// no preference: complete up to
    /// [`MaskingGraph::RECOMMENDED_COMPLETE_MAX`] clients (maximal mask
    /// density, and bit-identical to the historical default for small
    /// rounds), the Harary `O(log n)` graph beyond — which is also what
    /// keeps `degree + 1 ≤ 255` and therefore makes rosters in the
    /// thousands pass [`crate::RoundParams::validate`].
    #[must_use]
    pub fn recommended(n: usize) -> MaskingGraph {
        if n <= Self::RECOMMENDED_COMPLETE_MAX {
            MaskingGraph::Complete
        } else {
            Self::harary_for(n)
        }
    }

    /// Checks the graph is usable for `n` nodes.
    pub(crate) fn validate(&self, n: usize) -> Result<(), SecAggError> {
        match *self {
            MaskingGraph::Complete => Ok(()),
            MaskingGraph::Harary { half_degree } => {
                if half_degree == 0 {
                    return Err(SecAggError::Config("harary half_degree must be ≥ 1".into()));
                }
                if n >= 2 && 2 * half_degree >= n {
                    // Degenerates to (super-)complete; allowed but clamped
                    // at neighbor computation. Still fine.
                    return Ok(());
                }
                Ok(())
            }
        }
    }

    /// Neighbor indices of node `idx` among `n` nodes (sorted, no self).
    #[must_use]
    pub fn neighbors(&self, n: usize, idx: usize) -> Vec<usize> {
        assert!(idx < n);
        match *self {
            MaskingGraph::Complete => (0..n).filter(|&j| j != idx).collect(),
            MaskingGraph::Harary { half_degree } => {
                if 2 * half_degree + 1 >= n {
                    return (0..n).filter(|&j| j != idx).collect();
                }
                let mut out = Vec::with_capacity(2 * half_degree);
                for off in 1..=half_degree {
                    out.push((idx + off) % n);
                    out.push((idx + n - off) % n);
                }
                out.sort_unstable();
                out.dedup();
                out
            }
        }
    }

    /// The share-holder set of node `idx`: the node itself plus its
    /// masking neighbors, sorted by global index. This is the owner's
    /// *reconstruction set* — the only parties that ever hold (and
    /// return) Shamir shares of `idx`'s secrets — so Shamir
    /// x-coordinates are indexed by **position in this list** (`x =
    /// position + 1`), not by global roster index. Uniqueness within
    /// every owner's holder set is all the server's per-owner share
    /// pooling needs, which is what lifts the roster cap from 255 to
    /// whatever the wire's roster width allows: only `degree + 1` must
    /// fit in GF(256).
    ///
    /// For the complete graph the holder list is the whole roster, so
    /// local and global indexing coincide (and pre-neighborhood rounds
    /// stay bit-identical).
    #[must_use]
    pub fn holders(&self, n: usize, idx: usize) -> Vec<usize> {
        let mut h = self.neighbors(n, idx);
        let pos = h.partition_point(|&j| j < idx);
        h.insert(pos, idx);
        h
    }

    /// True if `a` and `b` exchange masks.
    #[must_use]
    pub fn are_neighbors(&self, n: usize, a: usize, b: usize) -> bool {
        if a == b {
            return false;
        }
        match *self {
            MaskingGraph::Complete => true,
            MaskingGraph::Harary { half_degree } => {
                if 2 * half_degree + 1 >= n {
                    return true;
                }
                let diff = (a + n - b) % n;
                diff <= half_degree || (n - diff) <= half_degree
            }
        }
    }

    /// Node degree for `n` nodes.
    #[must_use]
    pub fn degree(&self, n: usize) -> usize {
        match *self {
            MaskingGraph::Complete => n.saturating_sub(1),
            MaskingGraph::Harary { half_degree } => (2 * half_degree).min(n.saturating_sub(1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_neighbors() {
        let g = MaskingGraph::Complete;
        assert_eq!(g.neighbors(4, 1), vec![0, 2, 3]);
        assert_eq!(g.degree(4), 3);
        assert!(g.are_neighbors(4, 0, 3));
        assert!(!g.are_neighbors(4, 2, 2));
    }

    #[test]
    fn harary_symmetry() {
        // Symmetry is what makes pairwise masks cancel.
        for n in [5usize, 8, 13, 40] {
            let g = MaskingGraph::harary_for(n);
            for a in 0..n {
                for b in 0..n {
                    assert_eq!(
                        g.are_neighbors(n, a, b),
                        g.are_neighbors(n, b, a),
                        "n={n} a={a} b={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn harary_neighbors_match_predicate() {
        let n = 12;
        let g = MaskingGraph::Harary { half_degree: 2 };
        for i in 0..n {
            let nb = g.neighbors(n, i);
            for j in 0..n {
                assert_eq!(nb.contains(&j), g.are_neighbors(n, i, j), "i={i} j={j}");
            }
            assert_eq!(nb.len(), g.degree(n));
        }
    }

    fn bfs_reaches_all(g: &MaskingGraph, n: usize) -> bool {
        let mut seen = vec![false; n];
        let mut queue = vec![0usize];
        seen[0] = true;
        while let Some(u) = queue.pop() {
            for v in g.neighbors(n, u) {
                if !seen[v] {
                    seen[v] = true;
                    queue.push(v);
                }
            }
        }
        seen.iter().all(|&s| s)
    }

    #[test]
    fn harary_is_connected() {
        // BFS from node 0 must reach everyone (needed so Shamir shares of
        // any client reach enough peers).
        let n = 30;
        assert!(bfs_reaches_all(&MaskingGraph::harary_for(n), n));
    }

    #[test]
    fn recommended_is_connected_up_to_4096() {
        // The recommended graph must stay connected at every scale the
        // neighborhood-indexed rounds now admit — including the awkward
        // sizes just past each power of two where the Harary degree
        // steps. Connectivity is what guarantees any client's shares
        // reach enough live holders.
        for n in [
            2usize, 3, 32, 33, 64, 65, 255, 256, 257, 511, 512, 1000, 1024, 2048, 4095, 4096,
        ] {
            let g = MaskingGraph::recommended(n);
            assert!(bfs_reaches_all(&g, n), "n={n} graph {g:?} disconnected");
            assert!(
                g.degree(n) < 255, // degree + 1 holders must fit GF(256)
                "n={n}: recommended degree {} cannot index in GF(256)",
                g.degree(n)
            );
        }
    }

    #[test]
    fn recommended_keeps_small_rounds_complete() {
        for n in 1..=MaskingGraph::RECOMMENDED_COMPLETE_MAX {
            assert_eq!(MaskingGraph::recommended(n), MaskingGraph::Complete);
        }
        assert!(matches!(
            MaskingGraph::recommended(MaskingGraph::RECOMMENDED_COMPLETE_MAX + 1),
            MaskingGraph::Harary { .. }
        ));
    }

    #[test]
    fn holders_is_sorted_neighbors_plus_self() {
        for n in [2usize, 5, 12, 33, 100, 300] {
            for g in [MaskingGraph::Complete, MaskingGraph::recommended(n)] {
                for idx in 0..n {
                    let h = g.holders(n, idx);
                    assert_eq!(h.len(), g.degree(n) + 1, "n={n} idx={idx}");
                    assert!(h.windows(2).all(|w| w[0] < w[1]), "unsorted/dup n={n}");
                    assert!(h.contains(&idx), "owner missing n={n} idx={idx}");
                    for &j in &h {
                        assert!(
                            j == idx || g.are_neighbors(n, idx, j),
                            "n={n}: {j} in holders({idx}) but not a neighbor"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn complete_holders_match_global_indexing() {
        // The bit-equality keystone: under the complete graph a node's
        // holder list is the whole roster in index order, so the local
        // x-coordinate (position + 1) equals the historical global one.
        let n = 9;
        let g = MaskingGraph::Complete;
        for idx in 0..n {
            assert_eq!(g.holders(n, idx), (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn small_n_degenerates_to_complete() {
        let g = MaskingGraph::Harary { half_degree: 5 };
        assert_eq!(g.neighbors(4, 0), vec![1, 2, 3]);
        assert!(g.are_neighbors(4, 0, 2));
    }

    #[test]
    fn degree_scales_logarithmically() {
        let d100 = MaskingGraph::harary_for(100).degree(100);
        let d10000 = MaskingGraph::harary_for(10_000).degree(10_000);
        assert!(d100 < 100 - 1, "d100={d100} should be sparse");
        assert!(d10000 < 40, "d10000={d10000} should be O(log n)");
        assert!(d10000 > d100 / 2, "degree should grow slowly");
    }

    #[test]
    fn zero_half_degree_rejected() {
        let g = MaskingGraph::Harary { half_degree: 0 };
        assert!(g.validate(10).is_err());
    }
}
