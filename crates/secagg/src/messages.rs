//! Wire messages exchanged between clients and the server.
//!
//! Every message knows its serialized size ([`WireSize::wire_bytes`]); the
//! driver aggregates these into per-stage traffic statistics that feed the
//! cluster simulator's communication cost model (Figures 2 and 10 of the
//! paper are driven by exactly these counts).
//!
//! The `dordis-net` crate carries these messages over real transports;
//! its codec is the ground truth for the sizes reported here, and its
//! test suite asserts byte-for-byte agreement between `wire_bytes()` and
//! the actual encoding of every message type.

use dordis_crypto::ed25519::Signature;
use dordis_crypto::prg::Seed;
use dordis_crypto::shamir::Share;

use crate::ClientId;

/// Anything with a well-defined on-the-wire size.
pub trait WireSize {
    /// Serialized size in bytes.
    fn wire_bytes(&self) -> u64;
}

/// Stage 0: a client's advertised key pair (plus identity signature in the
/// malicious model).
#[derive(Clone, Debug, PartialEq)]
pub struct AdvertisedKeys {
    /// Sender.
    pub client: ClientId,
    /// Public key for the AEAD channel (`c^PK`).
    pub c_pk: [u8; 32],
    /// Public key for pairwise masking (`s^PK`).
    pub s_pk: [u8; 32],
    /// `SIG.sign(d^SK, c_pk ‖ s_pk)` under the malicious model.
    pub signature: Option<Signature>,
}

impl WireSize for AdvertisedKeys {
    fn wire_bytes(&self) -> u64 {
        4 + 32 + 32 + if self.signature.is_some() { 64 } else { 0 }
    }
}

/// Stage 1: an encrypted share bundle addressed from one client to
/// another, routed through the server.
#[derive(Clone, Debug, PartialEq)]
pub struct EncryptedShares {
    /// Originating client.
    pub from: ClientId,
    /// Destination client.
    pub to: ClientId,
    /// AEAD ciphertext of the serialized [`ShareBundle`].
    pub ciphertext: Vec<u8>,
}

impl WireSize for EncryptedShares {
    fn wire_bytes(&self) -> u64 {
        4 + 4 + self.ciphertext.len() as u64
    }
}

/// The plaintext carried inside [`EncryptedShares`]: the sender's Shamir
/// shares destined for one recipient.
#[derive(Clone, Debug, PartialEq)]
pub struct ShareBundle {
    /// Redundant addressing checked after decryption (Figure 5 asserts
    /// `u = u' ∧ v = v'`).
    pub from: ClientId,
    /// Redundant addressing.
    pub to: ClientId,
    /// Share of the sender's masking secret key `s^SK`.
    pub sk_share: Share,
    /// Share of the sender's self-mask seed `b`.
    pub b_share: Share,
    /// Shares of the sender's XNoise seeds `g_{u,k}` for `k = 1..=T`.
    pub seed_shares: Vec<Share>,
}

impl ShareBundle {
    /// Serializes to bytes (simple length-prefixed layout).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.from.to_le_bytes());
        out.extend_from_slice(&self.to.to_le_bytes());
        encode_share(&mut out, &self.sk_share);
        encode_share(&mut out, &self.b_share);
        out.push(self.seed_shares.len() as u8);
        for s in &self.seed_shares {
            encode_share(&mut out, s);
        }
        out
    }

    /// Parses the encoding; `None` on malformed input.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<ShareBundle> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            if *pos + n > bytes.len() {
                return None;
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Some(s)
        };
        let from = ClientId::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
        let to = ClientId::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
        let sk_share = decode_share(bytes, &mut pos)?;
        let b_share = decode_share(bytes, &mut pos)?;
        let count = *take(&mut pos, 1)?.first()? as usize;
        let mut seed_shares = Vec::with_capacity(count);
        for _ in 0..count {
            seed_shares.push(decode_share(bytes, &mut pos)?);
        }
        if pos != bytes.len() {
            return None;
        }
        Some(ShareBundle {
            from,
            to,
            sk_share,
            b_share,
            seed_shares,
        })
    }
}

fn encode_share(out: &mut Vec<u8>, share: &Share) {
    out.push(share.x);
    out.push(share.y.len() as u8);
    out.extend_from_slice(&share.y);
}

fn decode_share(bytes: &[u8], pos: &mut usize) -> Option<Share> {
    if *pos + 2 > bytes.len() {
        return None;
    }
    let x = bytes[*pos];
    let len = bytes[*pos + 1] as usize;
    *pos += 2;
    if *pos + len > bytes.len() {
        return None;
    }
    let y = bytes[*pos..*pos + len].to_vec();
    *pos += len;
    Some(Share { x, y })
}

/// Stage 2: the masked, perturbed input vector `y_u`.
#[derive(Clone, Debug, PartialEq)]
pub struct MaskedInput {
    /// Sender.
    pub client: ClientId,
    /// Vector in `Z_{2^b}`.
    pub vector: Vec<u64>,
    /// Ring bit width, for size accounting.
    pub bit_width: u32,
}

impl WireSize for MaskedInput {
    fn wire_bytes(&self) -> u64 {
        // Coordinates are packed at b bits each on the wire.
        4 + (self.vector.len() as u64 * self.bit_width as u64).div_ceil(8)
    }
}

/// Stage 3 (malicious only): signature over `round ‖ U3`.
#[derive(Clone, Debug, PartialEq)]
pub struct ConsistencySignature {
    /// Sender.
    pub client: ClientId,
    /// `SIG.sign(d^SK, round ‖ U3)`.
    pub signature: Signature,
}

impl WireSize for ConsistencySignature {
    fn wire_bytes(&self) -> u64 {
        4 + 64
    }
}

/// Stage 4: a surviving client's unmasking response.
#[derive(Clone, Debug, PartialEq)]
pub struct UnmaskingResponse {
    /// Sender.
    pub client: ClientId,
    /// Shares of `s^SK_v` for dropped clients `v ∈ U2 \ U3`.
    pub sk_shares: Vec<(ClientId, Share)>,
    /// Shares of `b_v` for surviving clients `v ∈ U3`.
    pub b_shares: Vec<(ClientId, Share)>,
    /// The sender's own noise seeds `g_{u,k}` for the removal range
    /// `|U \ U3| + 1 ≤ k ≤ T` (1-based component index).
    pub own_seeds: Vec<(usize, Seed)>,
}

impl WireSize for UnmaskingResponse {
    fn wire_bytes(&self) -> u64 {
        // Matches `dordis-net`'s codec: sender id, three u16 section
        // counts, then per-share entries (owner u32, x u8, len u8, y)
        // and per-seed entries (component u16, seed).
        let shares: u64 = self
            .sk_shares
            .iter()
            .chain(self.b_shares.iter())
            .map(|(_, s)| 4 + 2 + s.y.len() as u64)
            .sum();
        4 + 6 + shares + self.own_seeds.len() as u64 * (2 + 32)
    }
}

/// Stage 5: shares of noise seeds of clients that dropped between masking
/// and unmasking (`v ∈ U3 \ U5`).
#[derive(Clone, Debug, PartialEq)]
pub struct NoiseShareResponse {
    /// Sender.
    pub client: ClientId,
    /// `(owner, component k, share of g_{owner,k})`.
    pub seed_shares: Vec<(ClientId, usize, Share)>,
}

impl WireSize for NoiseShareResponse {
    fn wire_bytes(&self) -> u64 {
        // Matches `dordis-net`'s codec: sender id, u16 entry count, then
        // entries of (owner u32, component u16, x u8, len u8, y).
        4 + 2
            + self
                .seed_shares
                .iter()
                .map(|(_, _, s)| 4 + 2 + 2 + s.y.len() as u64)
                .sum::<u64>()
    }
}

/// A broadcast list of client ids, for size accounting.
#[derive(Clone, Debug, PartialEq)]
pub struct IdList(pub Vec<ClientId>);

impl WireSize for IdList {
    fn wire_bytes(&self) -> u64 {
        4 + 4 * self.0.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn share(x: u8, len: usize) -> Share {
        Share { x, y: vec![x; len] }
    }

    #[test]
    fn bundle_roundtrip() {
        let b = ShareBundle {
            from: 3,
            to: 9,
            sk_share: share(4, 32),
            b_share: share(4, 32),
            seed_shares: vec![share(4, 32), share(4, 32)],
        };
        let enc = b.encode();
        let dec = ShareBundle::decode(&enc).unwrap();
        assert_eq!(dec, b);
    }

    #[test]
    fn bundle_roundtrip_no_seeds() {
        let b = ShareBundle {
            from: 0,
            to: 1,
            sk_share: share(1, 32),
            b_share: share(1, 32),
            seed_shares: vec![],
        };
        assert_eq!(ShareBundle::decode(&b.encode()).unwrap(), b);
    }

    #[test]
    fn bundle_rejects_truncation_and_trailing() {
        let b = ShareBundle {
            from: 1,
            to: 2,
            sk_share: share(3, 32),
            b_share: share(3, 32),
            seed_shares: vec![share(3, 32)],
        };
        let enc = b.encode();
        for keep in 0..enc.len() {
            assert!(ShareBundle::decode(&enc[..keep]).is_none(), "len {keep}");
        }
        let mut extended = enc.clone();
        extended.push(0);
        assert!(ShareBundle::decode(&extended).is_none());
    }

    #[test]
    fn masked_input_packs_bits() {
        let m = MaskedInput {
            client: 1,
            vector: vec![0; 1000],
            bit_width: 20,
        };
        // 1000 coords * 20 bits = 2500 bytes + 4 header.
        assert_eq!(m.wire_bytes(), 2504);
    }

    #[test]
    fn advertised_keys_size() {
        let a = AdvertisedKeys {
            client: 0,
            c_pk: [0; 32],
            s_pk: [0; 32],
            signature: None,
        };
        assert_eq!(a.wire_bytes(), 68);
    }

    #[test]
    fn unmasking_response_size_counts_all_fields() {
        let r = UnmaskingResponse {
            client: 7,
            sk_shares: vec![(1, share(2, 32))],
            b_shares: vec![(2, share(2, 32)), (3, share(2, 32))],
            own_seeds: vec![(2, [0u8; 32])],
        };
        assert_eq!(r.wire_bytes(), 4 + 6 + 3 * (4 + 2 + 32) + (2 + 32));
    }
}
