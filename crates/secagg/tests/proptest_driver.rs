//! Property-based protocol testing: for *any* dropout schedule and input
//! assignment, a completed round's sum equals the modular sum of exactly
//! the survivors' inputs — and failure only ever happens as a clean
//! below-threshold abort, never a wrong answer.

use std::collections::BTreeMap;

use dordis_secagg::client::ClientInput;
use dordis_secagg::driver::{run_round, DropStage, DropoutSchedule, RoundSpec};
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::{ClientId, RoundParams, SecAggError, ThreatModel};
use proptest::prelude::*;

const BITS: u32 = 12;
const DIM: usize = 5;
const N: u32 = 7;
const THRESHOLD: usize = 4;

fn stage_from_index(i: u8) -> DropStage {
    match i % 6 {
        0 => DropStage::BeforeAdvertise,
        1 => DropStage::BeforeShareKeys,
        2 => DropStage::BeforeMaskedInput,
        3 => DropStage::BeforeUnmasking,
        4 => DropStage::BeforeNoiseShares,
        _ => DropStage::Never,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sum_is_exactly_the_survivors_sum(
        drops in proptest::collection::vec(any::<u8>(), N as usize),
        inputs_raw in proptest::collection::vec(0u64..(1 << BITS), (N as usize) * DIM),
        seed in any::<u64>(),
    ) {
        let mut dropout = DropoutSchedule::none();
        for (id, &d) in drops.iter().enumerate() {
            dropout.drop_at(id as ClientId, stage_from_index(d));
        }
        let inputs: BTreeMap<ClientId, ClientInput> = (0..N)
            .map(|id| {
                (
                    id,
                    ClientInput {
                        vector: inputs_raw[(id as usize) * DIM..(id as usize + 1) * DIM].to_vec(),
                        noise_seeds: vec![[id as u8 + 1; 32]; 3],
                    },
                )
            })
            .collect();
        let spec = RoundSpec {
            params: RoundParams {
                round: 0,
                clients: (0..N).collect(),
                threshold: THRESHOLD,
                bit_width: BITS,
                vector_len: DIM,
                noise_components: 2,
                threat_model: ThreatModel::SemiHonest,
                graph: MaskingGraph::Complete,
            },
            inputs: inputs.clone(),
            dropout,
            rng_seed: seed,
        };
        match run_round(spec) {
            Ok((outcome, _)) => {
                // The sum must be the modular sum of the survivors'
                // inputs — nothing more, nothing less.
                let mut expect = vec![0u64; DIM];
                for id in &outcome.survivors {
                    for (e, v) in expect.iter_mut().zip(inputs[id].vector.iter()) {
                        *e = (*e + *v) & ((1 << BITS) - 1);
                    }
                }
                prop_assert_eq!(&outcome.sum, &expect);
                prop_assert!(outcome.survivors.len() >= THRESHOLD);
                // Removal seeds only ever belong to survivors with valid
                // component indices.
                for (c, k, _) in &outcome.removal_seeds {
                    prop_assert!(outcome.survivors.contains(c));
                    prop_assert!(*k >= 1 && *k <= 2);
                }
            }
            Err(SecAggError::BelowThreshold { .. }) => {
                // Acceptable: too many clients dropped to finish.
            }
            Err(other) => {
                return Err(TestCaseError::fail(format!("unexpected error: {other}")));
            }
        }
    }
}
