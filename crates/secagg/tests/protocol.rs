//! End-to-end protocol tests: correctness of the masked sum under every
//! dropout pattern, for SecAgg, SecAgg+, and both threat models.

use std::collections::BTreeMap;

use dordis_secagg::client::ClientInput;
use dordis_secagg::driver::{run_round, DropStage, DropoutSchedule, RoundSpec};
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::{ClientId, RoundParams, SecAggError, ThreatModel};

const BITS: u32 = 16;
const DIM: usize = 8;

fn params(n: u32, t: usize, graph: MaskingGraph, threat: ThreatModel) -> RoundParams {
    RoundParams {
        round: 7,
        clients: (0..n).collect(),
        threshold: t,
        bit_width: BITS,
        vector_len: DIM,
        noise_components: 0,
        threat_model: threat,
        graph,
    }
}

/// Deterministic test vector for a client.
fn vector_for(id: ClientId) -> Vec<u64> {
    (0..DIM)
        .map(|i| ((u64::from(id) + 1) * 131 + i as u64 * 17) % (1 << BITS))
        .collect()
}

fn inputs(n: u32, seeds: usize) -> BTreeMap<ClientId, ClientInput> {
    (0..n)
        .map(|id| {
            (
                id,
                ClientInput {
                    vector: vector_for(id),
                    noise_seeds: (0..seeds).map(|k| [id as u8 + k as u8 + 1; 32]).collect(),
                },
            )
        })
        .collect()
}

fn expected_sum(survivors: &[ClientId]) -> Vec<u64> {
    let mut sum = vec![0u64; DIM];
    for &id in survivors {
        for (s, v) in sum.iter_mut().zip(vector_for(id)) {
            *s = (*s + v) & ((1 << BITS) - 1);
        }
    }
    sum
}

#[test]
fn full_round_no_dropout() {
    let spec = RoundSpec {
        params: params(8, 5, MaskingGraph::Complete, ThreatModel::SemiHonest),
        inputs: inputs(8, 0),
        dropout: DropoutSchedule::none(),
        rng_seed: 1,
    };
    let (outcome, stats) = run_round(spec).unwrap();
    assert_eq!(outcome.survivors.len(), 8);
    assert!(outcome.dropped.is_empty());
    assert_eq!(outcome.sum, expected_sum(&(0..8).collect::<Vec<_>>()));
    assert!(stats.aborted.is_empty());
    assert!(stats.total_bytes() > 0);
}

#[test]
fn dropout_before_masked_input_excludes_client() {
    // The paper's dropout model: sampled, shared keys, then vanished.
    let mut dropout = DropoutSchedule::none();
    dropout.drop_at(2, DropStage::BeforeMaskedInput);
    dropout.drop_at(5, DropStage::BeforeMaskedInput);
    let spec = RoundSpec {
        params: params(8, 5, MaskingGraph::Complete, ThreatModel::SemiHonest),
        inputs: inputs(8, 0),
        dropout,
        rng_seed: 2,
    };
    let (outcome, _) = run_round(spec).unwrap();
    assert_eq!(outcome.dropped, vec![2, 5]);
    assert_eq!(outcome.sum, expected_sum(&[0, 1, 3, 4, 6, 7]));
}

#[test]
fn dropout_before_share_keys() {
    let mut dropout = DropoutSchedule::none();
    dropout.drop_at(0, DropStage::BeforeShareKeys);
    let spec = RoundSpec {
        params: params(7, 4, MaskingGraph::Complete, ThreatModel::SemiHonest),
        inputs: inputs(7, 0),
        dropout,
        rng_seed: 3,
    };
    let (outcome, _) = run_round(spec).unwrap();
    assert_eq!(outcome.dropped, vec![0]);
    assert_eq!(outcome.sum, expected_sum(&[1, 2, 3, 4, 5, 6]));
}

#[test]
fn dropout_before_advertise() {
    let mut dropout = DropoutSchedule::none();
    dropout.drop_at(3, DropStage::BeforeAdvertise);
    let spec = RoundSpec {
        params: params(6, 4, MaskingGraph::Complete, ThreatModel::SemiHonest),
        inputs: inputs(6, 0),
        dropout,
        rng_seed: 4,
    };
    let (outcome, _) = run_round(spec).unwrap();
    assert_eq!(outcome.sum, expected_sum(&[0, 1, 2, 4, 5]));
}

#[test]
fn dropout_between_masking_and_unmasking_still_recovers() {
    // Client 1 submits its masked input then vanishes: its self-mask must
    // be reconstructed from shares and its input stays in the sum.
    let mut dropout = DropoutSchedule::none();
    dropout.drop_at(1, DropStage::BeforeUnmasking);
    let spec = RoundSpec {
        params: params(8, 5, MaskingGraph::Complete, ThreatModel::SemiHonest),
        inputs: inputs(8, 0),
        dropout,
        rng_seed: 5,
    };
    let (outcome, _) = run_round(spec).unwrap();
    // Client 1 IS a survivor — its vector is included.
    assert!(outcome.survivors.contains(&1));
    assert_eq!(outcome.sum, expected_sum(&(0..8).collect::<Vec<_>>()));
}

#[test]
fn secagg_plus_full_round() {
    let spec = RoundSpec {
        params: params(12, 7, MaskingGraph::harary_for(12), ThreatModel::SemiHonest),
        inputs: inputs(12, 0),
        dropout: DropoutSchedule::none(),
        rng_seed: 6,
    };
    let (outcome, _) = run_round(spec).unwrap();
    assert_eq!(outcome.sum, expected_sum(&(0..12).collect::<Vec<_>>()));
}

#[test]
fn secagg_plus_with_dropout() {
    let mut dropout = DropoutSchedule::none();
    dropout.drop_at(4, DropStage::BeforeMaskedInput);
    dropout.drop_at(9, DropStage::BeforeUnmasking);
    let spec = RoundSpec {
        params: params(12, 6, MaskingGraph::harary_for(12), ThreatModel::SemiHonest),
        inputs: inputs(12, 0),
        dropout,
        rng_seed: 7,
    };
    let (outcome, _) = run_round(spec).unwrap();
    let survivors: Vec<ClientId> = (0..12).filter(|&c| c != 4).collect();
    assert_eq!(outcome.sum, expected_sum(&survivors));
}

#[test]
fn secagg_plus_moves_fewer_bytes_than_secagg() {
    let run = |graph: MaskingGraph| {
        let spec = RoundSpec {
            params: params(24, 13, graph, ThreatModel::SemiHonest),
            inputs: inputs(24, 0),
            dropout: DropoutSchedule::none(),
            rng_seed: 8,
        };
        run_round(spec).unwrap().1
    };
    let full = run(MaskingGraph::Complete);
    let sparse = run(MaskingGraph::harary_for(24));
    let full_sharekeys = full.stage("ShareKeys").unwrap().uplink_total;
    let sparse_sharekeys = sparse.stage("ShareKeys").unwrap().uplink_total;
    assert!(
        sparse_sharekeys < full_sharekeys,
        "sparse {sparse_sharekeys} !< full {full_sharekeys}"
    );
}

#[test]
fn malicious_model_full_round() {
    let spec = RoundSpec {
        params: params(8, 5, MaskingGraph::Complete, ThreatModel::Malicious),
        inputs: inputs(8, 0),
        dropout: DropoutSchedule::none(),
        rng_seed: 9,
    };
    let (outcome, stats) = run_round(spec).unwrap();
    assert_eq!(outcome.sum, expected_sum(&(0..8).collect::<Vec<_>>()));
    assert!(stats.stage("ConsistencyCheck").is_some());
    assert!(stats.aborted.is_empty());
}

#[test]
fn malicious_model_with_dropout() {
    let mut dropout = DropoutSchedule::none();
    dropout.drop_at(6, DropStage::BeforeMaskedInput);
    let spec = RoundSpec {
        params: params(8, 5, MaskingGraph::Complete, ThreatModel::Malicious),
        inputs: inputs(8, 0),
        dropout,
        rng_seed: 10,
    };
    let (outcome, _) = run_round(spec).unwrap();
    assert_eq!(outcome.dropped, vec![6]);
    assert_eq!(outcome.sum, expected_sum(&[0, 1, 2, 3, 4, 5, 7]));
}

#[test]
fn xnoise_seeds_revealed_match_dropout() {
    // T = 3 components, 1 dropout => survivors reveal k in {2, 3}.
    let n = 8u32;
    let t_noise = 3;
    let mut p = params(n, 5, MaskingGraph::Complete, ThreatModel::SemiHonest);
    p.noise_components = t_noise;
    let mut dropout = DropoutSchedule::none();
    dropout.drop_at(3, DropStage::BeforeMaskedInput);
    let spec = RoundSpec {
        params: p,
        inputs: inputs(n, t_noise + 1),
        dropout,
        rng_seed: 11,
    };
    let (outcome, _) = run_round(spec).unwrap();
    let survivors: Vec<ClientId> = (0..n).filter(|&c| c != 3).collect();
    // Each survivor reveals exactly components 2 and 3 (1-based), never 0
    // or 1, and the dropped client reveals nothing.
    for &u in &survivors {
        let ks: Vec<usize> = outcome
            .removal_seeds
            .iter()
            .filter(|(c, _, _)| *c == u)
            .map(|(_, k, _)| *k)
            .collect();
        assert_eq!(ks, vec![2, 3], "client {u}");
    }
    assert!(!outcome.removal_seeds.iter().any(|(c, _, _)| *c == 3));
    // Revealed seeds match the inputs we handed in.
    for (c, k, seed) in &outcome.removal_seeds {
        assert_eq!(seed, &[*c as u8 + *k as u8 + 1; 32]);
    }
}

#[test]
fn xnoise_seed_recovery_via_stage5() {
    // Client 2 delivers its masked input but drops before unmasking: its
    // seeds must be reconstructed from Shamir shares in stage 5.
    let n = 8u32;
    let t_noise = 2;
    let mut p = params(n, 5, MaskingGraph::Complete, ThreatModel::SemiHonest);
    p.noise_components = t_noise;
    let mut dropout = DropoutSchedule::none();
    dropout.drop_at(2, DropStage::BeforeUnmasking);
    let spec = RoundSpec {
        params: p,
        inputs: inputs(n, t_noise + 1),
        dropout,
        rng_seed: 12,
    };
    let (outcome, stats) = run_round(spec).unwrap();
    assert!(stats.stage("ExcessiveNoiseRemoval").is_some());
    // No client officially dropped (|D| = 0), so removal range is 1..=2,
    // including client 2's seeds recovered from shares.
    let ks: Vec<usize> = outcome
        .removal_seeds
        .iter()
        .filter(|(c, _, _)| *c == 2)
        .map(|(_, k, _)| *k)
        .collect();
    assert_eq!(ks, vec![1, 2]);
    for (c, k, seed) in outcome.removal_seeds.iter().filter(|(c, _, _)| *c == 2) {
        assert_eq!(seed, &[*c as u8 + *k as u8 + 1; 32], "component {k}");
    }
}

#[test]
fn no_seeds_revealed_when_dropout_hits_tolerance() {
    // T = 2 and exactly 2 dropouts: nothing should be removed.
    let n = 8u32;
    let mut p = params(n, 5, MaskingGraph::Complete, ThreatModel::SemiHonest);
    p.noise_components = 2;
    let mut dropout = DropoutSchedule::none();
    dropout.drop_at(0, DropStage::BeforeMaskedInput);
    dropout.drop_at(1, DropStage::BeforeMaskedInput);
    let spec = RoundSpec {
        params: p,
        inputs: inputs(n, 3),
        dropout,
        rng_seed: 13,
    };
    let (outcome, _) = run_round(spec).unwrap();
    assert!(outcome.removal_seeds.is_empty());
}

#[test]
fn below_threshold_aborts() {
    let mut dropout = DropoutSchedule::none();
    for id in 0..5 {
        dropout.drop_at(id, DropStage::BeforeMaskedInput);
    }
    let spec = RoundSpec {
        params: params(8, 5, MaskingGraph::Complete, ThreatModel::SemiHonest),
        inputs: inputs(8, 0),
        dropout,
        rng_seed: 14,
    };
    match run_round(spec) {
        Err(SecAggError::BelowThreshold { stage, live, .. }) => {
            assert_eq!(stage, "MaskedInputCollection");
            assert_eq!(live, 3);
        }
        other => panic!("expected threshold abort, got {other:?}"),
    }
}

#[test]
fn missing_input_is_config_error() {
    let mut ins = inputs(4, 0);
    ins.remove(&2);
    let spec = RoundSpec {
        params: params(4, 3, MaskingGraph::Complete, ThreatModel::SemiHonest),
        inputs: ins,
        dropout: DropoutSchedule::none(),
        rng_seed: 15,
    };
    assert!(matches!(run_round(spec), Err(SecAggError::Config(_))));
}

#[test]
fn deterministic_given_seed() {
    let make = || RoundSpec {
        params: params(6, 4, MaskingGraph::Complete, ThreatModel::SemiHonest),
        inputs: inputs(6, 0),
        dropout: DropoutSchedule::none(),
        rng_seed: 16,
    };
    let (a, _) = run_round(make()).unwrap();
    let (b, _) = run_round(make()).unwrap();
    assert_eq!(a.sum, b.sum);
}
