//! Neighborhood-scoped Shamir indexing: x-coordinates are positions in
//! the owner's share-holder set (`graph::MaskingGraph::holders`), not
//! global roster indices. Two things must hold for reconstruction to
//! stay correct: every owner's holder set assigns *unique* x's that fit
//! GF(256), and a full protocol round past the old 255-client wall
//! still sums exactly the survivors' inputs.

use std::collections::BTreeMap;

use dordis_secagg::client::ClientInput;
use dordis_secagg::driver::{run_round, DropStage, DropoutSchedule, RoundSpec};
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::{ClientId, RoundParams, ThreatModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any roster size and any graph we'd actually run (the
    /// recommended one, or an explicit Harary of arbitrary half-degree),
    /// every owner's holder set yields unique local x-coordinates
    /// `1..=deg+1` that fit in a `u8`, and every masking neighbor of
    /// the owner resolves to exactly one slot.
    #[test]
    fn holder_x_coordinates_are_unique_per_owner(
        n in 2usize..420,
        half in 1usize..12,
        use_recommended in any::<bool>(),
    ) {
        let g = if use_recommended {
            MaskingGraph::recommended(n)
        } else {
            MaskingGraph::Harary { half_degree: half }
        };
        for owner in 0..n {
            let holders = g.holders(n, owner);
            // Unique and sorted: positions (and thus x = pos + 1) are
            // distinct within this owner's reconstruction set.
            prop_assert!(holders.windows(2).all(|w| w[0] < w[1]), "n={n} owner={owner}");
            prop_assert_eq!(holders.len(), g.degree(n) + 1);
            // x must fit the wire's u8 share coordinate.
            prop_assert!(holders.len() <= 255, "n={n}: neighborhood overflows GF(256)");
            // The owner and each of its neighbors occupy exactly one slot.
            prop_assert!(holders.binary_search(&owner).is_ok());
            for &j in &g.neighbors(n, owner) {
                prop_assert!(holders.binary_search(&j).is_ok(), "n={n} owner={owner} j={j}");
            }
        }
    }
}

#[test]
fn round_past_255_sums_exactly_the_survivors() {
    // The old `validate` wall rejected this roster outright. With
    // neighborhood indexing a 300-client round on the recommended
    // sparse graph must run end to end — through dropouts at both
    // reconstruction-sensitive stages and XNoise bookkeeping — and
    // produce exactly the survivors' modular sum.
    const N: u32 = 300;
    const BITS: u32 = 12;
    const DIM: usize = 4;
    const NOISE_T: usize = 2;

    let graph = MaskingGraph::recommended(N as usize);
    assert!(
        matches!(graph, MaskingGraph::Harary { .. }),
        "a 300-client round must get the sparse graph"
    );

    let mut dropout = DropoutSchedule::none();
    // Mid-round drops force pairwise-mask reconstruction from
    // neighborhood shares; late drops force the b-share path.
    for id in [7, 70, 170, 270] {
        dropout.drop_at(id, DropStage::BeforeMaskedInput);
    }
    for id in [30, 230] {
        dropout.drop_at(id, DropStage::BeforeUnmasking);
    }

    let mask = (1u64 << BITS) - 1;
    let inputs: BTreeMap<ClientId, ClientInput> = (0..N)
        .map(|id| {
            (
                id,
                ClientInput {
                    vector: (0..DIM)
                        .map(|i| (u64::from(id) * 37 + i as u64 * 5) & mask)
                        .collect(),
                    noise_seeds: vec![[(id % 251) as u8 + 1; 32]; NOISE_T + 1],
                },
            )
        })
        .collect();

    let (outcome, _) = run_round(RoundSpec {
        params: RoundParams {
            round: 3,
            clients: (0..N).collect(),
            threshold: N as usize / 2 + 1,
            bit_width: BITS,
            vector_len: DIM,
            noise_components: NOISE_T,
            threat_model: ThreatModel::SemiHonest,
            graph,
        },
        inputs: inputs.clone(),
        dropout,
        rng_seed: 424_242,
    })
    .expect("300-client sparse round");

    // Clients dropping BeforeUnmasking still contributed masked input,
    // so they count as survivors of the sum; only the four
    // BeforeMaskedInput drops are excluded.
    assert_eq!(outcome.survivors.len(), N as usize - 4);
    assert_eq!(outcome.dropped, vec![7, 70, 170, 270]);
    let mut expect = vec![0u64; DIM];
    for id in &outcome.survivors {
        for (e, v) in expect.iter_mut().zip(inputs[id].vector.iter()) {
            *e = (*e + *v) & mask;
        }
    }
    assert_eq!(outcome.sum, expect, "sum diverges past the GF(256) wall");
    // XNoise removal seeds: recovered for survivors over components
    // `dropped + 1 ..= T`.
    for (c, k, _) in &outcome.removal_seeds {
        assert!(outcome.survivors.contains(c));
        assert!(*k >= 1 && *k <= NOISE_T);
    }
}
