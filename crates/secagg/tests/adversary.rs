//! Malicious-server tests: drive the client state machines by hand while
//! playing an adversarial server, and check that every attack from the
//! paper's threat model (§2.1, §3.3, Theorem 2) is either detected by
//! honest clients (abort) or yields nothing useful (a still-masked sum).

use std::collections::BTreeMap;
use std::sync::Arc;

use dordis_crypto::ed25519::SigningKey;
use dordis_secagg::client::{Client, ClientInput, Identity};
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::messages::{AdvertisedKeys, EncryptedShares};
use dordis_secagg::server::Server;
use dordis_secagg::{ClientId, RoundParams, SecAggError, ThreatModel};
use rand::SeedableRng;

const BITS: u32 = 16;
const DIM: usize = 4;

fn params(n: u32, t: usize) -> RoundParams {
    RoundParams {
        round: 3,
        clients: (0..n).collect(),
        threshold: t,
        bit_width: BITS,
        vector_len: DIM,
        noise_components: 2,
        threat_model: ThreatModel::Malicious,
        graph: MaskingGraph::Complete,
    }
}

struct TestBed {
    clients: BTreeMap<ClientId, Client>,
    params: RoundParams,
}

fn signing_key(id: ClientId) -> SigningKey {
    let mut s = [id as u8; 32];
    s[31] = 0x7a;
    SigningKey::from_seed(&s)
}

fn setup(n: u32, t: usize) -> TestBed {
    let params = params(n, t);
    let mut registry = BTreeMap::new();
    for id in 0..n {
        registry.insert(id, signing_key(id).verifying_key());
    }
    let registry = Arc::new(registry);
    let mut clients = BTreeMap::new();
    for id in 0..n {
        let input = ClientInput {
            vector: vec![u64::from(id) + 1; DIM],
            noise_seeds: vec![[id as u8 + 1; 32]; 3],
        };
        let identity = Identity {
            signing: signing_key(id),
            registry: Arc::clone(&registry),
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(u64::from(id) + 77);
        clients.insert(
            id,
            Client::new(params.clone(), id, input, Some(identity), &mut rng).unwrap(),
        );
    }
    TestBed { clients, params }
}

fn rng(salt: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(salt)
}

/// Runs stages 0-1 honestly; returns (roster, all ciphertexts).
fn honest_setup(bed: &mut TestBed) -> (Vec<AdvertisedKeys>, Vec<EncryptedShares>) {
    let roster: Vec<AdvertisedKeys> = bed
        .clients
        .values_mut()
        .map(|c| c.advertise_keys().unwrap())
        .collect();
    let mut cts = Vec::new();
    for (i, c) in bed.clients.values_mut().enumerate() {
        cts.extend(c.share_keys(&roster, &mut rng(1000 + i as u64)).unwrap());
    }
    (roster, cts)
}

fn route(cts: &[EncryptedShares], to: ClientId) -> Vec<EncryptedShares> {
    cts.iter().filter(|c| c.to == to).cloned().collect()
}

#[test]
fn forged_roster_key_is_detected() {
    // The server substitutes its own key pair for client 1's
    // advertisement; client 0 must refuse (bad signature).
    let mut bed = setup(5, 3);
    let mut roster: Vec<AdvertisedKeys> = bed
        .clients
        .values_mut()
        .map(|c| c.advertise_keys().unwrap())
        .collect();
    roster[1].c_pk = [0xAB; 32];
    let err = bed
        .clients
        .get_mut(&0)
        .unwrap()
        .share_keys(&roster, &mut rng(1))
        .unwrap_err();
    assert!(matches!(err, SecAggError::ClientAbort { client: 0, .. }));
}

#[test]
fn tampered_ciphertext_is_detected() {
    let mut bed = setup(5, 3);
    let (_, mut cts) = honest_setup(&mut bed);
    // Flip one byte in a ciphertext destined for client 2.
    let victim = cts.iter_mut().find(|c| c.to == 2).unwrap();
    let len = victim.ciphertext.len();
    victim.ciphertext[len / 2] ^= 0x01;
    let inbox = route(&cts, 2);
    let c2 = bed.clients.get_mut(&2).unwrap();
    // Masked input still succeeds (decryption is deferred to unmasking)...
    let _y = c2.masked_input(inbox).unwrap();
    // ...but unmasking detects the tamper and aborts.
    let u3: Vec<ClientId> = (0..5).collect();
    let sig = c2.consistency_check(&u3).unwrap();
    let sigs: Vec<_> = {
        // Gather signatures from everyone honestly for the check itself.
        let mut v = vec![(2, sig.signature)];
        for id in [0u32, 1, 3, 4] {
            let c = bed.clients.get_mut(&id).unwrap();
            let inbox = route(&cts, id);
            let _ = c.masked_input(inbox).unwrap();
            v.push((id, c.consistency_check(&u3).unwrap().signature));
        }
        v
    };
    let err = bed
        .clients
        .get_mut(&2)
        .unwrap()
        .unmask(&u3, Some(&sigs))
        .unwrap_err();
    assert!(
        matches!(err, SecAggError::ClientAbort { client: 2, ref reason } if reason.contains("AEAD")),
        "unexpected: {err:?}"
    );
}

#[test]
fn inconsistent_u3_views_are_detected() {
    // The server tells client 0 that U3 = {0,1,2,3} and everyone else
    // that U3 = {0,1,2,3,4}; signatures cannot satisfy both.
    let mut bed = setup(5, 3);
    let (_, cts) = honest_setup(&mut bed);
    for id in 0..5u32 {
        let inbox = route(&cts, id);
        bed.clients
            .get_mut(&id)
            .unwrap()
            .masked_input(inbox)
            .unwrap();
    }
    let u3_small: Vec<ClientId> = vec![0, 1, 2, 3];
    let u3_full: Vec<ClientId> = vec![0, 1, 2, 3, 4];
    let sig0 = bed
        .clients
        .get_mut(&0)
        .unwrap()
        .consistency_check(&u3_small)
        .unwrap();
    let mut sigs = vec![(0, sig0.signature)];
    for id in 1..5u32 {
        let s = bed
            .clients
            .get_mut(&id)
            .unwrap()
            .consistency_check(&u3_full)
            .unwrap();
        sigs.push((id, s.signature));
    }
    // Client 0 signed the small set; the server now claims the full set.
    let err = bed
        .clients
        .get_mut(&0)
        .unwrap()
        .unmask(&u3_full, Some(&sigs))
        .unwrap_err();
    assert!(matches!(err, SecAggError::ClientAbort { client: 0, .. }));
    // Client 1 signed the full set, but client 0's signature is over the
    // small set — verification of the signature list fails.
    let err = bed
        .clients
        .get_mut(&1)
        .unwrap()
        .unmask(&u3_full, Some(&sigs))
        .unwrap_err();
    assert!(matches!(err, SecAggError::ClientAbort { client: 1, .. }));
}

#[test]
fn understating_dropout_yields_garbage_aggregate() {
    // Client 4 drops before sending its masked input. A malicious server
    // hides this (claims U3 = everyone) hoping survivors reveal more
    // noise seeds. All honest clients sign the same (inflated) U3, so no
    // abort — but the sum it can compute remains masked by client 4's
    // pairwise masks, so the attack gains nothing (Theorem 2's intuition).
    let n = 5u32;
    let mut bed = setup(n, 3);
    let (roster, cts) = honest_setup(&mut bed);
    let mut masked = Vec::new();
    for id in 0..4u32 {
        let inbox = route(&cts, id);
        masked.push(
            bed.clients
                .get_mut(&id)
                .unwrap()
                .masked_input(inbox)
                .unwrap(),
        );
    }
    // (Client 4 never sends its masked input.)
    let u3_lie: Vec<ClientId> = (0..n).collect();
    let mut sigs = Vec::new();
    for id in 0..4u32 {
        let s = bed
            .clients
            .get_mut(&id)
            .unwrap()
            .consistency_check(&u3_lie)
            .unwrap();
        sigs.push((id, s.signature));
    }
    // Honest clients respond to unmasking; because U3 was inflated they
    // return *more* of their own seeds (k >= 1 instead of k >= 2) and
    // they return b-shares for client 4 rather than sk-shares.
    let mut responses = Vec::new();
    for id in 0..4u32 {
        let r = bed
            .clients
            .get_mut(&id)
            .unwrap()
            .unmask(&u3_lie, Some(&sigs))
            .unwrap();
        // The inflation indeed leaks an extra seed component per client...
        assert_eq!(
            r.own_seeds.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![1, 2]
        );
        // ...and denies the server client 4's sk shares.
        assert!(r.sk_shares.is_empty());
        responses.push(r);
    }
    // The server unmasks pretending everyone survived.
    let mut server = Server::new(bed.params.clone()).unwrap();
    server.collect_advertisements(roster).unwrap();
    server.route_shares(cts).unwrap();
    server.collect_masked(masked).unwrap();
    // Server lies to itself consistently: mark client 4 as alive by
    // injecting a fake masked input of zeros.
    // (collect_masked only accepted 4 inputs; the "lie" manifests as the
    // server trying to unmask a sum missing client 4's mask cancellation.)
    server.collect_unmasking(responses).unwrap_err();
    // collect_unmasking fails: without sk-shares for client 4 the
    // pairwise masks cannot be reconstructed. The aggregate stays hidden.
}

#[test]
fn replayed_ciphertext_from_other_round_fails() {
    // Record a ciphertext in round 3, replay it in round 4: the AAD binds
    // the round number, so decryption fails and the client aborts.
    let mut bed3 = setup(5, 3);
    let (_, cts3) = honest_setup(&mut bed3);

    let mut p4 = params(5, 3);
    p4.round = 4;
    let mut registry = BTreeMap::new();
    for id in 0..5 {
        registry.insert(id, signing_key(id).verifying_key());
    }
    let registry = Arc::new(registry);
    let mut clients4 = BTreeMap::new();
    for id in 0..5u32 {
        let input = ClientInput {
            vector: vec![1; DIM],
            noise_seeds: vec![[1; 32]; 3],
        };
        let identity = Identity {
            signing: signing_key(id),
            registry: Arc::clone(&registry),
        };
        clients4.insert(
            id,
            Client::new(
                p4.clone(),
                id,
                input,
                Some(identity),
                &mut rng(u64::from(id)),
            )
            .unwrap(),
        );
    }
    let roster4: Vec<AdvertisedKeys> = clients4
        .values_mut()
        .map(|c| c.advertise_keys().unwrap())
        .collect();
    let mut cts4 = Vec::new();
    for (i, c) in clients4.values_mut().enumerate() {
        cts4.extend(c.share_keys(&roster4, &mut rng(2000 + i as u64)).unwrap());
    }
    // Replace one of round 4's ciphertexts to client 2 with a round-3 one
    // from the same sender pair.
    let mut inbox4 = route(&cts4, 2);
    let replay = cts3.iter().find(|c| c.to == 2).unwrap().clone();
    inbox4[0] = replay;
    let c2 = clients4.get_mut(&2).unwrap();
    let _ = c2.masked_input(inbox4).unwrap();
    let u3: Vec<ClientId> = (0..5).collect();
    let sig2 = c2.consistency_check(&u3).unwrap();
    // All other clients sign honestly.
    let mut sigs = vec![(2u32, sig2.signature)];
    for id in [0u32, 1, 3, 4] {
        let c = clients4.get_mut(&id).unwrap();
        let _ = c.masked_input(route(&cts4, id)).unwrap();
        sigs.push((id, c.consistency_check(&u3).unwrap().signature));
    }
    let err = clients4
        .get_mut(&2)
        .unwrap()
        .unmask(&u3, Some(&sigs))
        .unwrap_err();
    assert!(matches!(err, SecAggError::ClientAbort { client: 2, .. }));
}

#[test]
fn server_never_holds_both_secrets() {
    // Semi-honest run with a mid-protocol dropout; the server's view must
    // keep {b_u} and {s_sk_v} disjoint.
    use dordis_secagg::driver::{run_round, DropStage, DropoutSchedule, RoundSpec};
    let mut p = params(6, 4);
    p.threat_model = ThreatModel::SemiHonest;
    let inputs: BTreeMap<ClientId, ClientInput> = (0..6)
        .map(|id| {
            (
                id,
                ClientInput {
                    vector: vec![u64::from(id); DIM],
                    noise_seeds: vec![[id as u8; 32]; 3],
                },
            )
        })
        .collect();
    let mut dropout = DropoutSchedule::none();
    dropout.drop_at(1, DropStage::BeforeMaskedInput);
    let spec = RoundSpec {
        params: p,
        inputs,
        dropout,
        rng_seed: 55,
    };
    // run_round debug-asserts the invariant internally; also sanity-check
    // the outcome here.
    let (outcome, _) = run_round(spec).unwrap();
    assert_eq!(outcome.dropped, vec![1]);
}

#[test]
fn too_few_consistency_signatures_abort() {
    let mut bed = setup(5, 4);
    let (_, cts) = honest_setup(&mut bed);
    for id in 0..5u32 {
        let inbox = route(&cts, id);
        bed.clients
            .get_mut(&id)
            .unwrap()
            .masked_input(inbox)
            .unwrap();
    }
    let u3: Vec<ClientId> = (0..5).collect();
    let sig0 = bed
        .clients
        .get_mut(&0)
        .unwrap()
        .consistency_check(&u3)
        .unwrap();
    let sig1 = bed
        .clients
        .get_mut(&1)
        .unwrap()
        .consistency_check(&u3)
        .unwrap();
    // Only 2 < t = 4 signatures provided.
    let sigs = vec![(0, sig0.signature), (1, sig1.signature)];
    let err = bed
        .clients
        .get_mut(&0)
        .unwrap()
        .unmask(&u3, Some(&sigs))
        .unwrap_err();
    assert!(matches!(err, SecAggError::ClientAbort { client: 0, .. }));
}
