//! Compute-plane equivalence at the state-machine layer: unmasking via
//! `plan_unmasking` + per-chunk `unmask_chunk_task` + `install_chunk_sum`
//! (the pooled path, with each chunk computed independently at its
//! element offset — possibly on another thread) must be bit-equal to
//! the serial `reconstruct_unmasking` + `unmask_chunk` path, including
//! under mid-round dropout where recovery re-expands pairwise masks.

use std::sync::Arc;

use dordis_pipeline::ChunkPlan;
use dordis_secagg::client::ClientInput;
use dordis_secagg::driver::run_until_unmasking;
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::server::unmask_chunk_task;
use dordis_secagg::{ClientId, RoundParams, ThreatModel};

const BITS: u32 = 16;
const DIM: usize = 200;
const SEED: u64 = 77_777;

fn params(n: u32, graph: MaskingGraph) -> RoundParams {
    RoundParams {
        round: 3,
        clients: (0..n).collect(),
        threshold: (n as usize) / 2 + 1,
        bit_width: BITS,
        vector_len: DIM,
        noise_components: 0,
        threat_model: ThreatModel::SemiHonest,
        graph,
    }
}

fn input_for(id: ClientId) -> ClientInput {
    ClientInput {
        vector: (0..DIM)
            .map(|i| (u64::from(id) * 131 + i as u64 * 17) & ((1 << BITS) - 1))
            .collect(),
        noise_seeds: Vec::new(),
    }
}

fn pooled_equals_serial(n: u32, graph: MaskingGraph, chunks: usize, dropped: &[ClientId]) {
    let p = params(n, graph);
    let plan = ChunkPlan::aligned(DIM, chunks, BITS).expect("plan");

    // Serial reference.
    let (mut serial, responses, _) =
        run_until_unmasking(&p, &plan, dropped, SEED, input_for).expect("serial setup");
    serial
        .collect_unmasking(responses)
        .expect("serial unmasking");
    let serial_outcome = serial.finish();

    // Pooled path: same messages (everything is seed-deterministic),
    // chunks computed independently — here on spawned threads, exactly
    // as the worker pool runs them.
    let (mut pooled, responses, _) =
        run_until_unmasking(&p, &plan, dropped, SEED, input_for).expect("pooled setup");
    let jobs = Arc::new(pooled.plan_unmasking(responses).expect("plan"));
    let mut handles = Vec::new();
    for c in 0..plan.chunks() {
        let inputs = pooled.take_chunk_inputs(c).expect("take inputs");
        let jobs = Arc::clone(&jobs);
        let range = plan.range(c);
        handles.push(std::thread::spawn(move || {
            (
                c,
                unmask_chunk_task(&inputs, &jobs, range.start, range.len(), BITS),
            )
        }));
    }
    // Install in arbitrary (join) order.
    for h in handles {
        let (c, sum) = h.join().expect("worker");
        pooled.install_chunk_sum(c, sum).expect("install");
    }
    assert!(pooled.privacy_invariant_holds());
    let pooled_outcome = pooled.finish();

    assert_eq!(serial_outcome.sum, pooled_outcome.sum, "sums differ");
    assert_eq!(serial_outcome.survivors, pooled_outcome.survivors);
    assert_eq!(serial_outcome.dropped, pooled_outcome.dropped);
}

#[test]
fn pooled_unmask_no_dropout() {
    for chunks in [1usize, 4, 7] {
        pooled_equals_serial(8, MaskingGraph::Complete, chunks, &[]);
    }
}

#[test]
fn pooled_unmask_with_mid_round_dropout() {
    // Dropouts between ShareKeys and MaskedInput force pairwise
    // re-expansion — the `O(dropped × neighbors × d)` recovery the
    // compute plane exists for.
    for chunks in [1usize, 4] {
        pooled_equals_serial(8, MaskingGraph::Complete, chunks, &[2, 5]);
    }
}

#[test]
fn pooled_unmask_sparse_graph_dropout() {
    pooled_equals_serial(12, MaskingGraph::harary_for(12), 4, &[3]);
}
