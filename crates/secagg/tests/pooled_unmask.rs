//! Compute-plane equivalence at the state-machine layer: unmasking via
//! `plan_unmasking` + per-chunk `unmask_chunk_task` + `install_chunk_sum`
//! (the pooled path, with each chunk computed independently at its
//! element offset — possibly on another thread) must be bit-equal to
//! the serial `reconstruct_unmasking` + `unmask_chunk` path, including
//! under mid-round dropout where recovery re-expands pairwise masks.

use std::sync::Arc;

use dordis_pipeline::ChunkPlan;
use dordis_secagg::client::ClientInput;
use dordis_secagg::driver::run_until_unmasking;
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::server::unmask_chunk_task;
use dordis_secagg::{ClientId, RoundParams, ThreatModel};

const BITS: u32 = 16;
const DIM: usize = 200;
const SEED: u64 = 77_777;

fn params(n: u32, graph: MaskingGraph) -> RoundParams {
    RoundParams {
        round: 3,
        clients: (0..n).collect(),
        threshold: (n as usize) / 2 + 1,
        bit_width: BITS,
        vector_len: DIM,
        noise_components: 0,
        threat_model: ThreatModel::SemiHonest,
        graph,
    }
}

fn input_for(id: ClientId) -> ClientInput {
    ClientInput {
        vector: (0..DIM)
            .map(|i| (u64::from(id) * 131 + i as u64 * 17) & ((1 << BITS) - 1))
            .collect(),
        noise_seeds: Vec::new(),
    }
}

fn pooled_equals_serial(n: u32, graph: MaskingGraph, chunks: usize, dropped: &[ClientId]) {
    let p = params(n, graph);
    let plan = ChunkPlan::aligned(DIM, chunks, BITS).expect("plan");

    // Serial reference.
    let (mut serial, responses, _) =
        run_until_unmasking(&p, &plan, dropped, SEED, input_for).expect("serial setup");
    serial
        .collect_unmasking(responses)
        .expect("serial unmasking");
    let serial_outcome = serial.finish();

    // Pooled path: same messages (everything is seed-deterministic),
    // chunks computed independently — here on spawned threads, exactly
    // as the worker pool runs them.
    let (mut pooled, responses, _) =
        run_until_unmasking(&p, &plan, dropped, SEED, input_for).expect("pooled setup");
    let jobs = Arc::new(pooled.plan_unmasking(responses).expect("plan"));
    let mut handles = Vec::new();
    for c in 0..plan.chunks() {
        let inputs = pooled.take_chunk_inputs(c).expect("take inputs");
        let jobs = Arc::clone(&jobs);
        let range = plan.range(c);
        handles.push(std::thread::spawn(move || {
            (
                c,
                unmask_chunk_task(&inputs, &jobs, range.start, range.len(), BITS),
            )
        }));
    }
    // Install in arbitrary (join) order.
    for h in handles {
        let (c, sum) = h.join().expect("worker");
        pooled.install_chunk_sum(c, sum).expect("install");
    }
    assert!(pooled.privacy_invariant_holds());
    let pooled_outcome = pooled.finish();

    assert_eq!(serial_outcome.sum, pooled_outcome.sum, "sums differ");
    assert_eq!(serial_outcome.survivors, pooled_outcome.survivors);
    assert_eq!(serial_outcome.dropped, pooled_outcome.dropped);
}

#[test]
fn pooled_unmask_no_dropout() {
    for chunks in [1usize, 4, 7] {
        pooled_equals_serial(8, MaskingGraph::Complete, chunks, &[]);
    }
}

#[test]
fn pooled_unmask_with_mid_round_dropout() {
    // Dropouts between ShareKeys and MaskedInput force pairwise
    // re-expansion — the `O(dropped × neighbors × d)` recovery the
    // compute plane exists for.
    for chunks in [1usize, 4] {
        pooled_equals_serial(8, MaskingGraph::Complete, chunks, &[2, 5]);
    }
}

#[test]
fn pooled_unmask_sparse_graph_dropout() {
    pooled_equals_serial(12, MaskingGraph::harary_for(12), 4, &[3]);
}

#[test]
fn pool_driven_unmask_is_bit_equal_and_accounts_its_work() {
    // The same per-chunk jobs, but routed through the real
    // `dordis_compute::Pool` (the coordinator's compute plane) instead
    // of ad-hoc threads — and the pool's extended stats must account
    // for the work: every job submitted, drained, and timed on some
    // worker, with no panics and a drained queue at the barrier.
    let chunks = 4usize;
    let p = params(8, MaskingGraph::Complete);
    let plan = ChunkPlan::aligned(DIM, chunks, BITS).expect("plan");

    let (mut serial, responses, _) =
        run_until_unmasking(&p, &plan, &[2], SEED, input_for).expect("serial setup");
    serial
        .collect_unmasking(responses)
        .expect("serial unmasking");
    let serial_outcome = serial.finish();

    let (mut pooled, responses, _) =
        run_until_unmasking(&p, &plan, &[2], SEED, input_for).expect("pooled setup");
    let jobs = Arc::new(pooled.plan_unmasking(responses).expect("plan"));
    let mut pool: dordis_compute::Pool<Vec<u64>> = dordis_compute::Pool::new(2, None);
    for c in 0..plan.chunks() {
        let inputs = pooled.take_chunk_inputs(c).expect("take inputs");
        let jobs = Arc::clone(&jobs);
        let range = plan.range(c);
        pool.submit(c as u64, move || {
            unmask_chunk_task(&inputs, &jobs, range.start, range.len(), BITS)
        });
    }
    while let Some((c, outcome)) = pool.wait_complete() {
        let dordis_compute::JobOutcome::Done(sum) = outcome else {
            panic!("unmask job panicked");
        };
        pooled.install_chunk_sum(c as usize, sum).expect("install");
    }
    let pooled_outcome = pooled.finish();
    assert_eq!(serial_outcome.sum, pooled_outcome.sum, "sums differ");

    let stats = pool.stats();
    assert_eq!(stats.submitted, plan.chunks() as u64);
    assert_eq!(stats.drained, plan.chunks() as u64);
    assert_eq!(stats.panics, 0);
    assert_eq!(pool.queue_depth(), 0, "queue drained at the barrier");
    assert!(
        stats.queue_peak >= 1 && stats.queue_peak <= plan.chunks() as u64,
        "queue peak out of range: {}",
        stats.queue_peak
    );
    assert_eq!(stats.worker_busy_ns.len(), 2, "one slot per worker");
    assert!(
        stats.total_busy_ns() > 0,
        "unmask work left no busy time on any worker"
    );
}
