//! RFC 8439 ChaCha20 block function and stream cipher.
//!
//! ChaCha20 serves two roles in Dordis: it is the `PRG` that expands 32-byte
//! seeds into pairwise masks / self-masks / DP noise streams (the dominant
//! computational cost of secure aggregation), and it is the confidentiality
//! half of the crate's encrypt-then-MAC [`crate::aead`].

/// ChaCha20 key size in bytes.
pub const KEY_LEN: usize = 32;
/// ChaCha20 nonce size in bytes (IETF variant, 96 bits).
pub const NONCE_LEN: usize = 12;
/// ChaCha20 block size in bytes.
pub const BLOCK_LEN: usize = 64;

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Number of `u64` keystream words per ChaCha20 block.
pub const BLOCK_WORDS: usize = BLOCK_LEN / 8;

/// Computes one keystream block as its 16 little-endian `u32` state
/// words — the allocation-free core that [`block`] and the batched
/// [`KeyStream::fill_u64`] path share.
#[must_use]
pub fn block_words(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[4 * i],
            nonce[4 * i + 1],
            nonce[4 * i + 2],
            nonce[4 * i + 3],
        ]);
    }
    let initial = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (s, i) in state.iter_mut().zip(initial.iter()) {
        *s = s.wrapping_add(*i);
    }
    state
}

/// Computes one 64-byte ChaCha20 keystream block.
#[must_use]
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_LEN] {
    let words = block_words(key, counter, nonce);
    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        out[4 * i..4 * i + 4].copy_from_slice(&words[i].to_le_bytes());
    }
    out
}

/// Writes one keystream block as 8 little-endian `u64` words — two
/// consecutive LE `u32` state words packed low-then-high, so the result
/// is bit-identical to reading the byte stream with
/// `u64::from_le_bytes`.
#[inline]
fn block_u64(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN], out: &mut [u64]) {
    debug_assert_eq!(out.len(), BLOCK_WORDS);
    let words = block_words(key, counter, nonce);
    for (o, pair) in out.iter_mut().zip(words.chunks_exact(2)) {
        *o = u64::from(pair[0]) | (u64::from(pair[1]) << 32);
    }
}

/// XORs the ChaCha20 keystream (starting at `counter`) into `data` in place.
///
/// Applying the function twice with the same parameters recovers the
/// original data, so this serves as both encryption and decryption.
pub fn xor_stream(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32, data: &mut [u8]) {
    let mut ctr = counter;
    for chunk in data.chunks_mut(BLOCK_LEN) {
        let ks = block(key, ctr, nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
        ctr = ctr.wrapping_add(1);
    }
}

/// A resumable ChaCha20 keystream reader.
///
/// Produces an unbounded byte stream determined by `(key, nonce)`; used as
/// the backing generator for [`crate::prg::Prg`].
#[derive(Clone)]
pub struct KeyStream {
    key: [u8; KEY_LEN],
    nonce: [u8; NONCE_LEN],
    counter: u32,
    buf: [u8; BLOCK_LEN],
    buf_pos: usize,
}

impl KeyStream {
    /// Creates a keystream for `(key, nonce)` starting at block 0.
    #[must_use]
    pub fn new(key: [u8; KEY_LEN], nonce: [u8; NONCE_LEN]) -> Self {
        KeyStream {
            key,
            nonce,
            counter: 0,
            buf: [0u8; BLOCK_LEN],
            buf_pos: BLOCK_LEN,
        }
    }

    /// Fills `out` with the next keystream bytes.
    pub fn fill(&mut self, out: &mut [u8]) {
        for byte in out.iter_mut() {
            if self.buf_pos == BLOCK_LEN {
                self.buf = block(&self.key, self.counter, &self.nonce);
                self.counter = self.counter.wrapping_add(1);
                self.buf_pos = 0;
            }
            *byte = self.buf[self.buf_pos];
            self.buf_pos += 1;
        }
    }

    /// Returns the next keystream `u64` (little-endian).
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill(&mut b);
        u64::from_le_bytes(b)
    }

    /// Fills `out` with the next keystream `u64`s (little-endian),
    /// generating whole blocks straight into the caller's buffer.
    ///
    /// Bit-identical to calling [`KeyStream::next_u64`] `out.len()`
    /// times — it consumes exactly `8 × out.len()` stream bytes from the
    /// current position — but skips the per-word byte shuffling: aligned
    /// spans are produced 8 words (one block) at a time directly into
    /// `out`. This is the mask-expansion fast path
    /// (`Prg::fill_mod2b`), where the stream position is normally
    /// word-aligned and the spans are thousands of words long.
    pub fn fill_u64(&mut self, out: &mut [u64]) {
        let mut rest = out;
        // Drain buffered block bytes first (and handle a misaligned
        // position via the byte path) until the stream is block-aligned.
        while !rest.is_empty() && self.buf_pos != BLOCK_LEN {
            let avail = BLOCK_LEN - self.buf_pos;
            if avail >= 8 {
                let b: [u8; 8] = self.buf[self.buf_pos..self.buf_pos + 8]
                    .try_into()
                    .expect("8 bytes");
                rest[0] = u64::from_le_bytes(b);
                self.buf_pos += 8;
            } else {
                // 1..=7 leftover bytes: the word straddles a block
                // boundary; the byte path handles the refill.
                let mut b = [0u8; 8];
                self.fill(&mut b);
                rest[0] = u64::from_le_bytes(b);
            }
            rest = &mut rest[1..];
        }
        // Whole blocks straight into the caller's buffer.
        let mut chunks = rest.chunks_exact_mut(BLOCK_WORDS);
        for chunk in &mut chunks {
            block_u64(&self.key, self.counter, &self.nonce, chunk);
            self.counter = self.counter.wrapping_add(1);
        }
        let tail = chunks.into_remainder();
        if !tail.is_empty() {
            // Partial final block: generate it into the buffer so the
            // unread remainder stays available to later reads.
            self.buf = block(&self.key, self.counter, &self.nonce);
            self.counter = self.counter.wrapping_add(1);
            self.buf_pos = 0;
            for t in tail.iter_mut() {
                let b: [u8; 8] = self.buf[self.buf_pos..self.buf_pos + 8]
                    .try_into()
                    .expect("8 bytes");
                *t = u64::from_le_bytes(b);
                self.buf_pos += 8;
            }
        }
    }

    /// Repositions the stream to absolute `byte_offset` (from block 0).
    ///
    /// ChaCha20 is seekable by construction — block `i` depends only on
    /// `(key, nonce, i)` — so a reader can start mid-stream for the cost
    /// of at most one block computation. This is what lets the compute
    /// plane expand *one chunk's slice* of a mask without generating the
    /// prefix: element `i` of a mask vector lives at byte `8 i`.
    pub fn seek(&mut self, byte_offset: u64) {
        let block_idx = byte_offset / BLOCK_LEN as u64;
        let within = (byte_offset % BLOCK_LEN as u64) as usize;
        self.counter = block_idx as u32;
        if within == 0 {
            self.buf_pos = BLOCK_LEN; // next read generates the block
        } else {
            self.buf = block(&self.key, self.counter, &self.nonce);
            self.counter = self.counter.wrapping_add(1);
            self.buf_pos = within;
        }
    }

    /// Returns the next keystream `u32` (little-endian).
    pub fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill(&mut b);
        u32::from_le_bytes(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc8439_quarter_round_vector() {
        // RFC 8439 §2.1.1.
        let mut state = [0u32; 16];
        state[0] = 0x1111_1111;
        state[1] = 0x0102_0304;
        state[2] = 0x9b8d_6f43;
        state[3] = 0x0123_4567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a_92f4);
        assert_eq!(state[1], 0xcb1c_f8ce);
        assert_eq!(state[2], 0x4581_472e);
        assert_eq!(state[3], 0x5881_c4bb);
    }

    #[test]
    fn rfc8439_block_vector() {
        // RFC 8439 §2.3.2: key 00..1f, nonce 000000090000004a00000000, ctr 1.
        let mut key = [0u8; KEY_LEN];
        for (i, k) in key.iter_mut().enumerate() {
            *k = i as u8;
        }
        let nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let out = block(&key, 1, &nonce);
        let expected_head = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0, 0x68, 0x03,
        ];
        assert_eq!(&out[..24], &expected_head);
    }

    #[test]
    fn xor_stream_roundtrip() {
        let key = [7u8; KEY_LEN];
        let nonce = [3u8; NONCE_LEN];
        let plain: Vec<u8> = (0..300u16).map(|i| (i * 7 % 256) as u8).collect();
        let mut data = plain.clone();
        xor_stream(&key, &nonce, 0, &mut data);
        assert_ne!(data, plain);
        xor_stream(&key, &nonce, 0, &mut data);
        assert_eq!(data, plain);
    }

    #[test]
    fn keystream_matches_block_sequence() {
        let key = [9u8; KEY_LEN];
        let nonce = [1u8; NONCE_LEN];
        let mut ks = KeyStream::new(key, nonce);
        let mut got = vec![0u8; 130];
        ks.fill(&mut got);
        let mut want = Vec::new();
        for c in 0..3u32 {
            want.extend_from_slice(&block(&key, c, &nonce));
        }
        assert_eq!(&got[..], &want[..130]);
    }

    #[test]
    fn keystream_fill_is_split_invariant() {
        let key = [5u8; KEY_LEN];
        let nonce = [2u8; NONCE_LEN];
        let mut a = KeyStream::new(key, nonce);
        let mut whole = vec![0u8; 100];
        a.fill(&mut whole);
        let mut b = KeyStream::new(key, nonce);
        let mut parts = vec![0u8; 100];
        b.fill(&mut parts[..33]);
        b.fill(&mut parts[33..90]);
        b.fill(&mut parts[90..]);
        assert_eq!(whole, parts);
    }

    #[test]
    fn fill_u64_matches_next_u64_across_alignments() {
        let key = [11u8; KEY_LEN];
        let nonce = [4u8; NONCE_LEN];
        // Misalign by 0..=9 bytes first, then batch-fill across several
        // block boundaries; must equal the word-at-a-time path exactly.
        for misalign in 0..=9usize {
            let mut a = KeyStream::new(key, nonce);
            let mut b = KeyStream::new(key, nonce);
            let mut skip = vec![0u8; misalign];
            a.fill(&mut skip);
            b.fill(&mut skip);
            let mut batched = vec![0u64; 37];
            a.fill_u64(&mut batched);
            let legacy: Vec<u64> = (0..37).map(|_| b.next_u64()).collect();
            assert_eq!(batched, legacy, "misalign {misalign}");
            // And the streams stay in lockstep afterwards.
            assert_eq!(a.next_u64(), b.next_u64(), "misalign {misalign}");
        }
    }

    #[test]
    fn seek_reproduces_mid_stream_words() {
        let key = [13u8; KEY_LEN];
        let nonce = [6u8; NONCE_LEN];
        let mut reference = KeyStream::new(key, nonce);
        let mut all = vec![0u64; 64];
        reference.fill_u64(&mut all);
        for offset_words in [0usize, 1, 7, 8, 9, 16, 33] {
            let mut seeked = KeyStream::new(key, nonce);
            seeked.seek(offset_words as u64 * 8);
            let mut got = vec![0u64; all.len() - offset_words];
            seeked.fill_u64(&mut got);
            assert_eq!(got, all[offset_words..], "offset {offset_words}");
        }
        // Byte-granular seek too (mid-word positions).
        let mut bytes = KeyStream::new(key, nonce);
        let mut stream = vec![0u8; 200];
        bytes.fill(&mut stream);
        for off in [1usize, 63, 64, 65, 100] {
            let mut seeked = KeyStream::new(key, nonce);
            seeked.seek(off as u64);
            let mut got = vec![0u8; stream.len() - off];
            seeked.fill(&mut got);
            assert_eq!(got, stream[off..], "byte offset {off}");
        }
    }

    #[test]
    fn different_nonces_give_different_streams() {
        let key = [1u8; KEY_LEN];
        let mut a = KeyStream::new(key, [0u8; NONCE_LEN]);
        let mut b = KeyStream::new(key, [1u8; NONCE_LEN]);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
