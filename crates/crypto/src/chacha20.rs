//! RFC 8439 ChaCha20 block function and stream cipher.
//!
//! ChaCha20 serves two roles in Dordis: it is the `PRG` that expands 32-byte
//! seeds into pairwise masks / self-masks / DP noise streams (the dominant
//! computational cost of secure aggregation), and it is the confidentiality
//! half of the crate's encrypt-then-MAC [`crate::aead`].

/// ChaCha20 key size in bytes.
pub const KEY_LEN: usize = 32;
/// ChaCha20 nonce size in bytes (IETF variant, 96 bits).
pub const NONCE_LEN: usize = 12;
/// ChaCha20 block size in bytes.
pub const BLOCK_LEN: usize = 64;

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte ChaCha20 keystream block.
#[must_use]
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_LEN] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[4 * i],
            nonce[4 * i + 1],
            nonce[4 * i + 2],
            nonce[4 * i + 3],
        ]);
    }
    let initial = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        let word = state[i].wrapping_add(initial[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XORs the ChaCha20 keystream (starting at `counter`) into `data` in place.
///
/// Applying the function twice with the same parameters recovers the
/// original data, so this serves as both encryption and decryption.
pub fn xor_stream(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32, data: &mut [u8]) {
    let mut ctr = counter;
    for chunk in data.chunks_mut(BLOCK_LEN) {
        let ks = block(key, ctr, nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
        ctr = ctr.wrapping_add(1);
    }
}

/// A resumable ChaCha20 keystream reader.
///
/// Produces an unbounded byte stream determined by `(key, nonce)`; used as
/// the backing generator for [`crate::prg::Prg`].
#[derive(Clone)]
pub struct KeyStream {
    key: [u8; KEY_LEN],
    nonce: [u8; NONCE_LEN],
    counter: u32,
    buf: [u8; BLOCK_LEN],
    buf_pos: usize,
}

impl KeyStream {
    /// Creates a keystream for `(key, nonce)` starting at block 0.
    #[must_use]
    pub fn new(key: [u8; KEY_LEN], nonce: [u8; NONCE_LEN]) -> Self {
        KeyStream {
            key,
            nonce,
            counter: 0,
            buf: [0u8; BLOCK_LEN],
            buf_pos: BLOCK_LEN,
        }
    }

    /// Fills `out` with the next keystream bytes.
    pub fn fill(&mut self, out: &mut [u8]) {
        for byte in out.iter_mut() {
            if self.buf_pos == BLOCK_LEN {
                self.buf = block(&self.key, self.counter, &self.nonce);
                self.counter = self.counter.wrapping_add(1);
                self.buf_pos = 0;
            }
            *byte = self.buf[self.buf_pos];
            self.buf_pos += 1;
        }
    }

    /// Returns the next keystream `u64` (little-endian).
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill(&mut b);
        u64::from_le_bytes(b)
    }

    /// Returns the next keystream `u32` (little-endian).
    pub fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill(&mut b);
        u32::from_le_bytes(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc8439_quarter_round_vector() {
        // RFC 8439 §2.1.1.
        let mut state = [0u32; 16];
        state[0] = 0x1111_1111;
        state[1] = 0x0102_0304;
        state[2] = 0x9b8d_6f43;
        state[3] = 0x0123_4567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a_92f4);
        assert_eq!(state[1], 0xcb1c_f8ce);
        assert_eq!(state[2], 0x4581_472e);
        assert_eq!(state[3], 0x5881_c4bb);
    }

    #[test]
    fn rfc8439_block_vector() {
        // RFC 8439 §2.3.2: key 00..1f, nonce 000000090000004a00000000, ctr 1.
        let mut key = [0u8; KEY_LEN];
        for (i, k) in key.iter_mut().enumerate() {
            *k = i as u8;
        }
        let nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let out = block(&key, 1, &nonce);
        let expected_head = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0, 0x68, 0x03,
        ];
        assert_eq!(&out[..24], &expected_head);
    }

    #[test]
    fn xor_stream_roundtrip() {
        let key = [7u8; KEY_LEN];
        let nonce = [3u8; NONCE_LEN];
        let plain: Vec<u8> = (0..300u16).map(|i| (i * 7 % 256) as u8).collect();
        let mut data = plain.clone();
        xor_stream(&key, &nonce, 0, &mut data);
        assert_ne!(data, plain);
        xor_stream(&key, &nonce, 0, &mut data);
        assert_eq!(data, plain);
    }

    #[test]
    fn keystream_matches_block_sequence() {
        let key = [9u8; KEY_LEN];
        let nonce = [1u8; NONCE_LEN];
        let mut ks = KeyStream::new(key, nonce);
        let mut got = vec![0u8; 130];
        ks.fill(&mut got);
        let mut want = Vec::new();
        for c in 0..3u32 {
            want.extend_from_slice(&block(&key, c, &nonce));
        }
        assert_eq!(&got[..], &want[..130]);
    }

    #[test]
    fn keystream_fill_is_split_invariant() {
        let key = [5u8; KEY_LEN];
        let nonce = [2u8; NONCE_LEN];
        let mut a = KeyStream::new(key, nonce);
        let mut whole = vec![0u8; 100];
        a.fill(&mut whole);
        let mut b = KeyStream::new(key, nonce);
        let mut parts = vec![0u8; 100];
        b.fill(&mut parts[..33]);
        b.fill(&mut parts[33..90]);
        b.fill(&mut parts[90..]);
        assert_eq!(whole, parts);
    }

    #[test]
    fn different_nonces_give_different_streams() {
        let key = [1u8; KEY_LEN];
        let mut a = KeyStream::new(key, [0u8; NONCE_LEN]);
        let mut b = KeyStream::new(key, [1u8; NONCE_LEN]);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
