//! Authenticated encryption: ChaCha20 + HMAC-SHA256, encrypt-then-MAC.
//!
//! SecAgg requires an IND-CPA and INT-CTXT authenticated encryption scheme
//! `AE` to protect the Shamir shares exchanged between clients through the
//! untrusted server (Figure 5, `ShareKeys`). Encrypt-then-MAC with
//! independent keys is the textbook construction achieving both properties
//! (Bellare–Namprempre); the two sub-keys are derived from the input key
//! with HKDF so callers can pass a single 32-byte key-agreement output.

use rand::Rng;

use crate::chacha20::{self, NONCE_LEN};
use crate::hmac::{hkdf, HmacSha256};
use crate::{ct_eq, CryptoError};

/// Key length accepted by [`seal`]/[`open`] (any length works; 32 is
/// conventional as the output of key agreement).
pub const KEY_LEN: usize = 32;
/// MAC tag length in bytes.
pub const TAG_LEN: usize = 32;
/// Total ciphertext expansion: nonce plus tag.
pub const OVERHEAD: usize = NONCE_LEN + TAG_LEN;

fn derive_keys(key: &[u8]) -> ([u8; 32], [u8; 32]) {
    let okm = hkdf(b"dordis.aead", key, b"enc|mac", 64);
    let mut enc = [0u8; 32];
    let mut mac = [0u8; 32];
    enc.copy_from_slice(&okm[..32]);
    mac.copy_from_slice(&okm[32..]);
    (enc, mac)
}

/// Encrypts and authenticates `plaintext` with optional associated data.
///
/// Output layout: `nonce (12) || ciphertext || tag (32)`. The associated
/// data is authenticated but not transmitted; SecAgg uses it for the
/// `u || v` addressing metadata so a ciphertext cannot be replayed between
/// client pairs.
#[must_use]
pub fn seal<R: Rng>(key: &[u8], aad: &[u8], plaintext: &[u8], rng: &mut R) -> Vec<u8> {
    let (enc_key, mac_key) = derive_keys(key);
    let mut nonce = [0u8; NONCE_LEN];
    rng.fill(&mut nonce[..]);
    let mut out = Vec::with_capacity(plaintext.len() + OVERHEAD);
    out.extend_from_slice(&nonce);
    out.extend_from_slice(plaintext);
    chacha20::xor_stream(&enc_key, &nonce, 1, &mut out[NONCE_LEN..]);
    let tag = compute_tag(&mac_key, aad, &out);
    out.extend_from_slice(&tag);
    out
}

/// Verifies and decrypts a ciphertext produced by [`seal`].
///
/// # Errors
///
/// Returns [`CryptoError::AuthenticationFailed`] if the tag does not verify
/// (wrong key, wrong associated data, or tampering) and
/// [`CryptoError::Malformed`] if the ciphertext is too short.
pub fn open(key: &[u8], aad: &[u8], ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
    if ciphertext.len() < OVERHEAD {
        return Err(CryptoError::Malformed("ciphertext shorter than overhead"));
    }
    let (enc_key, mac_key) = derive_keys(key);
    let body_len = ciphertext.len() - TAG_LEN;
    let (body, tag) = ciphertext.split_at(body_len);
    let expected = compute_tag(&mac_key, aad, body);
    if !ct_eq(tag, &expected) {
        return Err(CryptoError::AuthenticationFailed);
    }
    let mut nonce = [0u8; NONCE_LEN];
    nonce.copy_from_slice(&body[..NONCE_LEN]);
    let mut plaintext = body[NONCE_LEN..].to_vec();
    chacha20::xor_stream(&enc_key, &nonce, 1, &mut plaintext);
    Ok(plaintext)
}

/// MAC over `len(aad) || aad || nonce+ciphertext` (length-prefixed to keep
/// the encoding injective).
fn compute_tag(mac_key: &[u8; 32], aad: &[u8], body: &[u8]) -> [u8; TAG_LEN] {
    let mut mac = HmacSha256::new(mac_key);
    mac.update(&(aad.len() as u64).to_le_bytes());
    mac.update(aad);
    mac.update(body);
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    #[test]
    fn roundtrip() {
        let key = [9u8; 32];
        let ct = seal(&key, b"u=3|v=7", b"share bytes", &mut rng());
        let pt = open(&key, b"u=3|v=7", &ct).unwrap();
        assert_eq!(pt, b"share bytes");
    }

    #[test]
    fn empty_plaintext_roundtrip() {
        let key = [1u8; 32];
        let ct = seal(&key, b"", b"", &mut rng());
        assert_eq!(ct.len(), OVERHEAD);
        assert_eq!(open(&key, b"", &ct).unwrap(), b"");
    }

    #[test]
    fn wrong_key_fails() {
        let ct = seal(&[1u8; 32], b"", b"msg", &mut rng());
        assert_eq!(
            open(&[2u8; 32], b"", &ct).unwrap_err(),
            CryptoError::AuthenticationFailed
        );
    }

    #[test]
    fn wrong_aad_fails() {
        let key = [3u8; 32];
        let ct = seal(&key, b"u=1|v=2", b"msg", &mut rng());
        assert!(open(&key, b"u=2|v=1", &ct).is_err());
    }

    #[test]
    fn tampering_detected_everywhere() {
        let key = [4u8; 32];
        let ct = seal(&key, b"a", b"some plaintext payload", &mut rng());
        for i in 0..ct.len() {
            let mut bad = ct.clone();
            bad[i] ^= 0x80;
            assert!(open(&key, b"a", &bad).is_err(), "byte {i} flip accepted");
        }
    }

    #[test]
    fn truncation_detected() {
        let key = [5u8; 32];
        let ct = seal(&key, b"", b"0123456789", &mut rng());
        for keep in 0..ct.len() {
            assert!(open(&key, b"", &ct[..keep]).is_err());
        }
    }

    #[test]
    fn nonce_randomization_gives_distinct_ciphertexts() {
        let key = [6u8; 32];
        let mut r = rng();
        let c1 = seal(&key, b"", b"same message", &mut r);
        let c2 = seal(&key, b"", b"same message", &mut r);
        assert_ne!(c1, c2);
        assert_eq!(open(&key, b"", &c1).unwrap(), open(&key, b"", &c2).unwrap());
    }
}
