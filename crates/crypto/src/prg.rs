//! Seeded, forkable pseudorandom generator on top of ChaCha20.
//!
//! SecAgg and XNoise both derive long pseudorandom vectors from short seeds:
//! pairwise masks `PRG(s_{u,v})`, self-masks `PRG(b_u)`, and XNoise's
//! per-component noise streams `PRG(g_{u,k})`. A 32-byte seed plus a domain
//! string deterministically identifies each stream, so a server that later
//! learns a seed (directly or via Shamir reconstruction) regenerates exactly
//! the same vector the client used.

use crate::chacha20::{KeyStream, KEY_LEN, NONCE_LEN};
use crate::hmac::hkdf;

/// Seed type for all PRG streams (256 bits).
pub type Seed = [u8; 32];

/// A deterministic pseudorandom stream identified by `(seed, domain)`.
///
/// # Examples
///
/// ```
/// use dordis_crypto::prg::Prg;
///
/// let mut a = Prg::new(&[42u8; 32], b"mask");
/// let mut b = Prg::new(&[42u8; 32], b"mask");
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone)]
pub struct Prg {
    stream: KeyStream,
}

impl Prg {
    /// Creates a PRG for `seed` in the given domain.
    ///
    /// Distinct domains yield computationally independent streams for the
    /// same seed, which lets one seed safely back several vectors (e.g. a
    /// mask and its consistency check).
    #[must_use]
    pub fn new(seed: &Seed, domain: &[u8]) -> Self {
        // Derive (key, nonce) from the seed so that the raw seed is never
        // used directly as cipher key material across domains.
        let okm = hkdf(b"dordis.prg", seed, domain, KEY_LEN + NONCE_LEN);
        let mut key = [0u8; KEY_LEN];
        let mut nonce = [0u8; NONCE_LEN];
        key.copy_from_slice(&okm[..KEY_LEN]);
        nonce.copy_from_slice(&okm[KEY_LEN..]);
        Prg {
            stream: KeyStream::new(key, nonce),
        }
    }

    /// Creates a PRG for `seed` positioned at element `elem_offset` of
    /// the stream's `u64` sequence — the state [`Prg::new`] would reach
    /// after `elem_offset` calls to [`Prg::next_u64`], for the cost of
    /// at most one ChaCha20 block.
    ///
    /// This is the compute plane's entry point for partial mask
    /// expansion: a worker unmasking chunk `c` seeks every mask stream
    /// to the chunk's first element instead of generating (and
    /// discarding) the prefix, so parallelizing by chunk costs no extra
    /// PRG work.
    #[must_use]
    pub fn new_at(seed: &Seed, domain: &[u8], elem_offset: usize) -> Self {
        let mut prg = Prg::new(seed, domain);
        prg.stream.seek(elem_offset as u64 * 8);
        prg
    }

    /// Derives a fresh sub-seed; the returned seed is independent of the
    /// stream output consumed so far.
    #[must_use]
    pub fn fork(seed: &Seed, domain: &[u8], index: u64) -> Seed {
        let mut info = Vec::with_capacity(domain.len() + 8);
        info.extend_from_slice(domain);
        info.extend_from_slice(&index.to_le_bytes());
        let okm = hkdf(b"dordis.prg.fork", seed, &info, 32);
        let mut out = [0u8; 32];
        out.copy_from_slice(&okm);
        out
    }

    /// Fills `out` with pseudorandom bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        self.stream.fill(out);
    }

    /// Returns the next pseudorandom `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.stream.next_u64()
    }

    /// Returns the next pseudorandom `u32`.
    pub fn next_u32(&mut self) -> u32 {
        self.stream.next_u32()
    }

    /// Returns a uniform value in `[0, bound)` by rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        // Rejection sampling: reject the final partial range so the result
        // is exactly uniform.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fills `out` with uniform values modulo `2^bits` (masks in `Z_{2^b}`).
    ///
    /// This is the mask-expansion primitive of SecAgg: each model-update
    /// coordinate lives in `Z_{2^b}` and pairwise masks must be uniform
    /// there so that `p_{u,v} + p_{v,u} = 0 (mod 2^b)`.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `bits > 64`.
    pub fn fill_mod2b(&mut self, bits: u32, out: &mut [u64]) {
        assert!(bits >= 1 && bits <= 64, "bits must be in 1..=64");
        let mask = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        // Batched keystream generation (whole ChaCha20 blocks straight
        // into `out`), then one masking pass — bit-equal to the legacy
        // per-`next_u64` path, which consumed exactly 8 bytes per
        // element from the same stream position.
        self.stream.fill_u64(out);
        for v in out.iter_mut() {
            *v &= mask;
        }
    }

    /// Returns a fresh random seed drawn from this stream.
    pub fn gen_seed(&mut self) -> Seed {
        let mut s = [0u8; 32];
        self.fill_bytes(&mut s);
        s
    }
}

/// Generates a random seed from an OS-independent entropy source.
///
/// Uses the `rand` crate's thread RNG; suitable for simulation and tests.
/// Deployments with stronger requirements can substitute entropy and use
/// [`Prg::fork`] for everything downstream.
#[must_use]
pub fn random_seed<R: rand::Rng>(rng: &mut R) -> Seed {
    let mut s = [0u8; 32];
    rng.fill(&mut s[..]);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed_and_domain() {
        let seed = [1u8; 32];
        let mut a = Prg::new(&seed, b"x");
        let mut b = Prg::new(&seed, b"x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn domains_separate_streams() {
        let seed = [2u8; 32];
        let mut a = Prg::new(&seed, b"mask");
        let mut b = Prg::new(&seed, b"noise");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_is_deterministic_and_indexed() {
        let seed = [3u8; 32];
        assert_eq!(Prg::fork(&seed, b"d", 0), Prg::fork(&seed, b"d", 0));
        assert_ne!(Prg::fork(&seed, b"d", 0), Prg::fork(&seed, b"d", 1));
        assert_ne!(Prg::fork(&seed, b"d", 0), Prg::fork(&seed, b"e", 0));
    }

    #[test]
    fn below_respects_bound() {
        let mut p = Prg::new(&[4u8; 32], b"t");
        for bound in [1u64, 2, 3, 7, 100, 1 << 20, u64::MAX] {
            for _ in 0..50 {
                assert!(p.next_u64_below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut p = Prg::new(&[5u8; 32], b"t");
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[p.next_u64_below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "count {c} far from uniform");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut p = Prg::new(&[6u8; 32], b"t");
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = p.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.47..0.53).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn mod2b_respects_bit_width() {
        let mut p = Prg::new(&[7u8; 32], b"t");
        let mut out = vec![0u64; 256];
        p.fill_mod2b(20, &mut out);
        assert!(out.iter().all(|&v| v < (1 << 20)));
        // With 256 draws of 20-bit values, the top bits should be exercised.
        assert!(out.iter().any(|&v| v >= (1 << 19)));
        let mut out64 = vec![0u64; 8];
        p.fill_mod2b(64, &mut out64);
    }

    #[test]
    fn new_at_matches_skipped_stream() {
        let seed = [9u8; 32];
        for offset in [0usize, 1, 5, 8, 13, 100] {
            let mut skipped = Prg::new(&seed, b"seek");
            for _ in 0..offset {
                skipped.next_u64();
            }
            let mut seeked = Prg::new_at(&seed, b"seek", offset);
            for i in 0..32 {
                assert_eq!(
                    seeked.next_u64(),
                    skipped.next_u64(),
                    "offset {offset}, word {i}"
                );
            }
        }
    }

    #[test]
    fn mod2b_suffix_equals_offset_expansion() {
        // The slice-expansion property the per-chunk unmask jobs rely
        // on: expanding from element k reproduces the tail of the
        // whole-vector expansion exactly.
        let seed = [10u8; 32];
        let bits = 20;
        let mut whole = vec![0u64; 50];
        Prg::new(&seed, b"chunk").fill_mod2b(bits, &mut whole);
        for k in [0usize, 1, 7, 8, 9, 31] {
            let mut tail = vec![0u64; 50 - k];
            Prg::new_at(&seed, b"chunk", k).fill_mod2b(bits, &mut tail);
            assert_eq!(tail, whole[k..], "offset {k}");
        }
    }

    #[test]
    fn masks_cancel_mod2b() {
        // Two parties expanding the same seed produce identical masks, so
        // (x + m) - m = x in Z_2^b — the core SecAgg cancellation property.
        let seed = [8u8; 32];
        let bits = 24u32;
        let modulus = 1u64 << bits;
        let mut mu = vec![0u64; 100];
        Prg::new(&seed, b"pair").fill_mod2b(bits, &mut mu);
        let mut mv = vec![0u64; 100];
        Prg::new(&seed, b"pair").fill_mod2b(bits, &mut mv);
        for (a, b) in mu.iter().zip(mv.iter()) {
            assert_eq!((a + (modulus - b)) % modulus, 0);
        }
    }
}
