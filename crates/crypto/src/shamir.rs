//! Shamir t-of-n secret sharing over GF(256).
//!
//! SecAgg backs up each client's masking key `s^SK_u` and self-mask seed
//! `b_u` with Shamir shares so the server can recover them after dropout;
//! XNoise additionally shares the noise-component seeds `g_{u,k}` (paper
//! §3.2, "dropout-resilient noise removal with secret sharing"). Secrets
//! here are byte strings (32-byte seeds), shared bytewise: each byte is the
//! constant term of an independent random polynomial of degree `t-1` over
//! GF(256), evaluated at nonzero points `x = 1..=n`.

use rand::Rng;

use crate::CryptoError;

/// GF(256) log/antilog tables for the AES polynomial x^8+x^4+x^3+x+1
/// (0x11b) with generator 3.
struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for i in 0..255 {
            exp[i] = x as u8;
            log[x as usize] = i as u8;
            // Multiply x by the generator 3 = x + 1: x*3 = (x<<1) ^ x.
            x = (x << 1) ^ x;
            if x & 0x100 != 0 {
                x ^= 0x11b;
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

#[inline]
fn gf_mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

#[inline]
fn gf_inv(a: u8) -> u8 {
    debug_assert_ne!(a, 0, "zero has no inverse in GF(256)");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

#[inline]
fn gf_div(a: u8, b: u8) -> u8 {
    gf_mul(a, gf_inv(b))
}

/// One share of a secret: the evaluation point and per-byte evaluations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Share {
    /// Evaluation point `x` (nonzero).
    pub x: u8,
    /// Polynomial evaluations, one byte per secret byte.
    pub y: Vec<u8>,
}

/// Splits `secret` into `n` shares, any `t` of which reconstruct it.
///
/// # Errors
///
/// Returns an error if `t == 0`, `t > n`, or `n > 255`.
pub fn share<R: Rng>(
    secret: &[u8],
    t: usize,
    n: usize,
    rng: &mut R,
) -> Result<Vec<Share>, CryptoError> {
    if t == 0 || t > n {
        return Err(CryptoError::InconsistentShares("threshold out of range"));
    }
    if n > 255 {
        return Err(CryptoError::InconsistentShares("at most 255 shares"));
    }
    let mut shares: Vec<Share> = (1..=n as u8)
        .map(|x| Share {
            x,
            y: vec![0u8; secret.len()],
        })
        .collect();
    // One random polynomial per secret byte; coefficient 0 is the secret.
    let mut coeffs = vec![0u8; t];
    for (byte_idx, &s) in secret.iter().enumerate() {
        coeffs[0] = s;
        for c in coeffs.iter_mut().skip(1) {
            *c = rng.gen();
        }
        for sh in shares.iter_mut() {
            // Horner evaluation at x = sh.x.
            let mut acc = 0u8;
            for &c in coeffs.iter().rev() {
                acc = gf_mul(acc, sh.x) ^ c;
            }
            sh.y[byte_idx] = acc;
        }
    }
    Ok(shares)
}

/// Reconstructs the secret from at least `t` shares via Lagrange
/// interpolation at `x = 0`.
///
/// # Errors
///
/// Fails if fewer than `t` shares are supplied, shares disagree on length,
/// or evaluation points repeat.
pub fn reconstruct(shares: &[Share], t: usize) -> Result<Vec<u8>, CryptoError> {
    if shares.len() < t {
        return Err(CryptoError::NotEnoughShares {
            needed: t,
            got: shares.len(),
        });
    }
    let used = &shares[..t];
    let len = used[0].y.len();
    for s in used {
        if s.y.len() != len {
            return Err(CryptoError::InconsistentShares("length mismatch"));
        }
        if s.x == 0 {
            return Err(CryptoError::InconsistentShares("x must be nonzero"));
        }
    }
    for i in 0..used.len() {
        for j in (i + 1)..used.len() {
            if used[i].x == used[j].x {
                return Err(CryptoError::InconsistentShares("duplicate x"));
            }
        }
    }
    // Lagrange basis at zero: L_i(0) = prod_{j != i} x_j / (x_j - x_i);
    // in GF(2^8) subtraction is XOR.
    let mut basis = vec![0u8; t];
    for i in 0..t {
        let mut num = 1u8;
        let mut den = 1u8;
        for j in 0..t {
            if i == j {
                continue;
            }
            num = gf_mul(num, used[j].x);
            den = gf_mul(den, used[j].x ^ used[i].x);
        }
        basis[i] = gf_div(num, den);
    }
    let mut secret = vec![0u8; len];
    for (i, sh) in used.iter().enumerate() {
        for (b, &y) in secret.iter_mut().zip(sh.y.iter()) {
            *b ^= gf_mul(basis[i], y);
        }
    }
    Ok(secret)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    #[test]
    fn gf_mul_known_values() {
        assert_eq!(gf_mul(0, 5), 0);
        assert_eq!(gf_mul(1, 5), 5);
        assert_eq!(gf_mul(2, 2), 4);
        // 0x53 * 0xCA = 0x01 in AES field (classic inverse pair).
        assert_eq!(gf_mul(0x53, 0xca), 0x01);
    }

    #[test]
    fn gf_inverse_all_nonzero() {
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "a={a}");
        }
    }

    #[test]
    fn share_and_reconstruct_exact_threshold() {
        let secret = b"the noise seed g_{u,k} for k=3!!";
        let shares = share(secret, 3, 5, &mut rng()).unwrap();
        assert_eq!(shares.len(), 5);
        let got = reconstruct(&shares[..3], 3).unwrap();
        assert_eq!(got, secret);
        let got2 = reconstruct(&shares[2..5], 3).unwrap();
        assert_eq!(got2, secret);
    }

    #[test]
    fn any_t_subset_reconstructs() {
        let secret = [0xde, 0xad, 0xbe, 0xef];
        let shares = share(&secret, 2, 4, &mut rng()).unwrap();
        for i in 0..4 {
            for j in (i + 1)..4 {
                let subset = vec![shares[i].clone(), shares[j].clone()];
                assert_eq!(reconstruct(&subset, 2).unwrap(), secret);
            }
        }
    }

    #[test]
    fn too_few_shares_fails() {
        let shares = share(b"secret", 3, 5, &mut rng()).unwrap();
        let err = reconstruct(&shares[..2], 3).unwrap_err();
        assert_eq!(err, CryptoError::NotEnoughShares { needed: 3, got: 2 });
    }

    #[test]
    fn fewer_than_t_shares_reveal_nothing_about_equal_prefix() {
        // Shares of two different secrets with the same randomness stream
        // should differ, but a single share must not determine the secret:
        // verify that many secrets are consistent with one fixed share by
        // checking shares of distinct secrets can collide in x but differ
        // in y (statistical smoke test of the hiding property).
        let s1 = share(b"AAAA", 2, 3, &mut rng()).unwrap();
        let s2 = share(b"BBBB", 2, 3, &mut rng()).unwrap();
        assert_eq!(s1[0].x, s2[0].x);
        // With t=2, a lone share's y values are uniform; they should not
        // simply equal the secret bytes.
        assert_ne!(s1[0].y, b"AAAA".to_vec());
    }

    #[test]
    fn duplicate_shares_rejected() {
        let shares = share(b"s", 2, 3, &mut rng()).unwrap();
        let dup = vec![shares[0].clone(), shares[0].clone()];
        assert!(matches!(
            reconstruct(&dup, 2),
            Err(CryptoError::InconsistentShares(_))
        ));
    }

    #[test]
    fn bad_parameters_rejected() {
        assert!(share(b"s", 0, 3, &mut rng()).is_err());
        assert!(share(b"s", 4, 3, &mut rng()).is_err());
        assert!(share(b"s", 2, 256, &mut rng()).is_err());
    }

    #[test]
    fn empty_secret_roundtrips() {
        let shares = share(b"", 2, 3, &mut rng()).unwrap();
        assert_eq!(reconstruct(&shares[..2], 2).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn one_of_one_sharing() {
        let shares = share(b"solo", 1, 1, &mut rng()).unwrap();
        assert_eq!(reconstruct(&shares, 1).unwrap(), b"solo");
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            secret in proptest::collection::vec(any::<u8>(), 0..64),
            t in 1usize..6,
            extra in 0usize..6,
            seed in any::<u64>(),
        ) {
            let n = t + extra;
            let mut r = rand::rngs::StdRng::seed_from_u64(seed);
            let shares = share(&secret, t, n, &mut r).unwrap();
            // Reconstruct from the *last* t shares to vary the subset.
            let got = reconstruct(&shares[n - t..], t).unwrap();
            prop_assert_eq!(got, secret);
        }

        #[test]
        fn prop_reconstruct_ignores_share_order(
            secret in proptest::collection::vec(any::<u8>(), 1..32),
            seed in any::<u64>(),
        ) {
            let mut r = rand::rngs::StdRng::seed_from_u64(seed);
            let shares = share(&secret, 3, 5, &mut r).unwrap();
            let mut rev: Vec<Share> = shares[..3].to_vec();
            rev.reverse();
            prop_assert_eq!(reconstruct(&rev, 3).unwrap(), secret);
        }
    }
}
