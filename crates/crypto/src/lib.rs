//! From-scratch cryptographic primitives for the Dordis federated-learning
//! framework.
//!
//! Dordis (EuroSys '24) instantiates its secure-aggregation and XNoise
//! protocols on a small set of standard primitives: a hash, a MAC/KDF, a
//! stream cipher used as a PRG, Diffie–Hellman key agreement, a signature
//! scheme, Shamir secret sharing, and an IND-CPA + INT-CTXT authenticated
//! encryption scheme. No third-party crypto crates are available offline, so
//! this crate implements all of them directly:
//!
//! - [`sha256`]: FIPS 180-4 SHA-256.
//! - [`hmac`]: RFC 2104 HMAC-SHA256 and RFC 5869 HKDF.
//! - [`chacha20`]: RFC 8439 ChaCha20 block function and stream cipher.
//! - [`prg`]: a seeded, forkable pseudorandom generator on top of ChaCha20.
//! - [`field`]: arithmetic in GF(2^255 - 19) with 51-bit limbs.
//! - [`x25519`]: RFC 7748 Montgomery-ladder Diffie–Hellman.
//! - [`ed25519`]: edwards25519 group operations and a Schnorr signature
//!   scheme over that group (UF-CMA under standard assumptions).
//! - [`shamir`]: t-of-n Shamir secret sharing over GF(256).
//! - [`aead`]: encrypt-then-MAC authenticated encryption
//!   (ChaCha20 + HMAC-SHA256).
//! - [`ka`]: the key-agreement wrapper used by SecAgg (`KA.gen`/`KA.agree`
//!   composed with a hash, as in the paper's Figure 5).
//! - [`vrf`]: an EC-VRF over edwards25519 for verifiable client sampling
//!   (the paper's §7 extension).
//!
//! The implementations favour clarity over speed, but all hot paths used by
//! the aggregation protocols (hashing, ChaCha20 mask expansion) are efficient
//! enough to aggregate multi-million-parameter updates in the benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod chacha20;
pub mod ed25519;
pub mod field;
pub mod hmac;
pub mod ka;
pub mod prg;
pub mod sha256;
pub mod shamir;
pub mod vrf;
pub mod x25519;

/// Errors produced by cryptographic operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// An authenticated-encryption ciphertext failed integrity verification.
    AuthenticationFailed,
    /// A ciphertext or encoded object was too short or malformed.
    Malformed(&'static str),
    /// A signature did not verify under the given public key.
    BadSignature,
    /// A point encoding was not on the curve or not canonical.
    InvalidPoint,
    /// Secret-sharing reconstruction was attempted with too few shares.
    NotEnoughShares {
        /// Shares required by the scheme threshold.
        needed: usize,
        /// Shares actually supplied.
        got: usize,
    },
    /// Shares passed to reconstruction were inconsistent (e.g. duplicate x).
    InconsistentShares(&'static str),
}

impl core::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CryptoError::AuthenticationFailed => write!(f, "authentication failed"),
            CryptoError::Malformed(what) => write!(f, "malformed input: {what}"),
            CryptoError::BadSignature => write!(f, "bad signature"),
            CryptoError::InvalidPoint => write!(f, "invalid curve point"),
            CryptoError::NotEnoughShares { needed, got } => {
                write!(f, "not enough shares: needed {needed}, got {got}")
            }
            CryptoError::InconsistentShares(what) => write!(f, "inconsistent shares: {what}"),
        }
    }
}

impl std::error::Error for CryptoError {}

/// Constant-time byte-slice equality.
///
/// Used wherever secret-dependent comparisons occur (MAC tags, signatures).
/// The comparison touches every byte of both slices regardless of where the
/// first difference occurs.
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_agrees_with_eq() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(!ct_eq(b"", b"x"));
    }

    #[test]
    fn errors_display() {
        let e = CryptoError::NotEnoughShares { needed: 3, got: 1 };
        assert!(e.to_string().contains("needed 3"));
        assert_eq!(
            CryptoError::AuthenticationFailed.to_string(),
            "authentication failed"
        );
    }
}
