//! The `KA` key-agreement wrapper used by SecAgg.
//!
//! The paper's Figure 5 uses "the Diffie–Hellman key agreement composed
//! with a secure hash function": `KA.gen` produces an x25519 keypair and
//! `KA.agree` hashes the raw DH output so the result is a uniform 32-byte
//! key suitable for both AEAD keys and PRG seeds.

use rand::Rng;

use crate::hmac::hkdf;
use crate::x25519;

/// A key-agreement keypair.
#[derive(Clone)]
pub struct KeyPair {
    /// The secret (clamped) scalar.
    pub secret: x25519::SecretKey,
    /// The public u-coordinate.
    pub public: x25519::PublicKey,
}

impl KeyPair {
    /// Generates a fresh keypair (`KA.gen`).
    #[must_use]
    pub fn generate<R: Rng>(rng: &mut R) -> KeyPair {
        let mut secret = [0u8; 32];
        rng.fill(&mut secret[..]);
        let public = x25519::public_key(&secret);
        KeyPair { secret, public }
    }

    /// Derives a keypair deterministically from a seed (useful for
    /// reproducible protocol tests).
    #[must_use]
    pub fn from_seed(seed: &[u8; 32]) -> KeyPair {
        let okm = hkdf(b"dordis.ka.keygen", seed, b"sk", 32);
        let mut secret = [0u8; 32];
        secret.copy_from_slice(&okm);
        let public = x25519::public_key(&secret);
        KeyPair { secret, public }
    }

    /// Computes the shared key with a peer (`KA.agree`): the DH output
    /// passed through HKDF along with both public keys.
    ///
    /// Including both public keys (sorted so the two ends agree) binds the
    /// derived key to this specific pair, the standard defence against
    /// unknown-key-share confusions.
    #[must_use]
    pub fn agree(&self, their_public: &x25519::PublicKey) -> [u8; 32] {
        let raw = x25519::shared_secret(&self.secret, their_public);
        let (lo, hi) = if self.public <= *their_public {
            (self.public, *their_public)
        } else {
            (*their_public, self.public)
        };
        let mut info = Vec::with_capacity(64);
        info.extend_from_slice(&lo);
        info.extend_from_slice(&hi);
        let okm = hkdf(b"dordis.ka.agree", &raw, &info, 32);
        let mut out = [0u8; 32];
        out.copy_from_slice(&okm);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn agreement_is_symmetric() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = KeyPair::generate(&mut rng);
        let b = KeyPair::generate(&mut rng);
        assert_eq!(a.agree(&b.public), b.agree(&a.public));
    }

    #[test]
    fn distinct_pairs_distinct_keys() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let a = KeyPair::generate(&mut rng);
        let b = KeyPair::generate(&mut rng);
        let c = KeyPair::generate(&mut rng);
        assert_ne!(a.agree(&b.public), a.agree(&c.public));
        assert_ne!(a.agree(&b.public), b.agree(&c.public));
    }

    #[test]
    fn from_seed_is_deterministic() {
        let k1 = KeyPair::from_seed(&[5u8; 32]);
        let k2 = KeyPair::from_seed(&[5u8; 32]);
        assert_eq!(k1.public, k2.public);
        assert_eq!(k1.secret, k2.secret);
        let k3 = KeyPair::from_seed(&[6u8; 32]);
        assert_ne!(k1.public, k3.public);
    }

    #[test]
    fn agreed_key_differs_from_raw_dh() {
        let a = KeyPair::from_seed(&[1u8; 32]);
        let b = KeyPair::from_seed(&[2u8; 32]);
        let raw = x25519::shared_secret(&a.secret, &b.public);
        assert_ne!(a.agree(&b.public), raw);
    }
}
