//! RFC 7748 x25519 Diffie–Hellman over curve25519.
//!
//! This is the `KA` primitive of SecAgg's Figure 5: each client generates a
//! keypair, advertises the public key through the server, and agrees on a
//! shared secret with every other client. The Montgomery ladder operates on
//! u-coordinates only.

use crate::field::Fe;

/// An x25519 secret key (clamped scalar).
pub type SecretKey = [u8; 32];
/// An x25519 public key (u-coordinate).
pub type PublicKey = [u8; 32];

/// The base point u-coordinate (u = 9).
pub const BASE_POINT: PublicKey = {
    let mut b = [0u8; 32];
    b[0] = 9;
    b
};

/// Clamps a 32-byte scalar per RFC 7748.
#[must_use]
pub fn clamp(mut scalar: [u8; 32]) -> [u8; 32] {
    scalar[0] &= 248;
    scalar[31] &= 127;
    scalar[31] |= 64;
    scalar
}

/// Conditionally swaps two field elements (data-independent of `swap`).
fn cswap(swap: u64, a: &mut Fe, b: &mut Fe) {
    let mask = 0u64.wrapping_sub(swap);
    for i in 0..5 {
        let t = mask & (a.0[i] ^ b.0[i]);
        a.0[i] ^= t;
        b.0[i] ^= t;
    }
}

/// Scalar multiplication on the Montgomery curve: returns `u([scalar] P_u)`.
///
/// The scalar is clamped internally, matching the RFC 7748 X25519 function.
#[must_use]
pub fn x25519(scalar: &[u8; 32], u: &[u8; 32]) -> [u8; 32] {
    let k = clamp(*scalar);
    let x1 = Fe::from_bytes(u);
    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = 0u64;
    let a24 = Fe::from_u64(121_665);

    for t in (0..255).rev() {
        let k_t = ((k[t / 8] >> (t % 8)) & 1) as u64;
        swap ^= k_t;
        cswap(swap, &mut x2, &mut x3);
        cswap(swap, &mut z2, &mut z3);
        swap = k_t;

        let a = x2.add(z2);
        let aa = a.square();
        let b = x2.sub(z2);
        let bb = b.square();
        let e = aa.sub(bb);
        let c = x3.add(z3);
        let d = x3.sub(z3);
        let da = d.mul(a);
        let cb = c.mul(b);
        x3 = da.add(cb).square();
        z3 = x1.mul(da.sub(cb).square());
        x2 = aa.mul(bb);
        z2 = e.mul(aa.add(a24.mul(e)));
    }
    cswap(swap, &mut x2, &mut x3);
    cswap(swap, &mut z2, &mut z3);
    x2.mul(z2.invert()).to_bytes()
}

/// Derives the public key for a secret key.
#[must_use]
pub fn public_key(secret: &SecretKey) -> PublicKey {
    x25519(secret, &BASE_POINT)
}

/// Computes the raw shared secret between `our_secret` and `their_public`.
///
/// Callers should hash the result before use as key material (see
/// [`crate::ka`]), per standard DH hygiene.
#[must_use]
pub fn shared_secret(our_secret: &SecretKey, their_public: &PublicKey) -> [u8; 32] {
    x25519(our_secret, their_public)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex32(s: &str) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..32 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    #[test]
    fn rfc7748_vector_1() {
        // RFC 7748 §5.2 test vector 1.
        let scalar = unhex32("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let u = unhex32("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        let out = x25519(&scalar, &u);
        assert_eq!(
            hex(&out),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    #[test]
    fn rfc7748_dh_vectors() {
        // RFC 7748 §6.1: Alice/Bob DH exchange.
        let a_sk = unhex32("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let b_sk = unhex32("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
        let a_pk = public_key(&a_sk);
        let b_pk = public_key(&b_sk);
        assert_eq!(
            hex(&a_pk),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
        );
        assert_eq!(
            hex(&b_pk),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
        );
        let k_ab = shared_secret(&a_sk, &b_pk);
        let k_ba = shared_secret(&b_sk, &a_pk);
        assert_eq!(k_ab, k_ba);
        assert_eq!(
            hex(&k_ab),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
        );
    }

    #[test]
    fn dh_commutes_for_random_keys() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..8 {
            let mut a = [0u8; 32];
            let mut b = [0u8; 32];
            rng.fill(&mut a[..]);
            rng.fill(&mut b[..]);
            let ka = shared_secret(&a, &public_key(&b));
            let kb = shared_secret(&b, &public_key(&a));
            assert_eq!(ka, kb);
            assert_ne!(ka, [0u8; 32]);
        }
    }

    #[test]
    fn distinct_secrets_distinct_publics() {
        let a = [1u8; 32];
        let b = [2u8; 32];
        assert_ne!(public_key(&a), public_key(&b));
    }

    #[test]
    fn clamping_is_idempotent() {
        let s = [0xffu8; 32];
        assert_eq!(clamp(clamp(s)), clamp(s));
        let c = clamp(s);
        assert_eq!(c[0] & 7, 0);
        assert_eq!(c[31] & 0x80, 0);
        assert_eq!(c[31] & 0x40, 0x40);
    }
}
