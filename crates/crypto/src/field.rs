//! Arithmetic in GF(2^255 - 19), the base field of curve25519.
//!
//! Elements are stored as five 51-bit limbs (`value = Σ limb_i · 2^(51·i)`),
//! the classic "donna" representation: limb products fit comfortably in
//! `u128` and the prime's shape lets the carry out of the top limb wrap
//! around multiplied by 19. Both [`crate::x25519`] and [`crate::ed25519`]
//! build on this module.

/// Low 51 bits.
const MASK51: u64 = (1u64 << 51) - 1;

/// An element of GF(2^255 - 19).
///
/// Internally limbs may be up to a few bits above 51 between reductions;
/// all public constructors and operations return values with limbs < 2^52,
/// which every operation accepts as input.
#[derive(Clone, Copy, Debug)]
pub struct Fe(pub(crate) [u64; 5]);

impl Fe {
    /// The additive identity.
    pub const ZERO: Fe = Fe([0, 0, 0, 0, 0]);
    /// The multiplicative identity.
    pub const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    /// Builds an element from a small integer.
    #[must_use]
    pub const fn from_u64(v: u64) -> Fe {
        Fe([v & MASK51, (v >> 51) & MASK51, 0, 0, 0])
    }

    /// Decodes 32 little-endian bytes; the top bit (bit 255) is ignored,
    /// matching RFC 7748 field-element decoding.
    #[must_use]
    pub fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load = |i: usize| -> u64 {
            let mut v = 0u64;
            for j in 0..8 {
                v |= (bytes[i + j] as u64) << (8 * j);
            }
            v
        };
        let lo0 = load(0);
        let lo1 = load(6) >> 3;
        let lo2 = load(12) >> 6;
        let lo3 = load(19) >> 1;
        let lo4 = load(24) >> 12;
        Fe([
            lo0 & MASK51,
            lo1 & MASK51,
            lo2 & MASK51,
            lo3 & MASK51,
            lo4 & MASK51,
        ])
    }

    /// Encodes the element canonically as 32 little-endian bytes.
    #[must_use]
    pub fn to_bytes(self) -> [u8; 32] {
        let mut t = self.reduce_limbs().0;
        // After reduce_limbs all limbs are < 2^51, so the value is in
        // [0, 2^255). At most one subtraction of p is needed: the value is
        // >= p = 2^255 - 19 iff limbs 1..4 are maximal and limb 0 >= 2^51-19.
        let ge_p = t[1] == MASK51
            && t[2] == MASK51
            && t[3] == MASK51
            && t[4] == MASK51
            && t[0] >= MASK51 - 18;
        if ge_p {
            t[0] -= MASK51 - 18;
            t[1] = 0;
            t[2] = 0;
            t[3] = 0;
            t[4] = 0;
        }
        let mut out = [0u8; 32];
        let mut acc: u128 = 0;
        let mut acc_bits = 0u32;
        let mut idx = 0usize;
        for (i, &limb) in t.iter().enumerate() {
            acc |= (limb as u128) << acc_bits;
            acc_bits += 51;
            while acc_bits >= 8 && idx < 32 {
                out[idx] = (acc & 0xff) as u8;
                acc >>= 8;
                acc_bits -= 8;
                idx += 1;
            }
            let _ = i;
        }
        while idx < 32 {
            out[idx] = (acc & 0xff) as u8;
            acc >>= 8;
            idx += 1;
        }
        out
    }

    /// Propagates carries so that every limb is < 2^51.
    fn reduce_limbs(self) -> Fe {
        let mut t = self.0;
        // Two passes handle any input produced by this module's operations.
        for _ in 0..2 {
            let mut carry;
            carry = t[0] >> 51;
            t[0] &= MASK51;
            t[1] += carry;
            carry = t[1] >> 51;
            t[1] &= MASK51;
            t[2] += carry;
            carry = t[2] >> 51;
            t[2] &= MASK51;
            t[3] += carry;
            carry = t[3] >> 51;
            t[3] &= MASK51;
            t[4] += carry;
            carry = t[4] >> 51;
            t[4] &= MASK51;
            t[0] += 19 * carry;
        }
        let carry = t[0] >> 51;
        t[0] &= MASK51;
        t[1] += carry;
        Fe(t)
    }

    /// Field addition.
    #[must_use]
    pub fn add(self, rhs: Fe) -> Fe {
        Fe([
            self.0[0] + rhs.0[0],
            self.0[1] + rhs.0[1],
            self.0[2] + rhs.0[2],
            self.0[3] + rhs.0[3],
            self.0[4] + rhs.0[4],
        ])
        .reduce_limbs()
    }

    /// Field subtraction.
    #[must_use]
    pub fn sub(self, rhs: Fe) -> Fe {
        // Add 2p (in limb form) before subtracting so limbs stay positive.
        let two_p0 = 2 * (MASK51 - 18); // 2 * (2^51 - 19)
        let two_pi = 2 * MASK51; // 2 * (2^51 - 1)
        Fe([
            self.0[0] + two_p0 - rhs.0[0],
            self.0[1] + two_pi - rhs.0[1],
            self.0[2] + two_pi - rhs.0[2],
            self.0[3] + two_pi - rhs.0[3],
            self.0[4] + two_pi - rhs.0[4],
        ])
        .reduce_limbs()
    }

    /// Field negation.
    #[must_use]
    pub fn neg(self) -> Fe {
        Fe::ZERO.sub(self)
    }

    /// Field multiplication.
    #[must_use]
    pub fn mul(self, rhs: Fe) -> Fe {
        let a = &self.0;
        let b = &rhs.0;
        let b1_19 = b[1] * 19;
        let b2_19 = b[2] * 19;
        let b3_19 = b[3] * 19;
        let b4_19 = b[4] * 19;
        let m = |x: u64, y: u64| -> u128 { (x as u128) * (y as u128) };
        let r0 = m(a[0], b[0]) + m(a[1], b4_19) + m(a[2], b3_19) + m(a[3], b2_19) + m(a[4], b1_19);
        let mut r1 =
            m(a[0], b[1]) + m(a[1], b[0]) + m(a[2], b4_19) + m(a[3], b3_19) + m(a[4], b2_19);
        let mut r2 =
            m(a[0], b[2]) + m(a[1], b[1]) + m(a[2], b[0]) + m(a[3], b4_19) + m(a[4], b3_19);
        let mut r3 = m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]) + m(a[4], b4_19);
        let mut r4 = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);
        // Carry propagation over u128 accumulators.
        let mut t = [0u64; 5];
        let mut carry: u128;
        carry = r0 >> 51;
        t[0] = (r0 as u64) & MASK51;
        r1 += carry;
        carry = r1 >> 51;
        t[1] = (r1 as u64) & MASK51;
        r2 += carry;
        carry = r2 >> 51;
        t[2] = (r2 as u64) & MASK51;
        r3 += carry;
        carry = r3 >> 51;
        t[3] = (r3 as u64) & MASK51;
        r4 += carry;
        carry = r4 >> 51;
        t[4] = (r4 as u64) & MASK51;
        t[0] += (carry as u64) * 19;
        Fe(t).reduce_limbs()
    }

    /// Field squaring.
    #[must_use]
    pub fn square(self) -> Fe {
        self.mul(self)
    }

    /// Raises the element to an arbitrary power given as 32 little-endian
    /// bytes (most-significant bit first internally).
    #[must_use]
    pub fn pow_bytes_le(self, exp: &[u8; 32]) -> Fe {
        let mut result = Fe::ONE;
        for bit in (0..256).rev() {
            result = result.square();
            if (exp[bit / 8] >> (bit % 8)) & 1 == 1 {
                result = result.mul(self);
            }
        }
        result
    }

    /// Multiplicative inverse via Fermat: `self^(p-2)`.
    ///
    /// Returns zero for zero input (callers must handle that case).
    #[must_use]
    pub fn invert(self) -> Fe {
        // p - 2 = 2^255 - 21, little-endian bytes.
        let mut exp = [0xffu8; 32];
        exp[0] = 0xeb; // 0xed - 2
        exp[31] = 0x7f;
        self.pow_bytes_le(&exp)
    }

    /// `self^((p-5)/8)`, used for square-root extraction on the curve.
    #[must_use]
    pub fn pow_p58(self) -> Fe {
        // (p - 5) / 8 = (2^255 - 24) / 8 = 2^252 - 3, little-endian bytes.
        let mut exp = [0xffu8; 32];
        exp[0] = 0xfd;
        exp[31] = 0x0f;
        self.pow_bytes_le(&exp)
    }

    /// Returns `sqrt(-1)` in the field (one of the two roots).
    #[must_use]
    pub fn sqrt_m1() -> Fe {
        // 2^((p-1)/4) is a square root of -1 because 2 is a non-square
        // mod p. (p-1)/4 = (2^255 - 20) / 4 = 2^253 - 5.
        let mut exp = [0xffu8; 32];
        exp[0] = 0xfb;
        exp[31] = 0x1f;
        Fe::from_u64(2).pow_bytes_le(&exp)
    }

    /// True if the element is zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.to_bytes() == [0u8; 32]
    }

    /// Canonical equality (comparing reduced encodings).
    #[must_use]
    pub fn equals(self, other: Fe) -> bool {
        self.to_bytes() == other.to_bytes()
    }

    /// Returns the low bit of the canonical encoding (the "sign" of x in
    /// Edwards-point compression).
    #[must_use]
    pub fn parity(self) -> u8 {
        self.to_bytes()[0] & 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fe(v: u64) -> Fe {
        Fe::from_u64(v)
    }

    #[test]
    fn add_sub_small() {
        assert!(fe(5).add(fe(7)).equals(fe(12)));
        assert!(fe(12).sub(fe(7)).equals(fe(5)));
        assert!(fe(0).sub(fe(1)).add(fe(1)).equals(Fe::ZERO));
    }

    #[test]
    fn mul_small() {
        assert!(fe(6).mul(fe(7)).equals(fe(42)));
        assert!(fe(1 << 30)
            .mul(fe(1 << 30))
            .equals(Fe([0, 1 << 9, 0, 0, 0])));
    }

    #[test]
    fn p_is_zero() {
        // p = 2^255 - 19 encoded as limbs must reduce to zero.
        let p = Fe([MASK51 - 18, MASK51, MASK51, MASK51, MASK51]);
        assert!(p.is_zero());
        assert_eq!(p.to_bytes(), [0u8; 32]);
    }

    #[test]
    fn p_plus_one_is_one() {
        let p1 = Fe([MASK51 - 17, MASK51, MASK51, MASK51, MASK51]);
        assert!(p1.equals(Fe::ONE));
    }

    #[test]
    fn bytes_roundtrip() {
        let mut b = [0u8; 32];
        for (i, v) in b.iter_mut().enumerate() {
            *v = (i as u8).wrapping_mul(37).wrapping_add(1);
        }
        b[31] &= 0x7f; // Keep below 2^255 so the encoding is canonical.
        let x = Fe::from_bytes(&b);
        assert_eq!(x.to_bytes(), b);
    }

    #[test]
    fn inverse_of_two() {
        let inv2 = fe(2).invert();
        assert!(inv2.mul(fe(2)).equals(Fe::ONE));
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let i = Fe::sqrt_m1();
        assert!(i.square().equals(Fe::ONE.neg()));
    }

    #[test]
    fn pow_p58_consistency() {
        // For v a nonzero square, v^((p-5)/8) * v relates to sqrt(v):
        // check the standard identity (v^((p-5)/8))^8 * v^3 is v^((p-5)+3)
        // indirectly via invert: x^(p-2) * x == 1.
        let x = fe(123_456_789);
        assert!(x.invert().mul(x).equals(Fe::ONE));
        let y = x.pow_p58();
        // y = x^((p-5)/8) => y^8 = x^(p-5) = x^(-4) (Fermat), so y^8*x^4 = 1.
        let y8 = y.square().square().square();
        let x4 = x.square().square();
        assert!(y8.mul(x4).equals(Fe::ONE));
    }

    proptest! {
        #[test]
        fn prop_add_commutes(a in any::<u64>(), b in any::<u64>()) {
            prop_assert!(fe(a).add(fe(b)).equals(fe(b).add(fe(a))));
        }

        #[test]
        fn prop_mul_commutes(a in any::<u64>(), b in any::<u64>()) {
            prop_assert!(fe(a).mul(fe(b)).equals(fe(b).mul(fe(a))));
        }

        #[test]
        fn prop_distributive(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
            let lhs = fe(a).mul(fe(b).add(fe(c)));
            let rhs = fe(a).mul(fe(b)).add(fe(a).mul(fe(c)));
            prop_assert!(lhs.equals(rhs));
        }

        #[test]
        fn prop_sub_add_roundtrip(a in any::<u64>(), b in any::<u64>()) {
            prop_assert!(fe(a).sub(fe(b)).add(fe(b)).equals(fe(a)));
        }

        #[test]
        fn prop_invert(a in 1u64..) {
            prop_assert!(fe(a).invert().mul(fe(a)).equals(Fe::ONE));
        }

        #[test]
        fn prop_bytes_roundtrip(bytes in any::<[u8; 32]>()) {
            let mut b = bytes;
            b[31] &= 0x7f;
            // Skip the few non-canonical encodings in [p, 2^255).
            let x = Fe::from_bytes(&b);
            let rt = Fe::from_bytes(&x.to_bytes());
            prop_assert!(x.equals(rt));
        }

        #[test]
        fn prop_random_field_mul_assoc(a in any::<[u8;32]>(), b in any::<[u8;32]>(), c in any::<[u8;32]>()) {
            let (mut a, mut b, mut c) = (a, b, c);
            a[31] &= 0x7f; b[31] &= 0x7f; c[31] &= 0x7f;
            let (x, y, z) = (Fe::from_bytes(&a), Fe::from_bytes(&b), Fe::from_bytes(&c));
            prop_assert!(x.mul(y).mul(z).equals(x.mul(y.mul(z))));
        }
    }
}
