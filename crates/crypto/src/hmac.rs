//! RFC 2104 HMAC-SHA256 and RFC 5869 HKDF.
//!
//! HMAC is the message-authentication primitive behind the crate's
//! encrypt-then-MAC [`crate::aead`] scheme; HKDF derives independent
//! sub-keys (encryption key, MAC key, per-purpose PRG seeds) from
//! Diffie–Hellman shared secrets.

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the SHA-256 block size are first hashed, per RFC 2104.
#[must_use]
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Incremental HMAC-SHA256 context.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates an HMAC context keyed with `key`.
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = crate::sha256::sha256(key);
            key_block[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            outer_key: opad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the 32-byte tag.
    #[must_use]
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// RFC 5869 HKDF-Extract: `PRK = HMAC(salt, ikm)`.
#[must_use]
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256(salt, ikm)
}

/// RFC 5869 HKDF-Expand producing `out.len()` bytes (at most 255 * 32).
///
/// # Panics
///
/// Panics if more than `255 * 32` output bytes are requested, per the RFC
/// limit; callers in this crate only ever derive a few keys at once.
pub fn hkdf_expand(prk: &[u8; DIGEST_LEN], info: &[u8], out: &mut [u8]) {
    assert!(out.len() <= 255 * DIGEST_LEN, "HKDF output too long");
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    let mut offset = 0usize;
    while offset < out.len() {
        let mut mac = HmacSha256::new(prk);
        mac.update(&t);
        mac.update(info);
        mac.update(&[counter]);
        let block = mac.finalize();
        let take = (out.len() - offset).min(DIGEST_LEN);
        out[offset..offset + take].copy_from_slice(&block[..take]);
        t = block.to_vec();
        offset += take;
        counter = counter.wrapping_add(1);
    }
}

/// One-call HKDF (extract + expand).
#[must_use]
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    let prk = hkdf_extract(salt, ikm);
    let mut out = vec![0u8; len];
    hkdf_expand(&prk, info, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rfc4231_case1() {
        let key = vec![0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3_long_data() {
        let key = vec![0xaa; 20];
        let data = vec![0xdd; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn long_key_is_hashed() {
        // Keys longer than one block must behave as HMAC(H(key), ...).
        let long_key = vec![0x42u8; 100];
        let hashed = crate::sha256::sha256(&long_key);
        assert_eq!(hmac_sha256(&long_key, b"m"), hmac_sha256(&hashed, b"m"));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut mac = HmacSha256::new(b"key");
        mac.update(b"part one ");
        mac.update(b"part two");
        assert_eq!(mac.finalize(), hmac_sha256(b"key", b"part one part two"));
    }

    #[test]
    fn rfc5869_case1() {
        let ikm = vec![0x0b; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let okm = hkdf(&salt, &ikm, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn hkdf_prefix_property() {
        // Shorter outputs are prefixes of longer ones for the same inputs.
        let long = hkdf(b"salt", b"ikm", b"info", 64);
        let short = hkdf(b"salt", b"ikm", b"info", 16);
        assert_eq!(&long[..16], &short[..]);
    }

    #[test]
    fn hkdf_info_separates_keys() {
        assert_ne!(
            hkdf(b"s", b"ikm", b"enc", 32),
            hkdf(b"s", b"ikm", b"mac", 32)
        );
    }
}
