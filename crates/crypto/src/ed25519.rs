//! The edwards25519 group and a Schnorr signature scheme over it.
//!
//! SecAgg's malicious-setting extensions (and XNoise's dropout-understating
//! prevention, §3.3 of the paper) require a UF-CMA signature scheme backed
//! by a PKI. This module implements the twisted Edwards curve
//! `-x^2 + y^2 = 1 + d x^2 y^2` over GF(2^255-19) with the standard
//! complete addition formulas, plus an Ed25519-*style* Schnorr signature.
//!
//! The signature differs from RFC 8032 only in its hash: SHA-512 is not
//! available in this dependency-free crate, so nonces and challenges are
//! derived with SHA-256/HKDF domain-separated constructions. The scheme is
//! the textbook Schnorr signature over a prime-order group, unforgeable
//! under the discrete-log assumption in the random-oracle model; it is not
//! wire-compatible with RFC 8032.

use std::sync::OnceLock;

use crate::field::Fe;
use crate::hmac::hkdf;
use crate::sha256::sha256_concat;
use crate::CryptoError;

// ---------------------------------------------------------------------------
// Scalar arithmetic modulo the group order l.
// ---------------------------------------------------------------------------

/// The group order `l = 2^252 + 27742317777372353535851937790883648493`,
/// little-endian u64 limbs.
const L: [u64; 4] = [
    0x5812_631a_5cf5_d3ed,
    0x14de_f9de_a2f7_9cd6,
    0x0000_0000_0000_0000,
    0x1000_0000_0000_0000,
];

/// A scalar modulo the group order `l`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scalar(pub(crate) [u64; 4]);

fn lt256(a: &[u64; 4], b: &[u64; 4]) -> bool {
    for i in (0..4).rev() {
        if a[i] != b[i] {
            return a[i] < b[i];
        }
    }
    false
}

fn sub256(a: &[u64; 4], b: &[u64; 4]) -> [u64; 4] {
    let mut out = [0u64; 4];
    let mut borrow = 0u64;
    for i in 0..4 {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        out[i] = d2;
        borrow = (b1 as u64) | (b2 as u64);
    }
    out
}

fn add256(a: &[u64; 4], b: &[u64; 4]) -> ([u64; 4], bool) {
    let mut out = [0u64; 4];
    let mut carry = 0u64;
    for i in 0..4 {
        let (s1, c1) = a[i].overflowing_add(b[i]);
        let (s2, c2) = s1.overflowing_add(carry);
        out[i] = s2;
        carry = (c1 as u64) | (c2 as u64);
    }
    (out, carry != 0)
}

impl Scalar {
    /// The zero scalar.
    pub const ZERO: Scalar = Scalar([0, 0, 0, 0]);
    /// The scalar one.
    pub const ONE: Scalar = Scalar([1, 0, 0, 0]);

    /// Builds a scalar from a small integer.
    #[must_use]
    pub fn from_u64(v: u64) -> Scalar {
        Scalar([v, 0, 0, 0])
    }

    /// Parses 32 little-endian bytes, reducing modulo `l`.
    #[must_use]
    pub fn from_bytes_mod_l(bytes: &[u8; 32]) -> Scalar {
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(bytes);
        Scalar::from_wide_bytes(&wide)
    }

    /// Parses 32 little-endian bytes, rejecting values `>= l`.
    pub fn from_canonical_bytes(bytes: &[u8; 32]) -> Result<Scalar, CryptoError> {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let mut v = 0u64;
            for j in 0..8 {
                v |= (bytes[8 * i + j] as u64) << (8 * j);
            }
            limbs[i] = v;
        }
        if lt256(&limbs, &L) {
            Ok(Scalar(limbs))
        } else {
            Err(CryptoError::Malformed("non-canonical scalar"))
        }
    }

    /// Reduces 64 little-endian bytes modulo `l` (for hash-to-scalar).
    #[must_use]
    pub fn from_wide_bytes(bytes: &[u8; 64]) -> Scalar {
        // Horner over bytes: acc = acc * 256 + byte, all mod l. 64 bytes of
        // work with 256-bit adds — not fast, but signing is off the hot path.
        let mut acc = Scalar::ZERO;
        for &byte in bytes.iter().rev() {
            // acc *= 256 via 8 doublings.
            for _ in 0..8 {
                acc = acc.add(acc);
            }
            acc = acc.add(Scalar::from_u64(byte as u64));
        }
        acc
    }

    /// Serializes as 32 little-endian bytes.
    #[must_use]
    pub fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[8 * i..8 * i + 8].copy_from_slice(&self.0[i].to_le_bytes());
        }
        out
    }

    /// Addition modulo `l`.
    #[must_use]
    pub fn add(self, rhs: Scalar) -> Scalar {
        // Both inputs < l < 2^253, so the sum fits in 256 bits (no carry).
        let (sum, carry) = add256(&self.0, &rhs.0);
        debug_assert!(!carry);
        if lt256(&sum, &L) {
            Scalar(sum)
        } else {
            Scalar(sub256(&sum, &L))
        }
    }

    /// Subtraction modulo `l`.
    #[must_use]
    pub fn sub(self, rhs: Scalar) -> Scalar {
        if lt256(&self.0, &rhs.0) {
            let (shifted, _) = add256(&self.0, &L);
            Scalar(sub256(&shifted, &rhs.0))
        } else {
            Scalar(sub256(&self.0, &rhs.0))
        }
    }

    /// Multiplication modulo `l` (schoolbook 256x256 then bitwise reduce).
    #[must_use]
    pub fn mul(self, rhs: Scalar) -> Scalar {
        // 512-bit product.
        let mut prod = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let t = prod[i + j] as u128 + (self.0[i] as u128) * (rhs.0[j] as u128) + carry;
                prod[i + j] = t as u64;
                carry = t >> 64;
            }
            prod[i + 4] = carry as u64;
        }
        // Reduce 512 bits mod l via double-and-add from the top bit down.
        let mut acc = Scalar::ZERO;
        for bit in (0..512).rev() {
            acc = acc.add(acc);
            if (prod[bit / 64] >> (bit % 64)) & 1 == 1 {
                acc = acc.add(Scalar::ONE);
            }
        }
        acc
    }

    /// True if the scalar is zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == [0, 0, 0, 0]
    }
}

// ---------------------------------------------------------------------------
// Edwards points.
// ---------------------------------------------------------------------------

/// A point on edwards25519 in extended homogeneous coordinates
/// `(X : Y : Z : T)` with `x = X/Z`, `y = Y/Z`, `T = XY/Z`.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    x: Fe,
    y: Fe,
    z: Fe,
    t: Fe,
}

struct Constants {
    d: Fe,
    d2: Fe,
    base: Point,
}

fn constants() -> &'static Constants {
    static CONSTS: OnceLock<Constants> = OnceLock::new();
    CONSTS.get_or_init(|| {
        // d = -121665/121666 mod p.
        let d = Fe::from_u64(121_665)
            .neg()
            .mul(Fe::from_u64(121_666).invert());
        let d2 = d.add(d);
        // Base point: y = 4/5, x the even square root.
        let y = Fe::from_u64(4).mul(Fe::from_u64(5).invert());
        let base = Point::from_y_and_sign(y, 0, d).expect("base point must decompress");
        Constants { d, d2, base }
    })
}

impl Point {
    /// The identity element (0, 1).
    #[must_use]
    pub fn identity() -> Point {
        Point {
            x: Fe::ZERO,
            y: Fe::ONE,
            z: Fe::ONE,
            t: Fe::ZERO,
        }
    }

    /// The standard base point `B` (y = 4/5, even x).
    #[must_use]
    pub fn base() -> Point {
        constants().base
    }

    /// Recovers a point from `y` and the sign (parity) of `x`.
    fn from_y_and_sign(y: Fe, sign: u8, d: Fe) -> Result<Point, CryptoError> {
        // x^2 = (y^2 - 1) / (d y^2 + 1).
        let yy = y.square();
        let u = yy.sub(Fe::ONE);
        let v = d.mul(yy).add(Fe::ONE);
        // Candidate x = u v^3 (u v^7)^((p-5)/8).
        let v3 = v.square().mul(v);
        let v7 = v3.square().mul(v);
        let mut x = u.mul(v3).mul(u.mul(v7).pow_p58());
        let vxx = v.mul(x.square());
        if vxx.equals(u) {
            // Root found.
        } else if vxx.equals(u.neg()) {
            x = x.mul(Fe::sqrt_m1());
        } else {
            return Err(CryptoError::InvalidPoint);
        }
        if x.is_zero() && sign == 1 {
            return Err(CryptoError::InvalidPoint);
        }
        if x.parity() != sign {
            x = x.neg();
        }
        Ok(Point {
            x,
            y,
            z: Fe::ONE,
            t: x.mul(y),
        })
    }

    /// Point addition (complete unified formula "add-2008-hwcd-3" for
    /// a = -1 twisted Edwards curves; also valid for doubling).
    #[must_use]
    pub fn add(&self, other: &Point) -> Point {
        let c = constants();
        let a = self.y.sub(self.x).mul(other.y.sub(other.x));
        let b = self.y.add(self.x).mul(other.y.add(other.x));
        let cc = self.t.mul(c.d2).mul(other.t);
        let dd = self.z.add(self.z).mul(other.z);
        let e = b.sub(a);
        let f = dd.sub(cc);
        let g = dd.add(cc);
        let h = b.add(a);
        Point {
            x: e.mul(f),
            y: g.mul(h),
            z: f.mul(g),
            t: e.mul(h),
        }
    }

    /// Point doubling.
    #[must_use]
    pub fn double(&self) -> Point {
        self.add(self)
    }

    /// Point negation.
    #[must_use]
    pub fn neg(&self) -> Point {
        Point {
            x: self.x.neg(),
            y: self.y,
            z: self.z,
            t: self.t.neg(),
        }
    }

    /// Scalar multiplication by an arbitrary 256-bit (little-endian) scalar.
    #[must_use]
    pub fn mul_bytes(&self, scalar: &[u8; 32]) -> Point {
        let mut acc = Point::identity();
        for bit in (0..256).rev() {
            acc = acc.double();
            if (scalar[bit / 8] >> (bit % 8)) & 1 == 1 {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// Scalar multiplication by a reduced scalar.
    #[must_use]
    pub fn mul_scalar(&self, scalar: &Scalar) -> Point {
        self.mul_bytes(&scalar.to_bytes())
    }

    /// Compresses to 32 bytes: `y` with the parity of `x` in bit 255.
    #[must_use]
    pub fn compress(&self) -> [u8; 32] {
        let zinv = self.z.invert();
        let x = self.x.mul(zinv);
        let y = self.y.mul(zinv);
        let mut out = y.to_bytes();
        out[31] |= x.parity() << 7;
        out
    }

    /// Decompresses a 32-byte encoding, validating the curve equation.
    pub fn decompress(bytes: &[u8; 32]) -> Result<Point, CryptoError> {
        let sign = bytes[31] >> 7;
        let mut y_bytes = *bytes;
        y_bytes[31] &= 0x7f;
        let y = Fe::from_bytes(&y_bytes);
        // Reject non-canonical y (>= p).
        if y.to_bytes() != y_bytes {
            return Err(CryptoError::InvalidPoint);
        }
        Point::from_y_and_sign(y, sign, constants().d)
    }

    /// True if this is the identity element.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        // x == 0 and y == z.
        self.x.is_zero() && self.y.equals(self.z)
    }

    /// Equality in the group (projective coordinates compared cross-wise).
    #[must_use]
    pub fn equals(&self, other: &Point) -> bool {
        // x1/z1 == x2/z2  <=>  x1 z2 == x2 z1, same for y.
        self.x.mul(other.z).equals(other.x.mul(self.z))
            && self.y.mul(other.z).equals(other.y.mul(self.z))
    }

    /// Checks the affine curve equation `-x^2 + y^2 = 1 + d x^2 y^2`.
    #[must_use]
    pub fn on_curve(&self) -> bool {
        let zinv = self.z.invert();
        let x = self.x.mul(zinv);
        let y = self.y.mul(zinv);
        let xx = x.square();
        let yy = y.square();
        let lhs = yy.sub(xx);
        let rhs = Fe::ONE.add(constants().d.mul(xx).mul(yy));
        lhs.equals(rhs)
    }
}

// ---------------------------------------------------------------------------
// Schnorr signatures.
// ---------------------------------------------------------------------------

/// A signing key (seed plus cached expansion).
#[derive(Clone)]
pub struct SigningKey {
    scalar: Scalar,
    prefix: [u8; 32],
    public: VerifyingKey,
}

/// A verifying (public) key: a compressed group element.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VerifyingKey(pub [u8; 32]);

/// A detached signature: `R || s` (64 bytes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Signature(pub [u8; 64]);

/// Domain-separated 64-byte hash used for nonces and challenges.
fn hash64(parts: &[&[u8]]) -> [u8; 64] {
    let mut h0 = vec![0u8];
    let mut h1 = vec![1u8];
    for p in parts {
        h0.extend_from_slice(p);
        h1.extend_from_slice(p);
    }
    let mut out = [0u8; 64];
    out[..32].copy_from_slice(&sha256_concat(&[&h0]));
    out[32..].copy_from_slice(&sha256_concat(&[&h1]));
    out
}

impl SigningKey {
    /// Derives a signing key deterministically from a 32-byte seed.
    #[must_use]
    pub fn from_seed(seed: &[u8; 32]) -> SigningKey {
        let expanded = hkdf(b"dordis.sig.keygen", seed, b"expand", 64);
        let mut scalar_bytes = [0u8; 32];
        scalar_bytes.copy_from_slice(&expanded[..32]);
        // Ed25519-style clamping keeps the scalar in the prime-order
        // subgroup's coset structure; reduce mod l for scalar arithmetic.
        scalar_bytes[0] &= 248;
        scalar_bytes[31] &= 127;
        scalar_bytes[31] |= 64;
        let scalar = Scalar::from_bytes_mod_l(&scalar_bytes);
        let mut prefix = [0u8; 32];
        prefix.copy_from_slice(&expanded[32..]);
        let public = VerifyingKey(Point::base().mul_scalar(&scalar).compress());
        SigningKey {
            scalar,
            prefix,
            public,
        }
    }

    /// Returns the verifying key.
    #[must_use]
    pub fn verifying_key(&self) -> VerifyingKey {
        self.public
    }

    /// Signs a message (deterministic nonce, per Ed25519 practice).
    #[must_use]
    pub fn sign(&self, message: &[u8]) -> Signature {
        let r = Scalar::from_wide_bytes(&hash64(&[b"nonce", &self.prefix, message]));
        // A zero nonce would leak the key; derive an alternative in the
        // (cryptographically unreachable) case.
        let r = if r.is_zero() { Scalar::ONE } else { r };
        let r_point = Point::base().mul_scalar(&r).compress();
        let k = Scalar::from_wide_bytes(&hash64(&[b"chal", &r_point, &self.public.0, message]));
        let s = r.add(k.mul(self.scalar));
        let mut sig = [0u8; 64];
        sig[..32].copy_from_slice(&r_point);
        sig[32..].copy_from_slice(&s.to_bytes());
        Signature(sig)
    }
}

impl VerifyingKey {
    /// Verifies `signature` over `message`.
    ///
    /// Checks `s·B == R + k·A` with `k = H(R, A, message)`, rejecting
    /// non-canonical scalars and invalid point encodings.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), CryptoError> {
        let mut r_bytes = [0u8; 32];
        r_bytes.copy_from_slice(&signature.0[..32]);
        let mut s_bytes = [0u8; 32];
        s_bytes.copy_from_slice(&signature.0[32..]);
        let s = Scalar::from_canonical_bytes(&s_bytes).map_err(|_| CryptoError::BadSignature)?;
        let r_point = Point::decompress(&r_bytes).map_err(|_| CryptoError::BadSignature)?;
        let a_point = Point::decompress(&self.0).map_err(|_| CryptoError::BadSignature)?;
        let k = Scalar::from_wide_bytes(&hash64(&[b"chal", &r_bytes, &self.0, message]));
        let lhs = Point::base().mul_scalar(&s);
        let rhs = r_point.add(&a_point.mul_scalar(&k));
        if lhs.equals(&rhs) {
            Ok(())
        } else {
            Err(CryptoError::BadSignature)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_point_is_on_curve() {
        assert!(Point::base().on_curve());
        // y coordinate must be exactly 4/5.
        let zinv = Point::base().z.invert();
        let y = Point::base().y.mul(zinv);
        assert!(y.equals(Fe::from_u64(4).mul(Fe::from_u64(5).invert())));
    }

    #[test]
    fn base_point_has_order_l() {
        let l_bytes = Scalar(L).to_bytes();
        let lb = Point::base().mul_bytes(&l_bytes);
        assert!(lb.is_identity());
        // ...and no smaller power-of-two related order: l/2 is not integral,
        // but check that 2B, 4B, 8B are all non-identity.
        let b2 = Point::base().double();
        let b4 = b2.double();
        let b8 = b4.double();
        assert!(!b2.is_identity() && !b4.is_identity() && !b8.is_identity());
    }

    #[test]
    fn addition_matches_doubling() {
        let b = Point::base();
        assert!(b.add(&b).equals(&b.double()));
        let b3a = b.add(&b).add(&b);
        let b3b = b.double().add(&b);
        assert!(b3a.equals(&b3b));
    }

    #[test]
    fn identity_laws() {
        let b = Point::base();
        assert!(b.add(&Point::identity()).equals(&b));
        assert!(b.add(&b.neg()).is_identity());
        assert!(Point::identity().on_curve());
    }

    #[test]
    fn scalar_mul_distributes() {
        let b = Point::base();
        let p5 = b.mul_scalar(&Scalar::from_u64(5));
        let p2 = b.mul_scalar(&Scalar::from_u64(2));
        let p3 = b.mul_scalar(&Scalar::from_u64(3));
        assert!(p2.add(&p3).equals(&p5));
        let p6a = b.mul_scalar(&Scalar::from_u64(6));
        let p6b = p2.mul_scalar(&Scalar::from_u64(3));
        assert!(p6a.equals(&p6b));
    }

    #[test]
    fn compress_roundtrip() {
        for k in [1u64, 2, 3, 7, 31, 1000, 99_999] {
            let p = Point::base().mul_scalar(&Scalar::from_u64(k));
            let c = p.compress();
            let q = Point::decompress(&c).unwrap();
            assert!(p.equals(&q), "k={k}");
            assert_eq!(q.compress(), c);
        }
    }

    #[test]
    fn decompress_rejects_garbage() {
        // Most random strings are not valid y-coordinates of curve points —
        // at least some of these must fail; all that succeed must roundtrip.
        let mut failures = 0;
        for i in 0..16u8 {
            let mut b = [i; 32];
            b[31] &= 0x7f;
            match Point::decompress(&b) {
                Ok(p) => assert!(p.on_curve()),
                Err(_) => failures += 1,
            }
        }
        assert!(failures > 0);
    }

    #[test]
    fn scalar_arithmetic_basics() {
        let a = Scalar::from_u64(7);
        let b = Scalar::from_u64(5);
        assert_eq!(a.add(b), Scalar::from_u64(12));
        assert_eq!(a.sub(b), Scalar::from_u64(2));
        assert_eq!(b.sub(a), Scalar::ZERO.sub(Scalar::from_u64(2)));
        assert_eq!(a.mul(b), Scalar::from_u64(35));
    }

    #[test]
    fn scalar_l_reduces_to_zero() {
        let l_bytes = Scalar(L).to_bytes();
        assert_eq!(Scalar::from_bytes_mod_l(&l_bytes), Scalar::ZERO);
        assert!(Scalar::from_canonical_bytes(&l_bytes).is_err());
    }

    #[test]
    fn scalar_wide_reduction_matches_mod_l() {
        // 2^256 mod l computed two ways.
        let mut wide = [0u8; 64];
        wide[32] = 1; // 2^256
        let via_wide = Scalar::from_wide_bytes(&wide);
        // 2^255 mod l, doubled.
        let mut half = [0u8; 32];
        half[31] = 0x80;
        let via_half = Scalar::from_bytes_mod_l(&half);
        assert_eq!(via_half.add(via_half), via_wide);
    }

    #[test]
    fn sign_verify_roundtrip() {
        let sk = SigningKey::from_seed(&[42u8; 32]);
        let vk = sk.verifying_key();
        let sig = sk.sign(b"round 7 dropout outcome");
        assert!(vk.verify(b"round 7 dropout outcome", &sig).is_ok());
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let sk = SigningKey::from_seed(&[1u8; 32]);
        let sig = sk.sign(b"message A");
        assert!(sk.verifying_key().verify(b"message B", &sig).is_err());
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let sk1 = SigningKey::from_seed(&[1u8; 32]);
        let sk2 = SigningKey::from_seed(&[2u8; 32]);
        let sig = sk1.sign(b"m");
        assert!(sk2.verifying_key().verify(b"m", &sig).is_err());
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let sk = SigningKey::from_seed(&[3u8; 32]);
        let mut sig = sk.sign(b"m");
        sig.0[0] ^= 1;
        assert!(sk.verifying_key().verify(b"m", &sig).is_err());
        let mut sig2 = sk.sign(b"m");
        sig2.0[63] ^= 0x40;
        assert!(sk.verifying_key().verify(b"m", &sig2).is_err());
    }

    #[test]
    fn signatures_are_deterministic() {
        let sk = SigningKey::from_seed(&[9u8; 32]);
        assert_eq!(sk.sign(b"x"), sk.sign(b"x"));
        assert_ne!(sk.sign(b"x"), sk.sign(b"y"));
    }
}
