//! A verifiable random function (VRF) over edwards25519.
//!
//! Dordis §7 proposes VRF-based client sampling to stop a malicious
//! server from cherry-picking colluding clients: each client evaluates
//! `VRF(sk, round)` itself, participates iff the output falls below the
//! sampling threshold, and everyone can verify everyone else's
//! participation proof.
//!
//! The construction is the classic EC-VRF shape:
//!
//! - hash-to-curve `H = h2c(input)` (try-and-increment, cofactor-cleared),
//! - `Γ = x·H` where `x` is the secret scalar, `PK = x·B`,
//! - a Chaum–Pedersen DLEQ proof that `log_B(PK) = log_H(Γ)`,
//! - output `β = SHA-256("out" ‖ Γ)`.
//!
//! Proofs are non-interactive via Fiat–Shamir. Like the signature module,
//! this is a from-scratch implementation that is *not* wire-compatible
//! with RFC 9381, but carries the same uniqueness + pseudorandomness
//! structure.

use crate::ed25519::{Point, Scalar};
use crate::hmac::hkdf;
use crate::sha256::sha256_concat;
use crate::CryptoError;

/// VRF secret key.
#[derive(Clone)]
pub struct VrfSecretKey {
    scalar: Scalar,
    public: VrfPublicKey,
}

/// VRF public key (compressed point).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VrfPublicKey(pub [u8; 32]);

/// A VRF evaluation proof: `(Γ, c, s)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VrfProof {
    /// The VRF point `Γ = x·H` (compressed).
    pub gamma: [u8; 32],
    /// Fiat–Shamir challenge.
    pub c: [u8; 32],
    /// Response scalar.
    pub s: [u8; 32],
}

impl VrfSecretKey {
    /// Derives a VRF key from a 32-byte seed.
    #[must_use]
    pub fn from_seed(seed: &[u8; 32]) -> VrfSecretKey {
        let okm = hkdf(b"dordis.vrf.keygen", seed, b"scalar", 64);
        let mut wide = [0u8; 64];
        wide.copy_from_slice(&okm);
        let scalar = Scalar::from_wide_bytes(&wide);
        let scalar = if scalar.is_zero() {
            Scalar::ONE
        } else {
            scalar
        };
        let public = VrfPublicKey(Point::base().mul_scalar(&scalar).compress());
        VrfSecretKey { scalar, public }
    }

    /// The corresponding public key.
    #[must_use]
    pub fn public_key(&self) -> VrfPublicKey {
        self.public
    }

    /// Evaluates the VRF: returns `(output, proof)`.
    #[must_use]
    pub fn evaluate(&self, input: &[u8]) -> ([u8; 32], VrfProof) {
        let h = hash_to_curve(input);
        let gamma = h.mul_scalar(&self.scalar);
        // DLEQ proof: k random (derived deterministically), commitments
        // k·B and k·H, challenge c = H(B, H, PK, Γ, k·B, k·H),
        // response s = k + c·x.
        let k = {
            let mut material = self.scalar.to_bytes().to_vec();
            material.extend_from_slice(input);
            let okm = hkdf(b"dordis.vrf.nonce", &material, b"k", 64);
            let mut wide = [0u8; 64];
            wide.copy_from_slice(&okm);
            let k = Scalar::from_wide_bytes(&wide);
            if k.is_zero() {
                Scalar::ONE
            } else {
                k
            }
        };
        let kb = Point::base().mul_scalar(&k).compress();
        let kh = h.mul_scalar(&k).compress();
        let gamma_c = gamma.compress();
        let c_bytes = challenge(&self.public.0, &h.compress(), &gamma_c, &kb, &kh);
        let c = Scalar::from_bytes_mod_l(&c_bytes);
        let s = k.add(c.mul(self.scalar));
        let output = vrf_output(&gamma_c);
        (
            output,
            VrfProof {
                gamma: gamma_c,
                c: c_bytes,
                s: s.to_bytes(),
            },
        )
    }
}

impl VrfPublicKey {
    /// Verifies a proof and returns the VRF output.
    ///
    /// # Errors
    ///
    /// Fails on invalid points or a non-verifying DLEQ proof.
    pub fn verify(&self, input: &[u8], proof: &VrfProof) -> Result<[u8; 32], CryptoError> {
        let pk = Point::decompress(&self.0)?;
        let gamma = Point::decompress(&proof.gamma)?;
        let h = hash_to_curve(input);
        let c = Scalar::from_bytes_mod_l(&proof.c);
        let s = Scalar::from_canonical_bytes(&proof.s)?;
        // Recompute commitments: k·B = s·B − c·PK, k·H = s·H − c·Γ.
        let kb = Point::base()
            .mul_scalar(&s)
            .add(&pk.mul_scalar(&c).neg())
            .compress();
        let kh = h.mul_scalar(&s).add(&gamma.mul_scalar(&c).neg()).compress();
        let expected_c = challenge(&self.0, &h.compress(), &proof.gamma, &kb, &kh);
        if expected_c != proof.c {
            return Err(CryptoError::BadSignature);
        }
        Ok(vrf_output(&proof.gamma))
    }
}

/// Try-and-increment hash-to-curve, cofactor-cleared to the prime-order
/// subgroup.
fn hash_to_curve(input: &[u8]) -> Point {
    for ctr in 0u32..=255 {
        let digest = sha256_concat(&[b"dordis.vrf.h2c", &ctr.to_le_bytes(), input]);
        if let Ok(p) = Point::decompress(&digest) {
            // Multiply by the cofactor 8 to land in the prime-order group;
            // reject if that gives the identity (tiny-order input point).
            let cleared = p.double().double().double();
            if !cleared.is_identity() {
                return cleared;
            }
        }
    }
    // Statistically unreachable (each attempt succeeds w.p. ~1/2).
    unreachable!("hash_to_curve failed for all counters");
}

fn challenge(
    pk: &[u8; 32],
    h: &[u8; 32],
    gamma: &[u8; 32],
    kb: &[u8; 32],
    kh: &[u8; 32],
) -> [u8; 32] {
    sha256_concat(&[b"dordis.vrf.chal", pk, h, gamma, kb, kh])
}

fn vrf_output(gamma: &[u8; 32]) -> [u8; 32] {
    sha256_concat(&[b"dordis.vrf.out", gamma])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_verify_roundtrip() {
        let sk = VrfSecretKey::from_seed(&[1u8; 32]);
        let (out, proof) = sk.evaluate(b"round 42");
        let verified = sk.public_key().verify(b"round 42", &proof).unwrap();
        assert_eq!(out, verified);
    }

    #[test]
    fn output_is_deterministic_and_input_sensitive() {
        let sk = VrfSecretKey::from_seed(&[2u8; 32]);
        let (o1, _) = sk.evaluate(b"round 1");
        let (o1b, _) = sk.evaluate(b"round 1");
        let (o2, _) = sk.evaluate(b"round 2");
        assert_eq!(o1, o1b);
        assert_ne!(o1, o2);
    }

    #[test]
    fn different_keys_different_outputs() {
        let a = VrfSecretKey::from_seed(&[3u8; 32]);
        let b = VrfSecretKey::from_seed(&[4u8; 32]);
        assert_ne!(a.evaluate(b"x").0, b.evaluate(b"x").0);
    }

    #[test]
    fn wrong_input_rejected() {
        let sk = VrfSecretKey::from_seed(&[5u8; 32]);
        let (_, proof) = sk.evaluate(b"round 7");
        assert!(sk.public_key().verify(b"round 8", &proof).is_err());
    }

    #[test]
    fn wrong_key_rejected() {
        let a = VrfSecretKey::from_seed(&[6u8; 32]);
        let b = VrfSecretKey::from_seed(&[7u8; 32]);
        let (_, proof) = a.evaluate(b"m");
        assert!(b.public_key().verify(b"m", &proof).is_err());
    }

    #[test]
    fn tampered_proof_rejected() {
        let sk = VrfSecretKey::from_seed(&[8u8; 32]);
        let (_, proof) = sk.evaluate(b"m");
        let pk = sk.public_key();
        let mut bad = proof.clone();
        bad.c[0] ^= 1;
        assert!(pk.verify(b"m", &bad).is_err());
        let mut bad = proof.clone();
        bad.s[0] ^= 1;
        assert!(pk.verify(b"m", &bad).is_err());
        let mut bad = proof;
        bad.gamma[0] ^= 1;
        assert!(pk.verify(b"m", &bad).is_err());
    }

    #[test]
    fn forged_gamma_cannot_verify() {
        // An adversarial server trying to claim a different output needs a
        // different Γ, which breaks the DLEQ proof.
        let sk = VrfSecretKey::from_seed(&[9u8; 32]);
        let other = VrfSecretKey::from_seed(&[10u8; 32]);
        let (_, honest) = sk.evaluate(b"m");
        let (_, theirs) = other.evaluate(b"m");
        let forged = VrfProof {
            gamma: theirs.gamma,
            c: honest.c,
            s: honest.s,
        };
        assert!(sk.public_key().verify(b"m", &forged).is_err());
    }

    #[test]
    fn outputs_are_roughly_uniform() {
        // First byte of outputs over many inputs should spread.
        let sk = VrfSecretKey::from_seed(&[11u8; 32]);
        let mut low = 0usize;
        let n = 200;
        for i in 0..n {
            let (out, _) = sk.evaluate(&[i as u8]);
            if out[0] < 128 {
                low += 1;
            }
        }
        assert!((60..140).contains(&low), "low-half count {low}");
    }

    #[test]
    fn hash_to_curve_points_valid() {
        for i in 0..10u8 {
            let p = hash_to_curve(&[i]);
            assert!(p.on_curve());
            assert!(!p.is_identity());
        }
    }
}
