//! Batched-keystream equivalence: the multi-block ChaCha20 fast path
//! (`KeyStream::fill_u64`, used by `Prg::fill_mod2b`) must be byte- and
//! word-equal to the legacy per-block/per-`next_u64` path for arbitrary
//! lengths, interior splits, and stream offsets — the bit-equality of
//! every mask in the system rides on this.

use dordis_crypto::chacha20::{block, KeyStream, BLOCK_LEN, KEY_LEN, NONCE_LEN};
use dordis_crypto::prg::Prg;
use proptest::collection;
use proptest::prelude::*;

/// The reference byte stream: whole blocks, concatenated.
fn reference_stream(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len.next_multiple_of(BLOCK_LEN));
    let mut ctr = 0u32;
    while out.len() < len {
        out.extend_from_slice(&block(key, ctr, nonce));
        ctr = ctr.wrapping_add(1);
    }
    out.truncate(len);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `fill_u64` equals the legacy per-word path for any prefix skip
    /// (misaligning the stream by bytes) and any batch length, and the
    /// stream stays in lockstep afterwards.
    #[test]
    fn batched_words_equal_legacy_words(
        key in any::<[u8; 32]>(),
        skip in 0usize..100,
        len in 0usize..200,
    ) {
        let nonce = [7u8; NONCE_LEN];
        let mut batched = KeyStream::new(key, nonce);
        let mut legacy = KeyStream::new(key, nonce);
        let mut prefix = vec![0u8; skip];
        batched.fill(&mut prefix);
        legacy.fill(&mut prefix);

        let mut fast = vec![0u64; len];
        batched.fill_u64(&mut fast);
        let slow: Vec<u64> = (0..len).map(|_| legacy.next_u64()).collect();
        prop_assert_eq!(&fast, &slow);
        prop_assert_eq!(batched.next_u64(), legacy.next_u64());
    }

    /// `fill_u64` output, re-serialized to little-endian bytes, equals
    /// the raw block byte stream at the same offset.
    #[test]
    fn batched_words_equal_reference_bytes(
        key in any::<[u8; 32]>(),
        skip_words in 0usize..40,
        len in 1usize..150,
    ) {
        let nonce = [9u8; NONCE_LEN];
        let mut ks = KeyStream::new(key, nonce);
        ks.seek(skip_words as u64 * 8);
        let mut words = vec![0u64; len];
        ks.fill_u64(&mut words);
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let want = reference_stream(&key, &nonce, skip_words * 8 + len * 8);
        prop_assert_eq!(&bytes[..], &want[skip_words * 8..]);
    }

    /// Splitting one `fill_u64` call into arbitrary sub-fills changes
    /// nothing.
    #[test]
    fn batched_fill_is_split_invariant(
        key in any::<[u8; 32]>(),
        cuts in collection::vec(1usize..25, 1..8),
    ) {
        let nonce = [3u8; NONCE_LEN];
        let total: usize = cuts.iter().sum();
        let mut whole_ks = KeyStream::new(key, nonce);
        let mut whole = vec![0u64; total];
        whole_ks.fill_u64(&mut whole);

        let mut split_ks = KeyStream::new(key, nonce);
        let mut split = vec![0u64; total];
        let mut pos = 0;
        for c in cuts {
            split_ks.fill_u64(&mut split[pos..pos + c]);
            pos += c;
        }
        prop_assert_eq!(whole, split);
    }

    /// `Prg::fill_mod2b` (batched) equals the legacy per-`next_u64`
    /// masking loop for arbitrary bit widths, lengths, and offsets.
    #[test]
    fn fill_mod2b_equals_legacy_path(
        seed in any::<[u8; 32]>(),
        bits in 1u32..65,
        offset in 0usize..60,
        len in 0usize..180,
    ) {
        let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        let mut fast = Prg::new_at(&seed, b"equiv", offset);
        let mut out = vec![0u64; len];
        fast.fill_mod2b(bits, &mut out);

        let mut slow = Prg::new(&seed, b"equiv");
        for _ in 0..offset {
            slow.next_u64();
        }
        let want: Vec<u64> = (0..len).map(|_| slow.next_u64() & mask).collect();
        prop_assert_eq!(out, want);
    }
}
