//! dordis-compute: a worker-pool compute plane for CPU-heavy protocol
//! work.
//!
//! The Dordis pipeline (§5, Figure 12) overlaps communication with
//! computation, but a single-threaded coordinator still serializes every
//! CPU burst — ChaCha20 mask expansion, Shamir-recovery re-expansion,
//! per-chunk unmask/aggregate — behind its event loop. This crate is the
//! missing axis: a hand-rolled pool of `std::thread` workers (no
//! crates.io, same constraint as the reactor) pulling jobs from a shared
//! queue and pushing typed completions back, so the coordinator submits
//! per-chunk jobs and returns to collecting frames while workers burn
//! CPU on other cores.
//!
//! The pool knows nothing about reactors or protocols. Integration with
//! an event loop happens through the [`Notifier`] hook: after a worker
//! publishes a completion it invokes the notifier, and `dordis-net`
//! installs one that pokes the reactor's `WakeQueue` — a job completion
//! then arrives at the coordinator exactly like network readiness, in
//! the same `epoll_pwait` sleep, with no polling.
//!
//! Results are delivered with the caller-chosen job id, so completions
//! may be drained in any order ([`Pool::try_complete`] while overlapping
//! other work, [`Pool::wait_complete`] at a barrier).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Completion hook invoked (from a worker thread) every time a job's
/// result has been queued — the bridge into an event loop's waker.
pub type Notifier = Arc<dyn Fn() + Send + Sync>;

/// One unit of work: runs on a worker, its return value travels back
/// with the submitted job id.
type Job<T> = Box<dyn FnOnce() -> T + Send + 'static>;

/// How one job finished.
#[derive(Debug)]
pub enum JobOutcome<T> {
    /// The job ran to completion.
    Done(T),
    /// The job panicked; the payload is the panic message. The worker
    /// survives and keeps serving the queue.
    Panicked(String),
}

/// Lifetime counters (monotonic; never reset).
#[derive(Clone, Debug, Default)]
pub struct PoolStats {
    /// Jobs submitted.
    pub submitted: u64,
    /// Completions drained by the caller.
    pub drained: u64,
    /// Jobs that panicked (the pool survives each one).
    pub panics: u64,
    /// High-water mark of jobs queued but not yet picked up by a
    /// worker — how far behind the pool has ever fallen.
    pub queue_peak: u64,
    /// Per-worker nanoseconds spent *running* jobs (indexed by worker;
    /// excludes time blocked on the queue).
    pub worker_busy_ns: Vec<u64>,
}

impl PoolStats {
    /// Total busy nanoseconds across all workers.
    #[must_use]
    pub fn total_busy_ns(&self) -> u64 {
        self.worker_busy_ns.iter().sum()
    }
}

/// Counters shared between the pool handle and its worker threads.
#[derive(Debug)]
struct Shared {
    /// Jobs sent but not yet popped by a worker.
    queued: AtomicU64,
    /// High-water mark of `queued`.
    queue_peak: AtomicU64,
    panics: AtomicU64,
    busy_ns: Vec<AtomicU64>,
}

impl Shared {
    fn note_queued(&self) {
        let depth = self.queued.fetch_add(1, Ordering::Relaxed) + 1;
        // CAS-max: racing submitters may both observe a stale peak, but
        // the loop converges on the true maximum.
        let mut peak = self.queue_peak.load(Ordering::Relaxed);
        while depth > peak {
            match self.queue_peak.compare_exchange_weak(
                peak,
                depth,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => peak = seen,
            }
        }
    }
}

/// A fixed-size worker pool with typed, id-tagged completions.
///
/// Dropping the pool closes the job queue, lets the workers finish
/// whatever is in flight, and joins them.
pub struct Pool<T: Send + 'static> {
    /// `None` after shutdown begins (closing the channel is the stop
    /// signal).
    tx: Option<mpsc::Sender<(u64, Job<T>)>>,
    done_rx: mpsc::Receiver<(u64, JobOutcome<T>)>,
    workers: Vec<JoinHandle<()>>,
    submitted: u64,
    drained: u64,
    shared: Arc<Shared>,
}

impl<T: Send + 'static> Pool<T> {
    /// Spawns `workers` threads (clamped to at least 1). `notifier`,
    /// when given, is invoked after every completion is queued.
    #[must_use]
    pub fn new(workers: usize, notifier: Option<Notifier>) -> Pool<T> {
        let workers = workers.max(1);
        let (tx, rx) = mpsc::channel::<(u64, Job<T>)>();
        let (done_tx, done_rx) = mpsc::channel();
        // `mpsc::Receiver` is single-consumer; the shared mutex is the
        // hand-rolled work queue — a worker holds it only long enough
        // to pop one job, then releases it before running the job.
        let rx = Arc::new(Mutex::new(rx));
        let shared = Arc::new(Shared {
            queued: AtomicU64::new(0),
            queue_peak: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            busy_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        });
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let done_tx = done_tx.clone();
                let notifier = notifier.clone();
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dordis-compute-{i}"))
                    .spawn(move || loop {
                        let job = match rx.lock() {
                            Ok(guard) => guard.recv(),
                            Err(_) => return, // a sibling panicked while popping
                        };
                        let Ok((id, job)) = job else {
                            return; // queue closed: shutdown
                        };
                        shared.queued.fetch_sub(1, Ordering::Relaxed);
                        let started = Instant::now();
                        let outcome = match catch_unwind(AssertUnwindSafe(job)) {
                            Ok(v) => JobOutcome::Done(v),
                            // `as_ref`, not `&p`: a `&Box<dyn Any>`
                            // would unsize to `dyn Any` as the *box*,
                            // hiding the payload from the downcasts.
                            Err(p) => {
                                shared.panics.fetch_add(1, Ordering::Relaxed);
                                JobOutcome::Panicked(panic_message(p.as_ref()))
                            }
                        };
                        let busy = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        shared.busy_ns[i].fetch_add(busy, Ordering::Relaxed);
                        if done_tx.send((id, outcome)).is_err() {
                            return; // pool gone
                        }
                        if let Some(n) = &notifier {
                            n();
                        }
                    })
                    .expect("spawn compute worker")
            })
            .collect();
        Pool {
            tx: Some(tx),
            done_rx,
            workers: handles,
            submitted: 0,
            drained: 0,
            shared,
        }
    }

    /// Queues a job under `id`. Ids are caller-meaning (e.g. a chunk
    /// index); the pool never interprets them and does not require
    /// uniqueness.
    pub fn submit(&mut self, id: u64, job: impl FnOnce() -> T + Send + 'static) {
        let tx = self.tx.as_ref().expect("pool is shut down");
        // Count the job *before* it becomes poppable: a worker may grab
        // it the instant `send` returns, and its decrement must never
        // observe (and underflow past) a not-yet-incremented counter.
        self.shared.note_queued();
        tx.send((id, Box::new(job))).expect("workers alive");
        self.submitted += 1;
    }

    /// Jobs submitted but not yet drained.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.submitted - self.drained
    }

    /// Jobs queued but not yet picked up by a worker (point-in-time).
    #[must_use]
    pub fn queue_depth(&self) -> u64 {
        self.shared.queued.load(Ordering::Relaxed)
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            submitted: self.submitted,
            drained: self.drained,
            panics: self.shared.panics.load(Ordering::Relaxed),
            queue_peak: self.shared.queue_peak.load(Ordering::Relaxed),
            worker_busy_ns: self
                .shared
                .busy_ns
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Non-blocking drain: the next queued completion, if any.
    pub fn try_complete(&mut self) -> Option<(u64, JobOutcome<T>)> {
        let done = self.done_rx.try_recv().ok()?;
        self.drained += 1;
        Some(done)
    }

    /// Blocking drain: waits for the next completion. Returns `None`
    /// when nothing is in flight (so a barrier loop cannot deadlock on
    /// an empty pool).
    pub fn wait_complete(&mut self) -> Option<(u64, JobOutcome<T>)> {
        if self.in_flight() == 0 {
            return None;
        }
        let done = self.done_rx.recv().ok()?;
        self.drained += 1;
        Some(done)
    }
}

impl<T: Send + 'static> Drop for Pool<T> {
    fn drop(&mut self) {
        drop(self.tx.take()); // close the queue: workers drain and exit
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).into()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker job panicked".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn jobs_complete_with_their_ids() {
        let mut pool: Pool<u64> = Pool::new(3, None);
        for id in 0..20u64 {
            pool.submit(id, move || id * id);
        }
        let mut got = Vec::new();
        while let Some((id, outcome)) = pool.wait_complete() {
            match outcome {
                JobOutcome::Done(v) => got.push((id, v)),
                JobOutcome::Panicked(m) => panic!("unexpected panic: {m}"),
            }
        }
        got.sort_unstable();
        let want: Vec<(u64, u64)> = (0..20).map(|i| (i, i * i)).collect();
        assert_eq!(got, want);
        assert_eq!(pool.in_flight(), 0);
        assert_eq!(pool.stats().submitted, 20);
    }

    #[test]
    fn notifier_fires_once_per_completion() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let mut pool: Pool<()> = Pool::new(
            2,
            Some(Arc::new(move || {
                h.fetch_add(1, Ordering::SeqCst);
            })),
        );
        for id in 0..7 {
            pool.submit(id, || ());
        }
        while pool.wait_complete().is_some() {}
        // The notifier fires *after* the completion is queued, so the
        // final call may still be in flight on the worker when the
        // drain loop exits — wait for it rather than racing it.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while hits.load(Ordering::SeqCst) < 7 {
            assert!(
                std::time::Instant::now() < deadline,
                "only {} notifier hits",
                hits.load(Ordering::SeqCst)
            );
            std::thread::yield_now();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn work_actually_runs_on_other_threads() {
        let mut pool: Pool<String> = Pool::new(2, None);
        let main = std::thread::current().id();
        pool.submit(0, move || {
            assert_ne!(std::thread::current().id(), main);
            std::thread::current()
                .name()
                .unwrap_or_default()
                .to_string()
        });
        let (_, outcome) = pool.wait_complete().expect("one job in flight");
        match outcome {
            JobOutcome::Done(name) => assert!(name.starts_with("dordis-compute-"), "{name}"),
            JobOutcome::Panicked(m) => panic!("{m}"),
        }
    }

    #[test]
    fn panicking_job_reports_and_pool_survives() {
        let mut pool: Pool<u32> = Pool::new(1, None);
        pool.submit(1, || panic!("boom"));
        pool.submit(2, || 42);
        let mut outcomes = std::collections::BTreeMap::new();
        while let Some((id, o)) = pool.wait_complete() {
            outcomes.insert(id, o);
        }
        assert!(matches!(
            outcomes.get(&1),
            Some(JobOutcome::Panicked(m)) if m.contains("boom")
        ));
        assert!(matches!(outcomes.get(&2), Some(JobOutcome::Done(42))));
    }

    #[test]
    fn try_complete_is_nonblocking_and_eventually_sees_results() {
        let mut pool: Pool<u8> = Pool::new(1, None);
        assert!(pool.try_complete().is_none());
        pool.submit(9, || {
            std::thread::sleep(Duration::from_millis(20));
            1
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if let Some((id, JobOutcome::Done(v))) = pool.try_complete() {
                assert_eq!((id, v), (9, 1));
                break;
            }
            assert!(std::time::Instant::now() < deadline, "never completed");
            std::thread::yield_now();
        }
    }

    #[test]
    fn wait_complete_on_empty_pool_returns_none() {
        let mut pool: Pool<()> = Pool::new(4, None);
        assert!(pool.wait_complete().is_none()); // must not block
    }

    #[test]
    fn stats_track_busy_time_queue_peak_and_panics() {
        // One worker + a gate the first job blocks on: every later
        // submit piles up in the queue, so the peak is deterministic.
        let gate = Arc::new(AtomicUsize::new(0));
        let g = Arc::clone(&gate);
        let mut pool: Pool<u32> = Pool::new(1, None);
        pool.submit(0, move || {
            while g.load(Ordering::SeqCst) == 0 {
                std::thread::yield_now();
            }
            0
        });
        for id in 1..=4u64 {
            pool.submit(id, move || id as u32);
        }
        pool.submit(5, || panic!("boom"));
        gate.store(1, Ordering::SeqCst);
        while pool.wait_complete().is_some() {}

        let stats = pool.stats();
        assert_eq!(stats.submitted, 6);
        assert_eq!(stats.drained, 6);
        assert_eq!(stats.panics, 1);
        // Jobs 1..=5 were all queued while job 0 held the worker.
        assert!(stats.queue_peak >= 5, "peak {}", stats.queue_peak);
        assert_eq!(stats.worker_busy_ns.len(), 1);
        assert!(stats.total_busy_ns() > 0, "busy time never accrued");
        assert_eq!(pool.queue_depth(), 0);
    }

    #[test]
    fn busy_time_lands_on_the_worker_that_ran_the_job() {
        let mut pool: Pool<()> = Pool::new(3, None);
        pool.submit(0, || std::thread::sleep(Duration::from_millis(5)));
        while pool.wait_complete().is_some() {}
        let stats = pool.stats();
        assert_eq!(stats.worker_busy_ns.len(), 3);
        let busy: Vec<&u64> = stats.worker_busy_ns.iter().filter(|&&b| b > 0).collect();
        assert_eq!(busy.len(), 1, "exactly one worker ran the job: {stats:?}");
        assert!(*busy[0] >= 4_000_000, "slept ~5ms: {stats:?}");
    }
}
