//! dordis-compute: a worker-pool compute plane for CPU-heavy protocol
//! work.
//!
//! The Dordis pipeline (§5, Figure 12) overlaps communication with
//! computation, but a single-threaded coordinator still serializes every
//! CPU burst — ChaCha20 mask expansion, Shamir-recovery re-expansion,
//! per-chunk unmask/aggregate — behind its event loop. This crate is the
//! missing axis: a hand-rolled pool of `std::thread` workers (no
//! crates.io, same constraint as the reactor) pulling jobs from a shared
//! queue and pushing typed completions back, so the coordinator submits
//! per-chunk jobs and returns to collecting frames while workers burn
//! CPU on other cores.
//!
//! The pool knows nothing about reactors or protocols. Integration with
//! an event loop happens through the [`Notifier`] hook: after a worker
//! publishes a completion it invokes the notifier, and `dordis-net`
//! installs one that pokes the reactor's `WakeQueue` — a job completion
//! then arrives at the coordinator exactly like network readiness, in
//! the same `epoll_pwait` sleep, with no polling.
//!
//! Results are delivered with the caller-chosen job id, so completions
//! may be drained in any order ([`Pool::try_complete`] while overlapping
//! other work, [`Pool::wait_complete`] at a barrier).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// Completion hook invoked (from a worker thread) every time a job's
/// result has been queued — the bridge into an event loop's waker.
pub type Notifier = Arc<dyn Fn() + Send + Sync>;

/// One unit of work: runs on a worker, its return value travels back
/// with the submitted job id.
type Job<T> = Box<dyn FnOnce() -> T + Send + 'static>;

/// How one job finished.
#[derive(Debug)]
pub enum JobOutcome<T> {
    /// The job ran to completion.
    Done(T),
    /// The job panicked; the payload is the panic message. The worker
    /// survives and keeps serving the queue.
    Panicked(String),
}

/// Lifetime counters (monotonic; never reset).
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolStats {
    /// Jobs submitted.
    pub submitted: u64,
    /// Completions drained by the caller.
    pub drained: u64,
}

/// A fixed-size worker pool with typed, id-tagged completions.
///
/// Dropping the pool closes the job queue, lets the workers finish
/// whatever is in flight, and joins them.
pub struct Pool<T: Send + 'static> {
    /// `None` after shutdown begins (closing the channel is the stop
    /// signal).
    tx: Option<mpsc::Sender<(u64, Job<T>)>>,
    done_rx: mpsc::Receiver<(u64, JobOutcome<T>)>,
    workers: Vec<JoinHandle<()>>,
    submitted: u64,
    drained: u64,
}

impl<T: Send + 'static> Pool<T> {
    /// Spawns `workers` threads (clamped to at least 1). `notifier`,
    /// when given, is invoked after every completion is queued.
    #[must_use]
    pub fn new(workers: usize, notifier: Option<Notifier>) -> Pool<T> {
        let workers = workers.max(1);
        let (tx, rx) = mpsc::channel::<(u64, Job<T>)>();
        let (done_tx, done_rx) = mpsc::channel();
        // `mpsc::Receiver` is single-consumer; the shared mutex is the
        // hand-rolled work queue — a worker holds it only long enough
        // to pop one job, then releases it before running the job.
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let done_tx = done_tx.clone();
                let notifier = notifier.clone();
                std::thread::Builder::new()
                    .name(format!("dordis-compute-{i}"))
                    .spawn(move || loop {
                        let job = match rx.lock() {
                            Ok(guard) => guard.recv(),
                            Err(_) => return, // a sibling panicked while popping
                        };
                        let Ok((id, job)) = job else {
                            return; // queue closed: shutdown
                        };
                        let outcome = match catch_unwind(AssertUnwindSafe(job)) {
                            Ok(v) => JobOutcome::Done(v),
                            // `as_ref`, not `&p`: a `&Box<dyn Any>`
                            // would unsize to `dyn Any` as the *box*,
                            // hiding the payload from the downcasts.
                            Err(p) => JobOutcome::Panicked(panic_message(p.as_ref())),
                        };
                        if done_tx.send((id, outcome)).is_err() {
                            return; // pool gone
                        }
                        if let Some(n) = &notifier {
                            n();
                        }
                    })
                    .expect("spawn compute worker")
            })
            .collect();
        Pool {
            tx: Some(tx),
            done_rx,
            workers: handles,
            submitted: 0,
            drained: 0,
        }
    }

    /// Queues a job under `id`. Ids are caller-meaning (e.g. a chunk
    /// index); the pool never interprets them and does not require
    /// uniqueness.
    pub fn submit(&mut self, id: u64, job: impl FnOnce() -> T + Send + 'static) {
        let tx = self.tx.as_ref().expect("pool is shut down");
        tx.send((id, Box::new(job))).expect("workers alive");
        self.submitted += 1;
    }

    /// Jobs submitted but not yet drained.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.submitted - self.drained
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            submitted: self.submitted,
            drained: self.drained,
        }
    }

    /// Non-blocking drain: the next queued completion, if any.
    pub fn try_complete(&mut self) -> Option<(u64, JobOutcome<T>)> {
        let done = self.done_rx.try_recv().ok()?;
        self.drained += 1;
        Some(done)
    }

    /// Blocking drain: waits for the next completion. Returns `None`
    /// when nothing is in flight (so a barrier loop cannot deadlock on
    /// an empty pool).
    pub fn wait_complete(&mut self) -> Option<(u64, JobOutcome<T>)> {
        if self.in_flight() == 0 {
            return None;
        }
        let done = self.done_rx.recv().ok()?;
        self.drained += 1;
        Some(done)
    }
}

impl<T: Send + 'static> Drop for Pool<T> {
    fn drop(&mut self) {
        drop(self.tx.take()); // close the queue: workers drain and exit
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).into()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker job panicked".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn jobs_complete_with_their_ids() {
        let mut pool: Pool<u64> = Pool::new(3, None);
        for id in 0..20u64 {
            pool.submit(id, move || id * id);
        }
        let mut got = Vec::new();
        while let Some((id, outcome)) = pool.wait_complete() {
            match outcome {
                JobOutcome::Done(v) => got.push((id, v)),
                JobOutcome::Panicked(m) => panic!("unexpected panic: {m}"),
            }
        }
        got.sort_unstable();
        let want: Vec<(u64, u64)> = (0..20).map(|i| (i, i * i)).collect();
        assert_eq!(got, want);
        assert_eq!(pool.in_flight(), 0);
        assert_eq!(pool.stats().submitted, 20);
    }

    #[test]
    fn notifier_fires_once_per_completion() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let mut pool: Pool<()> = Pool::new(
            2,
            Some(Arc::new(move || {
                h.fetch_add(1, Ordering::SeqCst);
            })),
        );
        for id in 0..7 {
            pool.submit(id, || ());
        }
        while pool.wait_complete().is_some() {}
        // The notifier fires *after* the completion is queued, so the
        // final call may still be in flight on the worker when the
        // drain loop exits — wait for it rather than racing it.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while hits.load(Ordering::SeqCst) < 7 {
            assert!(
                std::time::Instant::now() < deadline,
                "only {} notifier hits",
                hits.load(Ordering::SeqCst)
            );
            std::thread::yield_now();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn work_actually_runs_on_other_threads() {
        let mut pool: Pool<String> = Pool::new(2, None);
        let main = std::thread::current().id();
        pool.submit(0, move || {
            assert_ne!(std::thread::current().id(), main);
            std::thread::current()
                .name()
                .unwrap_or_default()
                .to_string()
        });
        let (_, outcome) = pool.wait_complete().expect("one job in flight");
        match outcome {
            JobOutcome::Done(name) => assert!(name.starts_with("dordis-compute-"), "{name}"),
            JobOutcome::Panicked(m) => panic!("{m}"),
        }
    }

    #[test]
    fn panicking_job_reports_and_pool_survives() {
        let mut pool: Pool<u32> = Pool::new(1, None);
        pool.submit(1, || panic!("boom"));
        pool.submit(2, || 42);
        let mut outcomes = std::collections::BTreeMap::new();
        while let Some((id, o)) = pool.wait_complete() {
            outcomes.insert(id, o);
        }
        assert!(matches!(
            outcomes.get(&1),
            Some(JobOutcome::Panicked(m)) if m.contains("boom")
        ));
        assert!(matches!(outcomes.get(&2), Some(JobOutcome::Done(42))));
    }

    #[test]
    fn try_complete_is_nonblocking_and_eventually_sees_results() {
        let mut pool: Pool<u8> = Pool::new(1, None);
        assert!(pool.try_complete().is_none());
        pool.submit(9, || {
            std::thread::sleep(Duration::from_millis(20));
            1
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if let Some((id, JobOutcome::Done(v))) = pool.try_complete() {
                assert_eq!((id, v), (9, 1));
                break;
            }
            assert!(std::time::Instant::now() < deadline, "never completed");
            std::thread::yield_now();
        }
    }

    #[test]
    fn wait_complete_on_empty_pool_returns_none() {
        let mut pool: Pool<()> = Pool::new(4, None);
        assert!(pool.wait_complete().is_none()); // must not block
    }
}
