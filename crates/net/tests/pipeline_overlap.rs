//! Figure 12 realized on a loopback transport: with per-stage latency
//! injected (bandwidth-throttled client uplinks + emulated server-side
//! per-chunk aggregation compute), the planner-chosen chunk count must
//! beat m = 1 wall-clock — chunk `c+1`'s upload overlaps chunk `c`'s
//! aggregation, which a single monolithic frame cannot do.
//!
//! The scenario (round shape, injected costs, analytic planner models)
//! is the shared [`dordis_net::figure12::OverlapScenario`] harness, the
//! same definition the `chunked_round` bench records trajectory points
//! from — the chunk count is chosen the way deployed Dordis chooses it
//! (§4.2): fit stage models, run the Appendix C makespan planner, take
//! the argmin.

use dordis_net::figure12::OverlapScenario;

#[test]
fn planner_chosen_chunks_beat_single_chunk_wall_clock() {
    let scenario = OverlapScenario::default_loopback();
    let chosen = scenario.planner_chunks();
    assert!(
        chosen > 1,
        "planner must choose to pipeline (got m={chosen})"
    );

    // Wall-clock comparisons on shared CI runners are noisy; the win is
    // large (upload ≈ compute ≈ 200 ms, overlap saves most of one), so
    // require it within three attempts rather than flaking on one
    // descheduled run.
    let mut last = None;
    for attempt in 0..3 {
        let (report_1, t_1) = scenario.timed_round(1);
        let (report_m, t_m) = scenario.timed_round(chosen);

        // Same round, same bits — chunking changed only the wall-clock.
        assert_eq!(report_1.outcome.sum, report_m.outcome.sum);
        assert_eq!(report_1.outcome.survivors, report_m.outcome.survivors);
        assert_eq!(report_1.chunks, 1);
        assert!(report_m.chunks > 1);

        if t_m.as_secs_f64() < t_1.as_secs_f64() * 0.9 {
            return;
        }
        eprintln!("attempt {attempt}: m={chosen} {t_m:?} vs m=1 {t_1:?}, retrying");
        last = Some((t_1, t_m));
    }
    let (t_1, t_m) = last.expect("three attempts ran");
    panic!("pipelined round (m={chosen}) never beat single-chunk: {t_m:?} vs {t_1:?}");
}
